//! Workspace umbrella crate for the GemFI reproduction.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual functionality
//! lives in the member crates:
//!
//! * [`gemfi_isa`] — the Alpha-subset guest ISA (Table I formats).
//! * [`gemfi_asm`] — macro-assembler for building guest programs.
//! * [`gemfi_mem`] — classic memory hierarchy (L1I/L1D/L2/DRAM).
//! * [`gemfi_cpu`] — the four CPU models and the tournament predictor.
//! * [`gemfi_kernel`] — the minimal full-system kernel substrate.
//! * [`gemfi_sim`] — the full-system machine, checkpointing, stats.
//! * [`gemfi`] — the fault-injection engine (the paper's contribution).
//! * [`gemfi_workloads`] — the six guest benchmarks plus golden models.
//! * [`gemfi_campaign`] — statistical campaigns and the NoW executor.

pub use gemfi;
pub use gemfi_asm;
pub use gemfi_campaign;
pub use gemfi_cpu;
pub use gemfi_isa;
pub use gemfi_kernel;
pub use gemfi_mem;
pub use gemfi_sim;
pub use gemfi_workloads;
