//! Executable randomized test for the assembler's constant-materialization
//! pseudo-ops: for arbitrary 64-bit constants, `li` must leave exactly that
//! value in the register when the program runs (covering the one-, two-,
//! and pool-instruction expansion paths), and `lif` the exact IEEE bits.

use gemfi_asm::{Assembler, FReg, Reg};
use gemfi_campaign::rng::SplitMix64;
use gemfi_cpu::NoopHooks;
use gemfi_sim::{Machine, MachineConfig, RunExit};

fn machine_value_of(build: impl Fn(&mut Assembler)) -> u64 {
    let mut a = Assembler::new();
    build(&mut a);
    // Report r1 through the binary output channel.
    a.mov(Reg::R1, Reg::A0);
    a.pal(gemfi_isa::PalFunc::WriteWord);
    a.exit(0);
    let program = a.finish().expect("assembles");
    let mut m = Machine::boot(MachineConfig::default(), &program, NoopHooks).expect("boots");
    assert_eq!(m.run(), RunExit::Halted(0));
    m.out_words()[0]
}

#[test]
fn li_materializes_arbitrary_constants() {
    let mut rng = SplitMix64::new(0x11);
    for _ in 0..48 {
        let value = rng.next_u64() as i64;
        let got = machine_value_of(|a| {
            a.li(Reg::R1, value);
        });
        assert_eq!(got, value as u64, "li({value:#x})");
    }
}

#[test]
fn lif_materializes_exact_ieee_bits() {
    let mut rng = SplitMix64::new(0x11f);
    for _ in 0..48 {
        let bits = rng.next_u64();
        let got = machine_value_of(|a| {
            a.lif(FReg::F1, f64::from_bits(bits), Reg::R9);
            a.ftoit(FReg::F1, Reg::R1);
        });
        // +0.0 is the only value lif encodes without the pool (via F31).
        assert_eq!(got, bits, "lif({bits:#x})");
    }
}

#[test]
fn li_boundary_values() {
    for value in [
        0i64,
        1,
        -1,
        i16::MAX as i64,
        i16::MIN as i64,
        i16::MAX as i64 + 1,
        i16::MIN as i64 - 1,
        0x7fff_ffff,
        -0x8000_0000,
        0x8000_0000,
        i32::MAX as i64,
        i32::MIN as i64,
        i32::MAX as i64 + 1,
        i32::MIN as i64 - 1,
        i64::MAX,
        i64::MIN,
        0x0123_4567_89ab_cdef,
    ] {
        let got = machine_value_of(|a| {
            a.li(Reg::R1, value);
        });
        assert_eq!(got, value as u64, "li({value:#x})");
    }
}
