//! Experimental validation in the absence of faults (Sec. IV-A).
//!
//! "The execution of each application was simulated both with our tool and
//! the original Gem5 simulator. When simulating using GemFI we did not
//! inject any faults. We then compared the application output from the two
//! experiments, as well as the statistical results provided by the
//! simulator. For all benchmarks the results were identical. This indicates
//! that GemFI does not corrupt the simulation process."

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_sim::{Machine, RunExit, SimStats};
use gemfi_workloads::{all_workloads, workload_machine_config, Workload};

fn run_to_completion<H: gemfi_cpu::FaultHooks>(
    workload: &dyn Workload,
    cpu: CpuKind,
    hooks: H,
) -> (Vec<u8>, Vec<u8>, SimStats) {
    let guest = workload.build();
    let mut machine = Machine::boot(workload_machine_config(cpu), &guest.program, hooks)
        .unwrap_or_else(|t| panic!("{}: boot failed: {t}", workload.name()));
    let mut exit = machine.run();
    while exit == RunExit::CheckpointRequest {
        exit = machine.run();
    }
    assert_eq!(exit, RunExit::Halted(0), "{} must terminate cleanly", workload.name());
    let output =
        machine.mem().read_slice(guest.output_addr(), guest.output_len).expect("output mapped");
    (output, machine.console().to_vec(), machine.stats())
}

/// Small-size variants so the full six-benchmark sweep stays test-sized.
fn small_workloads() -> Vec<Box<dyn Workload>> {
    use gemfi_workloads::*;
    vec![
        Box::new(dct::Dct { width: 16, height: 16 }),
        Box::new(jacobi::Jacobi { n: 8, max_iters: 100 }),
        Box::new(pi::MonteCarloPi { points: 200, init_spins: 100, ..Default::default() }),
        Box::new(knapsack::Knapsack { generations: 5, ..Default::default() }),
        Box::new(deblock::Deblock { width: 24, height: 16 }),
        Box::new(canneal::Canneal { steps: 60, ..Default::default() }),
    ]
}

#[test]
fn gemfi_with_no_faults_is_invisible_on_every_benchmark() {
    for workload in small_workloads() {
        let (out_base, con_base, stats_base) =
            run_to_completion(workload.as_ref(), CpuKind::Atomic, NoopHooks);
        let (out_fi, con_fi, stats_fi) = run_to_completion(
            workload.as_ref(),
            CpuKind::Atomic,
            GemFiEngine::new(FaultConfig::empty()),
        );
        assert_eq!(out_base, out_fi, "{}: output must be identical", workload.name());
        assert_eq!(con_base, con_fi, "{}: console must be identical", workload.name());
        // "as well as the statistical results provided by the simulator".
        assert_eq!(stats_base, stats_fi, "{}: statistics must be identical", workload.name());
    }
}

#[test]
fn gemfi_with_no_faults_is_invisible_under_o3_too() {
    for workload in small_workloads().into_iter().take(3) {
        let (out_base, _, stats_base) =
            run_to_completion(workload.as_ref(), CpuKind::O3, NoopHooks);
        let (out_fi, _, stats_fi) = run_to_completion(
            workload.as_ref(),
            CpuKind::O3,
            GemFiEngine::new(FaultConfig::empty()),
        );
        assert_eq!(out_base, out_fi, "{}", workload.name());
        assert_eq!(stats_base.instructions, stats_fi.instructions, "{}", workload.name());
        assert_eq!(stats_base.ticks, stats_fi.ticks, "{}", workload.name());
    }
}

#[test]
fn default_workload_set_matches_host_references() {
    // The library-level default set must agree with the host golden models
    // (the guest implementations are bit-exact mirrors).
    for workload in all_workloads().into_iter().filter(|w| w.name() == "pi") {
        let (out, _, _) = run_to_completion(workload.as_ref(), CpuKind::Atomic, NoopHooks);
        assert_eq!(out, workload.reference(), "{}", workload.name());
    }
}
