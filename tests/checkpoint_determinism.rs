//! Checkpoint/fast-forward correctness (Sec. III-D): restoring from the
//! `fi_read_init_all` snapshot and continuing must be indistinguishable
//! from simulating straight through, across CPU models and serialization
//! round-trips.

use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_isa::codec::Codec;
use gemfi_sim::{Checkpoint, Machine, RunExit};
use gemfi_workloads::knapsack::Knapsack;
use gemfi_workloads::{workload_machine_config, GuestWorkload, Workload};

fn straight_through(guest: &GuestWorkload, cpu: CpuKind) -> (Vec<u8>, u64) {
    let mut m =
        Machine::boot(workload_machine_config(cpu), &guest.program, NoopHooks).expect("boots");
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
    let out = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap();
    (out, m.instret())
}

fn checkpoint_of(guest: &GuestWorkload) -> Checkpoint {
    let mut m = Machine::boot(workload_machine_config(CpuKind::Atomic), &guest.program, NoopHooks)
        .expect("boots");
    assert_eq!(m.run(), RunExit::CheckpointRequest);
    m.checkpoint()
}

#[test]
fn restore_resumes_identically_across_models() {
    let w = Knapsack { generations: 6, ..Knapsack::default() };
    let guest = w.build();
    let (golden, _) = straight_through(&guest, CpuKind::Atomic);
    let ckpt = checkpoint_of(&guest);

    for cpu in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
        let mut m = Machine::restore(&ckpt, Some(cpu), NoopHooks);
        let mut exit = m.run();
        while exit == RunExit::CheckpointRequest {
            exit = m.run();
        }
        assert_eq!(exit, RunExit::Halted(0), "{cpu}");
        let out = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap();
        assert_eq!(out, golden.as_slice(), "{cpu}: restored run must match straight-through");
    }
}

#[test]
fn serialized_checkpoint_behaves_like_the_original() {
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let ckpt = checkpoint_of(&guest);
    let round_tripped = Checkpoint::from_bytes(&ckpt.to_bytes()).expect("decodes");

    let run = |c: &Checkpoint| {
        let mut m = Machine::restore(c, None, NoopHooks);
        let exit = m.run();
        (exit, m.instret(), m.stats().ticks)
    };
    assert_eq!(run(&ckpt), run(&round_tripped));
}

#[test]
fn warm_predecode_cache_never_reaches_the_checkpoint_image() {
    // The predecode cache is derived state: a checkpoint taken from a
    // machine with a warm cache must serialize byte-identically to one
    // taken from a machine that never cached a decode, and a restore must
    // start decode-cold yet reproduce the straight-through output.
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let (golden, _) = straight_through(&guest, CpuKind::Atomic);

    let ckpt_with = |predecode: bool| {
        let mut config = workload_machine_config(CpuKind::Atomic);
        config.mem.predecode = predecode;
        // Superblocks off so the dormant fast-forward still warms the
        // predecode cache this test pins (the superblock axis has its own
        // byte-stability test below).
        config.mem.superblock = false;
        let mut m = Machine::boot(config, &guest.program, NoopHooks).expect("boots");
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        if predecode {
            assert!(m.mem().stats().predecode.hits > 0, "cache must be warm at checkpoint time");
        }
        m.checkpoint()
    };
    let warm = ckpt_with(true);
    let cold = ckpt_with(false);
    assert_eq!(warm.to_bytes(), cold.to_bytes(), "cache state leaked into the v2 image");

    let mut m = Machine::restore(&warm, None, NoopHooks);
    assert_eq!(
        m.mem().stats().predecode,
        gemfi_isa::PredecodeStats::default(),
        "restore must start decode-cold"
    );
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
    let out = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap();
    assert_eq!(out, golden.as_slice(), "warm-cache checkpoint diverged from straight-through");
}

#[test]
fn warm_superblock_cache_never_reaches_the_checkpoint_image() {
    // Same derived-state contract for the superblock translation cache: a
    // checkpoint from a machine that sprinted through warm superblocks must
    // serialize byte-identically to one that never translated a block, and
    // the v2 image is byte-stable with the knob in either position.
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let (golden, _) = straight_through(&guest, CpuKind::Atomic);

    let ckpt_with = |superblock: bool| {
        let mut config = workload_machine_config(CpuKind::Atomic);
        config.mem.superblock = superblock;
        let mut m = Machine::boot(config, &guest.program, NoopHooks).expect("boots");
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        if superblock {
            assert!(
                m.mem().stats().superblock.uops_executed > 0,
                "fast-forward must have run through superblocks"
            );
        }
        m.checkpoint()
    };
    let warm = ckpt_with(true);
    let cold = ckpt_with(false);
    assert_eq!(warm.to_bytes(), cold.to_bytes(), "superblock state leaked into the v2 image");

    let mut m = Machine::restore(&warm, None, NoopHooks);
    assert_eq!(
        m.mem().stats().superblock,
        gemfi_isa::SuperblockStats::default(),
        "restore must start translation-cold"
    );
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));
    let out = m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap();
    assert_eq!(out, golden.as_slice(), "superblock checkpoint diverged from straight-through");
}

#[test]
fn in_process_restore_times_identically_to_a_byte_round_trip() {
    // The serialized image deliberately carries no cache tag/LRU state, so
    // an in-process restore must go cache-cold too — otherwise detailed
    // -model timing after a restore depends on *how the capturing machine
    // executed*. Superblock execution skips the hierarchy walk, so a warm
    // capture's tag state differs across the knob; all four restores below
    // must still finish at the identical tick (this pinned a real 4-tick
    // injection-record shift between `gemfi_run` runs with and without
    // `--no-superblock`).
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();

    let ckpt_with = |superblock: bool| {
        let mut config = workload_machine_config(CpuKind::Atomic);
        config.mem.superblock = superblock;
        let mut m = Machine::boot(config, &guest.program, NoopHooks).expect("boots");
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        m.checkpoint()
    };

    let drive = |c: &Checkpoint| {
        let mut m = Machine::restore(c, Some(CpuKind::O3), NoopHooks);
        assert_eq!(m.mem().stats().l1i.accesses(), 0, "restore must start cache-cold");
        let mut exit = m.run();
        while exit == RunExit::CheckpointRequest {
            exit = m.run();
        }
        assert_eq!(exit, RunExit::Halted(0));
        (m.instret(), m.tick())
    };

    let warm_sb = ckpt_with(true);
    let warm_stepped = ckpt_with(false);
    let round_tripped = Checkpoint::from_bytes(&warm_sb.to_bytes()).expect("decodes");

    let baseline = drive(&round_tripped);
    assert_eq!(drive(&warm_sb), baseline, "in-process restore timed unlike its own byte image");
    assert_eq!(drive(&warm_stepped), baseline, "restored timing depended on the superblock knob");
}

#[test]
fn dirtied_restores_never_bleed_back_into_the_checkpoint() {
    // Copy-on-write sharing must be invisible: a machine restored from a
    // shared checkpoint dirties its pages freely, yet the checkpoint still
    // serializes byte-identically afterwards, and a second restore taken
    // *after* that dirtying checkpoints back to the very same image as one
    // taken before it.
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let ckpt = checkpoint_of(&guest);
    let original_bytes = ckpt.to_bytes();
    let fresh_image = Machine::restore(&ckpt, None, NoopHooks).checkpoint().to_bytes();

    // Dirty a restored machine's memory heavily: run the kernel to halt.
    let mut m = Machine::restore(&ckpt, None, NoopHooks);
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    assert_eq!(exit, RunExit::Halted(0));

    assert_eq!(
        ckpt.to_bytes(),
        original_bytes,
        "running a restored machine mutated the shared checkpoint"
    );
    assert_eq!(
        Machine::restore(&ckpt, None, NoopHooks).checkpoint().to_bytes(),
        fresh_image,
        "a restore taken after fan-out must serialize like one taken before"
    );
}

#[test]
fn flat_ablation_checkpoints_serialize_identically_to_cow() {
    // MemConfig.cow is a host-side clone-policy knob: with it off (the
    // restore_fanout bench's flat baseline) the checkpoint image and the
    // guest-visible run must be bit-for-bit the same.
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let ckpt_with = |cow: bool| {
        let mut config = workload_machine_config(CpuKind::Atomic);
        config.mem.cow = cow;
        let mut m = Machine::boot(config, &guest.program, NoopHooks).expect("boots");
        assert_eq!(m.run(), RunExit::CheckpointRequest);
        m.checkpoint()
    };
    let cow = ckpt_with(true);
    let flat = ckpt_with(false);
    assert_eq!(cow.to_bytes(), flat.to_bytes(), "clone policy leaked into the v2 image");
    assert_eq!(cow.digest(), flat.digest());
}

#[test]
fn mid_run_capture_is_byte_identical_to_stop_and_capture() {
    // Capture-without-stopping must be a pure read: a snapshot taken at
    // tick T from a machine that keeps running serializes byte-identically
    // to one from a machine that ran to T and stopped there — and the
    // capturing machine's own run is unperturbed. Both CoW modes.
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let (golden, _) = straight_through(&guest, CpuKind::Atomic);

    for cow in [true, false] {
        let mut config = workload_machine_config(CpuKind::Atomic);
        config.mem.cow = cow;
        let mut a = Machine::boot(config, &guest.program, NoopHooks).expect("boots");
        assert_eq!(a.run(), RunExit::CheckpointRequest);
        let target = a.tick() + 5_000;
        assert!(a.run_to_tick(target).is_none(), "cow={cow}: kernel outlives the target");
        let mid = a.try_checkpoint().expect("atomic machines are always quiesced");
        assert_eq!(mid.tick(), a.tick(), "cow={cow}");

        // The capture had no side effects: the machine finishes the golden
        // run exactly as an uninterrupted one does.
        let mut exit = a.run();
        while exit == RunExit::CheckpointRequest {
            exit = a.run();
        }
        assert_eq!(exit, RunExit::Halted(0), "cow={cow}");
        let out = a.mem().read_slice(guest.output_addr(), guest.output_len).unwrap();
        assert_eq!(out, golden.as_slice(), "cow={cow}: capture perturbed the run");

        // A second machine runs to the same tick and stops there: its image
        // must be byte-for-byte the one captured mid-run.
        let mut config = workload_machine_config(CpuKind::Atomic);
        config.mem.cow = cow;
        let mut b = Machine::boot(config, &guest.program, NoopHooks).expect("boots");
        assert_eq!(b.run(), RunExit::CheckpointRequest);
        assert!(b.run_to_tick(target).is_none());
        assert_eq!(
            b.try_checkpoint().expect("quiesced").to_bytes(),
            mid.to_bytes(),
            "cow={cow}: mid-run capture diverged from stop-and-capture"
        );
    }
}

#[test]
fn one_checkpoint_spawns_many_identical_experiments() {
    // The Fig. 3 pattern: one checkpoint, many restores; every restore sees
    // the same world (the engine re-reads its own fault config per restore,
    // here the no-fault case).
    let w = Knapsack { generations: 4, ..Knapsack::default() };
    let guest = w.build();
    let ckpt = checkpoint_of(&guest);
    let mut outputs = Vec::new();
    for _ in 0..3 {
        let mut m = Machine::restore(&ckpt, Some(CpuKind::O3), NoopHooks);
        let mut exit = m.run();
        while exit == RunExit::CheckpointRequest {
            exit = m.run();
        }
        assert_eq!(exit, RunExit::Halted(0));
        outputs.push(m.mem().read_slice(guest.output_addr(), guest.output_len).unwrap());
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}
