//! Cross-model conformance suite for the predecoded-instruction cache.
//!
//! GemFI's methodology (Sec. III-E) leans on the four CPU models being
//! architecturally interchangeable: campaigns fast-forward under Atomic and
//! switch to a detailed model near the injection point. The predecode cache
//! adds a second axis that must be equally invisible: any program must
//! compute the same result with the cache on or off.
//!
//! Each seeded random program — straight-line arithmetic, forward skips,
//! bounded loops, and stores/loads through a scratch buffer — runs under
//! 4 models x {predecode on, off} x {hook elision on, off} x {superblock
//! on, off}. Within a model all eight runs must be *fully* identical
//! (complete [`ArchState`] and
//! every byte of physical memory); across models the guest-visible surface
//! must agree (all 62 registers, the PC, and the data segment —
//! timing-dependent kernel bookkeeping such as `exc_addr` is allowed to
//! differ between timing models, never between cache or elision modes).

use gemfi_asm::{Assembler, Program, Reg};
use gemfi_campaign::rng::SplitMix64;
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_isa::{ArchState, IntReg};
use gemfi_sim::{Machine, MachineConfig, RunExit};

const PHYS_SIZE: usize = 4 << 20;
const MODELS: [CpuKind; 4] = [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3];

/// Scratch-buffer length in 8-byte words.
const BUF_WORDS: u64 = 64;

/// One random instruction appended to the program under construction.
///
/// Operands draw from R1–R8 only, so the loop counters (R10–R12) and the
/// buffer base (R20) stay intact. Forward skips get a fresh label each so a
/// program can contain many of them.
fn random_op(a: &mut Assembler, rng: &mut SplitMix64, skip: &mut usize) {
    let r = |v: u64| IntReg::new(1 + (v % 8) as u8).unwrap();
    let (x, y, z) = (r(rng.next_u64()), r(rng.next_u64()), r(rng.next_u64()));
    match rng.below(14) {
        0 => {
            a.addq(x, y, z);
        }
        1 => {
            a.subq(x, y, z);
        }
        2 => {
            a.mulq(x, y, z);
        }
        3 => {
            a.xor(x, y, z);
        }
        4 => {
            a.and(x, y, z);
        }
        5 => {
            a.bis(x, y, z);
        }
        6 => {
            a.sll_lit(x, (rng.below(64)) as u8, z);
        }
        7 => {
            a.srl_lit(x, (rng.below(64)) as u8, z);
        }
        8 => {
            a.cmplt(x, y, z);
        }
        9 => {
            a.cmovge(x, y, z);
        }
        10 => {
            a.addq_lit(x, rng.below(256) as u8, z);
        }
        11 | 12 => {
            // Bounded store + load through the scratch buffer.
            let off = (rng.below(BUF_WORDS) * 8) as i16;
            a.stq(x, off, Reg::R20);
            a.ldq(z, off, Reg::R20);
        }
        _ => {
            // Forward skip over a couple of instructions: branchy control
            // flow without the risk of an unbounded loop.
            let label = format!("skip{}", *skip);
            *skip += 1;
            match rng.below(4) {
                0 => a.beq(x, &label),
                1 => a.bne(x, &label),
                2 => a.blt(x, &label),
                _ => a.bge(x, &label),
            };
            for _ in 0..rng.range_inclusive(1, 3) {
                let (p, q, s) = (r(rng.next_u64()), r(rng.next_u64()), r(rng.next_u64()));
                a.addq(p, q, s);
            }
            a.label(&label);
        }
    }
}

/// A seeded random program: register seeding, a straight-line prefix, then
/// a counted loop whose body is also random. Always terminates.
fn random_program(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut a = Assembler::new();
    a.dsym("buf");
    a.data_u64(&[0u64; BUF_WORDS as usize]);
    a.la(Reg::R20, "buf");
    for i in 1..=8u8 {
        a.li(IntReg::new(i).unwrap(), rng.next_u64() as u32 as i64);
    }
    let mut skip = 0;
    for _ in 0..rng.range_inclusive(24, 48) {
        random_op(&mut a, &mut rng, &mut skip);
    }
    a.li(Reg::R10, 0);
    a.li(Reg::R11, rng.range_inclusive(8, 32) as i64);
    a.label("loop");
    for _ in 0..rng.range_inclusive(4, 10) {
        random_op(&mut a, &mut rng, &mut skip);
    }
    a.addq_lit(Reg::R10, 1, Reg::R10);
    a.cmplt(Reg::R10, Reg::R11, Reg::R12);
    a.bne(Reg::R12, "loop");
    a.exit(0);
    a.finish().expect("random program assembles")
}

struct Snapshot {
    exit: RunExit,
    arch: ArchState,
    mem: Vec<u8>,
}

fn run_model(
    program: &Program,
    cpu: CpuKind,
    predecode: bool,
    elide: bool,
    superblock: bool,
) -> Snapshot {
    let mut config =
        MachineConfig { cpu, max_ticks: 50_000_000, elide, ..MachineConfig::default() };
    config.mem.phys_size = PHYS_SIZE;
    config.mem.predecode = predecode;
    config.mem.superblock = superblock;
    let mut m = Machine::boot(config, program, NoopHooks).expect("boots");
    let mut exit = m.run();
    while exit == RunExit::CheckpointRequest {
        exit = m.run();
    }
    Snapshot {
        exit,
        arch: m.arch().clone(),
        mem: m.mem().read_slice(0, PHYS_SIZE).expect("physical memory"),
    }
}

/// The guest-visible data segment of a snapshot (the region the program can
/// address through its data symbols).
fn data_segment<'s>(program: &Program, snap: &'s Snapshot) -> &'s [u8] {
    let base = program.data_base() as usize;
    let end = program.image_end() as usize;
    &snap.mem[base..end]
}

/// Runs each seed under every model and every combination of the three
/// fast-path knobs (predecode, elision, superblock), asserting the
/// conformance contract described in the module docs.
fn conformance(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        let program = random_program(seed);
        let mut baseline: Option<Snapshot> = None;
        for cpu in MODELS {
            let on = run_model(&program, cpu, true, true, true);
            // Every fast path must be a pure performance artifact, alone
            // and in every combination.
            for mask in 0..7u8 {
                let (predecode, elide, superblock) = (mask & 1 != 0, mask & 2 != 0, mask & 4 != 0);
                let other = run_model(&program, cpu, predecode, elide, superblock);
                let tag = format!(
                    "seed {seed} {cpu} (predecode={predecode}, elide={elide},                      superblock={superblock})"
                );
                assert_eq!(on.exit, other.exit, "{tag}: exit differs");
                assert_eq!(on.arch, other.arch, "{tag}: ArchState differs");
                assert!(on.mem == other.mem, "{tag}: memory differs");
            }

            // Across models the guest-visible surface must agree.
            assert!(
                matches!(on.exit, RunExit::Halted(_)),
                "seed {seed} {cpu}: unexpected exit {:?}",
                on.exit
            );
            match &baseline {
                None => baseline = Some(on),
                Some(b) => {
                    assert_eq!(b.exit, on.exit, "seed {seed}: {cpu} exit diverges from atomic");
                    assert_eq!(
                        b.arch.regs, on.arch.regs,
                        "seed {seed}: {cpu} registers diverge from atomic"
                    );
                    assert_eq!(b.arch.pc, on.arch.pc, "seed {seed}: {cpu} PC diverges from atomic");
                    assert!(
                        data_segment(&program, b) == data_segment(&program, &on),
                        "seed {seed}: {cpu} data segment diverges from atomic"
                    );
                }
            }
        }
    }
}

#[test]
fn conformance_seeds_00_13() {
    conformance(0..14);
}

#[test]
fn conformance_seeds_14_27() {
    conformance(14..28);
}

#[test]
fn conformance_seeds_28_41() {
    conformance(28..42);
}

#[test]
fn conformance_seeds_42_55() {
    conformance(42..56);
}
