//! Adaptive-campaign invariants at the integration level: the min-n floor,
//! the hard budget cap, and kill-based resume — an interrupted sequential
//! campaign, resumed from its journal, must reach byte-identical per-cell
//! decisions to an uninterrupted run on the same seed.

use gemfi::Outcome;
use gemfi_campaign::{
    prepare_workload, run_campaign_adaptive, run_campaign_adaptive_now, AdaptiveConfig, CellKind,
    ChaosConfig, NowConfig, RunnerConfig,
};
use gemfi_cpu::CpuKind;
use gemfi_workloads::pi::MonteCarloPi;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::time::Duration;

fn campaign() -> (MonteCarloPi, gemfi_campaign::PreparedWorkload, RunnerConfig) {
    let w = MonteCarloPi { points: 60, init_spins: 40, ..MonteCarloPi::default() };
    let p = prepare_workload(&w).unwrap();
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    (w, p, runner)
}

fn share(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gemfi-adaptive-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &PathBuf) -> NowConfig {
    NowConfig {
        lease: Duration::from_secs(30),
        retry_backoff: Duration::from_millis(1),
        ..NowConfig::new(2, 2, dir)
    }
}

#[test]
fn no_cell_decides_below_the_min_n_floor_on_any_seed() {
    let (w, p, runner) = campaign();
    // A loose half-width that single-digit samples could nominally satisfy
    // on a lopsided cell — only the floor keeps the sample honest.
    let adaptive = AdaptiveConfig {
        ci_halfwidth: 0.2,
        min_n: 24,
        batch: 8,
        cells: vec![CellKind::parse("l2-cache").unwrap(), CellKind::parse("int-reg").unwrap()],
        ..AdaptiveConfig::default()
    };
    for seed in [1u64, 2, 3] {
        let outcome = run_campaign_adaptive(&p, &w, &runner, None, &adaptive, seed);
        for cell in &outcome.cells {
            if cell.decision.is_decided() {
                assert!(
                    cell.n >= adaptive.min_n,
                    "seed {seed}: {} decided at n={} below the min-n floor",
                    cell.cell,
                    cell.n
                );
            }
        }
    }
}

#[test]
fn the_budget_caps_total_draws_across_all_cells() {
    let (w, p, runner) = campaign();
    // A half-width this tight wants hundreds of samples per cell; the
    // budget must cut the campaign off first.
    let adaptive = AdaptiveConfig {
        ci_halfwidth: 0.02,
        min_n: 8,
        batch: 8,
        budget: 48,
        cells: vec![CellKind::parse("pc").unwrap(), CellKind::parse("decode").unwrap()],
        ..AdaptiveConfig::default()
    };
    let outcome = run_campaign_adaptive(&p, &w, &runner, None, &adaptive, 7);
    assert_eq!(outcome.experiments, 48, "the campaign draws exactly up to the budget");
    assert!(
        outcome.cells.iter().all(|c| !c.decision.is_decided()),
        "neither cell can close a 2%-half-width CI inside 48 draws, so both end \
         exhausted-at-budget rather than decided"
    );
}

#[test]
fn interrupted_adaptive_campaign_resumes_to_identical_decisions() {
    let (w, p, runner) = campaign();
    let adaptive = AdaptiveConfig {
        ci_halfwidth: 0.12,
        min_n: 16,
        batch: 8,
        cells: vec![
            CellKind::parse("l1d-cache").unwrap(),
            CellKind::parse("fp-reg").unwrap(),
            CellKind::parse("pc").unwrap(),
        ],
        ..AdaptiveConfig::default()
    };
    let seed = 0xFEED;

    // Ground truth: the same campaign run start-to-finish in its own share.
    let fresh_dir = share("fresh");
    let (fresh, _) =
        run_campaign_adaptive_now(&p, &w, &runner, &config(&fresh_dir), &adaptive, seed).unwrap();

    // Interrupted run: the driver halts a few completions in, then resumes.
    let dir = share("kill");
    let mut cfg = config(&dir);
    cfg.chaos = ChaosConfig { halt_after: Some(5), ..ChaosConfig::default() };
    let err = run_campaign_adaptive_now(&p, &w, &runner, &cfg, &adaptive, seed).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Interrupted, "{err}");

    let mut cfg = config(&dir);
    cfg.resume = true;
    let (resumed, report) =
        run_campaign_adaptive_now(&p, &w, &runner, &cfg, &adaptive, seed).unwrap();
    assert!(resumed.resumed > 0, "finished work was replayed from the journal, not re-run");
    assert!(report.resumed > 0);

    // Byte-identical decisions: same cells, same n, same decision state,
    // same per-cell outcome counts, same totals.
    assert_eq!(resumed.experiments, fresh.experiments);
    assert_eq!(resumed.rounds, fresh.rounds);
    assert_eq!(resumed.cells.len(), fresh.cells.len());
    for (r, f) in resumed.cells.iter().zip(&fresh.cells) {
        assert_eq!(r.cell, f.cell);
        assert_eq!(r.n, f.n, "{}: replayed sample size differs", r.cell);
        assert_eq!(r.decision, f.decision, "{}: decision differs", r.cell);
        assert_eq!(r.stats, f.stats, "{}: outcome counts differ", r.cell);
    }
    for o in Outcome::ALL {
        assert_eq!(resumed.table.count(o), fresh.table.count(o), "{o}");
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&fresh_dir).ok();
}
