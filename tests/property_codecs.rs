//! Randomized tests over the workspace's codecs and core invariants.
//! Seeded with a fixed [`SplitMix64`] stream so every run checks the same
//! (large) sample deterministically.

use gemfi::{FaultBehavior, FaultConfig, FaultLocation, FaultSpec, FaultTiming, MemTarget};
use gemfi_campaign::rng::SplitMix64;
use gemfi_isa::codec::Codec;
use gemfi_isa::{decode, disassemble, encode, ArchState, IntReg, RawInstr};

/// Decode∘encode is the identity on every decodable instruction word —
/// i.e., re-encoding a decoded word reproduces a word that decodes to the
/// same instruction (the fetch-fault analysis depends on decoding being a
/// function of the word's fields alone).
#[test]
fn decode_encode_is_stable() {
    let mut rng = SplitMix64::new(0xc0dec);
    for _ in 0..20_000 {
        let word = rng.next_u64() as u32;
        if let Ok(instr) = decode(RawInstr(word)) {
            let reencoded = encode(&instr);
            let instr2 = decode(reencoded).expect("re-encoded instruction decodes");
            assert_eq!(instr, instr2, "word {word:#010x}");
        }
    }
}

/// The disassembler never panics, on any word.
#[test]
fn disassembler_is_total() {
    let mut rng = SplitMix64::new(0xd15a);
    for _ in 0..20_000 {
        let text = disassemble(RawInstr(rng.next_u64() as u32));
        assert!(!text.is_empty());
    }
    // Exhaustive over the opcode space with zeroed operand fields.
    for op in 0u32..64 {
        assert!(!disassemble(RawInstr(op << 26)).is_empty());
    }
}

/// Architectural state serialization is bit-exact.
#[test]
fn archstate_codec_roundtrips() {
    let mut rng = SplitMix64::new(0xa5c4);
    for _ in 0..200 {
        let mut a = ArchState::new(rng.next_u64());
        a.pcbb = rng.next_u64();
        for i in 0..31u8 {
            a.regs.write_int(IntReg::new(i).unwrap(), rng.next_u64());
        }
        let b = ArchState::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a, b);
    }
}

/// The zero-run image compression round-trips arbitrary images.
#[test]
fn image_rle_roundtrips() {
    let mut rng = SplitMix64::new(0x1337);
    for _ in 0..200 {
        let len = rng.below(4096) as usize;
        let mut img: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Inject zero runs to exercise both record kinds.
        for _ in 0..rng.below(8) {
            let s = (rng.below(4096) as usize).min(img.len());
            let e = (s + rng.below(128) as usize).min(img.len());
            for b in &mut img[s..e] {
                *b = 0;
            }
        }
        let mut w = gemfi_isa::codec::ByteWriter::new();
        gemfi_mem::encode_image(&img, &mut w);
        let bytes = w.into_bytes();
        let mut r = gemfi_isa::codec::ByteReader::new(&bytes);
        assert_eq!(gemfi_mem::decode_image(&mut r).unwrap(), img);
    }
}

/// Fault behaviours confined to a width never disturb higher bits, and
/// `Flip` is an involution.
#[test]
fn corruption_respects_width() {
    let mut rng = SplitMix64::new(0xbadb17);
    for _ in 0..2_000 {
        let value = rng.next_u64();
        let bit = rng.below(64) as u8;
        let width = [15u8, 32, 64][rng.below(3) as usize];
        let mask: u64 = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let flipped = gemfi::corrupt::apply(FaultBehavior::Flip(bit), value, width);
        assert_eq!(flipped & !mask, value & !mask, "high bits preserved");
        let back = gemfi::corrupt::apply(FaultBehavior::Flip(bit), flipped, width);
        assert_eq!(back, value, "flip is involutive");
    }
}

/// Draws an arbitrary fault spec (exercising the config text format).
fn arb_spec(rng: &mut SplitMix64) -> FaultSpec {
    let location = match rng.below(7) {
        0 => FaultLocation::IntReg { core: 0, reg: rng.below(31) as u8 },
        1 => FaultLocation::FpReg { core: 0, reg: rng.below(31) as u8 },
        2 => FaultLocation::Fetch { core: 0 },
        3 => FaultLocation::Decode { core: 0 },
        4 => FaultLocation::Execute { core: 0 },
        5 => FaultLocation::Pc { core: 0 },
        _ => FaultLocation::Mem {
            core: 0,
            target: [MemTarget::Load, MemTarget::Store, MemTarget::Any][rng.below(3) as usize],
        },
    };
    let at = rng.range_inclusive(1, 1_000_000);
    let timing = if rng.coin() { FaultTiming::Instructions(at) } else { FaultTiming::Ticks(at) };
    let behavior = match rng.below(5) {
        0 => FaultBehavior::Flip(rng.below(64) as u8),
        1 => FaultBehavior::Xor(rng.next_u64()),
        2 => FaultBehavior::Set(rng.next_u64()),
        3 => FaultBehavior::AllZero,
        _ => FaultBehavior::AllOne,
    };
    FaultSpec {
        location,
        thread: rng.below(8) as u32,
        timing,
        behavior,
        occurrences: rng.range_inclusive(1, 99),
    }
}

/// The Listing-1 text format round-trips every representable fault.
#[test]
fn fault_config_text_roundtrips() {
    let mut rng = SplitMix64::new(0x57ec);
    for _ in 0..400 {
        let specs: Vec<FaultSpec> = (0..rng.below(10)).map(|_| arb_spec(&mut rng)).collect();
        let config = FaultConfig::from_specs(specs);
        let mut text = String::new();
        for f in config.faults() {
            text.push_str(&f.to_string());
            text.push('\n');
        }
        let reparsed: FaultConfig = text.parse().expect("printed configs reparse");
        assert_eq!(reparsed, config);
    }
}
