//! Property-based tests over the workspace's codecs and core invariants.

use gemfi::{FaultConfig, FaultSpec};
use gemfi_isa::codec::Codec;
use gemfi_isa::{decode, encode, disassemble, ArchState, IntReg, RawInstr};
use proptest::prelude::*;

proptest! {
    /// Decode∘encode is the identity on every decodable instruction word —
    /// i.e., re-encoding a decoded word reproduces a word that decodes to
    /// the same instruction (the fetch-fault analysis depends on decoding
    /// being a function of the word's fields alone).
    #[test]
    fn decode_encode_is_stable(word in any::<u32>()) {
        if let Ok(instr) = decode(RawInstr(word)) {
            let reencoded = encode(&instr);
            let instr2 = decode(reencoded).expect("re-encoded instruction decodes");
            prop_assert_eq!(instr, instr2);
        }
    }

    /// The disassembler never panics, on any word.
    #[test]
    fn disassembler_is_total(word in any::<u32>()) {
        let text = disassemble(RawInstr(word));
        prop_assert!(!text.is_empty());
    }

    /// Architectural state serialization is bit-exact.
    #[test]
    fn archstate_codec_roundtrips(
        pc in any::<u64>(),
        pcbb in any::<u64>(),
        regs in proptest::collection::vec(any::<u64>(), 31),
    ) {
        let mut a = ArchState::new(pc);
        a.pcbb = pcbb;
        for (i, v) in regs.iter().enumerate() {
            a.regs.write_int(IntReg::new(i as u8).unwrap(), *v);
        }
        let b = ArchState::from_bytes(&a.to_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The zero-run image compression round-trips arbitrary images.
    #[test]
    fn image_rle_roundtrips(mut img in proptest::collection::vec(any::<u8>(), 0..4096),
                            zero_runs in proptest::collection::vec((0usize..4096, 0usize..128), 0..8)) {
        // Inject zero runs to exercise both record kinds.
        for (start, len) in zero_runs {
            let s = start.min(img.len());
            let e = (s + len).min(img.len());
            for b in &mut img[s..e] {
                *b = 0;
            }
        }
        let mut w = gemfi_isa::codec::ByteWriter::new();
        gemfi_mem::encode_image(&img, &mut w);
        let bytes = w.into_bytes();
        let mut r = gemfi_isa::codec::ByteReader::new(&bytes);
        prop_assert_eq!(gemfi_mem::decode_image(&mut r).unwrap(), img);
    }

    /// Fault behaviours confined to a width never disturb higher bits, and
    /// `Flip` is an involution.
    #[test]
    fn corruption_respects_width(value in any::<u64>(), bit in 0u8..64, width in prop::sample::select(vec![15u8, 32, 64])) {
        use gemfi::FaultBehavior;
        let mask: u64 = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let flipped = gemfi::corrupt::apply(FaultBehavior::Flip(bit), value, width);
        prop_assert_eq!(flipped & !mask, value & !mask, "high bits preserved");
        let back = gemfi::corrupt::apply(FaultBehavior::Flip(bit), flipped, width);
        prop_assert_eq!(back, value, "flip is involutive");
    }
}

/// Strategy for arbitrary fault specs (exercising the config text format).
fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    use gemfi::{FaultBehavior, FaultLocation, FaultTiming, MemTarget};
    let location = prop_oneof![
        (0u8..31).prop_map(|reg| FaultLocation::IntReg { core: 0, reg }),
        (0u8..31).prop_map(|reg| FaultLocation::FpReg { core: 0, reg }),
        Just(FaultLocation::Fetch { core: 0 }),
        Just(FaultLocation::Decode { core: 0 }),
        Just(FaultLocation::Execute { core: 0 }),
        Just(FaultLocation::Pc { core: 0 }),
        prop_oneof![Just(MemTarget::Load), Just(MemTarget::Store), Just(MemTarget::Any)]
            .prop_map(|target| FaultLocation::Mem { core: 0, target }),
    ];
    let timing = prop_oneof![
        (1u64..1_000_000).prop_map(FaultTiming::Instructions),
        (1u64..1_000_000).prop_map(FaultTiming::Ticks),
    ];
    let behavior = prop_oneof![
        (0u8..64).prop_map(FaultBehavior::Flip),
        any::<u64>().prop_map(FaultBehavior::Xor),
        any::<u64>().prop_map(FaultBehavior::Set),
        Just(FaultBehavior::AllZero),
        Just(FaultBehavior::AllOne),
    ];
    (location, timing, behavior, 0u32..8, 1u64..100).prop_map(
        |(location, timing, behavior, thread, occurrences)| FaultSpec {
            location,
            thread,
            timing,
            behavior,
            occurrences,
        },
    )
}

proptest! {
    /// The Listing-1 text format round-trips every representable fault.
    #[test]
    fn fault_config_text_roundtrips(specs in proptest::collection::vec(arb_spec(), 0..10)) {
        let config = FaultConfig::from_specs(specs);
        let mut text = String::new();
        for f in config.faults() {
            text.push_str(&f.to_string());
            text.push('\n');
        }
        let reparsed: FaultConfig = text.parse().expect("printed configs reparse");
        prop_assert_eq!(reparsed, config);
    }
}
