//! Thread-targeted fault injection end-to-end (Sec. III-A/III-C): GemFI
//! identifies threads by PCB address, tracks context switches, and a fault
//! with `Threadid:N` only ever hits the thread that called
//! `fi_activate_inst(N)`.

use gemfi::GemFiEngine;
use gemfi_asm::{Assembler, Reg};
use gemfi_cpu::CpuKind;
use gemfi_sim::{Machine, MachineConfig, RunExit};

/// Two guest threads, each summing a constant in a loop and reporting via
/// `write_word`. Thread 0 activates injection with id 0, the child with
/// id 1; both run long enough to be preempted repeatedly.
fn two_thread_program(iters: i16) -> gemfi_asm::Program {
    let mut a = Assembler::new();
    a.entry("main");

    // child(arg in a0): sum loop, then write 0x1000+sum and exit.
    a.label("child");
    a.fi_activate(1);
    a.li(Reg::R1, 0);
    a.li(Reg::R2, 0);
    a.label("c_loop");
    a.addq_lit(Reg::R1, 2, Reg::R1);
    a.addq_lit(Reg::R2, 1, Reg::R2);
    a.cmplt_lit(Reg::R2, iters as u8, Reg::R3);
    a.bne(Reg::R3, "c_loop");
    a.fi_activate(1);
    a.mov(Reg::R1, Reg::A0);
    a.pal(gemfi_isa::PalFunc::WriteWord);
    a.li(Reg::A0, 0);
    a.pal(gemfi_isa::PalFunc::Exit);

    // main: spawn child, run its own identical loop (id 0), join, exit.
    a.label("main");
    a.la(Reg::A0, "child");
    a.li(Reg::A1, 0);
    a.li(Reg::A2, 0);
    a.pal(gemfi_isa::PalFunc::ThreadSpawn);
    a.mov(Reg::V0, Reg::R20); // child tid
    a.fi_activate(0);
    a.li(Reg::R1, 0);
    a.li(Reg::R2, 0);
    a.label("m_loop");
    a.addq_lit(Reg::R1, 2, Reg::R1);
    a.addq_lit(Reg::R2, 1, Reg::R2);
    a.cmplt_lit(Reg::R2, iters as u8, Reg::R3);
    a.bne(Reg::R3, "m_loop");
    a.fi_activate(0);
    a.mov(Reg::R1, Reg::A0);
    a.pal(gemfi_isa::PalFunc::WriteWord);
    a.mov(Reg::R20, Reg::A0);
    a.pal(gemfi_isa::PalFunc::ThreadJoin);
    a.li(Reg::A0, 0);
    a.pal(gemfi_isa::PalFunc::Exit);
    a.finish().expect("assembles")
}

fn run(faults: &str, cpu: CpuKind) -> (RunExit, Vec<u64>, usize) {
    let program = two_thread_program(200);
    let config = MachineConfig {
        cpu,
        quantum: 300, // force frequent context switches
        max_ticks: 10_000_000,
        ..MachineConfig::default()
    };
    let engine = GemFiEngine::with_config(
        faults.parse().expect("valid faults"),
        gemfi::EngineConfig::default(),
    );
    let mut machine = Machine::boot(config, &program, engine).expect("boots");
    let exit = machine.run();
    let words = machine.out_words().to_vec();
    let records = machine.hooks().records().len();
    (exit, words, records)
}

#[test]
fn both_threads_interleave_and_finish_fault_free() {
    let (exit, words, _) = run("# no faults\n", CpuKind::Atomic);
    assert_eq!(exit, RunExit::Halted(0));
    // Both loops: 200 iterations × +2 = 400.
    assert_eq!(words.len(), 2);
    assert!(words.iter().all(|&w| w == 400), "{words:?}");
}

#[test]
fn fault_targets_only_the_named_thread() {
    // Corrupt r1 (the running sum) of thread id 1 (the child) only, mid-loop.
    let line = "RegisterInjectedFault Inst:300 Flip:7 Threadid:1 system.cpu0 occ:1 int 1";
    let (exit, words, records) = run(line, CpuKind::Atomic);
    assert_eq!(exit, RunExit::Halted(0));
    assert_eq!(records, 1, "the fault must fire exactly once");
    // The main thread's sum is untouched; the child's is corrupted by
    // exactly bit 7 (+-128) because r1 is rewritten additively afterwards.
    // Main writes its word before joining, so it appears first.
    assert_eq!(words.len(), 2);
    let main_sum = words[0];
    let child_sum = words[1];
    assert_eq!(main_sum, 400, "thread 0 must be untouched, got {words:?}");
    assert_ne!(child_sum, 400, "thread 1 must be corrupted, got {words:?}");
    assert!(
        child_sum == 400 + 128 || child_sum == 400 - 128,
        "single bit-7 flip expected: {child_sum}"
    );
}

#[test]
fn fault_for_thread_0_spares_the_child() {
    let line = "RegisterInjectedFault Inst:300 Flip:7 Threadid:0 system.cpu0 occ:1 int 1";
    let (exit, words, records) = run(line, CpuKind::Atomic);
    assert_eq!(exit, RunExit::Halted(0));
    assert_eq!(records, 1);
    assert_eq!(words[1], 400, "child untouched: {words:?}");
    assert_ne!(words[0], 400, "main corrupted: {words:?}");
}

#[test]
fn thread_tracking_survives_o3_and_preemption() {
    let line = "RegisterInjectedFault Inst:300 Flip:7 Threadid:1 system.cpu0 occ:1 int 1";
    let (exit, words, records) = run(line, CpuKind::O3);
    assert_eq!(exit, RunExit::Halted(0));
    assert_eq!(records, 1);
    assert_eq!(words[0], 400, "thread 0 untouched under O3: {words:?}");
}
