//! Containment-contract unit tests: hand-picked corruptions that historically
//! kill simulators — wild PCs, hostile fetch words, corrupted decode
//! selections — must land on *documented* [`Trap`] variants on **all four**
//! CPU models, never a panic and never a [`RunExit::SimError`].
//!
//! The differential fuzz harness (`crates/fuzz`) covers the same space
//! randomly; these tests pin the documented trap taxonomy for the corners.

use gemfi::{FaultBehavior, FaultConfig, FaultLocation, FaultSpec, FaultTiming, GemFiEngine};
use gemfi_asm::{Assembler, Reg};
use gemfi_cpu::CpuKind;
use gemfi_isa::Trap;
use gemfi_sim::{Machine, MachineConfig, RunExit};

const MODELS: [CpuKind; 4] = [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3];

/// A small activated workload: a short counted loop, then a clean exit.
fn body(a: &mut Assembler) {
    a.fi_activate(0);
    a.li(Reg::R1, 0);
    a.li(Reg::R2, 12);
    a.label("loop");
    a.addq_lit(Reg::R1, 1, Reg::R1);
    a.subq_lit(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, "loop");
    a.exit(0);
}

/// Runs the standard body on `cpu` with one injected fault and returns the
/// terminal exit. Panics (failing the test) if the machine does not
/// terminate within the watchdog budget.
fn run_with_fault(cpu: CpuKind, location: FaultLocation, behavior: FaultBehavior) -> RunExit {
    let mut a = Assembler::new();
    body(&mut a);
    let program = a.finish().expect("assembles");
    let faults = FaultConfig::from_specs(vec![FaultSpec {
        location,
        thread: 0,
        timing: FaultTiming::Instructions(8), // mid-loop
        behavior,
        occurrences: 1,
    }]);
    let config = MachineConfig { cpu, max_ticks: 3_000_000, ..MachineConfig::default() };
    let mut machine = Machine::boot(config, &program, GemFiEngine::new(faults)).expect("boots");
    let exit = machine.run();
    assert!(
        !matches!(exit, RunExit::SimError(_)),
        "guest-reachable fault must never surface a simulator error: {exit} ({cpu})"
    );
    exit
}

#[test]
fn odd_pc_traps_with_misaligned_access_on_every_model() {
    for cpu in MODELS {
        let exit = run_with_fault(cpu, FaultLocation::Pc { core: 0 }, FaultBehavior::Set(0x1001));
        assert!(
            matches!(exit, RunExit::Trapped(Trap::MisalignedAccess { .. })),
            "odd PC on {cpu}: got {exit}"
        );
    }
}

#[test]
fn unmapped_pc_traps_with_unmapped_access_on_every_model() {
    // 0x0200_0000 is 4-aligned but beyond the default 16 MiB of memory.
    for cpu in MODELS {
        let exit =
            run_with_fault(cpu, FaultLocation::Pc { core: 0 }, FaultBehavior::Set(0x0200_0000));
        assert!(
            matches!(exit, RunExit::Trapped(Trap::UnmappedAccess { .. })),
            "unmapped PC on {cpu}: got {exit}"
        );
    }
}

#[test]
fn huge_pc_traps_instead_of_overflowing_on_every_model() {
    // A 4-aligned PC in the top bytes of the address space: any
    // fetch-adjacent arithmetic (`pc + 4`) that widens incorrectly would
    // wrap or abort.
    for cpu in MODELS {
        let exit =
            run_with_fault(cpu, FaultLocation::Pc { core: 0 }, FaultBehavior::Set(u64::MAX - 3));
        assert!(
            matches!(exit, RunExit::Trapped(Trap::UnmappedAccess { .. })),
            "huge PC on {cpu}: got {exit}"
        );
    }
}

#[test]
fn all_ones_fetch_word_is_a_harmless_not_taken_branch_on_every_model() {
    // 0xffff_ffff has major opcode 0x3f — `bgt` with `ra = r31` (the zero
    // register), which never evaluates true: the corrupted word executes as
    // a not-taken branch and the program completes normally. The documented
    // outcome is a clean halt, on every model.
    for cpu in MODELS {
        let exit = run_with_fault(cpu, FaultLocation::Fetch { core: 0 }, FaultBehavior::AllOne);
        assert_eq!(exit, RunExit::Halted(0), "all-ones fetch on {cpu}: got {exit}");
    }
}

#[test]
fn opcode_hole_fetch_word_traps_with_illegal_instruction_on_every_model() {
    // Major opcode 0x18 is an unimplemented hole: the corrupted word cannot
    // decode and the documented containment path is the precise
    // illegal-instruction trap.
    for cpu in MODELS {
        let exit =
            run_with_fault(cpu, FaultLocation::Fetch { core: 0 }, FaultBehavior::Set(0x6000_0000));
        assert!(
            matches!(exit, RunExit::Trapped(Trap::IllegalInstruction { .. })),
            "opcode-hole fetch on {cpu}: got {exit}"
        );
    }
}

#[test]
fn all_zero_fetch_word_traps_with_illegal_pal_call_on_every_model() {
    // 0x0000_0000 decodes to `call_pal 0` (halt) — privileged, and the
    // faulted thread runs in user mode, so the documented containment path
    // is the illegal-PAL-call trap.
    for cpu in MODELS {
        let exit = run_with_fault(cpu, FaultLocation::Fetch { core: 0 }, FaultBehavior::AllZero);
        assert!(
            matches!(exit, RunExit::Trapped(Trap::IllegalPalCall { .. })),
            "all-zero fetch on {cpu}: got {exit}"
        );
    }
}

#[test]
fn corrupted_decode_selection_is_contained_on_every_model() {
    // Decode corruption rewrites the register-selection fields: the
    // instruction executes with the wrong sources/destination. Dataflow
    // changes arbitrarily, but the run must still end in a documented exit.
    for cpu in MODELS {
        for behavior in
            [FaultBehavior::AllOne, FaultBehavior::AllZero, FaultBehavior::Xor(0x03e0_0000)]
        {
            let exit = run_with_fault(cpu, FaultLocation::Decode { core: 0 }, behavior);
            assert!(
                matches!(exit, RunExit::Halted(_) | RunExit::Trapped(_) | RunExit::Watchdog),
                "decode corruption {behavior:?} on {cpu}: got {exit}"
            );
        }
    }
}
