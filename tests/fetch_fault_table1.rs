//! The paper's Table-I-driven validation of fetched-instruction faults
//! (Sec. IV-B-2): correlating the corrupted *bit position* within the
//! instruction word with the architectural outcome.
//!
//! * flips in unused (SBZ) bits → strictly correct;
//! * flips turning the opcode/function into an unimplemented encoding →
//!   illegal-instruction crash;
//! * flips in a memory instruction's displacement → wild address → crash
//!   (with high probability, here made deterministic);
//! * flips in a not-taken branch's displacement → strictly correct.

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_asm::{Assembler, Reg};
use gemfi_cpu::CpuKind;
use gemfi_isa::Trap;
use gemfi_sim::{Machine, MachineConfig, RunExit};

/// Asserts that every cached predecoded entry still agrees with the
/// pristine instruction text in memory: a faulted fetch must decode the
/// corrupted word fresh and never install it.
fn assert_no_corrupted_decode_cached<H: gemfi_cpu::FaultHooks>(
    machine: &Machine<H>,
    program: &gemfi_asm::Program,
) {
    for (i, &word) in program.text_words().iter().enumerate() {
        let pc = gemfi_asm::TEXT_BASE + (i as u64) * 4;
        if let Some(cached) = machine.mem().peek_predecoded(pc) {
            let clean = gemfi_isa::decode(gemfi_isa::RawInstr(word)).expect("text decodes");
            assert_eq!(cached, clean, "corrupted decode cached at {pc:#x}");
        }
    }
}

/// One run of the Table-I scenario with the predecode cache and the hook
/// elision fast path each on or off.
fn run_with_fetch_flip_mode(
    build_body: &impl Fn(&mut Assembler),
    instr_index: u64,
    bit: u8,
    predecode: bool,
    elide: bool,
) -> (RunExit, Vec<gemfi::InjectionRecord>) {
    let mut a = Assembler::new();
    a.fi_activate(0);
    build_body(&mut a);
    a.fi_activate(0);
    a.exit(0);
    let program = a.finish().expect("assembles");
    let faults = FaultConfig::from_specs(vec![gemfi::FaultSpec {
        location: gemfi::FaultLocation::Fetch { core: 0 },
        thread: 0,
        timing: gemfi::FaultTiming::Instructions(instr_index),
        behavior: gemfi::FaultBehavior::Flip(bit),
        occurrences: 1,
    }]);
    let mut config = MachineConfig {
        cpu: CpuKind::Atomic,
        max_ticks: 3_000_000,
        elide,
        ..MachineConfig::default()
    };
    config.mem.predecode = predecode;
    let mut machine = Machine::boot(config, &program, GemFiEngine::new(faults)).expect("boots");
    let exit = machine.run();
    assert_no_corrupted_decode_cached(&machine, &program);
    (exit, machine.hooks().records().to_vec())
}

/// Builds a machine around a tiny kernel whose N-th fetched instruction is
/// known, with a fetch-stage fault flipping `bit` of that instruction.
///
/// Every scenario runs four times — predecode cache and hook elision each
/// enabled and disabled — and must manifest bit-for-bit identically: same
/// exit, same injection records. The cache fast path is bypassed when an
/// armed fault corrupts the fetched word, and the elided sprint stops short
/// of any event a pending fault could reach, so Table-I semantics cannot
/// depend on either fast path.
fn run_with_fetch_flip(
    build_body: impl Fn(&mut Assembler),
    instr_index: u64,
    bit: u8,
) -> (RunExit, Vec<gemfi::InjectionRecord>) {
    let reference = run_with_fetch_flip_mode(&build_body, instr_index, bit, true, true);
    for (predecode, elide) in [(true, false), (false, true), (false, false)] {
        let other = run_with_fetch_flip_mode(&build_body, instr_index, bit, predecode, elide);
        assert_eq!(
            reference.0, other.0,
            "fetch fault manifests differently (predecode={predecode}, elide={elide})"
        );
        assert_eq!(
            reference.1, other.1,
            "injection records differ (predecode={predecode}, elide={elide})"
        );
    }
    reference
}

#[test]
fn sbz_bit_flip_is_strictly_correct() {
    // Body: one register-mode operate; bit 13 is SBZ in the Operate format.
    let (exit, records) = run_with_fetch_flip(
        |a| {
            a.addq(Reg::R1, Reg::R2, Reg::R3);
        },
        1,
        13,
    );
    assert_eq!(exit, RunExit::Halted(0), "SBZ corruption must be harmless");
    assert_eq!(records.len(), 1);
}

#[test]
fn opcode_flip_to_hole_crashes_with_illegal_instruction() {
    // addq has major opcode 0x10; flipping opcode bit 31 gives 0x30 + ...
    // flipping bit 27 gives 0x18 — a hole → illegal instruction, exactly
    // the paper's "terminated their execution due to illegal instruction".
    let (exit, _) = run_with_fetch_flip(
        |a| {
            a.addq(Reg::R1, Reg::R2, Reg::R3);
        },
        1,
        27,
    );
    assert!(matches!(exit, RunExit::Trapped(Trap::IllegalInstruction { .. })), "got {exit}");
}

#[test]
fn memory_displacement_flip_crashes_on_wild_address() {
    // A load from a valid buffer; flipping displacement bit 14 adds 16 KiB
    // to the effective address of an 8-byte-aligned access near the data
    // segment — leaving mapped memory is not guaranteed, so point the base
    // at the very top of memory where +16K is guaranteed unmapped.
    let (exit, _) = run_with_fetch_flip(
        |a| {
            // base = mem_top - 8 (the default machine has 16 MiB).
            a.li(Reg::R1, (16 << 20) - 8);
            a.ldq(Reg::R2, 0, Reg::R1);
        },
        3, // li expands to ldah+lda; the ldq is the 3rd fetched instruction
        14,
    );
    assert!(matches!(exit, RunExit::Trapped(Trap::UnmappedAccess { .. })), "got {exit}");
}

#[test]
fn not_taken_branch_displacement_flip_is_strictly_correct() {
    // "when inserting a fault into the displacement bits of the instruction
    // and the branch is not taken the simulation statistics were the same
    // and the end-result was categorized as strict correct".
    let (exit, records) = run_with_fetch_flip(
        |a| {
            a.li(Reg::R1, 1); // non-zero → beq not taken
            a.beq(Reg::R1, "away");
            a.nop();
            a.label("away");
        },
        2, // the beq
        5, // displacement bit
    );
    assert_eq!(exit, RunExit::Halted(0));
    assert_eq!(records.len(), 1);
}

#[test]
fn fetch_flip_fires_even_on_a_warm_cache_entry() {
    // The faulted instruction sits in a loop and has been fetched (and
    // predecoded) twice before the fault arms. If the cache fast path were
    // consulted for the corrupted fetch, the stale clean decode would
    // execute and the loop would finish; the trap proves the bypass.
    let (exit, records) = run_with_fetch_flip(
        |a| {
            a.li(Reg::R1, 0);
            a.li(Reg::R2, 8);
            a.label("loop");
            a.addq_lit(Reg::R1, 1, Reg::R1);
            a.subq(Reg::R2, Reg::R1, Reg::R3);
            a.bgt(Reg::R3, "loop");
        },
        9,  // an integer operate in the third loop iteration
        27, // opcode 0x10 -> 0x18, an unimplemented hole
    );
    assert!(matches!(exit, RunExit::Trapped(Trap::IllegalInstruction { .. })), "got {exit}");
    assert_eq!(records.len(), 1);
}

#[test]
fn register_selector_flip_changes_dataflow() {
    // Flipping an Ra-field bit of `addq r1, r2, r3` reads a different
    // source register: the result changes but execution survives. Decode
    // faults corrupt the word after fetch, so the same bypass rule applies:
    // identical behavior with the predecode cache and elision on or off.
    for (predecode, elide) in [(true, true), (true, false), (false, true), (false, false)] {
        let mut a = Assembler::new();
        a.fi_activate(0);
        a.li(Reg::R1, 10);
        a.li(Reg::R2, 1);
        a.li(Reg::R3, 77); // the register the flip redirects to (r1^r3 bit 1 -> r3)
        a.addq(Reg::R1, Reg::R2, Reg::R4);
        a.fi_activate(0);
        a.mov(Reg::R4, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let program = a.finish().expect("assembles");
        let faults = FaultConfig::from_specs(vec![gemfi::FaultSpec {
            location: gemfi::FaultLocation::Decode { core: 0 },
            thread: 0,
            timing: gemfi::FaultTiming::Instructions(4), // the addq
            behavior: gemfi::FaultBehavior::Flip(11),    // Ra selector bit 1: r1 -> r3
            occurrences: 1,
        }]);
        let mut config = MachineConfig { elide, ..MachineConfig::default() };
        config.mem.predecode = predecode;
        let mut machine = Machine::boot(config, &program, GemFiEngine::new(faults)).expect("boots");
        let exit = machine.run();
        assert_no_corrupted_decode_cached(&machine, &program);
        // r4 = r3 + r2 = 78 instead of r1 + r2 = 11.
        assert_eq!(
            exit,
            RunExit::Halted(78),
            "decode fault must redirect the source register (predecode={predecode}, elide={elide})"
        );
    }
}
