//! Kill-based campaign resume: interrupt a NoW campaign mid-flight (worker
//! panics plus a chaos halt standing in for `kill -9` on the driver), then
//! resume from the journal and assert every experiment completes exactly
//! once with the same outcomes an uninterrupted serial run produces.

use gemfi::Outcome;
use gemfi_campaign::now::run_campaign_now;
use gemfi_campaign::{
    prepare_workload, run_experiment, ChaosConfig, FaultSampler, Journal, JournalEvent, NowConfig,
    OutcomeTable, RunnerConfig,
};
use gemfi_cpu::CpuKind;
use gemfi_workloads::pi::MonteCarloPi;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::time::Duration;

const EXPERIMENTS: usize = 16;

fn campaign(
) -> (MonteCarloPi, gemfi_campaign::PreparedWorkload, Vec<gemfi::FaultSpec>, RunnerConfig) {
    let w = MonteCarloPi { points: 60, init_spins: 40, ..MonteCarloPi::default() };
    let p = prepare_workload(&w).unwrap();
    let mut sampler = FaultSampler::new(0xFEED, p.stage_events, 0, 0);
    let specs: Vec<_> = (0..EXPERIMENTS).map(|_| sampler.sample_any()).collect();
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    (w, p, specs, runner)
}

fn share(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gemfi-resume-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &PathBuf) -> NowConfig {
    NowConfig {
        lease: Duration::from_secs(30),
        retry_backoff: Duration::from_millis(1),
        ..NowConfig::new(2, 2, dir)
    }
}

#[test]
fn interrupted_campaign_resumes_and_completes_every_experiment_exactly_once() {
    let (w, p, specs, runner) = campaign();

    // The ground truth: an uninterrupted serial pass over the same specs.
    let serial: Vec<Outcome> =
        specs.iter().map(|s| run_experiment(&p, &w, *s, &runner).outcome).collect();
    let serial_table: OutcomeTable = serial.iter().copied().collect();

    // Phase 1: the campaign dies mid-flight. One worker panics on its first
    // try at experiment 5 (a crashed workstation), and the whole driver
    // halts after 6 completions — past the 25% mark of 16, nowhere near
    // done.
    let dir = share("kill");
    let mut cfg = config(&dir);
    cfg.chaos = ChaosConfig { panic_on: vec![(5, 1)], halt_after: Some(6) };
    let err = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Interrupted, "{err}");

    let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
    let done_before = events.iter().filter(|e| matches!(e, JournalEvent::Done { .. })).count();
    assert!(done_before >= 6, "at least 25% finished before the kill: {done_before}");
    assert!(done_before < EXPERIMENTS, "the campaign really was interrupted");
    assert!(
        events.iter().any(|e| matches!(e, JournalEvent::AttemptFailed { exp: 5, attempt: 1, .. })),
        "the panicked attempt is journaled"
    );

    // Phase 2: resume. Only the remainder runs; the merged table matches
    // the serial ground truth class for class.
    let mut cfg = config(&dir);
    cfg.resume = true;
    let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();

    assert_eq!(results.len(), EXPERIMENTS);
    assert_eq!(report.resumed, done_before, "finished work was replayed, not re-run");
    for o in Outcome::ALL {
        assert_eq!(table.count(o), serial_table.count(o), "{o}");
    }
    let outcomes: Vec<Outcome> = results.iter().map(|r| r.outcome).collect();
    assert_eq!(outcomes, serial, "per-experiment outcomes identical to serial");
    assert_eq!(table.count(Outcome::Infrastructure), 0, "the panicked experiment was retried");

    // Exactly once: the union of both journals' Done events covers every
    // experiment exactly one time.
    let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
    let mut done_per_exp = vec![0usize; EXPERIMENTS];
    for e in &events {
        if let JournalEvent::Done { exp, .. } = e {
            done_per_exp[*exp as usize] += 1;
        }
    }
    assert_eq!(done_per_exp, vec![1; EXPERIMENTS], "every experiment done exactly once");
    // And every result file is spooled.
    for i in 0..EXPERIMENTS {
        assert!(dir.join(format!("exp{i:05}.result")).exists(), "result {i} spooled");
        assert!(!dir.join(format!("exp{i:05}.lease")).exists(), "lease {i} released");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_interruptions_still_converge() {
    let (w, p, specs, runner) = campaign();
    let serial_table: OutcomeTable =
        specs.iter().map(|s| run_experiment(&p, &w, *s, &runner).outcome).collect();

    let dir = share("repeat");
    let mut cfg = config(&dir);
    cfg.chaos.halt_after = Some(4);
    assert_eq!(
        run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err().kind(),
        ErrorKind::Interrupted
    );
    // Second leg also dies, with a fresh panic thrown in.
    let mut cfg = config(&dir);
    cfg.resume = true;
    cfg.chaos = ChaosConfig { panic_on: vec![(9, 1)], halt_after: Some(4) };
    assert_eq!(
        run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err().kind(),
        ErrorKind::Interrupted
    );
    // Third leg finishes the job.
    let mut cfg = config(&dir);
    cfg.resume = true;
    let (table, results, _) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
    assert_eq!(results.len(), EXPERIMENTS);
    for o in Outcome::ALL {
        assert_eq!(table.count(o), serial_table.count(o), "{o}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
