//! Differential test matrix for the security-style fault behaviors —
//! instruction skip, opcode replacement, and branch-condition inversion —
//! pinned across all four CPU models × the predecode knob × the
//! dormancy-elision knob.
//!
//! Every spec is built as a Listing-1 text line and parsed through
//! [`FaultConfig`], proving each behavior reachable from `gemfi_run` input
//! syntax. Architectural effects are checked differentially against a
//! fault-free golden run of the same program on the same configuration.

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_asm::{Assembler, Program, Reg};
use gemfi_cpu::CpuKind;
use gemfi_sim::{Machine, MachineConfig, RunExit};

const MODELS: [CpuKind; 4] = [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3];

/// Every (cpu, predecode, elide) corner of the machine space.
fn machine_matrix() -> Vec<MachineConfig> {
    let mut configs = Vec::new();
    for cpu in MODELS {
        for predecode in [false, true] {
            for elide in [false, true] {
                let mut config =
                    MachineConfig { cpu, elide, max_ticks: 3_000_000, ..MachineConfig::default() };
                config.mem.predecode = predecode;
                configs.push(config);
            }
        }
    }
    configs
}

fn label(config: &MachineConfig) -> String {
    format!("{} predecode:{} elide:{}", config.cpu, config.mem.predecode, config.elide)
}

fn run(config: MachineConfig, program: &Program, lines: &str) -> (RunExit, Vec<u64>) {
    let faults: FaultConfig = lines.parse().unwrap_or_else(|e| panic!("bad spec {lines:?}: {e:?}"));
    let mut machine =
        Machine::boot(config, program, GemFiEngine::new(faults)).expect("machine boots");
    // A replaced opcode can decode into the checkpoint-request pseudo-op;
    // step over a bounded number of those, as a campaign driver would.
    let mut exit = machine.run();
    for _ in 0..16 {
        if exit != RunExit::CheckpointRequest {
            break;
        }
        exit = machine.run();
    }
    assert!(
        !matches!(exit, RunExit::SimError(_)),
        "security fault must never surface a simulator error on {}: {exit}",
        label(&config)
    );
    (exit, machine.out_words().to_vec())
}

/// An activated counting program: R1 is incremented `incs` times by a run
/// of identical instructions, then published. Skipping any one of the
/// increments — wherever the timing window lands inside the run — loses
/// exactly 1 from the output, which makes the assertion robust to
/// per-model differences in how soon after arming the fault fires.
fn counting_program(incs: usize) -> Program {
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.li(Reg::R1, 0);
    for _ in 0..incs {
        a.addq_lit(Reg::R1, 1, Reg::R1);
    }
    a.mov(Reg::R1, Reg::A0);
    a.write_word();
    a.exit(0);
    a.finish().expect("assembles")
}

#[test]
fn skip_advances_pc_without_architectural_side_effects() {
    let program = counting_program(10);
    // Inst:6 lands mid-run on every model and counting convention.
    let spec = "FetchedInstructionInjectedFault Inst:6 Skip Threadid:0 system.cpu0 occ:1";
    for config in machine_matrix() {
        let (exit, clean) = run(config, &program, "");
        assert_eq!((exit, clean), (RunExit::Halted(0), vec![10]), "golden on {}", label(&config));
        let (exit, words) = run(config, &program, spec);
        assert_eq!(exit, RunExit::Halted(0), "skip stays contained on {}", label(&config));
        // Exactly one increment vanished: the PC advanced over the skipped
        // instruction (the rest of the run executed) and the destination
        // register kept its old value (no side effects).
        assert_eq!(words, vec![9], "exactly one skipped increment on {}", label(&config));
    }
}

#[test]
fn skipping_every_instruction_still_terminates() {
    // A permanent skip erases the whole remaining program, including the
    // exit PAL call: the machine must fall to a classifiable exit (trap at
    // the program's edge or the watchdog), never a panic or sim error.
    let program = counting_program(4);
    let spec = "FetchedInstructionInjectedFault Inst:1 Skip Threadid:0 system.cpu0 occ:perm";
    for config in machine_matrix() {
        let (exit, _) = run(config, &program, spec);
        assert!(
            matches!(exit, RunExit::Trapped(_) | RunExit::Halted(_) | RunExit::Watchdog),
            "permanent skip must classify on {}: {exit}",
            label(&config)
        );
    }
}

#[test]
fn opcode_replacement_decodes_or_traps_for_every_opcode_value() {
    let program = counting_program(10);
    let mut trapped = 0u32;
    let mut halted = 0u32;
    for opcode in 0..64u32 {
        let spec = format!(
            "FetchedInstructionInjectedFault Inst:6 Opcode:{opcode:#x} Threadid:0 \
             system.cpu0 occ:1"
        );
        for config in machine_matrix() {
            let (exit, _) = run(config, &program, &spec);
            match exit {
                RunExit::Trapped(_) => trapped += 1,
                RunExit::Halted(_) => halted += 1,
                RunExit::Watchdog => {}
                other => {
                    panic!("opcode {opcode:#x} must decode or trap on {}: {other}", label(&config))
                }
            }
        }
    }
    // The sweep must exercise both sides of decodes-or-traps: some
    // replacement opcodes are illegal (documented trap), others decode
    // into live instructions and run to completion.
    assert!(trapped > 0, "no replacement opcode trapped");
    assert!(halted > 0, "no replacement opcode decoded and ran");
}

#[test]
fn opcode_replacement_preserves_operand_fields() {
    // Replacing an opcode with itself is the identity: the operand fields
    // were untouched, so the run must match golden bit-for-bit.
    let program = counting_program(10);
    // addq_lit encodes under opcode 0x10 (INTA operate format).
    let spec = "FetchedInstructionInjectedFault Inst:6 Opcode:0x10 Threadid:0 system.cpu0 occ:1";
    for config in machine_matrix() {
        let (exit, words) = run(config, &program, spec);
        assert_eq!(
            (exit, words),
            (RunExit::Halted(0), vec![10]),
            "identity opcode replacement on {}",
            label(&config)
        );
    }
}

#[test]
fn invert_branch_flips_exactly_the_targeted_branch() {
    // Two independent never-taken paths guarded by always-taken branches.
    // Inverting only the first (occ:1) executes the first guarded block
    // and must leave the second branch alone.
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.li(Reg::R1, 0);
    a.li(Reg::R2, 0);
    a.li(Reg::R3, 0);
    a.beq(Reg::R3, "a");
    a.addq_lit(Reg::R1, 1, Reg::R1);
    a.label("a");
    a.beq(Reg::R3, "b");
    a.addq_lit(Reg::R2, 1, Reg::R2);
    a.label("b");
    a.mov(Reg::R1, Reg::A0);
    a.write_word();
    a.mov(Reg::R2, Reg::A0);
    a.write_word();
    a.exit(0);
    let program = a.finish().expect("assembles");
    let spec = "ExecutionStageInjectedFault Inst:1 InvertBranch Threadid:0 system.cpu0 occ:1";
    for config in machine_matrix() {
        let (exit, clean) = run(config, &program, "");
        assert_eq!((exit, clean), (RunExit::Halted(0), vec![0, 0]), "golden on {}", label(&config));
        let (exit, words) = run(config, &program, spec);
        assert_eq!(exit, RunExit::Halted(0), "inversion stays contained on {}", label(&config));
        assert_eq!(
            words,
            vec![1, 0],
            "first branch inverted, second untouched, on {}",
            label(&config)
        );
    }
}

#[test]
fn permanent_inversion_flips_every_branch() {
    // A 3-iteration counted loop under permanent inversion: the back-edge
    // is never taken, so exactly one iteration runs and the counter
    // publishes 2 instead of 0.
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.li(Reg::R2, 3);
    a.label("loop");
    a.subq_lit(Reg::R2, 1, Reg::R2);
    a.bne(Reg::R2, "loop");
    a.mov(Reg::R2, Reg::A0);
    a.write_word();
    a.exit(0);
    let program = a.finish().expect("assembles");
    let spec = "ExecutionStageInjectedFault Inst:1 InvertBranch Threadid:0 system.cpu0 occ:perm";
    for config in machine_matrix() {
        let (exit, clean) = run(config, &program, "");
        assert_eq!((exit, clean), (RunExit::Halted(0), vec![0]), "golden on {}", label(&config));
        let (exit, words) = run(config, &program, spec);
        assert_eq!(exit, RunExit::Halted(0), "inversion stays contained on {}", label(&config));
        assert_eq!(words, vec![2], "back-edge never taken on {}", label(&config));
    }
}
