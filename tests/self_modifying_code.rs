//! Self-modifying-code regression test for the predecoded-instruction
//! cache.
//!
//! The guest executes an instruction (warming the predecode cache with its
//! decode), overwrites that instruction's word in memory, and executes the
//! same address again. The patched semantics must take effect: stores to
//! cached code lines invalidate the stale entry. Without invalidation the
//! warm cache would keep serving the old decode and the run would produce
//! the unpatched result.
//!
//! The same invalidation rule keeps the kernel's boot stub coherent — the
//! machine writes its spin stub into the kernel region at runtime through
//! `write_u32_functional`, which flows through the identical store path
//! exercised here.

use gemfi_asm::{Assembler, Reg};
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_isa::{IntReg, Operand};
use gemfi_sim::{Machine, MachineConfig, RunExit};

/// The replacement word the guest stores over `patchme`:
/// `addq r1, #100, r1` instead of the assembled `addq r1, #1, r1`.
fn patched_word() -> u32 {
    gemfi_isa::encode(&gemfi_isa::Instr::IntOp {
        func: gemfi_isa::opcode::IntFunc::Addq,
        ra: Reg::R1,
        rb: Operand::Lit(100),
        rc: Reg::R1,
    })
    .0
}

/// Two passes over `patchme`; pass 1 executes the original `r1 += 1` and
/// then patches the word to `r1 += 100`, pass 2 executes the patched form.
/// Exit code 101 proves the patch took architectural effect; 2 would mean a
/// stale cached decode survived the store.
fn smc_program() -> gemfi_asm::Program {
    let mut a = Assembler::new();
    a.la(Reg::R16, "patchme");
    a.li(Reg::R17, patched_word() as i64);
    a.li(Reg::R1, 0);
    a.li(Reg::R10, 0); // pass counter
    a.li(Reg::R11, 2);
    a.label("pass");
    a.label("patchme");
    a.addq_lit(Reg::R1, 1, Reg::R1);
    a.stl(Reg::R17, 0, Reg::R16);
    a.addq_lit(Reg::R10, 1, Reg::R10);
    a.cmplt(Reg::R10, Reg::R11, Reg::R12);
    a.bne(Reg::R12, "pass");
    a.mov(Reg::R1, Reg::A0);
    a.pal(gemfi_isa::PalFunc::Exit);
    a.finish().expect("assembles")
}

struct SmcRun {
    exit: RunExit,
    tick: u64,
    instret: u64,
    stats: gemfi_mem::MemStats,
}

fn run(cpu: CpuKind, predecode: bool, superblock: bool) -> SmcRun {
    let mut config = MachineConfig { cpu, ..MachineConfig::default() };
    config.mem.predecode = predecode;
    config.mem.superblock = superblock;
    let mut m = Machine::boot(config, &smc_program(), NoopHooks).expect("boots");
    let exit = m.run();
    SmcRun { exit, tick: m.tick(), instret: m.instret(), stats: m.mem().stats() }
}

#[test]
fn patched_instruction_takes_effect_under_the_cache() {
    for cpu in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
        // Superblocks off here: on the atomic model they would absorb the
        // dormant loop and starve the predecode counters this test pins
        // (the superblock axis has its own test below).
        let on = run(cpu, true, false);
        let off = run(cpu, false, false);
        assert_eq!(on.exit, RunExit::Halted(101), "{cpu}: stale decode served from the cache");
        assert_eq!(on.exit, off.exit, "{cpu}: predecode cache changed SMC behavior");
        assert_eq!(on.tick, off.tick, "{cpu}: predecode cache changed SMC timing");
        // The guest's store really did evict a warm entry (the patch runs
        // twice; at least the first store hits the cached `patchme` line).
        let stats = on.stats.predecode;
        assert!(stats.invalidations > 0, "{cpu}: store did not invalidate cached decode");
        assert!(stats.hits > 0, "{cpu}: cache never warmed");
    }
}

#[test]
fn patched_instruction_takes_effect_inside_a_translated_superblock() {
    // On the atomic model the whole patch loop is one straight-line region,
    // so the guest's store lands *inside* the superblock currently
    // executing: the block must stop after that store commits and the
    // retranslation must pick up the patched bytes. Bit-identical exit,
    // tick count, and instret with the knob on and off.
    for cpu in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
        let on = run(cpu, true, true);
        let off = run(cpu, true, false);
        assert_eq!(on.exit, RunExit::Halted(101), "{cpu}: stale micro-op executed");
        assert_eq!(on.exit, off.exit, "{cpu}: superblocks changed SMC behavior");
        assert_eq!(on.tick, off.tick, "{cpu}: superblocks changed SMC timing");
        assert_eq!(on.instret, off.instret, "{cpu}: superblocks changed instruction count");
        if cpu == CpuKind::Atomic {
            let s = on.stats.superblock;
            assert!(s.uops_executed > 0, "the dormant loop must run through superblocks");
            assert!(s.invalidations > 0, "the patch store must drop the stale translation");
        } else {
            assert_eq!(
                on.stats.superblock,
                gemfi_isa::SuperblockStats::default(),
                "{cpu}: only the atomic model may execute superblocks"
            );
        }
    }
}

/// The IntReg alias used by the builder and the `Reg` consts agree — guard
/// against the hand-encoded patch word drifting from the assembler's
/// encoding of the same instruction.
#[test]
fn patch_word_matches_assembler_encoding() {
    let mut a = Assembler::new();
    a.addq_lit(IntReg::new(1).unwrap(), 100, IntReg::new(1).unwrap());
    a.pal(gemfi_isa::PalFunc::Exit);
    let p = a.finish().expect("assembles");
    assert_eq!(p.text_words()[0], patched_word());
}
