//! Differential test matrix for the memory-hierarchy fault models: cache
//! data-array, tag-array, and whole-way lesions, transient through
//! stuck-at, across all four CPU models.
//!
//! Every spec is built as a Listing-1 text line and parsed through
//! [`FaultConfig`], so each scenario also proves the model is reachable
//! from `gemfi_run` input syntax. Each run is compared against a fault-free
//! golden execution of the same program on the same model: the corrupted
//! words must be exactly the lesion's bit transform of the golden words,
//! and every run must land on a classifiable exit — never a simulator
//! error.

use gemfi::{FaultConfig, GemFiEngine};
use gemfi_asm::{Assembler, Program, Reg};
use gemfi_cpu::CpuKind;
use gemfi_sim::{Machine, MachineConfig, RunExit};

const MODELS: [CpuKind; 4] = [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3];

/// Default L1 geometry (`MemConfig::default()`): 256 sets × 2 ways, 64-byte
/// lines. Tests compute lesion coordinates from symbol addresses with this.
const L1_SETS: u64 = 256;
const LINE: u64 = 64;

/// A word pattern that is visibly damaged by any of the masks used below.
const SENTINEL: u64 = 0x1122_3344_5566_7788;

fn l1_set_of(addr: u64) -> u64 {
    (addr / LINE) % L1_SETS
}

/// Boots `program` on `cpu` with faults parsed from Listing-1 `lines`,
/// runs to termination, and returns the exit plus published output words.
/// Asserts the containment contract on the way out.
fn run(cpu: CpuKind, program: &Program, lines: &str) -> (RunExit, Vec<u64>) {
    let faults: FaultConfig = lines.parse().unwrap_or_else(|e| panic!("bad spec {lines:?}: {e:?}"));
    let config = MachineConfig { cpu, max_ticks: 3_000_000, ..MachineConfig::default() };
    let mut machine =
        Machine::boot(config, program, GemFiEngine::new(faults)).expect("machine boots");
    let exit = machine.run();
    assert!(
        !matches!(exit, RunExit::SimError(_)),
        "cache fault must never surface a simulator error on {cpu}: {exit}"
    );
    (exit, machine.out_words().to_vec())
}

fn golden(cpu: CpuKind, program: &Program) -> Vec<u64> {
    let (exit, words) = run(cpu, program, "");
    assert_eq!(exit, RunExit::Halted(0), "golden run halts cleanly on {cpu}");
    words
}

/// An activated program that loads `buf` `loads` times, publishing each
/// value. The PAL publish after every load serializes the O3 pipeline, so
/// a lesion planted at load *k*'s instruction boundary is live for load
/// *k + 1* on every model.
fn repeated_load_program(loads: usize) -> Program {
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.la(Reg::R7, "buf");
    for _ in 0..loads {
        a.ldq(Reg::R1, 0, Reg::R7);
        a.mov(Reg::R1, Reg::A0);
        a.write_word();
    }
    a.exit(0);
    a.dsym("buf");
    a.data_u64(&[SENTINEL]);
    a.finish().expect("assembles")
}

#[test]
fn transient_l1d_data_lesion_corrupts_one_read_then_heals() {
    let program = repeated_load_program(4);
    let buf = program.symbol("buf").expect("buf symbol");
    // Fires on the first load (which passes through clean and plants the
    // lesion); occ:1 burns the lesion on the second load.
    let spec = format!(
        "CacheInjectedFault Inst:1 Flip:3 Threadid:0 system.cpu0 occ:1 \
         l1d data set:{} way:0 mbu:single",
        l1_set_of(buf)
    );
    for cpu in MODELS {
        let clean = golden(cpu, &program);
        assert_eq!(clean, vec![SENTINEL; 4], "golden on {cpu}");
        let (exit, words) = run(cpu, &program, &spec);
        assert_eq!(exit, RunExit::Halted(0), "contained on {cpu}");
        assert_eq!(
            words,
            vec![SENTINEL, SENTINEL ^ 0x8, SENTINEL, SENTINEL],
            "exactly one flipped read on {cpu}"
        );
    }
}

#[test]
fn stuck_at_l1d_data_lesion_corrupts_every_read() {
    let program = repeated_load_program(4);
    let buf = program.symbol("buf").expect("buf symbol");
    // occ:perm = stuck-at cell; the row-0 MBU pattern pins the low byte.
    let spec = format!(
        "CacheInjectedFault Inst:1 AllOne Threadid:0 system.cpu0 occ:perm \
         l1d data set:{} way:0 mbu:row:0",
        l1_set_of(buf)
    );
    for cpu in MODELS {
        let (exit, words) = run(cpu, &program, &spec);
        assert_eq!(exit, RunExit::Halted(0), "contained on {cpu}");
        let stuck = SENTINEL | 0xff;
        assert_eq!(
            words,
            vec![SENTINEL, stuck, stuck, stuck],
            "every read after the plant is stuck on {cpu}"
        );
    }
}

#[test]
fn tag_lesion_on_dirty_line_serves_wrong_data_not_abort() {
    // Store a sentinel (dirtying the line), then read it back through a
    // corrupted tag: the slot answers for the aliased line, so the read
    // returns the alias's memory (zeros) — wrong data, never a sim abort.
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.la(Reg::R7, "buf");
    a.li(Reg::R1, 0x7357);
    a.stq(Reg::R1, 0, Reg::R7);
    // Serializing publish between store and load: O3 would otherwise
    // forward the store's value from its queue and never walk the
    // (freshly lesioned) cache.
    a.mov(Reg::R1, Reg::A0);
    a.write_word();
    a.ldq(Reg::R2, 0, Reg::R7);
    a.mov(Reg::R2, Reg::A0);
    a.write_word();
    a.exit(0);
    a.dsym("buf");
    a.data_u64(&[0]);
    let program = a.finish().expect("assembles");
    let buf = program.symbol("buf").expect("buf symbol");
    // Flip:0 aliases the tag to a mapped, untouched (all-zero) line.
    let spec = format!(
        "CacheInjectedFault Inst:1 Flip:0 Threadid:0 system.cpu0 occ:perm \
         l1d tag set:{} way:0",
        l1_set_of(buf)
    );
    for cpu in MODELS {
        assert_eq!(golden(cpu, &program), vec![0x7357, 0x7357], "golden on {cpu}");
        let (exit, words) = run(cpu, &program, &spec);
        assert_eq!(exit, RunExit::Halted(0), "wrong data, not an abort, on {cpu}");
        assert_eq!(words, vec![0x7357, 0], "read served the aliased line on {cpu}");
    }
}

#[test]
fn way_lesion_covers_every_set() {
    // Two loads landing in *different* sets: a single-line lesion could
    // only hit one; the way-level lesion corrupts both.
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.la(Reg::R7, "buf");
    for disp in [0i16, 64] {
        a.ldq(Reg::R1, disp, Reg::R7);
        a.mov(Reg::R1, Reg::A0);
        a.write_word();
    }
    // Re-read both lines: the stuck-at way keeps corrupting.
    for disp in [0i16, 64] {
        a.ldq(Reg::R1, disp, Reg::R7);
        a.mov(Reg::R1, Reg::A0);
        a.write_word();
    }
    a.exit(0);
    a.dsym("buf");
    a.data_u64(&[SENTINEL; 16]);
    let program = a.finish().expect("assembles");
    let spec = "CacheInjectedFault Inst:1 AllZero Threadid:0 system.cpu0 occ:perm \
                l1d way:0 mbu:single";
    for cpu in MODELS {
        assert_eq!(golden(cpu, &program), vec![SENTINEL; 4], "golden on {cpu}");
        let (exit, words) = run(cpu, &program, spec);
        assert_eq!(exit, RunExit::Halted(0), "contained on {cpu}");
        // The first load plants the lesion after it completes; cold fills
        // land in way 0, so every later read through the way reads zero.
        assert_eq!(words, vec![SENTINEL, 0, 0, 0], "whole way stuck at zero on {cpu}");
    }
}

#[test]
fn l2_data_lesion_applies_only_on_l1_misses() {
    // Three lines with the same L1D set (16 KiB stride) but distinct L2
    // sets: loading the third evicts the first from the 2-way L1, so
    // re-reading the first goes through the lesioned L2 slot.
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.la(Reg::R7, "buf");
    a.lda(Reg::R5, 16384, Reg::R7);
    a.lda(Reg::R6, 16384, Reg::R5);
    for base in [Reg::R7, Reg::R5, Reg::R6, Reg::R7] {
        a.ldq(Reg::R1, 0, base);
        a.mov(Reg::R1, Reg::A0);
        a.write_word();
    }
    a.exit(0);
    a.dsym("buf");
    a.data_u64(&[SENTINEL]);
    a.zeros(2 * 16384);
    let program = a.finish().expect("assembles");
    let buf = program.symbol("buf").expect("buf symbol");
    let l2_set = (buf / LINE) % 2048;
    let spec = format!(
        "CacheInjectedFault Inst:1 Flip:7 Threadid:0 system.cpu0 occ:perm \
         l2 data set:{l2_set} way:0 mbu:single"
    );
    for cpu in MODELS {
        assert_eq!(golden(cpu, &program), vec![SENTINEL, 0, 0, SENTINEL], "golden on {cpu}");
        let (exit, words) = run(cpu, &program, &spec);
        assert_eq!(exit, RunExit::Halted(0), "contained on {cpu}");
        assert_eq!(
            words,
            vec![SENTINEL, 0, 0, SENTINEL ^ 0x80],
            "only the L1-missing re-read is corrupted on {cpu}"
        );
    }
}

#[test]
fn l1i_data_lesion_stays_contained_on_every_model() {
    // Damage the code's own cache line (set of TEXT_BASE, way 0): later
    // fetches serve zeroed instruction words. Whatever those decode to,
    // the run must end on a classifiable exit — trap, halt, or watchdog —
    // with or without the predecode cache.
    let mut a = Assembler::new();
    a.fi_activate(0);
    a.li(Reg::R1, 1);
    for _ in 0..24 {
        a.addq_lit(Reg::R1, 1, Reg::R1);
    }
    a.exit(0);
    let program = a.finish().expect("assembles");
    let spec = "CacheInjectedFault Inst:2 AllZero Threadid:0 system.cpu0 occ:perm \
                l1i data set:0 way:0 mbu:single";
    for cpu in MODELS {
        for predecode in [false, true] {
            let mut config =
                MachineConfig { cpu, max_ticks: 3_000_000, ..MachineConfig::default() };
            config.mem.predecode = predecode;
            let faults: FaultConfig = spec.parse().expect("parses");
            let mut machine =
                Machine::boot(config, &program, GemFiEngine::new(faults)).expect("boots");
            let exit = machine.run();
            assert!(
                matches!(exit, RunExit::Trapped(_) | RunExit::Halted(_) | RunExit::Watchdog),
                "corrupted fetch stream must classify on {cpu} (predecode {predecode}): {exit}"
            );
        }
    }
}
