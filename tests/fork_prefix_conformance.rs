//! Fork-at-injection conformance (the non-negotiable half of the
//! shared-prefix executor): a forked-suffix run must be *bit-identical* to
//! a whole run of the same experiment — same `RunExit`, same complete
//! [`ArchState`], same every-byte-of-physical-memory, same injection
//! records, same tick and instruction counts.
//!
//! The matrix covers all 4 CPU models as the injection model × predecode
//! on/off × dormancy elision on/off × CoW on/off × superblock on/off. It
//! also pins the derived-state contract at the fork (the PR 2/4
//! never-serialized rule): the trunk runs with warm predecode and
//! superblock caches, but a fork must come out decode-cold and
//! translation-cold — asserted here rather than trusted.

use gemfi::{AbortToken, FaultBehavior, FaultLocation, FaultSpec, FaultTiming};
use gemfi_campaign::fork::{drive_suffix, plan_suffixes, ForkConfig};
use gemfi_campaign::runner::{drive_whole_run, prepare_workload_with, RunnerConfig};
use gemfi_campaign::PreparedWorkload;
use gemfi_cpu::CpuKind;
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::workload_machine_config;

fn specs_for(p: &PreparedWorkload) -> Vec<FaultSpec> {
    let committed = p.stage_events[4];
    vec![
        // Late single-bit flip into an unused FP register: the canonical
        // prefix-heavy experiment (long shared trunk, tiny suffix).
        FaultSpec {
            location: FaultLocation::FpReg { core: 0, reg: 20 },
            thread: 0,
            timing: FaultTiming::Instructions(committed.saturating_sub(120)),
            behavior: FaultBehavior::Flip(40),
            occurrences: 1,
        },
        // Mid-kernel flip into a live register: the fault propagates, so
        // the divergent suffix carries real architectural consequences.
        FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 1 },
            thread: 0,
            timing: FaultTiming::Instructions(committed / 2),
            behavior: FaultBehavior::Flip(3),
            occurrences: 1,
        },
        // Tick-timed window: exercises the second timing axis of the
        // fire-distance planner (and its window-expiry semantics).
        FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 3 },
            thread: 0,
            timing: FaultTiming::Ticks(p.kernel_ticks / 2),
            behavior: FaultBehavior::Flip(5),
            occurrences: 1_000,
        },
        // Cache-line lesion (memory-hierarchy axis): one-shot firing plants
        // persistent damage in the memory system — state that lives outside
        // ArchState, so a forked suffix must plant and apply it exactly as
        // a whole run does. Memory-stage timing counts *memory events*, of
        // which this kernel serves only a handful — time it to the second.
        FaultSpec {
            location: FaultLocation::CacheData {
                core: 0,
                level: gemfi::CacheLevel::L1D,
                set: 7,
                way: 0,
                pattern: gemfi::MbuPattern::Row(1),
            },
            thread: 0,
            timing: FaultTiming::Instructions(2),
            behavior: FaultBehavior::Flip(9),
            occurrences: 5,
        },
        // Instruction skip (security axis): fires on the Fetch queue and
        // carries armed per-core state across the fork boundary.
        FaultSpec {
            location: FaultLocation::Fetch { core: 0 },
            thread: 0,
            timing: FaultTiming::Instructions(committed / 2),
            behavior: FaultBehavior::Skip,
            occurrences: 1,
        },
    ]
}

fn conformance(model: CpuKind) {
    let w = MonteCarloPi { points: 120, init_spins: 60, ..MonteCarloPi::default() };
    for predecode in [true, false] {
        for cow in [true, false] {
            let mut config = workload_machine_config(CpuKind::Atomic);
            config.mem.predecode = predecode;
            config.mem.cow = cow;
            let p = prepare_workload_with(&w, config).expect("prepares");
            let specs = specs_for(&p);
            for (elide, superblock) in [(true, true), (true, false), (false, true), (false, false)]
            {
                let runner = RunnerConfig {
                    inject_cpu: model,
                    elide,
                    superblock,
                    ..RunnerConfig::default()
                };
                let planned = plan_suffixes(&p, &specs, &runner, &ForkConfig::default());
                assert_eq!(planned.len(), specs.len());
                assert!(
                    planned.iter().any(|s| s.forked_at.is_some()),
                    "{model}: no suffix forked — the matrix would be vacuous"
                );
                for mut suffix in planned {
                    let spec = specs[suffix.index];
                    let tag = format!(
                        "{model} predecode={predecode} cow={cow} elide={elide} \
                         superblock={superblock} spec#{} forked_at={:?}",
                        suffix.index, suffix.forked_at
                    );
                    if suffix.forked_at.is_some() {
                        // The trunk ran warm; the fork must not inherit the
                        // (never-serialized) predecode or superblock caches.
                        assert_eq!(
                            suffix.machine.mem().stats().predecode,
                            gemfi_isa::PredecodeStats::default(),
                            "{tag}: fork must start decode-cold"
                        );
                        assert_eq!(
                            suffix.machine.mem().stats().superblock,
                            gemfi_isa::SuperblockStats::default(),
                            "{tag}: fork must start translation-cold"
                        );
                    }
                    let (fork_exit, fork_aborted) =
                        drive_suffix(&mut suffix, &p, &runner, &AbortToken::new());
                    let (whole, whole_exit, whole_aborted) =
                        drive_whole_run(&p.checkpoint, &p, spec, &runner, &AbortToken::new());
                    assert!(!fork_aborted && !whole_aborted, "{tag}");
                    assert_eq!(fork_exit, whole_exit, "{tag}: exit differs");
                    assert_eq!(suffix.machine.tick(), whole.tick(), "{tag}: tick differs");
                    assert_eq!(suffix.machine.instret(), whole.instret(), "{tag}: instret differs");
                    assert_eq!(suffix.machine.arch(), whole.arch(), "{tag}: ArchState differs");
                    assert_eq!(
                        suffix.machine.hooks().records(),
                        whole.hooks().records(),
                        "{tag}: injection records differ"
                    );
                    let size = whole.mem().size() as usize;
                    assert!(
                        suffix.machine.mem().read_slice(0, size).expect("memory")
                            == whole.mem().read_slice(0, size).expect("memory"),
                        "{tag}: physical memory differs"
                    );
                }
            }
        }
    }
}

#[test]
fn fork_prefix_conformance_atomic() {
    conformance(CpuKind::Atomic);
}

#[test]
fn fork_prefix_conformance_timing() {
    conformance(CpuKind::Timing);
}

#[test]
fn fork_prefix_conformance_inorder() {
    conformance(CpuKind::InOrder);
}

#[test]
fn fork_prefix_conformance_o3() {
    conformance(CpuKind::O3);
}
