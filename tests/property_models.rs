//! Randomized tests comparing the simulator's micro-architectural models
//! against independent reference models.

use gemfi_campaign::rng::SplitMix64;
use gemfi_cpu::exec::{alu, cmov_cond};
use gemfi_isa::opcode::IntFunc;
use gemfi_mem::{Cache, CacheConfig};
use std::collections::VecDeque;

/// A naive, obviously-correct LRU set-associative cache model.
struct RefCache {
    sets: Vec<VecDeque<u64>>, // most-recent at the back
    ways: usize,
    line: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize, line: u64) -> RefCache {
        RefCache { sets: (0..sets).map(|_| VecDeque::new()).collect(), ways, line }
    }

    /// Returns whether the access hit.
    fn access(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line;
        let set = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_back(tag);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(tag);
            false
        }
    }
}

/// The production cache's hit/miss sequence matches the reference LRU
/// model on arbitrary access streams.
#[test]
fn cache_hits_match_reference_lru() {
    let mut rng = SplitMix64::new(0xcac4e);
    for _ in 0..64 {
        let config = CacheConfig { size: 1024, ways: 4, line: 32, hit_latency: 1 };
        let mut dut = Cache::new(config);
        let mut reference = RefCache::new(config.sets(), config.ways, config.line as u64);
        for _ in 0..rng.range_inclusive(1, 400) {
            let addr = rng.below(8192);
            let hit = dut.access(addr, false).hit;
            let ref_hit = reference.access(addr);
            assert_eq!(hit, ref_hit, "divergence at {addr:#x}");
        }
    }
}

/// ALU operations agree with host arithmetic (two's complement, wrapping,
/// shift masking).
#[test]
fn alu_matches_host_semantics() {
    let mut rng = SplitMix64::new(0xa1d);
    for _ in 0..5_000 {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        assert_eq!(alu(IntFunc::Addq, a, b), a.wrapping_add(b));
        assert_eq!(alu(IntFunc::Subq, a, b), a.wrapping_sub(b));
        assert_eq!(alu(IntFunc::Mulq, a, b), a.wrapping_mul(b));
        assert_eq!(alu(IntFunc::And, a, b), a & b);
        assert_eq!(alu(IntFunc::Bis, a, b), a | b);
        assert_eq!(alu(IntFunc::Xor, a, b), a ^ b);
        assert_eq!(alu(IntFunc::Sll, a, b), a.wrapping_shl((b & 63) as u32));
        assert_eq!(alu(IntFunc::Srl, a, b), a.wrapping_shr((b & 63) as u32));
        assert_eq!(alu(IntFunc::Cmpeq, a, b), (a == b) as u64);
        assert_eq!(alu(IntFunc::Cmpult, a, b), (a < b) as u64);
        assert_eq!(alu(IntFunc::Cmplt, a, b), ((a as i64) < (b as i64)) as u64);
        assert_eq!(alu(IntFunc::Umulh, a, b), ((a as u128 * b as u128) >> 64) as u64);
    }
}

/// Conditional-move conditions agree with signed comparisons on zero.
#[test]
fn cmov_conditions_match_sign_tests() {
    let mut rng = SplitMix64::new(0xc40);
    let check = |v: u64| {
        let s = v as i64;
        assert_eq!(cmov_cond(IntFunc::Cmoveq, v), Some(v == 0));
        assert_eq!(cmov_cond(IntFunc::Cmovne, v), Some(v != 0));
        assert_eq!(cmov_cond(IntFunc::Cmovlt, v), Some(s < 0));
        assert_eq!(cmov_cond(IntFunc::Cmovge, v), Some(s >= 0));
        assert_eq!(cmov_cond(IntFunc::Cmovle, v), Some(s <= 0));
        assert_eq!(cmov_cond(IntFunc::Cmovgt, v), Some(s > 0));
    };
    check(0);
    check(u64::MAX);
    check(1 << 63);
    for _ in 0..2_000 {
        check(rng.next_u64());
    }
}

/// A randomized program runs to the same architectural result on all four
/// CPU models (the model-switching methodology is only sound if they agree).
#[test]
fn random_programs_agree_across_cpu_models() {
    use gemfi_asm::{Assembler, Reg};
    use gemfi_cpu::{CpuKind, NoopHooks};
    use gemfi_sim::{Machine, MachineConfig, RunExit};

    let mut lcg: u64 = 0x5eed;
    let mut next = move || {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        lcg
    };

    for round in 0..8 {
        let mut a = Assembler::new();
        a.dsym("buf");
        a.data_u64(&[0; 32]);
        a.la(Reg::R20, "buf");
        // Seed some registers.
        for i in 1..8u8 {
            a.li(gemfi_isa::IntReg::new(i).unwrap(), (next() as u32) as i64);
        }
        // A random mix of arithmetic, memory and control flow.
        a.li(Reg::R10, 0);
        a.li(Reg::R11, 40); // loop bound
        a.label("loop");
        for _ in 0..12 {
            let r = |v: u64| gemfi_isa::IntReg::new(1 + (v % 7) as u8).unwrap();
            let (x, y, z) = (r(next()), r(next()), r(next()));
            match next() % 6 {
                0 => {
                    a.addq(x, y, z);
                }
                1 => {
                    a.subq(x, y, z);
                }
                2 => {
                    a.xor(x, y, z);
                }
                3 => {
                    a.mulq(x, y, z);
                }
                4 => {
                    // Bounded store+load through the buffer.
                    let off = ((next() % 32) * 8) as i16;
                    a.stq(x, off, Reg::R20);
                    a.ldq(z, off, Reg::R20);
                }
                _ => {
                    a.cmovlt(x, y, z);
                }
            }
        }
        a.addq_lit(Reg::R10, 1, Reg::R10);
        a.cmplt(Reg::R10, Reg::R11, Reg::R12);
        a.bne(Reg::R12, "loop");
        // Fold the register state into the exit code (mod 256 keeps it
        // within the exit-code convention).
        a.li(Reg::R13, 0);
        for i in 1..8u8 {
            a.addq(Reg::R13, gemfi_isa::IntReg::new(i).unwrap(), Reg::R13);
        }
        a.and_lit(Reg::R13, 0xff, Reg::R13);
        a.mov(Reg::R13, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let program = a.finish().expect("assembles");

        let mut exits = Vec::new();
        for cpu in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
            let config = MachineConfig { cpu, max_ticks: 50_000_000, ..MachineConfig::default() };
            let mut m = Machine::boot(config, &program, NoopHooks).expect("boots");
            exits.push(m.run());
        }
        assert!(
            exits.windows(2).all(|w| w[0] == w[1]),
            "round {round}: models disagree: {exits:?}"
        );
        assert!(matches!(exits[0], RunExit::Halted(_)), "round {round}: {exits:?}");
    }
}
