//! The workload abstraction and fault-free reference runs.

use gemfi_asm::Program;
use gemfi_cpu::{CpuKind, NoopHooks};
use gemfi_sim::{Machine, MachineConfig, RunExit, SimStats};

/// Name of the data symbol where every workload leaves its result.
pub const OUTPUT_SYMBOL: &str = "output";

/// A built guest workload: the program plus its output-region size.
#[derive(Debug, Clone)]
pub struct GuestWorkload {
    /// The linked guest program.
    pub program: Program,
    /// Size in bytes of the `output` region.
    pub output_len: usize,
}

impl GuestWorkload {
    /// Address of the output region.
    ///
    /// # Panics
    ///
    /// Panics if the program lacks an `output` symbol (workload bug).
    pub fn output_addr(&self) -> u64 {
        self.program.symbol(OUTPUT_SYMBOL).expect("workloads define an `output` symbol")
    }
}

/// The result of one complete simulated run of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// How the run ended.
    pub exit: RunExit,
    /// The output region bytes (empty if the run crashed before producing
    /// a result region — the region is still extracted for partial output).
    pub bytes: Vec<u8>,
    /// Console text produced by the guest.
    pub console: Vec<u8>,
    /// Simulator statistics.
    pub stats: SimStats,
}

impl RunOutput {
    /// Whether the run terminated normally with exit code 0.
    pub fn finished_ok(&self) -> bool {
        self.exit == RunExit::Halted(0)
    }
}

/// Output quality relative to the fault-free (golden) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Bit-wise identical to the golden output.
    BitExact,
    /// Within the workload's acceptable margin.
    Acceptable,
    /// Outside the margin: silent data corruption.
    Unacceptable,
}

/// One of the paper's benchmarks.
pub trait Workload: Send + Sync {
    /// Short name as used in the paper's figures (`"dct"`, `"jacobi"`, …).
    fn name(&self) -> &'static str;

    /// Builds the guest program (Listing 2 structure: in-guest input
    /// initialization, `fi_read_init_all`, `fi_activate_inst(0)`, kernel,
    /// `fi_activate_inst(0)`, output, exit).
    fn build(&self) -> GuestWorkload;

    /// The host golden model's output, mirroring the guest computation
    /// operation-for-operation (bit-exact for correct guest execution).
    fn reference(&self) -> Vec<u8>;

    /// The paper's per-application *correct* gate: is `faulty` within the
    /// acceptable quality margin relative to the fault-free `golden` output?
    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool;

    /// Classifies an output against the golden output.
    fn classify(&self, faulty: &[u8], golden: &[u8]) -> Quality {
        if faulty == golden {
            Quality::BitExact
        } else if self.accept(faulty, golden) {
            Quality::Acceptable
        } else {
            Quality::Unacceptable
        }
    }
}

/// Machine configuration used by workload runs (16 MiB guest, the default
/// cache hierarchy, watchdog scaled for the scaled-down workload sizes).
pub fn workload_machine_config(cpu: CpuKind) -> MachineConfig {
    MachineConfig { cpu, max_ticks: 600_000_000, ..MachineConfig::default() }
}

/// Runs a workload on a fresh machine with no fault injection and returns
/// its output; used for golden runs and guest-vs-host validation.
///
/// # Errors
///
/// Returns the [`RunExit`] when the run does not halt cleanly.
pub fn reference_run(workload: &dyn Workload, cpu: CpuKind) -> Result<RunOutput, RunExit> {
    let guest = workload.build();
    let mut machine = Machine::boot(workload_machine_config(cpu), &guest.program, NoopHooks)
        .expect("workload image fits the default machine");
    let mut exit = machine.run();
    while exit == RunExit::CheckpointRequest {
        exit = machine.run();
    }
    if exit != RunExit::Halted(0) {
        return Err(exit);
    }
    let bytes = machine
        .mem()
        .read_slice(guest.output_addr(), guest.output_len)
        .expect("output region mapped");
    Ok(RunOutput { exit, bytes, console: machine.console().to_vec(), stats: machine.stats() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_classification_order() {
        struct Fake;
        impl Workload for Fake {
            fn name(&self) -> &'static str {
                "fake"
            }
            fn build(&self) -> GuestWorkload {
                unimplemented!("not needed")
            }
            fn reference(&self) -> Vec<u8> {
                vec![0]
            }
            fn accept(&self, faulty: &[u8], _golden: &[u8]) -> bool {
                faulty[0] < 10
            }
        }
        let w = Fake;
        assert_eq!(w.classify(&[0], &[0]), Quality::BitExact);
        assert_eq!(w.classify(&[5], &[0]), Quality::Acceptable);
        assert_eq!(w.classify(&[50], &[0]), Quality::Unacceptable);
    }
}
