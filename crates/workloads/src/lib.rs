//! The paper's six benchmarks as guest programs, with host-side golden
//! models and quality metrics.
//!
//! Sec. IV of the paper validates GemFI on: *DCT* (a JPEG
//! compress/decompress kernel), *Jacobi* (diagonally dominant solve),
//! *Monte Carlo PI*, *Knapsack* (a genetic algorithm for 0/1 knapsack), the
//! AVS *Deblocking* filter, and *Canneal* (simulated-annealing netlist
//! routing from PARSEC). Every workload here is:
//!
//! * a **guest program** built with the macro-assembler, following the
//!   paper's Listing 2 structure: initialize input data in-guest, then
//!   `fi_read_init_all()` (checkpoint point), then `fi_activate_inst(0)`,
//!   the kernel under test, `fi_activate_inst(0)` again, and exit — so
//!   campaigns can checkpoint past initialization and fast-forward
//!   (Fig. 3);
//! * a **host golden model** mirroring the guest algorithm operation-for-
//!   operation (IEEE doubles make this bit-exact), used to validate the
//!   guest implementation and for analysis;
//! * an **acceptability gate** implementing the paper's per-application
//!   "correct" definitions (PSNR thresholds for DCT/deblocking, two correct
//!   decimals for PI, convergence for Jacobi, solution quality for
//!   Knapsack/Canneal).
//!
//! Default parameter sets are scaled down from the paper's (which targeted
//! a cluster with thousands of CPU-hours); `Params::paper()` variants
//! reproduce the original sizes.

pub mod canneal;
pub mod dct;
pub mod deblock;
pub mod harness;
pub mod jacobi;
pub mod knapsack;
pub mod pi;
pub mod psnr;

pub use harness::{
    reference_run, workload_machine_config, GuestWorkload, Quality, RunOutput, Workload,
};

/// All six paper workloads with default (scaled) parameters, in the order
/// the paper's figures list them.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(dct::Dct::default()),
        Box::new(jacobi::Jacobi::default()),
        Box::new(pi::MonteCarloPi::default()),
        Box::new(knapsack::Knapsack::default()),
        Box::new(deblock::Deblock::default()),
        Box::new(canneal::Canneal::default()),
    ]
}
