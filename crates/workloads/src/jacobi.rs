//! Jacobi iterative solver (Sec. IV: "applied on a diagonally dominant
//! 64X64 matrix").
//!
//! The paper's acceptance gate: "solutions that result to the same output as
//! the golden model, converging after a potentially different number of
//! iterations" — the diagonally dominant system pulls perturbed iterates
//! back to the solution, which is why Fig. 6 shows later faults trading
//! strictly-correct for correct outcomes. Operationally we accept outputs
//! whose residual `max|Ax − b|` meets the solver's own quality level.

use crate::harness::{GuestWorkload, Workload, OUTPUT_SYMBOL};
use gemfi_asm::{Assembler, FReg, Reg};

/// Convergence threshold on `max|x' − x|`.
const TOL: f64 = 1e-10;
/// Residual bound for the *correct* outcome class.
const RESIDUAL_OK: f64 = 1e-6;

/// The Jacobi workload.
#[derive(Debug, Clone, Copy)]
pub struct Jacobi {
    /// Matrix dimension.
    pub n: usize,
    /// Iteration cap.
    pub max_iters: u64,
}

impl Jacobi {
    /// The paper's 64×64 system.
    pub fn paper() -> Jacobi {
        Jacobi { n: 64, ..Jacobi::default() }
    }

    /// The system matrix entry (identical construction in guest and host):
    /// strong diagonal `n`, off-diagonal decay `1/(1+|i−j|)`.
    fn a(&self, i: usize, j: usize) -> f64 {
        if i == j {
            self.n as i64 as f64
        } else {
            1.0 / (1 + i.abs_diff(j)) as i64 as f64
        }
    }

    /// The right-hand side (uses `& 7` — the subset has no integer divide).
    fn b(&self, i: usize) -> f64 {
        ((i & 7) + 1) as i64 as f64
    }
}

impl Default for Jacobi {
    fn default() -> Jacobi {
        Jacobi { n: 16, max_iters: 200 }
    }
}

impl Workload for Jacobi {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn build(&self) -> GuestWorkload {
        let n = self.n as i64;
        let mut a = Assembler::new();
        a.dsym(OUTPUT_SYMBOL);
        a.zeros(self.n * 8 + 8); // x vector + iteration count
        a.dsym("mat");
        a.zeros(self.n * self.n * 8);
        a.dsym("rhs");
        a.zeros(self.n * 8);
        a.dsym("xnew");
        a.zeros(self.n * 8);

        // --- initialization phase: build A and b in guest memory.
        a.la(Reg::R1, "mat");
        a.la(Reg::R2, "rhs");
        a.li(Reg::R20, n);
        a.lif(FReg::F10, 1.0, Reg::R8);
        a.li(Reg::R3, 0); // i
        a.label("init_i");
        // rhs[i] = (i & 7) + 1
        a.and_lit(Reg::R3, 7, Reg::R4);
        a.addq_lit(Reg::R4, 1, Reg::R4);
        a.itoft(Reg::R4, FReg::F1);
        a.cvtqt(FReg::F1, FReg::F1);
        a.s8addq(Reg::R3, Reg::R2, Reg::R5);
        a.stt(FReg::F1, 0, Reg::R5);
        a.li(Reg::R4, 0); // j
        a.label("init_j");
        // |i-j|
        a.subq(Reg::R3, Reg::R4, Reg::R5);
        a.subq(Reg::ZERO, Reg::R5, Reg::R6);
        a.cmovlt(Reg::R5, Reg::R6, Reg::R5);
        a.addq_lit(Reg::R5, 1, Reg::R5);
        a.itoft(Reg::R5, FReg::F1);
        a.cvtqt(FReg::F1, FReg::F1);
        a.divt(FReg::F10, FReg::F1, FReg::F1); // 1/(1+|i-j|)
                                               // diagonal: n
        a.itoft(Reg::R20, FReg::F2);
        a.cvtqt(FReg::F2, FReg::F2);
        a.cmpeq(Reg::R3, Reg::R4, Reg::R5);
        a.itoft(Reg::R5, FReg::F3); // 1 bit as fp selector
        a.fbeq(FReg::F3, "off_diag");
        a.fmov(FReg::F2, FReg::F1);
        a.label("off_diag");
        // mat[i*n+j] = f1
        a.mulq(Reg::R3, Reg::R20, Reg::R5);
        a.addq(Reg::R5, Reg::R4, Reg::R5);
        a.s8addq(Reg::R5, Reg::R1, Reg::R5);
        a.stt(FReg::F1, 0, Reg::R5);
        a.addq_lit(Reg::R4, 1, Reg::R4);
        a.cmplt(Reg::R4, Reg::R20, Reg::R5);
        a.bne(Reg::R5, "init_j");
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R20, Reg::R5);
        a.bne(Reg::R5, "init_i");

        // --- checkpoint + activation markers.
        a.fi_read_init();
        a.fi_activate(0);

        // --- kernel: Jacobi sweeps. x lives in `output`, x' in `xnew`.
        a.la(Reg::R1, "mat");
        a.la(Reg::R2, "rhs");
        a.la(Reg::R21, OUTPUT_SYMBOL); // x
        a.la(Reg::R22, "xnew");
        a.li(Reg::R23, 0); // iterations done
        a.li(Reg::R25, self.max_iters as i64);
        a.lif(FReg::F11, TOL, Reg::R8);
        a.label("sweep");
        a.fmov(FReg::FZERO, FReg::F12); // maxdiff = 0
        a.li(Reg::R3, 0); // i
        a.label("row");
        // sum = b[i]
        a.s8addq(Reg::R3, Reg::R2, Reg::R5);
        a.ldt(FReg::F1, 0, Reg::R5);
        // row base = mat + i*n*8
        a.mulq(Reg::R3, Reg::R20, Reg::R6);
        a.s8addq(Reg::R6, Reg::R1, Reg::R6);
        a.li(Reg::R4, 0); // j
        a.label("col");
        a.cmpeq(Reg::R4, Reg::R3, Reg::R5);
        a.bne(Reg::R5, "skip_diag");
        a.s8addq(Reg::R4, Reg::R6, Reg::R5);
        a.ldt(FReg::F2, 0, Reg::R5); // A[i][j]
        a.s8addq(Reg::R4, Reg::R21, Reg::R5);
        a.ldt(FReg::F3, 0, Reg::R5); // x[j]
        a.mult(FReg::F2, FReg::F3, FReg::F2);
        a.subt(FReg::F1, FReg::F2, FReg::F1);
        a.label("skip_diag");
        a.addq_lit(Reg::R4, 1, Reg::R4);
        a.cmplt(Reg::R4, Reg::R20, Reg::R5);
        a.bne(Reg::R5, "col");
        // xnew[i] = sum / A[i][i]
        a.s8addq(Reg::R3, Reg::R6, Reg::R5);
        a.ldt(FReg::F2, 0, Reg::R5);
        a.divt(FReg::F1, FReg::F2, FReg::F1);
        a.s8addq(Reg::R3, Reg::R22, Reg::R5);
        a.stt(FReg::F1, 0, Reg::R5);
        // maxdiff = max(maxdiff, |xnew[i] - x[i]|)
        a.s8addq(Reg::R3, Reg::R21, Reg::R5);
        a.ldt(FReg::F3, 0, Reg::R5);
        a.subt(FReg::F1, FReg::F3, FReg::F3);
        a.cpys(FReg::FZERO, FReg::F3, FReg::F3); // |diff|
        a.cmptlt(FReg::F12, FReg::F3, FReg::F4);
        a.fcmovne(FReg::F4, FReg::F3, FReg::F12);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R20, Reg::R5);
        a.bne(Reg::R5, "row");
        // copy xnew -> x
        a.li(Reg::R3, 0);
        a.label("copy");
        a.s8addq(Reg::R3, Reg::R22, Reg::R5);
        a.ldq(Reg::R4, 0, Reg::R5);
        a.s8addq(Reg::R3, Reg::R21, Reg::R5);
        a.stq(Reg::R4, 0, Reg::R5);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R20, Reg::R5);
        a.bne(Reg::R5, "copy");
        a.addq_lit(Reg::R23, 1, Reg::R23);
        // continue while maxdiff >= TOL and iters < max
        a.cmptlt(FReg::F12, FReg::F11, FReg::F4);
        a.fbne(FReg::F4, "converged");
        a.cmplt(Reg::R23, Reg::R25, Reg::R5);
        a.bne(Reg::R5, "sweep");
        a.label("converged");

        // --- deactivate, store iteration count, exit.
        a.fi_activate(0);
        a.la_off(Reg::R5, OUTPUT_SYMBOL, n * 8);
        a.stq(Reg::R23, 0, Reg::R5);
        a.exit(0);

        GuestWorkload { program: a.finish().expect("jacobi assembles"), output_len: self.n * 8 + 8 }
    }

    fn reference(&self) -> Vec<u8> {
        let n = self.n;
        let mut x = vec![0.0f64; n];
        let mut xnew = vec![0.0f64; n];
        let mut iters: u64 = 0;
        loop {
            let mut maxdiff: f64 = 0.0;
            for i in 0..n {
                let mut sum = self.b(i);
                for (j, xj) in x.iter().enumerate() {
                    if j != i {
                        sum -= self.a(i, j) * xj;
                    }
                }
                xnew[i] = sum / self.a(i, i);
                let diff = (xnew[i] - x[i]).abs();
                if maxdiff < diff {
                    maxdiff = diff;
                }
            }
            x.copy_from_slice(&xnew);
            iters += 1;
            if maxdiff < TOL || iters >= self.max_iters {
                break;
            }
        }
        let mut out: Vec<u8> = x.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
        out.extend_from_slice(&iters.to_le_bytes());
        out
    }

    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
        let _ = golden;
        let Some(x) = read_vec(faulty, self.n) else { return false };
        if x.iter().any(|v| !v.is_finite()) {
            return false;
        }
        // The solution must solve the system: max|Ax − b| small.
        let mut residual: f64 = 0.0;
        for i in 0..self.n {
            let mut ax = 0.0;
            for (j, xj) in x.iter().enumerate() {
                ax += self.a(i, j) * xj;
            }
            residual = residual.max((ax - self.b(i)).abs());
        }
        residual < RESIDUAL_OK
    }
}

fn read_vec(bytes: &[u8], n: usize) -> Option<Vec<f64>> {
    if bytes.len() < n * 8 {
        return None;
    }
    Some(
        bytes[..n * 8]
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::reference_run;
    use gemfi_cpu::CpuKind;

    #[test]
    fn reference_converges_to_a_real_solution() {
        let w = Jacobi::default();
        let out = w.reference();
        assert!(w.accept(&out, &out), "golden output must pass its own gate");
        let iters = u64::from_le_bytes(out[w.n * 8..].try_into().unwrap());
        assert!(iters > 1 && iters < w.max_iters, "iters {iters}");
    }

    #[test]
    fn guest_matches_host_bit_exactly() {
        let w = Jacobi { n: 8, max_iters: 100 };
        let run = reference_run(&w, CpuKind::Atomic).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn guest_matches_on_o3() {
        let w = Jacobi { n: 6, max_iters: 60 };
        let run = reference_run(&w, CpuKind::O3).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn perturbed_solution_still_accepted_if_it_solves_the_system() {
        // The paper's point: convergence from a perturbed state reaches the
        // same solution. A tiny last-bit perturbation keeps the residual ok.
        let w = Jacobi::default();
        let golden = w.reference();
        let mut nudged = golden.clone();
        let v = f64::from_bits(u64::from_le_bytes(nudged[..8].try_into().unwrap()));
        nudged[..8].copy_from_slice(&(v + 1e-12).to_bits().to_le_bytes());
        assert!(w.accept(&nudged, &golden));
        // A grossly wrong vector is rejected.
        let mut wrong = golden.clone();
        wrong[..8].copy_from_slice(&5.0f64.to_bits().to_le_bytes());
        assert!(!w.accept(&wrong, &golden));
        // NaNs are rejected.
        let mut nan = golden;
        nan[..8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(!w.accept(&nan, &nan.clone()));
    }
}
