//! JPEG DCT compression kernel (Sec. IV: "a kernel of JPEG image
//! compression and decompression. We applied each kernel on a gray-scale
//! 512X512 image").
//!
//! The full compress→decompress cycle per 8×8 block: level shift, forward
//! 2-D DCT (as two 8×8 matrix products with the cosine basis), quantization
//! by the standard JPEG luminance table, dequantization, inverse DCT, and
//! clamped reconstruction. The paper's acceptance gate: reconstructed
//! "images with PSNR higher than 30" (vs. the uncompressed input) "are
//! regarded as correct, since typical PSNR values in lossy image and video
//! compression range between 30 and 50 dB".
//!
//! FP-heavy with multi-level loop nests and dense memory traffic — the
//! paper observes DCT (with Jacobi) crashing at roughly twice the rate of
//! the other benchmarks under integer-register faults.

use crate::harness::{GuestWorkload, Workload, OUTPUT_SYMBOL};
use crate::psnr::psnr_u8;
use gemfi_asm::{Assembler, FReg, Reg};

/// The standard JPEG luminance quantization table.
const QTABLE: [u64; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The 8×8 DCT basis: `C[i][j] = c(i)/2 · cos((2j+1)iπ/16)`.
fn dct_basis() -> [f64; 64] {
    let mut c = [0.0; 64];
    for i in 0..8 {
        for j in 0..8 {
            let ci = if i == 0 { 1.0 / std::f64::consts::SQRT_2 } else { 1.0 };
            c[i * 8 + j] =
                0.5 * ci * ((2 * j + 1) as f64 * i as f64 * std::f64::consts::PI / 16.0).cos();
        }
    }
    c
}

/// The synthetic grayscale input (shared by guest and host): smooth
/// gradients plus texture, integer-generated so the guest can synthesize it
/// exactly.
pub fn input_pixel(x: usize, y: usize) -> u64 {
    ((x * 3 + y * 5 + ((x * x + y * y) >> 4)) & 0xff) as u64
}

/// Round half away from zero via truncation — the exact guest formula
/// (`cvttq(v + copysign(0.5, v))`), mirrored here for bit-exactness.
fn round_away(v: f64) -> i64 {
    let t = v + 0.5f64.copysign(v);
    if t >= i64::MAX as f64 {
        i64::MAX
    } else if t <= i64::MIN as f64 {
        i64::MIN
    } else {
        t.trunc() as i64
    }
}

/// The DCT workload. Pixels are one per 64-bit word.
#[derive(Debug, Clone, Copy)]
pub struct Dct {
    /// Image width (multiple of 8).
    pub width: usize,
    /// Image height (multiple of 8).
    pub height: usize,
}

impl Dct {
    /// The paper's 512×512 image.
    pub fn paper() -> Dct {
        Dct { width: 512, height: 512 }
    }
}

impl Default for Dct {
    fn default() -> Dct {
        Dct { width: 32, height: 32 }
    }
}

impl Workload for Dct {
    fn name(&self) -> &'static str {
        "dct"
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self) -> GuestWorkload {
        assert!(self.width.is_multiple_of(8) && self.height.is_multiple_of(8));
        let w = self.width as i64;
        let basis = dct_basis();

        let mut a = Assembler::new();
        a.dsym(OUTPUT_SYMBOL);
        a.zeros(self.width * self.height * 8); // reconstructed image (u64/px)
        a.dsym("image");
        a.zeros(self.width * self.height * 8); // input image as f64/px
        a.dsym("cmat");
        a.data_f64(&basis);
        a.dsym("qmat");
        a.data_f64(&QTABLE.map(|q| q as f64));
        a.dsym("tmp");
        a.zeros(64 * 8);
        a.dsym("coef");
        a.zeros(64 * 8);
        a.dsym("zbuf");
        a.zeros(64 * 8);

        a.entry("main");

        // matmul8: D[i][j] = Σk A[i,k]·B[k,j] over 8×8 views.
        //   a0 = A base, a1 = B base, a2 = D base (contiguous row-major),
        //   r19 = A row stride, r20 = A col stride,
        //   r21 = B row stride, r22 = B col stride  (all in bytes).
        // Clobbers r8–r13, f1–f3.
        a.label("matmul8");
        a.li(Reg::R8, 0); // i
        a.label("mm_i");
        a.li(Reg::R9, 0); // j
        a.label("mm_j");
        a.fmov(FReg::FZERO, FReg::F1); // acc
        a.li(Reg::R10, 0); // k
        a.label("mm_k");
        // A[i,k]
        a.mulq(Reg::R8, Reg::R19, Reg::R11);
        a.mulq(Reg::R10, Reg::R20, Reg::R12);
        a.addq(Reg::R11, Reg::R12, Reg::R11);
        a.addq(Reg::R11, Reg::A0, Reg::R11);
        a.ldt(FReg::F2, 0, Reg::R11);
        // B[k,j]
        a.mulq(Reg::R10, Reg::R21, Reg::R11);
        a.mulq(Reg::R9, Reg::R22, Reg::R12);
        a.addq(Reg::R11, Reg::R12, Reg::R11);
        a.addq(Reg::R11, Reg::A1, Reg::R11);
        a.ldt(FReg::F3, 0, Reg::R11);
        a.mult(FReg::F2, FReg::F3, FReg::F2);
        a.addt(FReg::F1, FReg::F2, FReg::F1);
        a.addq_lit(Reg::R10, 1, Reg::R10);
        a.cmplt_lit(Reg::R10, 8, Reg::R11);
        a.bne(Reg::R11, "mm_k");
        // D[i*8+j] = acc
        a.sll_lit(Reg::R8, 3, Reg::R11);
        a.addq(Reg::R11, Reg::R9, Reg::R11);
        a.s8addq(Reg::R11, Reg::A2, Reg::R11);
        a.stt(FReg::F1, 0, Reg::R11);
        a.addq_lit(Reg::R9, 1, Reg::R9);
        a.cmplt_lit(Reg::R9, 8, Reg::R11);
        a.bne(Reg::R11, "mm_j");
        a.addq_lit(Reg::R8, 1, Reg::R8);
        a.cmplt_lit(Reg::R8, 8, Reg::R11);
        a.bne(Reg::R11, "mm_i");
        a.ret();

        // --- main: initialization — synthesize the level-shifted image
        // (pixel − 128) as doubles.
        a.label("main");
        a.la(Reg::R1, "image");
        a.li(Reg::R27, w);
        a.li(Reg::R2, 0); // y
        a.label("gen_y");
        a.li(Reg::R3, 0); // x
        a.label("gen_x");
        // v = (x*3 + y*5 + ((x*x + y*y)>>4)) & 255
        a.mulq_lit(Reg::R3, 3, Reg::R4);
        a.mulq_lit(Reg::R2, 5, Reg::R5);
        a.addq(Reg::R4, Reg::R5, Reg::R4);
        a.mulq(Reg::R3, Reg::R3, Reg::R5);
        a.mulq(Reg::R2, Reg::R2, Reg::R6);
        a.addq(Reg::R5, Reg::R6, Reg::R5);
        a.srl_lit(Reg::R5, 4, Reg::R5);
        a.addq(Reg::R4, Reg::R5, Reg::R4);
        a.and_lit(Reg::R4, 0xff, Reg::R4);
        a.subq_lit(Reg::R4, 128, Reg::R4); // level shift
        a.itoft(Reg::R4, FReg::F1);
        a.cvtqt(FReg::F1, FReg::F1);
        a.mulq(Reg::R2, Reg::R27, Reg::R5);
        a.addq(Reg::R5, Reg::R3, Reg::R5);
        a.s8addq(Reg::R5, Reg::R1, Reg::R5);
        a.stt(FReg::F1, 0, Reg::R5);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R27, Reg::R4);
        a.bne(Reg::R4, "gen_x");
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.li(Reg::R4, self.height as i64);
        a.cmplt(Reg::R2, Reg::R4, Reg::R4);
        a.bne(Reg::R4, "gen_y");

        // --- checkpoint + activation markers.
        a.fi_read_init();
        a.fi_activate(0);

        // --- kernel: per-block compress/decompress.
        // r25 = by, r23 = bx (r26 is the link register), r27 = W, r28 = block base.
        a.li(Reg::R25, 0); // by (in blocks)
        a.label("blk_y");
        a.li(Reg::R23, 0); // bx
        a.label("blk_x");
        // block base offset = ((by*8)*W + bx*8) * 8 bytes
        a.sll_lit(Reg::R25, 3, Reg::R1);
        a.mulq(Reg::R1, Reg::R27, Reg::R1);
        a.sll_lit(Reg::R23, 3, Reg::R2);
        a.addq(Reg::R1, Reg::R2, Reg::R1);
        a.sll_lit(Reg::R1, 3, Reg::R28);

        // tmp = C · X   (X = image block, row stride W*8, col stride 8)
        a.la(Reg::A0, "cmat");
        a.la(Reg::A1, "image");
        a.addq(Reg::A1, Reg::R28, Reg::A1);
        a.la(Reg::A2, "tmp");
        a.li(Reg::R19, 64);
        a.li(Reg::R20, 8);
        a.sll_lit(Reg::R27, 3, Reg::R21); // W*8
        a.li(Reg::R22, 8);
        a.call("matmul8");
        // coef = tmp · Cᵀ  (Cᵀ: row stride 8, col stride 64)
        a.la(Reg::A0, "tmp");
        a.la(Reg::A1, "cmat");
        a.la(Reg::A2, "coef");
        a.li(Reg::R19, 64);
        a.li(Reg::R20, 8);
        a.li(Reg::R21, 8);
        a.li(Reg::R22, 64);
        a.call("matmul8");
        // quantize/dequantize coef in place:
        //   coef[k] = round(coef[k]/q[k]) * q[k]
        a.la(Reg::R1, "coef");
        a.la(Reg::R2, "qmat");
        a.lif(FReg::F5, 0.5, Reg::R8);
        a.li(Reg::R3, 0);
        a.label("quant");
        a.s8addq(Reg::R3, Reg::R1, Reg::R4);
        a.ldt(FReg::F1, 0, Reg::R4);
        a.s8addq(Reg::R3, Reg::R2, Reg::R5);
        a.ldt(FReg::F2, 0, Reg::R5);
        a.divt(FReg::F1, FReg::F2, FReg::F1);
        // round half away from zero: trunc(v + copysign(0.5, v))
        a.cpys(FReg::F1, FReg::F5, FReg::F3);
        a.addt(FReg::F1, FReg::F3, FReg::F1);
        a.cvttq(FReg::F1, FReg::F1);
        a.cvtqt(FReg::F1, FReg::F1);
        a.mult(FReg::F1, FReg::F2, FReg::F1);
        a.stt(FReg::F1, 0, Reg::R4);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt_lit(Reg::R3, 64, Reg::R4);
        a.bne(Reg::R4, "quant");
        // tmp = Cᵀ · coef
        a.la(Reg::A0, "cmat");
        a.la(Reg::A1, "coef");
        a.la(Reg::A2, "tmp");
        a.li(Reg::R19, 8);
        a.li(Reg::R20, 64);
        a.li(Reg::R21, 64);
        a.li(Reg::R22, 8);
        a.call("matmul8");
        // zbuf = tmp · C
        a.la(Reg::A0, "tmp");
        a.la(Reg::A1, "cmat");
        a.la(Reg::A2, "zbuf");
        a.li(Reg::R19, 64);
        a.li(Reg::R20, 8);
        a.li(Reg::R21, 64);
        a.li(Reg::R22, 8);
        a.call("matmul8");
        // store block: out = clamp(round(z + 128), 0, 255)
        a.la(Reg::R1, "zbuf");
        a.la(Reg::R2, OUTPUT_SYMBOL);
        a.addq(Reg::R2, Reg::R28, Reg::R2);
        a.lif(FReg::F5, 0.5, Reg::R8);
        a.lif(FReg::F6, 128.0, Reg::R8);
        a.li(Reg::R3, 0); // r (row in block)
        a.label("out_r");
        a.li(Reg::R4, 0); // c
        a.label("out_c");
        a.sll_lit(Reg::R3, 3, Reg::R5);
        a.addq(Reg::R5, Reg::R4, Reg::R5);
        a.s8addq(Reg::R5, Reg::R1, Reg::R5);
        a.ldt(FReg::F1, 0, Reg::R5);
        a.addt(FReg::F1, FReg::F6, FReg::F1); // + 128
        a.cpys(FReg::F1, FReg::F5, FReg::F3);
        a.addt(FReg::F1, FReg::F3, FReg::F1);
        a.cvttq(FReg::F1, FReg::F1);
        a.ftoit(FReg::F1, Reg::R5);
        // clamp to [0, 255]
        a.cmovlt(Reg::R5, Reg::ZERO, Reg::R5);
        a.li(Reg::R6, 255);
        a.cmple(Reg::R6, Reg::R5, Reg::R7);
        a.cmovne(Reg::R7, Reg::R6, Reg::R5);
        // out[(r*W + c)*8 + blockbase]
        a.mulq(Reg::R3, Reg::R27, Reg::R6);
        a.addq(Reg::R6, Reg::R4, Reg::R6);
        a.s8addq(Reg::R6, Reg::R2, Reg::R6);
        a.stq(Reg::R5, 0, Reg::R6);
        a.addq_lit(Reg::R4, 1, Reg::R4);
        a.cmplt_lit(Reg::R4, 8, Reg::R5);
        a.bne(Reg::R5, "out_c");
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt_lit(Reg::R3, 8, Reg::R5);
        a.bne(Reg::R5, "out_r");

        a.addq_lit(Reg::R23, 1, Reg::R23);
        a.li(Reg::R1, (self.width / 8) as i64);
        a.cmplt(Reg::R23, Reg::R1, Reg::R1);
        a.bne(Reg::R1, "blk_x");
        a.addq_lit(Reg::R25, 1, Reg::R25);
        a.li(Reg::R1, (self.height / 8) as i64);
        a.cmplt(Reg::R25, Reg::R1, Reg::R1);
        a.bne(Reg::R1, "blk_y");

        // --- deactivate, exit.
        a.fi_activate(0);
        a.exit(0);

        GuestWorkload {
            program: a.finish().expect("dct assembles"),
            output_len: self.width * self.height * 8,
        }
    }

    fn reference(&self) -> Vec<u8> {
        let (w, h) = (self.width, self.height);
        let c = dct_basis();
        let q: Vec<f64> = QTABLE.iter().map(|&v| v as i64 as f64).collect();
        // Level-shifted input.
        let img: Vec<f64> = (0..h)
            .flat_map(|y| (0..w).map(move |x| (input_pixel(x, y) as i64 as f64) - 128.0))
            .collect();
        let mut out = vec![0u64; w * h];
        let mm = |a: &dyn Fn(usize, usize) -> f64, b: &dyn Fn(usize, usize) -> f64| {
            let mut d = [0.0f64; 64];
            for i in 0..8 {
                for j in 0..8 {
                    let mut acc = 0.0;
                    for k in 0..8 {
                        acc += a(i, k) * b(k, j);
                    }
                    d[i * 8 + j] = acc;
                }
            }
            d
        };
        for by in 0..h / 8 {
            for bx in 0..w / 8 {
                let base = by * 8 * w + bx * 8;
                let tmp = mm(&|i, k| c[i * 8 + k], &|k, j| img[base + k * w + j]);
                let mut coef = mm(&|i, k| tmp[i * 8 + k], &|k, j| c[j * 8 + k]);
                for k in 0..64 {
                    let r = round_away(coef[k] / q[k]) as f64;
                    coef[k] = r * q[k];
                }
                let tmp = mm(&|i, k| c[k * 8 + i], &|k, j| coef[k * 8 + j]);
                let z = mm(&|i, k| tmp[i * 8 + k], &|k, j| c[k * 8 + j]);
                for r in 0..8 {
                    for col in 0..8 {
                        let v = round_away(z[r * 8 + col] + 128.0).clamp(0, 255);
                        out[base + r * w + col] = v as u64;
                    }
                }
            }
        }
        out.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
        if faulty.len() != golden.len() {
            return false;
        }
        // The paper compares the reconstructed image against the
        // *uncompressed input*: PSNR > 30 dB is correct.
        let input: Vec<u8> = (0..self.height)
            .flat_map(|y| (0..self.width).map(move |x| input_pixel(x, y) as u8))
            .collect();
        let pixels: Vec<u8> = faulty.chunks_exact(8).map(|c| c[0]).collect();
        // Out-of-range words mean corrupted output, not pixels.
        if faulty.chunks_exact(8).any(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")) > 255)
        {
            return false;
        }
        psnr_u8(&pixels, &input) > 30.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::reference_run;
    use gemfi_cpu::CpuKind;

    #[test]
    fn reference_reconstruction_is_lossy_but_faithful() {
        let w = Dct::default();
        let golden = w.reference();
        let input: Vec<u8> = (0..w.height)
            .flat_map(|y| (0..w.width).map(move |x| input_pixel(x, y) as u8))
            .collect();
        let recon: Vec<u8> = golden.chunks_exact(8).map(|c| c[0]).collect();
        let p = psnr_u8(&recon, &input);
        assert!(p > 30.0, "golden PSNR {p} must pass the paper's gate");
        assert!(p < f64::INFINITY, "quantization must lose something");
        assert!(w.accept(&golden, &golden));
    }

    #[test]
    fn guest_matches_host_bit_exactly() {
        let w = Dct { width: 16, height: 16 };
        let run = reference_run(&w, CpuKind::Atomic).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn guest_matches_on_o3() {
        let w = Dct { width: 8, height: 8 };
        let run = reference_run(&w, CpuKind::O3).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn corrupted_image_fails_the_gate() {
        let w = Dct::default();
        let golden = w.reference();
        let mut wrecked = golden.clone();
        for px in wrecked.chunks_exact_mut(8) {
            px[0] = px[0].wrapping_add(97);
        }
        assert!(!w.accept(&wrecked, &golden));
        // A word outside 0..=255 (impossible for a healthy run) fails too.
        let mut bad_word = golden.clone();
        bad_word[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(!w.accept(&bad_word, &golden));
    }
}
