//! 0/1 Knapsack via a genetic algorithm (Sec. IV: "a solution of the zero
//! one knapsack combinational problem using a genetic algorithm. We use an
//! input of 24 items and a weight limit of 500").
//!
//! Heavy array/pointer traffic (the paper observes 42% of execute-stage
//! faults crash it) and self-correcting dynamics: "faults corrupting data in
//! a manner that does not ... converge towards the solution will be discarded
//! on the following iteration, after applying the fitness function" — the
//! later a fault lands, the likelier the outcome is acceptable (Fig. 6).

use crate::harness::{GuestWorkload, Workload, OUTPUT_SYMBOL};
use gemfi_asm::{Assembler, Reg};

const LCG_MUL: u64 = 6364136223846793005;
const LCG_INC: u64 = 1442695040888963407;

fn lcg(s: u64) -> u64 {
    s.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

/// The knapsack GA workload.
#[derive(Debug, Clone, Copy)]
pub struct Knapsack {
    /// Number of items (genome bits). The paper uses 24.
    pub items: u64,
    /// Weight limit. The paper uses 500.
    pub limit: u64,
    /// Population size (power of two).
    pub population: u64,
    /// Generations to evolve.
    pub generations: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Knapsack {
    /// The paper's configuration (24 items, limit 500) with a deeper GA.
    pub fn paper() -> Knapsack {
        Knapsack { generations: 100, population: 32, ..Knapsack::default() }
    }
}

impl Default for Knapsack {
    fn default() -> Knapsack {
        Knapsack {
            items: 24,
            limit: 500,
            population: 16,
            generations: 30,
            seed: 0x243f6a8885a308d3,
        }
    }
}

/// Host-side item tables (identical to the guest's in-guest generation).
fn gen_items(seed: u64, items: u64) -> (Vec<u64>, Vec<u64>, u64) {
    let mut s = seed;
    let mut weights = Vec::new();
    let mut values = Vec::new();
    for _ in 0..items {
        s = lcg(s);
        weights.push(((s >> 33) & 63) + 10);
        s = lcg(s);
        values.push(((s >> 33) & 63) + 10);
    }
    (weights, values, s)
}

fn fitness(genome: u64, weights: &[u64], values: &[u64], limit: u64) -> (u64, u64) {
    let mut tw = 0u64;
    let mut tv = 0u64;
    for i in 0..weights.len() {
        if (genome >> i) & 1 == 1 {
            tw = tw.wrapping_add(weights[i]);
            tv = tv.wrapping_add(values[i]);
        }
    }
    let fit = if tw <= limit { tv } else { 0 };
    (fit, tw)
}

impl Workload for Knapsack {
    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn build(&self) -> GuestWorkload {
        assert!(self.items <= 24, "genome bits limited to 24 (paper size)");
        assert!(self.population.is_power_of_two() && self.population <= 128);
        assert!(self.generations <= 255);
        let pop = self.population as u8;
        let gens = self.generations as u8;
        let items = self.items as u8;

        let mut a = Assembler::new();
        a.dsym(OUTPUT_SYMBOL);
        a.data_u64(&[0, 0, 0]); // best genome, best fitness, best weight
        a.dsym("weights");
        a.zeros(self.items as usize * 8);
        a.dsym("values");
        a.zeros(self.items as usize * 8);
        a.dsym("pop");
        a.zeros(self.population as usize * 8);
        a.dsym("newpop");
        a.zeros(self.population as usize * 8);
        a.dsym("rng_cell");
        a.data_u64(&[0]);

        a.entry("main");

        // fitness(a0=r16 genome) -> v0=r0 fitness, r24 weight.
        // Clobbers r0, r8-r13, r24 only.
        a.label("fitness");
        a.li(Reg::R8, 0); // i
        a.li(Reg::R9, 0); // total value
        a.li(Reg::R10, 0); // total weight
        a.la(Reg::R11, "weights");
        a.la(Reg::R12, "values");
        a.label("floop");
        a.srl(Reg::A0, Reg::R8, Reg::R13);
        a.blbc(Reg::R13, "fskip");
        a.s8addq(Reg::R8, Reg::R11, Reg::R13);
        a.ldq(Reg::R13, 0, Reg::R13);
        a.addq(Reg::R10, Reg::R13, Reg::R10);
        a.s8addq(Reg::R8, Reg::R12, Reg::R13);
        a.ldq(Reg::R13, 0, Reg::R13);
        a.addq(Reg::R9, Reg::R13, Reg::R9);
        a.label("fskip");
        a.addq_lit(Reg::R8, 1, Reg::R8);
        a.cmplt_lit(Reg::R8, items, Reg::R13);
        a.bne(Reg::R13, "floop");
        a.mov(Reg::R10, Reg::R24);
        a.li(Reg::R13, self.limit as i64);
        a.cmple(Reg::R10, Reg::R13, Reg::R13);
        a.li(Reg::R0, 0);
        a.cmovne(Reg::R13, Reg::R9, Reg::R0);
        a.ret();

        // eval_pop: scans `pop`, updating best (r25 fit, r27 genome, r28
        // weight). Uses r1, r15; calls fitness.
        a.label("eval_pop");
        a.subq_lit(Reg::SP, 16, Reg::SP);
        a.stq(Reg::RA, 0, Reg::SP);
        a.li(Reg::R15, 0);
        a.label("eval_loop");
        a.s8addq(Reg::R15, Reg::R21, Reg::R1);
        a.ldq(Reg::A0, 0, Reg::R1);
        a.call("fitness");
        a.cmplt(Reg::R25, Reg::R0, Reg::R1);
        a.beq(Reg::R1, "eval_skip");
        a.mov(Reg::R0, Reg::R25);
        a.mov(Reg::A0, Reg::R27);
        a.mov(Reg::R24, Reg::R28);
        a.label("eval_skip");
        a.addq_lit(Reg::R15, 1, Reg::R15);
        a.cmplt_lit(Reg::R15, pop, Reg::R1);
        a.bne(Reg::R1, "eval_loop");
        a.ldq(Reg::RA, 0, Reg::SP);
        a.addq_lit(Reg::SP, 16, Reg::SP);
        a.ret();

        // --- main: initialization phase (item tables + initial population).
        a.label("main");
        a.li(Reg::R22, self.seed as i64); // rng
        a.li(Reg::R20, LCG_MUL as i64);
        a.li(Reg::R18, LCG_INC as i64);
        a.la(Reg::R1, "weights");
        a.la(Reg::R2, "values");
        a.li(Reg::R3, 0); // i
        a.label("init_items");
        // weight = ((lcg >> 33) & 63) + 10
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R18, Reg::R22);
        a.srl_lit(Reg::R22, 33, Reg::R4);
        a.and_lit(Reg::R4, 63, Reg::R4);
        a.addq_lit(Reg::R4, 10, Reg::R4);
        a.s8addq(Reg::R3, Reg::R1, Reg::R5);
        a.stq(Reg::R4, 0, Reg::R5);
        // value likewise
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R18, Reg::R22);
        a.srl_lit(Reg::R22, 33, Reg::R4);
        a.and_lit(Reg::R4, 63, Reg::R4);
        a.addq_lit(Reg::R4, 10, Reg::R4);
        a.s8addq(Reg::R3, Reg::R2, Reg::R5);
        a.stq(Reg::R4, 0, Reg::R5);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt_lit(Reg::R3, items, Reg::R4);
        a.bne(Reg::R4, "init_items");
        // initial population: 24-bit random genomes
        a.la(Reg::R1, "pop");
        a.li(Reg::R2, 0xff_ffff);
        a.li(Reg::R3, 0);
        a.label("init_pop");
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R18, Reg::R22);
        a.srl_lit(Reg::R22, 11, Reg::R4);
        a.and(Reg::R4, Reg::R2, Reg::R4);
        a.s8addq(Reg::R3, Reg::R1, Reg::R5);
        a.stq(Reg::R4, 0, Reg::R5);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt_lit(Reg::R3, pop, Reg::R4);
        a.bne(Reg::R4, "init_pop");
        a.la(Reg::R1, "rng_cell");
        a.stq(Reg::R22, 0, Reg::R1);

        // --- checkpoint + activation markers.
        a.fi_read_init();
        a.fi_activate(0);

        // --- kernel: the GA.
        a.la(Reg::R21, "pop");
        a.la(Reg::R23, "newpop");
        a.la(Reg::R1, "rng_cell");
        a.ldq(Reg::R22, 0, Reg::R1);
        a.li(Reg::R20, LCG_MUL as i64);
        a.li(Reg::R18, LCG_INC as i64);
        a.li(Reg::R25, 0); // best fitness
        a.li(Reg::R27, 0); // best genome
        a.li(Reg::R28, 0); // best weight
        a.li(Reg::R14, 0); // generation

        a.label("gen_loop");
        a.call("eval_pop");

        // breed newpop
        a.li(Reg::R15, 0);
        a.label("breed_loop");
        // tournament parents -> r7, r19
        for target in [Reg::R7, Reg::R19] {
            a.mulq(Reg::R22, Reg::R20, Reg::R22);
            a.addq(Reg::R22, Reg::R18, Reg::R22);
            a.srl_lit(Reg::R22, 29, Reg::R1);
            a.and_lit(Reg::R1, pop - 1, Reg::R1);
            a.mulq(Reg::R22, Reg::R20, Reg::R22);
            a.addq(Reg::R22, Reg::R18, Reg::R22);
            a.srl_lit(Reg::R22, 29, Reg::R2);
            a.and_lit(Reg::R2, pop - 1, Reg::R2);
            a.s8addq(Reg::R1, Reg::R21, Reg::R3);
            a.ldq(Reg::R3, 0, Reg::R3); // genome a
            a.s8addq(Reg::R2, Reg::R21, Reg::R4);
            a.ldq(Reg::R4, 0, Reg::R4); // genome b
            a.mov(Reg::R3, Reg::A0);
            a.call("fitness");
            a.mov(Reg::R0, Reg::R5); // fit a
            a.mov(Reg::R4, Reg::A0);
            a.call("fitness"); // r0 = fit b
            a.cmplt(Reg::R5, Reg::R0, Reg::R6); // fa < fb ?
            a.mov(Reg::R3, target);
            a.cmovne(Reg::R6, Reg::R4, target);
        }
        // crossover point p in 0..22
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R18, Reg::R22);
        a.srl_lit(Reg::R22, 30, Reg::R1);
        a.and_lit(Reg::R1, 15, Reg::R1);
        a.srl_lit(Reg::R22, 34, Reg::R2);
        a.and_lit(Reg::R2, 7, Reg::R2);
        a.addq(Reg::R1, Reg::R2, Reg::R1);
        a.li(Reg::R2, 1);
        a.sll(Reg::R2, Reg::R1, Reg::R2);
        a.subq_lit(Reg::R2, 1, Reg::R2); // mask
        a.and(Reg::R7, Reg::R2, Reg::R3); // p1 low bits
        a.bic(Reg::R19, Reg::R2, Reg::R4); // p2 high bits
        a.bis(Reg::R3, Reg::R4, Reg::R3); // child
                                          // mutation with probability 1/8
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R18, Reg::R22);
        a.srl_lit(Reg::R22, 40, Reg::R1);
        a.and_lit(Reg::R1, 7, Reg::R1);
        a.bne(Reg::R1, "no_mut");
        a.srl_lit(Reg::R22, 43, Reg::R1);
        a.and_lit(Reg::R1, 15, Reg::R1);
        a.srl_lit(Reg::R22, 47, Reg::R2);
        a.and_lit(Reg::R2, 7, Reg::R2);
        a.addq(Reg::R1, Reg::R2, Reg::R1);
        a.li(Reg::R2, 1);
        a.sll(Reg::R2, Reg::R1, Reg::R2);
        a.xor(Reg::R3, Reg::R2, Reg::R3);
        a.label("no_mut");
        a.s8addq(Reg::R15, Reg::R23, Reg::R1);
        a.stq(Reg::R3, 0, Reg::R1);
        a.addq_lit(Reg::R15, 1, Reg::R15);
        a.cmplt_lit(Reg::R15, pop, Reg::R1);
        a.bne(Reg::R1, "breed_loop");
        // copy newpop -> pop
        a.li(Reg::R15, 0);
        a.label("copy_loop");
        a.s8addq(Reg::R15, Reg::R23, Reg::R1);
        a.ldq(Reg::R2, 0, Reg::R1);
        a.s8addq(Reg::R15, Reg::R21, Reg::R1);
        a.stq(Reg::R2, 0, Reg::R1);
        a.addq_lit(Reg::R15, 1, Reg::R15);
        a.cmplt_lit(Reg::R15, pop, Reg::R1);
        a.bne(Reg::R1, "copy_loop");
        a.addq_lit(Reg::R14, 1, Reg::R14);
        a.cmplt_lit(Reg::R14, gens, Reg::R1);
        a.bne(Reg::R1, "gen_loop");
        // final evaluation
        a.call("eval_pop");

        // --- deactivate, write output, exit.
        a.fi_activate(0);
        a.la(Reg::R1, OUTPUT_SYMBOL);
        a.stq(Reg::R27, 0, Reg::R1);
        a.stq(Reg::R25, 8, Reg::R1);
        a.stq(Reg::R28, 16, Reg::R1);
        a.exit(0);

        GuestWorkload { program: a.finish().expect("knapsack assembles"), output_len: 24 }
    }

    fn reference(&self) -> Vec<u8> {
        let (weights, values, mut s) = gen_items(self.seed, self.items);
        let pop_n = self.population as usize;
        let mut pop = Vec::with_capacity(pop_n);
        for _ in 0..pop_n {
            s = lcg(s);
            pop.push((s >> 11) & 0xff_ffff);
        }
        let mut best = (0u64, 0u64, 0u64); // fitness, genome, weight

        fn eval(
            pop: &[u64],
            weights: &[u64],
            values: &[u64],
            limit: u64,
            best: &mut (u64, u64, u64),
        ) {
            for &g in pop {
                let (fit, w) = fitness(g, weights, values, limit);
                if best.0 < fit {
                    *best = (fit, g, w);
                }
            }
        }

        for _ in 0..self.generations {
            eval(&pop, &weights, &values, self.limit, &mut best);
            let mut newpop = Vec::with_capacity(pop_n);
            for _ in 0..pop_n {
                let mut parents = [0u64; 2];
                for p in &mut parents {
                    s = lcg(s);
                    let ia = ((s >> 29) & (self.population - 1)) as usize;
                    s = lcg(s);
                    let ib = ((s >> 29) & (self.population - 1)) as usize;
                    let (fa, _) = fitness(pop[ia], &weights, &values, self.limit);
                    let (fb, _) = fitness(pop[ib], &weights, &values, self.limit);
                    *p = if fa < fb { pop[ib] } else { pop[ia] };
                }
                s = lcg(s);
                let point = ((s >> 30) & 15) + ((s >> 34) & 7);
                let mask = (1u64 << point) - 1;
                let mut child = (parents[0] & mask) | (parents[1] & !mask);
                s = lcg(s);
                if (s >> 40) & 7 == 0 {
                    let bit = ((s >> 43) & 15) + ((s >> 47) & 7);
                    child ^= 1 << bit;
                }
                newpop.push(child);
            }
            pop = newpop;
        }
        eval(&pop, &weights, &values, self.limit, &mut best);

        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&best.1.to_le_bytes());
        out.extend_from_slice(&best.0.to_le_bytes());
        out.extend_from_slice(&best.2.to_le_bytes());
        out
    }

    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
        let (Some((fg, ff, _fw)), Some((_, gf, _))) = (read_out(faulty), read_out(golden)) else {
            return false;
        };
        // The solution must be *verifiably* valid: recompute value and
        // weight from the item tables (a corrupted run cannot lie about its
        // fitness) and beat-or-match the fault-free run's quality.
        let (weights, values, _) = gen_items(self.seed, self.items);
        let (real_fit, real_w) = fitness(fg, &weights, &values, self.limit);
        real_w <= self.limit && real_fit == ff && ff >= gf
    }
}

fn read_out(bytes: &[u8]) -> Option<(u64, u64, u64)> {
    Some((
        u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?),
        u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?),
        u64::from_le_bytes(bytes.get(16..24)?.try_into().ok()?),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::reference_run;
    use gemfi_cpu::CpuKind;

    #[test]
    fn reference_finds_a_valid_solution() {
        let w = Knapsack::default();
        let out = w.reference();
        let (genome, fit, weight) = read_out(&out).unwrap();
        assert!(fit > 0);
        assert!(weight <= w.limit);
        let (ws, vs, _) = gen_items(w.seed, w.items);
        let (f2, w2) = fitness(genome, &ws, &vs, w.limit);
        assert_eq!(f2, fit);
        assert_eq!(w2, weight);
    }

    #[test]
    fn ga_improves_over_random_population() {
        let short = Knapsack { generations: 1, ..Knapsack::default() };
        let long = Knapsack { generations: 30, ..Knapsack::default() };
        let f_short = read_out(&short.reference()).unwrap().1;
        let f_long = read_out(&long.reference()).unwrap().1;
        assert!(f_long >= f_short, "GA must not regress: {f_long} vs {f_short}");
    }

    #[test]
    fn guest_matches_host_bit_exactly() {
        let w = Knapsack { generations: 5, ..Knapsack::default() };
        let run = reference_run(&w, CpuKind::Atomic).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn guest_matches_on_o3() {
        let w = Knapsack { generations: 3, ..Knapsack::default() };
        let run = reference_run(&w, CpuKind::O3).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn acceptance_requires_verifiable_fitness() {
        let w = Knapsack::default();
        let golden = w.reference();
        assert!(w.accept(&golden, &golden));
        // A lying output (fitness inflated without the genome to back it)
        // must be rejected.
        let mut lie = golden.clone();
        let inflated = read_out(&golden).unwrap().1 + 100;
        lie[8..16].copy_from_slice(&inflated.to_le_bytes());
        assert!(!w.accept(&lie, &golden));
        assert!(!w.accept(&[], &golden));
    }
}
