//! Canneal: simulated-annealing netlist placement (Sec. IV: "a benchmark of
//! the PARSEC Benchmark Suite … employs an annealing (SA) algorithm to
//! minimize the routing cost of a chip design by randomly swapping netlist
//! elements").
//!
//! The paper's acceptance gate: "Correct Canneal executions are those that
//! reduce the total cost of routing and produce a correct chip" — here:
//! the final placement must be a valid permutation, its recomputed wirelength
//! must match the claimed cost, and the cost must beat the initial
//! placement's.

use crate::harness::{GuestWorkload, Workload, OUTPUT_SYMBOL};
use gemfi_asm::{Assembler, Reg};

const LCG_MUL: u64 = 6364136223846793005;
const LCG_INC: u64 = 1442695040888963407;
/// Elements (and grid cells): 64 elements on an 8×8 grid.
const N: usize = 64;
/// Annealing steps; the temperature threshold decays linearly over these.
const STEPS: u64 = 512;

fn lcg(s: u64) -> u64 {
    s.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

/// Manhattan distance between two cells of the 8×8 grid.
fn dist(a: u64, b: u64) -> u64 {
    let dx = (a & 7).abs_diff(b & 7);
    let dy = (a >> 3).abs_diff(b >> 3);
    dx + dy
}

/// The two nets of element `e` (a ring plus a stride-7 shuffle net).
fn nets(e: usize) -> (usize, usize) {
    ((e + 1) & (N - 1), (e * 7 + 3) & (N - 1))
}

/// Total wirelength of a placement.
fn wirelength(pos: &[u64]) -> u64 {
    let mut cost = 0;
    for e in 0..N {
        let (n1, n2) = nets(e);
        cost += dist(pos[e], pos[n1]) + dist(pos[e], pos[n2]);
    }
    cost
}

/// The canneal workload.
#[derive(Debug, Clone, Copy)]
pub struct Canneal {
    /// RNG seed for the initial shuffle and the annealing schedule.
    pub seed: u64,
    /// Annealing steps (≤ 2^16; the default matches the schedule constant).
    pub steps: u64,
}

impl Canneal {
    /// A deeper anneal approximating the paper's 100-net configuration.
    pub fn paper() -> Canneal {
        Canneal { steps: 512, ..Canneal::default() }
    }

    /// The deterministic initial placement (identity shuffled by the seed).
    fn initial_placement(&self) -> (Vec<u64>, u64) {
        let mut pos: Vec<u64> = (0..N as u64).collect();
        let mut s = self.seed;
        for e in 0..N {
            s = lcg(s);
            let k = ((s >> 25) & (N as u64 - 1)) as usize;
            pos.swap(e, k);
        }
        (pos, s)
    }
}

impl Default for Canneal {
    fn default() -> Canneal {
        Canneal { seed: 0x13198a2e03707344, steps: STEPS }
    }
}

impl Workload for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    #[allow(clippy::too_many_lines)]
    fn build(&self) -> GuestWorkload {
        assert!(self.steps <= 1 << 16);
        let mut a = Assembler::new();
        a.dsym(OUTPUT_SYMBOL);
        a.zeros(16 + N * 8); // initial cost, final cost, placement
        a.dsym("pos");
        a.zeros(N * 8);
        a.dsym("rng_cell");
        a.data_u64(&[0]);

        a.entry("main");

        // dist(r9 = cell a, r11 = cell b) -> r12. Clobbers r12, r13, r24.
        a.label("dist");
        a.and_lit(Reg::R9, 7, Reg::R12);
        a.and_lit(Reg::R11, 7, Reg::R13);
        a.subq(Reg::R12, Reg::R13, Reg::R12);
        a.subq(Reg::ZERO, Reg::R12, Reg::R13);
        a.cmovlt(Reg::R12, Reg::R13, Reg::R12);
        a.srl_lit(Reg::R9, 3, Reg::R13);
        a.srl_lit(Reg::R11, 3, Reg::R24);
        a.subq(Reg::R13, Reg::R24, Reg::R13);
        a.subq(Reg::ZERO, Reg::R13, Reg::R24);
        a.cmovlt(Reg::R13, Reg::R24, Reg::R13);
        a.addq(Reg::R12, Reg::R13, Reg::R12);
        a.ret();

        // cost_fn() -> r0 = total wirelength over `pos` (base in r21).
        // Clobbers r0, r8–r13, r24, r25; saves/restores RA.
        a.label("cost_fn");
        a.subq_lit(Reg::SP, 16, Reg::SP);
        a.stq(Reg::RA, 0, Reg::SP);
        a.li(Reg::R8, 0); // e
        a.li(Reg::R0, 0); // cost
        a.label("cost_loop");
        a.s8addq(Reg::R8, Reg::R21, Reg::R9);
        a.ldq(Reg::R9, 0, Reg::R9); // pos[e]
        a.mov(Reg::R9, Reg::R25); // keep pos[e]
                                  // net 1: (e+1) & 63
        a.addq_lit(Reg::R8, 1, Reg::R10);
        a.and_lit(Reg::R10, (N - 1) as u8, Reg::R10);
        a.s8addq(Reg::R10, Reg::R21, Reg::R11);
        a.ldq(Reg::R11, 0, Reg::R11);
        a.call("dist");
        a.addq(Reg::R0, Reg::R12, Reg::R0);
        // net 2: (e*7 + 3) & 63
        a.mov(Reg::R25, Reg::R9);
        a.mulq_lit(Reg::R8, 7, Reg::R10);
        a.addq_lit(Reg::R10, 3, Reg::R10);
        a.and_lit(Reg::R10, (N - 1) as u8, Reg::R10);
        a.s8addq(Reg::R10, Reg::R21, Reg::R11);
        a.ldq(Reg::R11, 0, Reg::R11);
        a.call("dist");
        a.addq(Reg::R0, Reg::R12, Reg::R0);
        a.addq_lit(Reg::R8, 1, Reg::R8);
        a.cmplt_lit(Reg::R8, N as u8, Reg::R9);
        a.bne(Reg::R9, "cost_loop");
        a.ldq(Reg::RA, 0, Reg::SP);
        a.addq_lit(Reg::SP, 16, Reg::SP);
        a.ret();

        // --- main: initialization — identity placement, shuffle, initial
        // cost into output[0].
        a.label("main");
        a.la(Reg::R21, "pos");
        a.li(Reg::R22, self.seed as i64);
        a.li(Reg::R20, LCG_MUL as i64);
        a.li(Reg::R23, LCG_INC as i64);
        a.li(Reg::R1, 0);
        a.label("ident");
        a.s8addq(Reg::R1, Reg::R21, Reg::R2);
        a.stq(Reg::R1, 0, Reg::R2);
        a.addq_lit(Reg::R1, 1, Reg::R1);
        a.cmplt_lit(Reg::R1, N as u8, Reg::R2);
        a.bne(Reg::R2, "ident");
        a.li(Reg::R1, 0);
        a.label("shuffle");
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R23, Reg::R22);
        a.srl_lit(Reg::R22, 25, Reg::R2);
        a.and_lit(Reg::R2, (N - 1) as u8, Reg::R2);
        a.s8addq(Reg::R1, Reg::R21, Reg::R3);
        a.ldq(Reg::R4, 0, Reg::R3);
        a.s8addq(Reg::R2, Reg::R21, Reg::R5);
        a.ldq(Reg::R6, 0, Reg::R5);
        a.stq(Reg::R6, 0, Reg::R3);
        a.stq(Reg::R4, 0, Reg::R5);
        a.addq_lit(Reg::R1, 1, Reg::R1);
        a.cmplt_lit(Reg::R1, N as u8, Reg::R2);
        a.bne(Reg::R2, "shuffle");
        a.la(Reg::R1, "rng_cell");
        a.stq(Reg::R22, 0, Reg::R1);
        a.call("cost_fn");
        a.la(Reg::R1, OUTPUT_SYMBOL);
        a.stq(Reg::R0, 0, Reg::R1); // initial cost

        // --- checkpoint + activation markers.
        a.fi_read_init();
        a.fi_activate(0);

        // --- kernel: the anneal.
        a.la(Reg::R21, "pos");
        a.la(Reg::R1, "rng_cell");
        a.ldq(Reg::R22, 0, Reg::R1);
        a.li(Reg::R20, LCG_MUL as i64);
        a.li(Reg::R23, LCG_INC as i64);
        a.call("cost_fn");
        a.mov(Reg::R0, Reg::R27); // current cost (r27: calls clobber ra/r26)
        a.li(Reg::R14, 0); // step
        a.li(Reg::R15, self.steps as i64);
        a.label("sa_loop");
        // pick i (r1), j (r2)
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R23, Reg::R22);
        a.srl_lit(Reg::R22, 25, Reg::R1);
        a.and_lit(Reg::R1, (N - 1) as u8, Reg::R1);
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R23, Reg::R22);
        a.srl_lit(Reg::R22, 25, Reg::R2);
        a.and_lit(Reg::R2, (N - 1) as u8, Reg::R2);
        // swap pos[i], pos[j]
        a.s8addq(Reg::R1, Reg::R21, Reg::R3);
        a.ldq(Reg::R4, 0, Reg::R3);
        a.s8addq(Reg::R2, Reg::R21, Reg::R5);
        a.ldq(Reg::R6, 0, Reg::R5);
        a.stq(Reg::R6, 0, Reg::R3);
        a.stq(Reg::R4, 0, Reg::R5);
        a.call("cost_fn"); // r0 = new cost
        a.cmple(Reg::R0, Reg::R27, Reg::R7);
        a.bne(Reg::R7, "sa_accept");
        // uphill: accept if ((rng>>20) & 1023) < T, T = steps - step
        a.mulq(Reg::R22, Reg::R20, Reg::R22);
        a.addq(Reg::R22, Reg::R23, Reg::R22);
        a.srl_lit(Reg::R22, 20, Reg::R7);
        a.li(Reg::R18, 1023);
        a.and(Reg::R7, Reg::R18, Reg::R7);
        a.subq(Reg::R15, Reg::R14, Reg::R18); // T
        a.cmplt(Reg::R7, Reg::R18, Reg::R7);
        a.bne(Reg::R7, "sa_accept");
        // reject: swap back
        a.stq(Reg::R4, 0, Reg::R3);
        a.stq(Reg::R6, 0, Reg::R5);
        a.br("sa_next");
        a.label("sa_accept");
        a.mov(Reg::R0, Reg::R27);
        a.label("sa_next");
        a.addq_lit(Reg::R14, 1, Reg::R14);
        a.cmplt(Reg::R14, Reg::R15, Reg::R7);
        a.bne(Reg::R7, "sa_loop");

        // --- deactivate, write final cost + placement, exit.
        a.fi_activate(0);
        a.la(Reg::R1, OUTPUT_SYMBOL);
        a.stq(Reg::R27, 8, Reg::R1);
        a.li(Reg::R2, 0);
        a.label("emit");
        a.s8addq(Reg::R2, Reg::R21, Reg::R3);
        a.ldq(Reg::R4, 0, Reg::R3);
        a.addq_lit(Reg::R2, 2, Reg::R5);
        a.s8addq(Reg::R5, Reg::R1, Reg::R5);
        a.stq(Reg::R4, 0, Reg::R5);
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.cmplt_lit(Reg::R2, N as u8, Reg::R3);
        a.bne(Reg::R3, "emit");
        a.exit(0);

        GuestWorkload { program: a.finish().expect("canneal assembles"), output_len: 16 + N * 8 }
    }

    fn reference(&self) -> Vec<u8> {
        let (mut pos, mut s) = self.initial_placement();
        let initial = wirelength(&pos);
        let mut cost = wirelength(&pos);
        for step in 0..self.steps {
            s = lcg(s);
            let i = ((s >> 25) & (N as u64 - 1)) as usize;
            s = lcg(s);
            let j = ((s >> 25) & (N as u64 - 1)) as usize;
            pos.swap(i, j);
            let new = wirelength(&pos);
            if new <= cost {
                cost = new;
            } else {
                s = lcg(s);
                let r = (s >> 20) & 1023;
                let t = self.steps - step;
                if r < t {
                    cost = new;
                } else {
                    pos.swap(i, j);
                }
            }
        }
        let mut out = Vec::with_capacity(16 + N * 8);
        out.extend_from_slice(&initial.to_le_bytes());
        out.extend_from_slice(&cost.to_le_bytes());
        for p in &pos {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
        let _ = golden;
        let Some((declared_final, pos)) = read_out(faulty) else { return false };
        // Valid chip: the placement must be a permutation of the cells.
        let mut seen = [false; N];
        for &p in &pos {
            let Ok(idx) = usize::try_from(p) else { return false };
            if idx >= N || seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
        // The claimed cost must be real, and routing must have improved.
        let real = wirelength(&pos);
        let (initial_pos, _) = self.initial_placement();
        real == declared_final && real < wirelength(&initial_pos)
    }
}

fn read_out(bytes: &[u8]) -> Option<(u64, Vec<u64>)> {
    if bytes.len() < 16 + N * 8 {
        return None;
    }
    let final_cost = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let pos = bytes[16..16 + N * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    Some((final_cost, pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::reference_run;
    use gemfi_cpu::CpuKind;

    #[test]
    fn annealing_reduces_cost() {
        let w = Canneal::default();
        let out = w.reference();
        let initial = u64::from_le_bytes(out[..8].try_into().unwrap());
        let (final_cost, pos) = read_out(&out).unwrap();
        assert!(final_cost < initial, "SA must improve: {final_cost} vs {initial}");
        assert_eq!(wirelength(&pos), final_cost);
        assert!(w.accept(&out, &out));
    }

    #[test]
    fn guest_matches_host_bit_exactly() {
        let w = Canneal { steps: 60, ..Canneal::default() };
        let run = reference_run(&w, CpuKind::Atomic).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn guest_matches_on_o3() {
        let w = Canneal { steps: 25, ..Canneal::default() };
        let run = reference_run(&w, CpuKind::O3).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn invalid_permutations_are_rejected() {
        let w = Canneal::default();
        let golden = w.reference();
        // Duplicate a cell.
        let mut dup = golden.clone();
        let cell = dup[16..24].to_vec();
        dup[24..32].copy_from_slice(&cell);
        assert!(!w.accept(&dup, &golden));
        // Lie about the cost.
        let mut lie = golden.clone();
        lie[8..16].copy_from_slice(&0u64.to_le_bytes());
        assert!(!w.accept(&lie, &golden));
        assert!(!w.accept(&[], &golden));
    }

    #[test]
    fn nets_are_symmetric_free_but_deterministic() {
        for e in 0..N {
            let (a, b) = nets(e);
            assert!(a < N && b < N);
        }
        assert_eq!(nets(63).0, 0, "ring wraps");
    }
}
