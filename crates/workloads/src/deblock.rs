//! AVS deblocking filter kernel (Sec. IV: "a kernel of the AVS video
//! decoding process. We apply it on a 720X240 pixel image").
//!
//! Integer-only — the paper highlights that "Deblocking, a benchmark with no
//! floating point operations, behaves exactly as expected, demonstrating
//! 100% strict correctness" under FP-register injection. The paper's
//! acceptance gate: outputs "with PSNR higher than 80 dB, when compared with
//! the error-free execution".

use crate::harness::{GuestWorkload, Workload, OUTPUT_SYMBOL};
use crate::psnr::psnr_u8;
use gemfi_asm::{Assembler, Reg};

/// Edge-filter activation thresholds (AVS-style alpha/beta).
const ALPHA: i64 = 40;
const BETA: i64 = 20;

/// The deblocking-filter workload. Pixels are stored one per 64-bit word
/// (the Alpha subset, like early Alpha, has no byte loads).
#[derive(Debug, Clone, Copy)]
pub struct Deblock {
    /// Image width (multiple of 8).
    pub width: usize,
    /// Image height (multiple of 8).
    pub height: usize,
}

impl Deblock {
    /// The paper's frame size.
    pub fn paper() -> Deblock {
        Deblock { width: 720, height: 240 }
    }
}

impl Default for Deblock {
    fn default() -> Deblock {
        Deblock { width: 96, height: 32 }
    }
}

/// The synthetic input frame: smooth gradients *plus per-8×8-block DC
/// offsets*, so block boundaries show the mild discontinuities the filter
/// exists to smooth (a pure gradient is a fixpoint of the filter).
pub fn input_pixel(x: usize, y: usize) -> u64 {
    ((x * 2 + y * 3 + (x >> 3) * 37 + (y >> 3) * 29) & 0xff) as u64
}

fn host_filter(img: &mut [i64], w: usize, h: usize) {
    let filt = |img: &mut [i64], q0_idx: usize, d: usize| {
        let p0 = img[q0_idx - d];
        let p1 = img[q0_idx - 2 * d];
        let q0 = img[q0_idx];
        let q1 = img[q0_idx + d];
        if (p0 - q0).abs() < ALPHA && (p1 - p0).abs() < BETA && (q1 - q0).abs() < BETA {
            img[q0_idx - d] = (p1 + 2 * p0 + q0 + 2) >> 2;
            img[q0_idx] = (q1 + 2 * q0 + p0 + 2) >> 2;
        }
    };
    // Vertical block edges.
    for xe in (8..w).step_by(8) {
        for y in 0..h {
            filt(img, y * w + xe, 1);
        }
    }
    // Horizontal block edges.
    for ye in (8..h).step_by(8) {
        for x in 0..w {
            filt(img, ye * w + x, w);
        }
    }
}

/// Extracts the low byte of each output word (the pixel values).
pub fn pixels_of(bytes: &[u8]) -> Vec<u8> {
    bytes.chunks_exact(8).map(|c| c[0]).collect()
}

impl Workload for Deblock {
    fn name(&self) -> &'static str {
        "deblock"
    }

    fn build(&self) -> GuestWorkload {
        assert!(self.width.is_multiple_of(8) && self.height.is_multiple_of(8));
        let w = self.width as i64;
        let h = self.height as i64;

        let mut a = Assembler::new();
        a.dsym(OUTPUT_SYMBOL);
        a.zeros(self.width * self.height * 8);

        a.entry("main");

        // filter_at(a0 = address of q0, a1 = byte distance to p0).
        // Clobbers r8–r13, r24, r25.
        a.label("filter_at");
        a.subq(Reg::A0, Reg::A1, Reg::R8); // &p0
        a.subq(Reg::R8, Reg::A1, Reg::R9); // &p1
        a.addq(Reg::A0, Reg::A1, Reg::R10); // &q1
        a.ldq(Reg::R11, 0, Reg::R8); // p0
        a.ldq(Reg::R12, 0, Reg::R9); // p1
        a.ldq(Reg::R13, 0, Reg::A0); // q0
        a.ldq(Reg::R10, 0, Reg::R10); // q1
                                      // |p0-q0| < ALPHA
        a.subq(Reg::R11, Reg::R13, Reg::R24);
        a.subq(Reg::ZERO, Reg::R24, Reg::R25);
        a.cmovlt(Reg::R24, Reg::R25, Reg::R24);
        a.cmplt_lit(Reg::R24, ALPHA as u8, Reg::R24);
        a.beq(Reg::R24, "filter_done");
        // |p1-p0| < BETA
        a.subq(Reg::R12, Reg::R11, Reg::R24);
        a.subq(Reg::ZERO, Reg::R24, Reg::R25);
        a.cmovlt(Reg::R24, Reg::R25, Reg::R24);
        a.cmplt_lit(Reg::R24, BETA as u8, Reg::R24);
        a.beq(Reg::R24, "filter_done");
        // |q1-q0| < BETA
        a.subq(Reg::R10, Reg::R13, Reg::R24);
        a.subq(Reg::ZERO, Reg::R24, Reg::R25);
        a.cmovlt(Reg::R24, Reg::R25, Reg::R24);
        a.cmplt_lit(Reg::R24, BETA as u8, Reg::R24);
        a.beq(Reg::R24, "filter_done");
        // p0' = (p1 + 2p0 + q0 + 2) >> 2
        a.addq(Reg::R11, Reg::R11, Reg::R24); // 2p0
        a.addq(Reg::R24, Reg::R12, Reg::R24); // + p1
        a.addq(Reg::R24, Reg::R13, Reg::R24); // + q0
        a.addq_lit(Reg::R24, 2, Reg::R24);
        a.sra_lit(Reg::R24, 2, Reg::R24);
        a.stq(Reg::R24, 0, Reg::R8);
        // q0' = (q1 + 2q0 + p0 + 2) >> 2
        a.addq(Reg::R13, Reg::R13, Reg::R24); // 2q0
        a.addq(Reg::R24, Reg::R10, Reg::R24); // + q1
        a.addq(Reg::R24, Reg::R11, Reg::R24); // + p0
        a.addq_lit(Reg::R24, 2, Reg::R24);
        a.sra_lit(Reg::R24, 2, Reg::R24);
        a.stq(Reg::R24, 0, Reg::A0);
        a.label("filter_done");
        a.ret();

        // --- main: initialization phase — synthesize the frame in place.
        a.label("main");
        a.la(Reg::R1, OUTPUT_SYMBOL);
        a.li(Reg::R2, 0); // y
        a.li(Reg::R20, w); // W
        a.li(Reg::R21, h); // H
        a.label("gen_y");
        a.li(Reg::R3, 0); // x
        a.label("gen_x");
        // v = (x*2 + y*3 + (x>>3)*37 + (y>>3)*29) & 255
        a.addq(Reg::R3, Reg::R3, Reg::R4);
        a.mulq_lit(Reg::R2, 3, Reg::R5);
        a.addq(Reg::R4, Reg::R5, Reg::R4);
        a.srl_lit(Reg::R3, 3, Reg::R5);
        a.mulq_lit(Reg::R5, 37, Reg::R5);
        a.addq(Reg::R4, Reg::R5, Reg::R4);
        a.srl_lit(Reg::R2, 3, Reg::R5);
        a.mulq_lit(Reg::R5, 29, Reg::R5);
        a.addq(Reg::R4, Reg::R5, Reg::R4);
        a.and_lit(Reg::R4, 0xff, Reg::R4);
        // addr = base + (y*W + x)*8
        a.mulq(Reg::R2, Reg::R20, Reg::R5);
        a.addq(Reg::R5, Reg::R3, Reg::R5);
        a.s8addq(Reg::R5, Reg::R1, Reg::R5);
        a.stq(Reg::R4, 0, Reg::R5);
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R20, Reg::R4);
        a.bne(Reg::R4, "gen_x");
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.cmplt(Reg::R2, Reg::R21, Reg::R4);
        a.bne(Reg::R4, "gen_y");

        // --- checkpoint + activation markers.
        a.fi_read_init();
        a.fi_activate(0);

        // --- kernel: vertical edges.
        a.la(Reg::R1, OUTPUT_SYMBOL);
        a.li(Reg::R2, 8); // xe
        a.label("v_edge");
        a.li(Reg::R3, 0); // y
        a.label("v_row");
        a.mulq(Reg::R3, Reg::R20, Reg::R4);
        a.addq(Reg::R4, Reg::R2, Reg::R4);
        a.s8addq(Reg::R4, Reg::R1, Reg::A0);
        a.li(Reg::A1, 8);
        a.call("filter_at");
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R21, Reg::R4);
        a.bne(Reg::R4, "v_row");
        a.addq_lit(Reg::R2, 8, Reg::R2);
        a.cmplt(Reg::R2, Reg::R20, Reg::R4);
        a.bne(Reg::R4, "v_edge");
        // horizontal edges.
        a.li(Reg::R2, 8); // ye
        a.label("h_edge");
        a.li(Reg::R3, 0); // x
        a.label("h_col");
        a.mulq(Reg::R2, Reg::R20, Reg::R4);
        a.addq(Reg::R4, Reg::R3, Reg::R4);
        a.s8addq(Reg::R4, Reg::R1, Reg::A0);
        a.sll_lit(Reg::R20, 3, Reg::A1); // d = W*8 bytes
        a.call("filter_at");
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R20, Reg::R4);
        a.bne(Reg::R4, "h_col");
        a.addq_lit(Reg::R2, 8, Reg::R2);
        a.cmplt(Reg::R2, Reg::R21, Reg::R4);
        a.bne(Reg::R4, "h_edge");

        // --- deactivate and exit (the image was filtered in place).
        a.fi_activate(0);
        a.exit(0);

        GuestWorkload {
            program: a.finish().expect("deblock assembles"),
            output_len: self.width * self.height * 8,
        }
    }

    fn reference(&self) -> Vec<u8> {
        let mut img: Vec<i64> = (0..self.height)
            .flat_map(|y| (0..self.width).map(move |x| input_pixel(x, y) as i64))
            .collect();
        host_filter(&mut img, self.width, self.height);
        img.iter().flat_map(|p| (*p as u64).to_le_bytes()).collect()
    }

    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
        if faulty.len() != golden.len() {
            return false;
        }
        psnr_u8(&pixels_of(faulty), &pixels_of(golden)) > 80.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::reference_run;
    use gemfi_cpu::CpuKind;

    #[test]
    fn reference_actually_filters_edges() {
        let w = Deblock::default();
        let out = pixels_of(&w.reference());
        let unfiltered: Vec<u8> = (0..w.height)
            .flat_map(|y| (0..w.width).map(move |x| input_pixel(x, y) as u8))
            .collect();
        assert_ne!(out, unfiltered, "the filter must modify boundary pixels");
        // But the change is mild smoothing, not destruction.
        assert!(psnr_u8(&out, &unfiltered) > 30.0);
    }

    #[test]
    fn guest_matches_host_bit_exactly() {
        let w = Deblock { width: 24, height: 16 };
        let run = reference_run(&w, CpuKind::Atomic).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn guest_matches_on_o3() {
        let w = Deblock { width: 16, height: 16 };
        let run = reference_run(&w, CpuKind::O3).expect("runs");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn acceptance_is_80db_vs_golden() {
        let w = Deblock::default();
        let golden = w.reference();
        assert!(w.accept(&golden, &golden));
        // One LSB error in a big image: above 80 dB → acceptable.
        let mut tiny = golden.clone();
        tiny[0] ^= 1;
        assert!(w.accept(&tiny, &golden));
        // Gross corruption: rejected.
        let mut gross = golden.clone();
        for px in gross.chunks_exact_mut(8) {
            px[0] ^= 0x80;
        }
        assert!(!w.accept(&gross, &golden));
        assert!(!w.accept(&[], &golden));
    }
}
