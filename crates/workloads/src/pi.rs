//! Monte Carlo PI estimation (Sec. IV: "estimates the value of PI by
//! randomly selecting 10^5 points within a unit square and evaluating
//! whether they fall into the inscribed circle with radius one").
//!
//! The paper's acceptance gate: "we accept experiments that have computed
//! the first two decimal points correctly". The benchmark is almost pure
//! computation with essentially no data memory traffic, which is why the
//! paper finds it nearly immune to execute-stage address faults and why
//! injection timing does not correlate with outcome (Fig. 6).

use crate::harness::{GuestWorkload, Workload, OUTPUT_SYMBOL};
use gemfi_asm::{Assembler, FReg, Reg};

const LCG_MUL: u64 = 6364136223846793005;
const LCG_INC: u64 = 1442695040888963407;
/// 2^-53: maps a 53-bit integer into [0, 1).
const INV_2_53: f64 = 1.0 / 9007199254740992.0;

/// The Monte Carlo PI workload.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloPi {
    /// Number of sample points.
    pub points: u64,
    /// LCG warm-up iterations performed in the initialization phase (before
    /// the checkpoint marker).
    pub init_spins: u64,
    /// RNG seed.
    pub seed: u64,
}

impl MonteCarloPi {
    /// The paper's configuration: 10^5 points.
    pub fn paper() -> MonteCarloPi {
        MonteCarloPi { points: 100_000, ..MonteCarloPi::default() }
    }
}

impl Default for MonteCarloPi {
    /// Scaled-down default used in tests and CI-sized campaigns.
    fn default() -> MonteCarloPi {
        MonteCarloPi { points: 2_000, init_spins: 20_000, seed: 0x9e3779b97f4a7c15 }
    }
}

fn lcg(s: u64) -> u64 {
    s.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC)
}

impl Workload for MonteCarloPi {
    fn name(&self) -> &'static str {
        "pi"
    }

    fn build(&self) -> GuestWorkload {
        let mut a = Assembler::new();
        a.dsym(OUTPUT_SYMBOL);
        a.data_f64(&[0.0]); // estimated pi
        a.data_u64(&[0]); // inside-circle count

        // --- initialization phase: spin the RNG (Listing 2's
        // initialize_input_data), leaving the seed in memory.
        a.dsym("seed_cell");
        a.data_u64(&[0]);
        a.li(Reg::R1, self.seed as i64);
        a.li(Reg::R9, LCG_MUL as i64);
        a.li(Reg::R10, LCG_INC as i64);
        a.li(Reg::R3, self.init_spins as i64);
        a.label("init_loop");
        a.mulq(Reg::R1, Reg::R9, Reg::R1);
        a.addq(Reg::R1, Reg::R10, Reg::R1);
        a.subq_lit(Reg::R3, 1, Reg::R3);
        a.bgt(Reg::R3, "init_loop");
        a.la(Reg::R4, "seed_cell");
        a.stq(Reg::R1, 0, Reg::R4);

        // --- checkpoint + activation markers.
        a.fi_read_init();
        a.fi_activate(0);

        // --- kernel.
        a.la(Reg::R4, "seed_cell");
        a.ldq(Reg::R1, 0, Reg::R4); // s
        a.li(Reg::R2, 0); // count
        a.li(Reg::R3, 0); // i
        a.li(Reg::R4, self.points as i64); // n
        a.lif(FReg::F4, 1.0, Reg::R8);
        a.lif(FReg::F5, INV_2_53, Reg::R8);
        a.label("loop");
        // x
        a.mulq(Reg::R1, Reg::R9, Reg::R1);
        a.addq(Reg::R1, Reg::R10, Reg::R1);
        a.srl_lit(Reg::R1, 11, Reg::R6);
        a.itoft(Reg::R6, FReg::F1);
        a.cvtqt(FReg::F1, FReg::F1);
        a.mult(FReg::F1, FReg::F5, FReg::F1);
        // y
        a.mulq(Reg::R1, Reg::R9, Reg::R1);
        a.addq(Reg::R1, Reg::R10, Reg::R1);
        a.srl_lit(Reg::R1, 11, Reg::R6);
        a.itoft(Reg::R6, FReg::F2);
        a.cvtqt(FReg::F2, FReg::F2);
        a.mult(FReg::F2, FReg::F5, FReg::F2);
        // x^2 + y^2 <= 1.0 ?
        a.mult(FReg::F1, FReg::F1, FReg::F3);
        a.mult(FReg::F2, FReg::F2, FReg::F6);
        a.addt(FReg::F3, FReg::F6, FReg::F3);
        a.cmptle(FReg::F3, FReg::F4, FReg::F7);
        a.fbeq(FReg::F7, "outside");
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.label("outside");
        a.addq_lit(Reg::R3, 1, Reg::R3);
        a.cmplt(Reg::R3, Reg::R4, Reg::R7);
        a.bne(Reg::R7, "loop");

        // pi = 4 * count / n
        a.itoft(Reg::R2, FReg::F1);
        a.cvtqt(FReg::F1, FReg::F1);
        a.lif(FReg::F2, 4.0, Reg::R8);
        a.mult(FReg::F1, FReg::F2, FReg::F1);
        a.itoft(Reg::R4, FReg::F2);
        a.cvtqt(FReg::F2, FReg::F2);
        a.divt(FReg::F1, FReg::F2, FReg::F1);

        // --- deactivate, store results, exit.
        a.fi_activate(0);
        a.la(Reg::R5, OUTPUT_SYMBOL);
        a.stt(FReg::F1, 0, Reg::R5);
        a.stq(Reg::R2, 8, Reg::R5);
        a.exit(0);

        GuestWorkload { program: a.finish().expect("pi assembles"), output_len: 16 }
    }

    fn reference(&self) -> Vec<u8> {
        let mut s = self.seed;
        for _ in 0..self.init_spins {
            s = lcg(s);
        }
        let mut count: u64 = 0;
        for _ in 0..self.points {
            s = lcg(s);
            let x = ((s >> 11) as i64 as f64) * INV_2_53;
            s = lcg(s);
            let y = ((s >> 11) as i64 as f64) * INV_2_53;
            if x * x + y * y <= 1.0 {
                count += 1;
            }
        }
        let pi = (count as i64 as f64) * 4.0 / (self.points as i64 as f64);
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&pi.to_bits().to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out
    }

    fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
        let (Some(f), Some(g)) = (read_pi(faulty), read_pi(golden)) else {
            return false;
        };
        // "the first two decimal points correct" — within half a unit in
        // the second decimal place.
        f.is_finite() && (f - g).abs() < 0.005
    }
}

fn read_pi(bytes: &[u8]) -> Option<f64> {
    let bits = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
    Some(f64::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::reference_run;
    use gemfi_cpu::CpuKind;

    #[test]
    fn reference_estimate_is_close_to_pi() {
        let w = MonteCarloPi::default();
        let out = w.reference();
        let pi = read_pi(&out).unwrap();
        assert!((pi - std::f64::consts::PI).abs() < 0.1, "estimate {pi}");
    }

    #[test]
    fn guest_matches_host_bit_exactly() {
        let w = MonteCarloPi { points: 300, init_spins: 100, ..MonteCarloPi::default() };
        let run = reference_run(&w, CpuKind::Atomic).expect("runs to completion");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn guest_matches_on_o3_too() {
        let w = MonteCarloPi { points: 150, init_spins: 50, ..MonteCarloPi::default() };
        let run = reference_run(&w, CpuKind::O3).expect("runs to completion");
        assert_eq!(run.bytes, w.reference());
    }

    #[test]
    fn acceptance_gate_is_two_decimals() {
        let w = MonteCarloPi::default();
        let golden = w.reference();
        let mut close = golden.clone();
        close[..8].copy_from_slice(&(read_pi(&golden).unwrap() + 0.004).to_bits().to_le_bytes());
        assert!(w.accept(&close, &golden));
        let mut far = golden.clone();
        far[..8].copy_from_slice(&(read_pi(&golden).unwrap() + 0.02).to_bits().to_le_bytes());
        assert!(!w.accept(&far, &golden));
        // NaN / truncated outputs are rejected.
        let mut nan = golden.clone();
        nan[..8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(!w.accept(&nan, &golden));
        assert!(!w.accept(&[], &golden));
    }
}
