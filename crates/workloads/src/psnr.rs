//! Peak signal-to-noise ratio, the paper's image-quality gate.
//!
//! DCT outputs "with PSNR higher than 30" (vs. the uncompressed input) and
//! deblocking outputs "with PSNR higher than 80 dB" (vs. the fault-free
//! output) count as *correct* (Sec. IV-B-1).

/// PSNR in dB between two 8-bit images of equal length. Returns
/// `f64::INFINITY` for identical images.
///
/// # Panics
///
/// Panics if lengths differ (caller bug, not data error).
pub fn psnr_u8(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len(), "PSNR requires equal-size images");
    if a.is_empty() {
        return f64::INFINITY;
    }
    let mse: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((255.0 * 255.0) / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_infinite_psnr() {
        let img = vec![7u8; 64];
        assert_eq!(psnr_u8(&img, &img), f64::INFINITY);
    }

    #[test]
    fn single_lsb_error_is_far_above_80db() {
        let a = vec![100u8; 10_000];
        let mut b = a.clone();
        b[0] ^= 1;
        let p = psnr_u8(&a, &b);
        assert!(p > 80.0, "psnr {p}");
    }

    #[test]
    fn gross_corruption_is_below_30db() {
        let a = vec![0u8; 256];
        let b = vec![255u8; 256];
        assert!(psnr_u8(&a, &b) < 30.0);
    }

    #[test]
    fn psnr_is_symmetric() {
        let a: Vec<u8> = (0..=255).collect();
        let b: Vec<u8> = (0..=255).rev().collect();
        assert!((psnr_u8(&a, &b) - psnr_u8(&b, &a)).abs() < 1e-12);
    }
}
