//! Mid-run experiment snapshots: periodic worker-side checkpoints so a
//! crashed worker resumes a long experiment from its last snapshot instead
//! of replaying it from the campaign checkpoint.
//!
//! A snapshot is only captured once the run is past its CPU switch and the
//! engine reports itself fully dormant: at that point every injection
//! record's propagation flags (`consumed`/`overwritten`) are final, so the
//! records can be persisted alongside the machine image and threaded back
//! into classification on resume ([`crate::runner::finish_result_with_records`]).
//! Before dormancy the engine still holds live watches that would mutate
//! the records, and a snapshot would freeze them mid-observation.
//!
//! File layout (`expNNNNN.snap`, written atomically via tmp + rename):
//!
//! ```text
//! {"snapshot":"gemfi","version":1,"spec":"...","origin_digest":D,"budget":B,"records":N,"ckpt_len":L}
//! {"tick":..,"stage":..,"thread":..,"pc":..,"before":..,"after":..,"consumed":..,"overwritten":..[,"instr":".."]}
//! ... (N record lines) ...
//! <L raw checkpoint bytes>
//! ```
//!
//! The header pins the fault spec and the *origin* checkpoint digest; a
//! snapshot that does not match the experiment being resumed is discarded
//! and the run starts fresh — stale artifacts degrade to wasted work, never
//! to wrong results.

use crate::runner::{
    drive_to_completion_observed, finish_result_with_records, watchdog_budget, ExperimentResult,
    PreparedWorkload, RunnerConfig,
};
use crate::wire::{json_escape, parse_flat_object};
use gemfi::{AbortToken, FaultConfig, FaultSpec, GemFiEngine, InjectionRecord, Stage};
use gemfi_isa::codec::Codec;
use gemfi_sim::{Checkpoint, Machine, RunExit};
use gemfi_workloads::Workload;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Snapshot file format version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// When a worker captures mid-run snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Minimum simulated ticks between captures; `0` disables snapshots.
    pub interval_ticks: u64,
}

impl SnapshotPolicy {
    /// No mid-run snapshots (the default: short experiments re-run cheaply).
    pub fn disabled() -> SnapshotPolicy {
        SnapshotPolicy { interval_ticks: 0 }
    }

    /// Capture roughly every `ticks` simulated ticks (first capture once
    /// the run is `ticks` past the campaign checkpoint and dormant).
    pub fn every(ticks: u64) -> SnapshotPolicy {
        SnapshotPolicy { interval_ticks: ticks }
    }

    /// Whether this policy captures at all.
    pub fn enabled(&self) -> bool {
        self.interval_ticks > 0
    }
}

/// A decoded mid-run snapshot.
pub(crate) struct Snapshot {
    pub(crate) spec: String,
    pub(crate) origin_digest: u64,
    pub(crate) budget: u64,
    pub(crate) records: Vec<InjectionRecord>,
    pub(crate) checkpoint: Checkpoint,
}

fn render_record(r: &InjectionRecord) -> String {
    let mut line = format!(
        "{{\"tick\":{},\"stage\":{},\"thread\":{},\"pc\":{},\"before\":{},\"after\":{},\"consumed\":{},\"overwritten\":{}",
        r.tick,
        r.stage.index(),
        r.thread,
        r.pc,
        r.before,
        r.after,
        u64::from(r.consumed),
        u64::from(r.overwritten),
    );
    if let Some(instr) = &r.instr {
        line.push_str(&format!(",\"instr\":\"{}\"", json_escape(instr)));
    }
    line.push('}');
    line
}

/// Record lines carry everything but the fault location, which is
/// recovered from the (single-fault) spec the snapshot pins.
fn parse_record(line: &str, spec: &FaultSpec) -> Result<InjectionRecord, String> {
    let f = parse_flat_object(line)?;
    let stage_idx = f.num_field("stage")? as usize;
    let stage = *Stage::ALL.get(stage_idx).ok_or_else(|| format!("bad stage index {stage_idx}"))?;
    Ok(InjectionRecord {
        tick: f.num_field("tick")?,
        stage,
        location: spec.location,
        thread: f.num_field("thread")? as u32,
        pc: f.num_field("pc")?,
        instr: f.opt_str_field("instr"),
        before: f.num_field("before")?,
        after: f.num_field("after")?,
        consumed: f.num_field("consumed")? != 0,
        overwritten: f.num_field("overwritten")? != 0,
    })
}

/// Writes a snapshot atomically (tmp + rename): a crash mid-write leaves
/// either the previous snapshot or none, never a torn file.
pub(crate) fn write_snapshot(
    path: &Path,
    spec: &FaultSpec,
    origin_digest: u64,
    budget: u64,
    records: &[InjectionRecord],
    checkpoint: &Checkpoint,
) -> std::io::Result<()> {
    let bytes = checkpoint.to_bytes();
    let tmp = path.with_extension("snap.tmp");
    {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        writeln!(
            w,
            "{{\"snapshot\":\"gemfi\",\"version\":{SNAPSHOT_VERSION},\"spec\":\"{}\",\"origin_digest\":{origin_digest},\"budget\":{budget},\"records\":{},\"ckpt_len\":{}}}",
            json_escape(&spec.to_string()),
            records.len(),
            bytes.len(),
        )?;
        for r in records {
            writeln!(w, "{}", render_record(r))?;
        }
        w.write_all(&bytes)?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads and validates a snapshot file. Any malformation is an `Err`; the
/// caller treats it as "no snapshot".
pub(crate) fn load_snapshot(path: &Path) -> Result<Snapshot, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open: {e}"))?;
    let mut r = BufReader::new(file);
    let mut header = String::new();
    r.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
    let h = parse_flat_object(header.trim_end())?;
    if h.str_field("snapshot")? != "gemfi" {
        return Err("not a snapshot file".to_string());
    }
    if h.num_field("version")? != SNAPSHOT_VERSION {
        return Err("snapshot version mismatch".to_string());
    }
    let spec_line = h.str_field("spec")?;
    let cfg: FaultConfig = spec_line.parse().map_err(|e| format!("snapshot spec: {e}"))?;
    let &[spec] = cfg.faults() else {
        return Err("snapshot must pin exactly one fault".to_string());
    };
    let n = h.num_field("records")? as usize;
    let ckpt_len = h.num_field("ckpt_len")? as usize;
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let mut line = String::new();
        r.read_line(&mut line).map_err(|e| format!("read record {i}: {e}"))?;
        records.push(parse_record(line.trim_end(), &spec)?);
    }
    let mut bytes = vec![0u8; ckpt_len];
    r.read_exact(&mut bytes).map_err(|e| format!("read checkpoint: {e}"))?;
    let checkpoint =
        Checkpoint::from_bytes(&bytes).map_err(|e| format!("decode checkpoint: {e:?}"))?;
    Ok(Snapshot {
        spec: spec_line,
        origin_digest: h.num_field("origin_digest")?,
        budget: h.num_field("budget")?,
        records,
        checkpoint,
    })
}

/// Runs one experiment with periodic mid-run snapshots at `snap_path`. If a
/// valid snapshot for this exact experiment (same spec, same origin
/// checkpoint) already exists, the run resumes from it instead of replaying
/// from `checkpoint` — the crashed-worker recovery path. The snapshot file
/// is left in place on completion; the caller deletes it once the result is
/// durably reported.
#[allow(clippy::too_many_arguments)] // mirrors run_experiment + the snapshot pair
pub fn run_experiment_snapshotted(
    checkpoint: &Checkpoint,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    config: &RunnerConfig,
    abort: &AbortToken,
    snap_path: &Path,
    policy: SnapshotPolicy,
) -> ExperimentResult {
    let origin_digest = checkpoint.digest();
    if policy.enabled() && snap_path.exists() {
        if let Ok(snap) = load_snapshot(snap_path) {
            if snap.spec == spec.to_string() && snap.origin_digest == origin_digest {
                return resume_from(
                    snap,
                    checkpoint.tick(),
                    origin_digest,
                    prepared,
                    workload,
                    spec,
                    config,
                    abort,
                    snap_path,
                    policy,
                );
            }
        }
        // Stale or foreign snapshot: start over rather than trust it.
        let _ = std::fs::remove_file(snap_path);
    }

    let mut engine = GemFiEngine::new(FaultConfig::from_specs(vec![spec]));
    engine.set_abort_token(abort.clone());
    let budget = watchdog_budget(checkpoint, prepared, config);
    let mut machine =
        Machine::restore_with(checkpoint, Some(config.inject_cpu), Some(budget), engine);
    machine.set_elide(config.elide);
    machine.set_superblock(config.superblock);
    let origin = checkpoint.tick();
    let mut observer = snapshot_observer(policy, origin, origin_digest, budget, spec, snap_path);
    let (exit, aborted) =
        drive_to_completion_observed(&mut machine, config, abort, origin, &mut observer);
    finish_result(machine, origin, prepared, workload, spec, exit, aborted, None)
}

/// The per-chunk capture hook: snapshot when the run is switched, dormant,
/// and at least `interval_ticks` past the previous capture.
fn snapshot_observer<'a>(
    policy: SnapshotPolicy,
    origin: u64,
    origin_digest: u64,
    budget: u64,
    spec: FaultSpec,
    snap_path: &'a Path,
) -> impl FnMut(&Machine<GemFiEngine>, bool) + 'a {
    let mut last_capture = origin;
    move |machine: &Machine<GemFiEngine>, switched: bool| {
        if !policy.enabled() || !switched {
            return;
        }
        let now = machine.tick();
        if now < last_capture.saturating_add(policy.interval_ticks) {
            return;
        }
        if !machine.hooks().is_dormant(0, now) {
            return;
        }
        let Some(ckpt) = machine.try_checkpoint() else { return };
        // Best-effort: a failed write costs resumability, not correctness.
        if write_snapshot(snap_path, &spec, origin_digest, budget, machine.hooks().records(), &ckpt)
            .is_ok()
        {
            last_capture = now;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn resume_from(
    snap: Snapshot,
    origin: u64,
    origin_digest: u64,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    config: &RunnerConfig,
    abort: &AbortToken,
    snap_path: &Path,
    policy: SnapshotPolicy,
) -> ExperimentResult {
    // The snapshot was captured post-switch and dormant: the fault has
    // already fired, so the resumed engine carries no faults; the persisted
    // records classify the run. `None` keeps the snapshot's CPU mode (the
    // finish model) and the stored absolute budget keeps the watchdog
    // anchored to the original run, not restarted from the snapshot.
    let mut engine = GemFiEngine::new(FaultConfig::empty());
    engine.set_abort_token(abort.clone());
    let mut machine = Machine::restore_with(&snap.checkpoint, None, Some(snap.budget), engine);
    machine.set_elide(config.elide);
    machine.set_superblock(config.superblock);
    // Already switched: drive with inject == finish so the loop never
    // re-enters the grace/switch protocol.
    let resume_cfg = RunnerConfig { inject_cpu: config.finish_cpu, ..*config };
    let mut observer = snapshot_observer(
        policy,
        snap.checkpoint.tick(),
        origin_digest,
        snap.budget,
        spec,
        snap_path,
    );
    let (exit, aborted) =
        drive_to_completion_observed(&mut machine, &resume_cfg, abort, origin, &mut observer);
    finish_result(machine, origin, prepared, workload, spec, exit, aborted, Some(snap.records))
}

#[allow(clippy::too_many_arguments)]
fn finish_result(
    machine: Machine<GemFiEngine>,
    origin: u64,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    exit: RunExit,
    aborted: bool,
    stored_records: Option<Vec<InjectionRecord>>,
) -> ExperimentResult {
    let records = match stored_records {
        Some(r) => r,
        None => machine.hooks().records().to_vec(),
    };
    finish_result_with_records(machine, origin, prepared, workload, spec, exit, aborted, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{prepare_workload, run_experiment};
    use gemfi::{FaultBehavior, FaultLocation, FaultTiming};
    use gemfi_workloads::pi::MonteCarloPi;

    fn small_pi() -> MonteCarloPi {
        MonteCarloPi { points: 120, init_spins: 60, ..MonteCarloPi::default() }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gemfi-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn live_spec(p: &PreparedWorkload) -> FaultSpec {
        FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 2 },
            thread: 0,
            timing: FaultTiming::Instructions(p.stage_events[4] / 3),
            behavior: FaultBehavior::Flip(1),
            occurrences: 1,
        }
    }

    /// A scheduling granularity fine enough that the short test workloads
    /// span many chunks *after* the CPU switch — the default 20k-tick chunk
    /// (and 2k-tick switch grace) swallows them whole and the observer would
    /// only ever see the pre-switch prefix. The dormant coarsening multiplies
    /// the chunk by [`crate::runner::DORMANT_CHUNK_FACTOR`], so the chunk
    /// must stay well under `kernel_ticks / that factor` for the post-switch
    /// phase to span multiple observer calls.
    fn fine_grained(p: &PreparedWorkload) -> RunnerConfig {
        RunnerConfig {
            chunk: (p.kernel_ticks / 256).max(4),
            switch_grace: (p.kernel_ticks / 256).max(4),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn snapshotted_run_matches_plain_run_and_leaves_a_resumable_file() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let spec = live_spec(&p);
        let cfg = fine_grained(&p);
        let plain = run_experiment(&p, &w, spec, &cfg);

        let dir = scratch("roundtrip");
        let snap = dir.join("exp00000.snap");
        let fresh = run_experiment_snapshotted(
            &p.checkpoint,
            &p,
            &w,
            spec,
            &cfg,
            &AbortToken::new(),
            &snap,
            SnapshotPolicy::every((p.kernel_ticks / 8).max(1)),
        );
        assert_eq!(fresh.outcome, plain.outcome);
        assert_eq!(fresh.exit, plain.exit);
        assert_eq!(fresh.output, plain.output);
        assert_eq!(fresh.injections.len(), plain.injections.len());
        assert!(snap.exists(), "a mid-run snapshot must have been captured");

        // Second call finds the (late-run) snapshot and takes the resume
        // path: same classification without replaying the whole run.
        let loaded = load_snapshot(&snap).unwrap();
        assert!(loaded.checkpoint.tick() > p.checkpoint.tick());
        assert_eq!(loaded.origin_digest, p.checkpoint.digest());
        let resumed = run_experiment_snapshotted(
            &p.checkpoint,
            &p,
            &w,
            spec,
            &cfg,
            &AbortToken::new(),
            &snap,
            SnapshotPolicy::every((p.kernel_ticks / 8).max(1)),
        );
        assert_eq!(resumed.outcome, plain.outcome, "{:?}", resumed.exit);
        assert_eq!(resumed.output, plain.output);
        assert_eq!(
            resumed.injections.len(),
            plain.injections.len(),
            "persisted records survive the resume"
        );
        for (a, b) in resumed.injections.iter().zip(plain.injections.iter()) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.consumed, b.consumed);
            assert_eq!(a.overwritten, b.overwritten);
        }
        assert_eq!(resumed.injection_fraction, plain.injection_fraction);
    }

    #[test]
    fn mismatched_snapshot_is_discarded_and_the_run_starts_fresh() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let spec = live_spec(&p);
        let other = FaultSpec { behavior: FaultBehavior::Flip(5), ..spec };
        let cfg = fine_grained(&p);
        let dir = scratch("mismatch");
        let snap = dir.join("exp00000.snap");

        // Produce a snapshot for `other`, then run `spec` against it.
        let _ = run_experiment_snapshotted(
            &p.checkpoint,
            &p,
            &w,
            other,
            &cfg,
            &AbortToken::new(),
            &snap,
            SnapshotPolicy::every((p.kernel_ticks / 8).max(1)),
        );
        assert!(snap.exists());
        let plain = run_experiment(&p, &w, spec, &cfg);
        let got = run_experiment_snapshotted(
            &p.checkpoint,
            &p,
            &w,
            spec,
            &cfg,
            &AbortToken::new(),
            &snap,
            SnapshotPolicy::every((p.kernel_ticks / 8).max(1)),
        );
        assert_eq!(got.outcome, plain.outcome);
        assert_eq!(got.output, plain.output);
    }

    #[test]
    fn torn_snapshot_file_is_rejected() {
        let dir = scratch("torn");
        let snap = dir.join("exp00000.snap");
        std::fs::write(&snap, "{\"snapshot\":\"gemfi\",\"version\":1,\"spec\":").unwrap();
        assert!(load_snapshot(&snap).is_err());
    }

    #[test]
    fn disabled_policy_never_writes() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let dir = scratch("disabled");
        let snap = dir.join("exp00000.snap");
        let _ = run_experiment_snapshotted(
            &p.checkpoint,
            &p,
            &w,
            live_spec(&p),
            &RunnerConfig::default(),
            &AbortToken::new(),
            &snap,
            SnapshotPolicy::disabled(),
        );
        assert!(!snap.exists());
    }
}
