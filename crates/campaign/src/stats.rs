//! Statistical fault injection: sample sizing, confidence intervals, and
//! the streaming per-cell statistics the sequential sampling engine folds.
//!
//! Sec. IV: "The number of executions of each application for every
//! experiment varied from 2501 to 2504 and has been calculated using the
//! method presented in [Leveugle et al., DATE'09], setting 99% as a target
//! confidence level and 1% as the error margin."
//!
//! The fixed-n sizing pre-commits to the worst case (p = 0.5). The
//! sequential engine ([`crate::adaptive`]) instead folds outcomes into a
//! [`CellStats`] as they arrive and stops a cell the moment every
//! outcome-rate confidence interval is tighter than the target half-width.
//! That stopping rule needs the **Wilson score interval**: the naive normal
//! approximation has zero half-width at p̂ ∈ {0, 1}, so a sequential
//! stopper using it would terminate every cell after its very first
//! sample.

use crate::report::OutcomeTable;
use gemfi::Outcome;
use std::fmt;

/// Two-sided z-value for a 99% confidence level.
pub const Z_99: f64 = 2.5758;
/// Two-sided z-value for a 95% confidence level.
pub const Z_95: f64 = 1.9600;

/// The Leveugle et al. statistical-fault-injection sample size:
///
/// ```text
/// n = N / (1 + e²·(N−1) / (t²·p·(1−p)))
/// ```
///
/// where `N` is the fault-space population, `e` the error margin, `t` the
/// confidence z-value, and `p` the (worst-case 0.5) outcome proportion.
///
/// # Panics
///
/// Panics on nonsensical inputs (`e <= 0`, `p` outside (0,1), `population
/// == 0`).
pub fn leveugle_sample_size(population: u64, error_margin: f64, z: f64, p: f64) -> u64 {
    assert!(population > 0, "empty fault space");
    assert!(error_margin > 0.0 && z > 0.0);
    assert!(p > 0.0 && p < 1.0);
    let n = population as f64;
    let denom = 1.0 + error_margin * error_margin * (n - 1.0) / (z * z * p * (1.0 - p));
    (n / denom).ceil() as u64
}

/// The Wilson score confidence interval for a proportion
/// `successes/trials` at z-value `z`, as `(lower, upper)` bounds in
/// `[0, 1]`:
///
/// ```text
/// (p̂ + z²/2n ± z·√(p̂(1−p̂)/n + z²/4n²)) / (1 + z²/n)
/// ```
///
/// Unlike the normal approximation, the interval stays non-degenerate at
/// the boundaries: at p̂ = 1 the lower bound is `n/(n+z²)`, never 1 — the
/// property the sequential stopper relies on. Returns `(0, 1)` for zero
/// trials (no information).
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Wilson-score confidence half-interval for a proportion
/// `successes/trials` at z-value `z`: half the width of
/// [`wilson_interval`].
///
/// This used to be the normal-approximation half-width
/// `z·√(p̂(1−p̂)/n)`, which collapses to zero at p̂ ∈ {0, 1} — fatal for
/// sequential stopping (one sample would "decide" any cell) and
/// misleading even for the Fig. 7-style error bars it was drawn for.
pub fn proportion_ci(successes: u64, trials: u64, z: f64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let (lo, hi) = wilson_interval(successes, trials, z);
    (hi - lo) / 2.0
}

/// Mean and the half-width of a z-based confidence interval over samples
/// (for timing comparisons like Fig. 7).
pub fn mean_ci(samples: &[f64], z: f64) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    (mean, z * (var / n).sqrt())
}

/// Streaming outcome statistics for one campaign cell (one fault family of
/// one workload): an incremental fold of classified outcomes with Wilson
/// confidence intervals over every outcome rate. This is the aggregation
/// the sequential engine's stopping rule reads after every round, and the
/// same per-cell fold a campaign server's metrics endpoint would serve.
///
/// Infrastructure failures are *not* experiment evidence and must not be
/// folded here (the drivers count them against the budget instead).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellStats {
    table: OutcomeTable,
}

impl CellStats {
    /// An empty fold.
    pub fn new() -> CellStats {
        CellStats::default()
    }

    /// Folds one classified experiment outcome.
    ///
    /// # Panics
    ///
    /// Panics on [`Outcome::Infrastructure`]: harness failures carry no
    /// information about the cell and would bias every rate.
    pub fn record(&mut self, outcome: Outcome) {
        assert!(outcome.is_experiment_outcome(), "fold experiment outcomes only, got {outcome}");
        self.table.add(outcome);
    }

    /// Experiments folded so far.
    pub fn n(&self) -> u64 {
        self.table.total()
    }

    /// The observed rate of one outcome class.
    pub fn rate(&self, outcome: Outcome) -> f64 {
        self.table.fraction(outcome)
    }

    /// Wilson confidence half-interval of one outcome rate at z-value `z`.
    pub fn halfwidth(&self, outcome: Outcome, z: f64) -> f64 {
        proportion_ci(self.table.count(outcome), self.n(), z)
    }

    /// The widest Wilson half-interval over all experiment outcome classes
    /// — the quantity the stopping rule compares against the target. With
    /// no samples yet this is 0.5 (the `(0, 1)` no-information interval).
    pub fn max_halfwidth(&self, z: f64) -> f64 {
        if self.n() == 0 {
            return 0.5;
        }
        Outcome::ALL
            .iter()
            .filter(|o| o.is_experiment_outcome())
            .map(|o| self.halfwidth(*o, z))
            .fold(0.0, f64::max)
    }

    /// The underlying outcome counts.
    pub fn table(&self) -> &OutcomeTable {
        &self.table
    }
}

/// The sequential stopping rule: a cell is decided once it holds at least
/// `min_n` experiments *and* every outcome-rate Wilson CI at confidence
/// `z` is no wider than `halfwidth` on each side.
///
/// The `min_n` floor guards the rule against tiny-sample flukes: Wilson
/// intervals are honest but a lopsided cell could otherwise stop on single-
/// digit evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Confidence z-value of the per-rate intervals.
    pub z: f64,
    /// Target half-width every outcome-rate CI must reach.
    pub halfwidth: f64,
    /// Minimum experiments per cell before it may stop.
    pub min_n: u64,
}

impl StopRule {
    /// Whether `stats` satisfies the rule.
    pub fn satisfied(&self, stats: &CellStats) -> bool {
        stats.n() >= self.min_n && stats.max_halfwidth(self.z) <= self.halfwidth
    }
}

/// The per-cell sampling state machine. A cell starts [`Sampling`] and
/// transitions exactly once, at a round boundary, to either [`Decided`]
/// (the stopping rule is satisfied — the cell stops consuming budget) or
/// [`Exhausted`] (its fault-space population or the campaign budget ran
/// out first; the estimate stands, at whatever width it reached).
///
/// [`Sampling`]: CellDecision::Sampling
/// [`Decided`]: CellDecision::Decided
/// [`Exhausted`]: CellDecision::Exhausted
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellDecision {
    /// Still drawing samples.
    Sampling,
    /// Stopped: every outcome-rate CI reached the target half-width.
    Decided {
        /// Experiments folded when the rule was met.
        n: u64,
    },
    /// Stopped without meeting the rule (population or budget exhausted).
    Exhausted {
        /// Experiments folded when sampling ended.
        n: u64,
    },
}

impl CellDecision {
    /// Whether the cell is still drawing.
    pub fn is_sampling(self) -> bool {
        matches!(self, CellDecision::Sampling)
    }

    /// Whether the cell stopped because the CI target was met.
    pub fn is_decided(self) -> bool {
        matches!(self, CellDecision::Decided { .. })
    }
}

impl fmt::Display for CellDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellDecision::Sampling => write!(f, "sampling"),
            CellDecision::Decided { n } => write!(f, "decided@{n}"),
            CellDecision::Exhausted { n } => write!(f, "exhausted@{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_population_converges_to_the_asymptote() {
        // n∞ = t²·p(1−p)/e² ≈ 16587 for 99%/1%/0.5.
        let n = leveugle_sample_size(u64::MAX / 2, 0.01, Z_99, 0.5);
        assert!((16_000..17_200).contains(&n), "n = {n}");
    }

    #[test]
    fn small_population_needs_nearly_everything() {
        let n = leveugle_sample_size(100, 0.01, Z_99, 0.5);
        assert!(n >= 99, "n = {n}");
    }

    #[test]
    fn reproduces_the_papers_2501_scale() {
        // The paper's ≈2501 samples correspond to a population around 2.9k
        // under 99%/1%: check the formula lands in that regime.
        let n = leveugle_sample_size(2945, 0.01, Z_99, 0.5);
        assert!((2480..2520).contains(&n), "n = {n}");
    }

    #[test]
    fn sample_size_is_monotone_in_population() {
        let mut last = 0;
        for pop in [10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let n = leveugle_sample_size(pop, 0.01, Z_99, 0.5);
            assert!(n >= last);
            assert!(n <= pop);
            last = n;
        }
    }

    #[test]
    fn wider_margin_means_fewer_samples() {
        let tight = leveugle_sample_size(1_000_000, 0.01, Z_99, 0.5);
        let loose = leveugle_sample_size(1_000_000, 0.05, Z_99, 0.5);
        assert!(loose < tight / 10);
    }

    /// Tabulated Wilson 95% intervals (z = 1.96), e.g. Brown/Cai/DasGupta
    /// ("Interval Estimation for a Binomial Proportion") and any standard
    /// Wilson calculator.
    #[test]
    fn wilson_matches_tabulated_values() {
        let cases = [
            (0, 10, 0.0000, 0.2775),
            (1, 10, 0.0179, 0.4041),
            (5, 10, 0.2366, 0.7634),
            (10, 10, 0.7225, 1.0000),
            (50, 100, 0.4038, 0.5962),
            (90, 100, 0.8254, 0.9448),
        ];
        for (s, n, lo, hi) in cases {
            let (wlo, whi) = wilson_interval(s, n, Z_95);
            assert!((wlo - lo).abs() < 5e-4, "{s}/{n}: lo {wlo:.4} want {lo:.4}");
            assert!((whi - hi).abs() < 5e-4, "{s}/{n}: hi {whi:.4} want {hi:.4}");
        }
    }

    #[test]
    fn wilson_is_nondegenerate_at_the_boundaries() {
        // At p̂ = 1 the lower bound is n/(n+z²); at p̂ = 0 the upper bound
        // is z²/(n+z²). A normal-approximation interval is a point here.
        let z2 = Z_95 * Z_95;
        for n in [1u64, 5, 40, 385] {
            let (lo, hi) = wilson_interval(n, n, Z_95);
            assert!((hi - 1.0).abs() < 1e-12);
            assert!((lo - n as f64 / (n as f64 + z2)).abs() < 1e-9, "n={n} lo={lo}");
            assert!(proportion_ci(n, n, Z_95) > 0.0, "never zero at p̂=1");
            assert!(proportion_ci(0, n, Z_95) > 0.0, "never zero at p̂=0");
        }
    }

    #[test]
    fn proportion_ci_shrinks_with_trials() {
        let a = proportion_ci(50, 100, Z_95);
        let b = proportion_ci(500, 1_000, Z_95);
        assert!(b < a);
        assert_eq!(proportion_ci(0, 0, Z_95), 0.0);
    }

    #[test]
    fn mean_ci_basics() {
        let (m, ci) = mean_ci(&[2.0, 4.0, 6.0], Z_95);
        assert!((m - 4.0).abs() < 1e-12);
        assert!(ci > 0.0);
        assert_eq!(mean_ci(&[], Z_95), (0.0, 0.0));
        assert_eq!(mean_ci(&[3.0], Z_95), (3.0, 0.0));
    }

    #[test]
    fn cell_stats_fold_incrementally() {
        let mut s = CellStats::new();
        assert_eq!(s.n(), 0);
        assert!((s.max_halfwidth(Z_95) - 0.5).abs() < 1e-12, "no info: (0,1)/2");
        for _ in 0..9 {
            s.record(Outcome::Crashed);
        }
        s.record(Outcome::Sdc);
        assert_eq!(s.n(), 10);
        assert!((s.rate(Outcome::Crashed) - 0.9).abs() < 1e-12);
        // The widest CI belongs to the most-mixed class.
        let w = s.max_halfwidth(Z_95);
        assert!((w - s.halfwidth(Outcome::Crashed, Z_95)).abs() < 1e-12);
        assert!(w > 0.0 && w < 0.5);
    }

    #[test]
    fn lopsided_cells_tighten_much_faster_than_mixed_ones() {
        let mut lopsided = CellStats::new();
        let mut mixed = CellStats::new();
        for i in 0..60 {
            lopsided.record(Outcome::NonPropagated);
            mixed.record(if i % 2 == 0 { Outcome::Crashed } else { Outcome::Sdc });
        }
        assert!(lopsided.max_halfwidth(Z_95) < mixed.max_halfwidth(Z_95) / 2.0);
    }

    #[test]
    fn stop_rule_enforces_the_min_n_floor() {
        let rule = StopRule { z: Z_95, halfwidth: 0.2, min_n: 30 };
        let mut s = CellStats::new();
        for _ in 0..29 {
            s.record(Outcome::NonPropagated);
            assert!(!rule.satisfied(&s), "n={} below the floor", s.n());
        }
        s.record(Outcome::NonPropagated);
        assert!(rule.satisfied(&s), "perfectly lopsided at n=30, target 0.2");
    }

    #[test]
    fn stop_rule_waits_for_every_rate_not_just_the_dominant_one() {
        // 50/50 at n=40: the two live classes have ~±0.15 intervals.
        let rule = StopRule { z: Z_95, halfwidth: 0.1, min_n: 10 };
        let mut s = CellStats::new();
        for i in 0..40 {
            s.record(if i % 2 == 0 { Outcome::Crashed } else { Outcome::Correct });
        }
        assert!(!rule.satisfied(&s));
        for i in 0..160 {
            s.record(if i % 2 == 0 { Outcome::Crashed } else { Outcome::Correct });
        }
        assert!(rule.satisfied(&s), "hw={}", s.max_halfwidth(Z_95));
    }

    #[test]
    #[should_panic(expected = "experiment outcomes only")]
    fn infrastructure_outcomes_are_rejected_by_the_fold() {
        CellStats::new().record(Outcome::Infrastructure);
    }

    #[test]
    fn decisions_display_compactly() {
        assert_eq!(CellDecision::Sampling.to_string(), "sampling");
        assert_eq!(CellDecision::Decided { n: 42 }.to_string(), "decided@42");
        assert_eq!(CellDecision::Exhausted { n: 7 }.to_string(), "exhausted@7");
        assert!(CellDecision::Sampling.is_sampling());
        assert!(CellDecision::Decided { n: 1 }.is_decided());
        assert!(!CellDecision::Exhausted { n: 1 }.is_decided());
    }
}
