//! Statistical fault injection: sample sizing and confidence intervals.
//!
//! Sec. IV: "The number of executions of each application for every
//! experiment varied from 2501 to 2504 and has been calculated using the
//! method presented in [Leveugle et al., DATE'09], setting 99% as a target
//! confidence level and 1% as the error margin."

/// Two-sided z-value for a 99% confidence level.
pub const Z_99: f64 = 2.5758;
/// Two-sided z-value for a 95% confidence level.
pub const Z_95: f64 = 1.9600;

/// The Leveugle et al. statistical-fault-injection sample size:
///
/// ```text
/// n = N / (1 + e²·(N−1) / (t²·p·(1−p)))
/// ```
///
/// where `N` is the fault-space population, `e` the error margin, `t` the
/// confidence z-value, and `p` the (worst-case 0.5) outcome proportion.
///
/// # Panics
///
/// Panics on nonsensical inputs (`e <= 0`, `p` outside (0,1), `population
/// == 0`).
pub fn leveugle_sample_size(population: u64, error_margin: f64, z: f64, p: f64) -> u64 {
    assert!(population > 0, "empty fault space");
    assert!(error_margin > 0.0 && z > 0.0);
    assert!(p > 0.0 && p < 1.0);
    let n = population as f64;
    let denom = 1.0 + error_margin * error_margin * (n - 1.0) / (z * z * p * (1.0 - p));
    (n / denom).ceil() as u64
}

/// Normal-approximation confidence half-interval for a proportion
/// `successes/trials` at z-value `z` (the paper's Fig. 7 error bars).
pub fn proportion_ci(successes: u64, trials: u64, z: f64) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let p = successes as f64 / trials as f64;
    z * (p * (1.0 - p) / trials as f64).sqrt()
}

/// Mean and the half-width of a z-based confidence interval over samples
/// (for timing comparisons like Fig. 7).
pub fn mean_ci(samples: &[f64], z: f64) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
    (mean, z * (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_population_converges_to_the_asymptote() {
        // n∞ = t²·p(1−p)/e² ≈ 16587 for 99%/1%/0.5.
        let n = leveugle_sample_size(u64::MAX / 2, 0.01, Z_99, 0.5);
        assert!((16_000..17_200).contains(&n), "n = {n}");
    }

    #[test]
    fn small_population_needs_nearly_everything() {
        let n = leveugle_sample_size(100, 0.01, Z_99, 0.5);
        assert!(n >= 99, "n = {n}");
    }

    #[test]
    fn reproduces_the_papers_2501_scale() {
        // The paper's ≈2501 samples correspond to a population around 2.9k
        // under 99%/1%: check the formula lands in that regime.
        let n = leveugle_sample_size(2945, 0.01, Z_99, 0.5);
        assert!((2480..2520).contains(&n), "n = {n}");
    }

    #[test]
    fn sample_size_is_monotone_in_population() {
        let mut last = 0;
        for pop in [10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let n = leveugle_sample_size(pop, 0.01, Z_99, 0.5);
            assert!(n >= last);
            assert!(n <= pop);
            last = n;
        }
    }

    #[test]
    fn wider_margin_means_fewer_samples() {
        let tight = leveugle_sample_size(1_000_000, 0.01, Z_99, 0.5);
        let loose = leveugle_sample_size(1_000_000, 0.05, Z_99, 0.5);
        assert!(loose < tight / 10);
    }

    #[test]
    fn proportion_ci_shrinks_with_trials() {
        let a = proportion_ci(50, 100, Z_95);
        let b = proportion_ci(500, 1_000, Z_95);
        assert!(b < a);
        assert_eq!(proportion_ci(0, 0, Z_95), 0.0);
    }

    #[test]
    fn mean_ci_basics() {
        let (m, ci) = mean_ci(&[2.0, 4.0, 6.0], Z_95);
        assert!((m - 4.0).abs() < 1e-12);
        assert!(ci > 0.0);
        assert_eq!(mean_ci(&[], Z_95), (0.0, 0.0));
        assert_eq!(mean_ci(&[3.0], Z_95), (3.0, 0.0));
    }
}
