//! Fork-at-injection: shared-prefix campaign execution.
//!
//! Every experiment in a campaign replays an identical fault-free
//! instruction stream from the checkpoint up to its injection point; with
//! CoW restores and dormancy elision landed, that redundant prefix is the
//! dominant cost of a campaign. This module removes it: one *trunk*
//! machine sprints along the fault-free path, and each experiment forks a
//! warm machine ([`gemfi_sim::Machine::fork_with`]) shortly before its
//! fault can fire, running only its divergent *suffix*. Campaign cost
//! becomes O(run-length + Σ suffixes) instead of O(experiments ×
//! run-length).
//!
//! # Why the results are bit-identical
//!
//! Three facts compose into the conformance guarantee that
//! `tests/fork_prefix_conformance.rs` pins:
//!
//! 1. **The trunk is state-identical to any experiment's prefix.** Before
//!    a spec's window opens, queue scans never mutate the engine, and the
//!    per-event hooks are value-preserving; so a fault-free engine and an
//!    engine carrying the not-yet-armed spec drive the machine through the
//!    exact same tick stream. [`gemfi::GemFiEngine::fork_with_faults`]
//!    then reconstructs the carried engine's state at the fork point from
//!    the trunk's.
//! 2. **A fork is warm.** [`gemfi_sim::Machine::fork_with`] keeps the
//!    pipeline, branch predictor, tick clock and preempt phase, so the
//!    fork's future tick stream is the trunk's (only the tick-invisible
//!    predecode cache drops, per the never-serialized contract).
//! 3. **The drive loop's decisions are tick-aligned.** Pre-switch
//!    scheduling boundaries are anchored to the *checkpoint* tick (see
//!    `runner::next_boundary`), so a suffix polls `pending_faults()` at
//!    the same absolute ticks a whole run does and switches CPU models at
//!    the identical tick.
//!
//! The planner is conservative where it cannot be exact: fork distance is
//! derived from [`gemfi::FireDistance`] lower bounds with a slack margin,
//! and any spec found already armed (the trunk overshot its window) falls
//! back to a plain whole-run restore — a perf penalty, never a wrong
//! answer.

use crate::journal::{spec_digest, Journal, JournalEvent, JOURNAL_VERSION};
use crate::runner::{
    drive_to_completion, finish_result, watchdog_budget, ExperimentResult, PreparedWorkload,
    RunnerConfig,
};
use gemfi::{AbortToken, FaultConfig, FaultSpec, FireDistance, GemFiEngine};
use gemfi_sim::{Machine, RunExit};
use gemfi_workloads::Workload;
use std::sync::Mutex;

/// Upper bound on matching stage events the guest can serve per tick, used
/// to convert an event-distance into a safe tick advance. Deliberately
/// generous — underestimating the rate only forks earlier than necessary,
/// and even a violation is caught (the planner re-checks after every
/// advance and falls back to a whole run on overshoot).
pub const MAX_EVENTS_PER_TICK: u64 = 16;

/// Fork-at-injection tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkConfig {
    /// Worker threads driving forked suffixes. `<= 1` runs sequentially on
    /// the caller's thread (the bench's like-for-like ablation mode).
    pub workers: usize,
    /// Safety margin, in stage events / ticks, kept between the fork point
    /// and the earliest point the fault could fire. Larger values fork
    /// earlier (longer suffixes); smaller values risk overshoot fallbacks.
    pub slack: u64,
}

impl Default for ForkConfig {
    fn default() -> ForkConfig {
        ForkConfig { workers: 1, slack: 512 }
    }
}

/// One experiment's planned execution: a machine positioned at its fork
/// point (or at the checkpoint, for whole-run fallbacks), ready to drive.
#[derive(Debug)]
pub struct ForkedSuffix {
    /// Index of the experiment in the campaign's spec list.
    pub index: usize,
    /// Trunk tick the suffix forked at; `None` for a whole-run fallback
    /// (armed-at-plan-time overshoot, or the trunk terminated first).
    pub forked_at: Option<u64>,
    /// The machine to drive: engine loaded with exactly this experiment's
    /// fault, elision configured, watchdog installed.
    pub machine: Machine<GemFiEngine>,
}

/// How far (in safe trunk ticks) a spec is from needing its fork, given a
/// [`FireDistance`] and a slack margin. `0` means fork now; `u64::MAX`
/// means the spec can never fire and may fork anywhere.
fn safe_advance(distance: FireDistance, slack: u64) -> u64 {
    match distance {
        FireDistance::Armed => 0,
        FireDistance::Quiet { events, ticks } => {
            let by_events = if events == u64::MAX {
                u64::MAX
            } else {
                events.saturating_sub(slack) / MAX_EVENTS_PER_TICK
            };
            let by_ticks = if ticks == u64::MAX { u64::MAX } else { ticks.saturating_sub(slack) };
            by_events.min(by_ticks)
        }
    }
}

/// A whole-run fallback machine: restored fresh from the checkpoint with
/// this experiment's engine, exactly as [`crate::runner::drive_whole_run`]
/// would build it.
fn fallback(
    prepared: &PreparedWorkload,
    index: usize,
    spec: FaultSpec,
    runner: &RunnerConfig,
) -> ForkedSuffix {
    let engine = GemFiEngine::new(FaultConfig::from_specs(vec![spec]));
    let mut machine = Machine::restore_with(
        &prepared.checkpoint,
        Some(runner.inject_cpu),
        Some(watchdog_budget(&prepared.checkpoint, prepared, runner)),
        engine,
    );
    machine.set_elide(runner.elide);
    ForkedSuffix { index, forked_at: None, machine }
}

/// Plans the campaign: sprints one fault-free trunk along the shared
/// prefix, forking each experiment's suffix shortly before its fault can
/// fire. Experiments are visited in ascending estimated injection order so
/// the trunk only ever moves forward; specs the trunk overshot (or that
/// outlive it) fall back to whole-run restores.
///
/// The returned suffixes are in planning (injection) order; each carries
/// its original experiment `index`.
pub fn plan_suffixes(
    prepared: &PreparedWorkload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
    fork: &ForkConfig,
) -> Vec<ForkedSuffix> {
    let mut trunk = Machine::restore_with(
        &prepared.checkpoint,
        Some(runner.inject_cpu),
        Some(watchdog_budget(&prepared.checkpoint, prepared, runner)),
        GemFiEngine::new(FaultConfig::empty()),
    );
    trunk.set_elide(runner.elide);

    // Injection-order heuristic only: a bad estimate costs an overshoot
    // fallback, never a wrong result.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    let t0 = trunk.tick();
    order.sort_by_key(|&i| safe_advance(trunk.hooks().fire_distance(0, t0, &specs[i]), 0));

    let mut out = Vec::with_capacity(specs.len());
    let mut trunk_done = false;
    for index in order {
        let spec = specs[index];
        loop {
            if trunk_done {
                out.push(fallback(prepared, index, spec, runner));
                break;
            }
            let now = trunk.tick();
            let distance = trunk.hooks().fire_distance(0, now, &spec);
            if distance == FireDistance::Armed {
                // Overshot this spec's window (ordering estimate was off, or
                // the spec was armed from the start): replay it whole.
                out.push(fallback(prepared, index, spec, runner));
                break;
            }
            let advance = safe_advance(distance, fork.slack);
            if advance == 0 || advance == u64::MAX {
                // Close enough to fork — or unreachable (`MAX`), in which
                // case the fault is frozen and any fork point is exact.
                let engine = trunk.hooks().fork_with_faults(FaultConfig::from_specs(vec![spec]));
                let machine = trunk.fork_with(engine);
                out.push(ForkedSuffix { index, forked_at: Some(now), machine });
                break;
            }
            if trunk.run_to_tick(now.saturating_add(advance)).is_some() {
                // The trunk terminated before this spec's injection point;
                // it and everything later replays whole.
                trunk_done = true;
            }
        }
    }
    out
}

/// Drives one planned suffix to completion under `abort`, exactly like the
/// whole-run path: same drive loop, same checkpoint-anchored scheduling
/// grid. Returns the terminal exit and whether the abort cut it short.
pub fn drive_suffix(
    suffix: &mut ForkedSuffix,
    prepared: &PreparedWorkload,
    runner: &RunnerConfig,
    abort: &AbortToken,
) -> (RunExit, bool) {
    suffix.machine.hooks_mut().set_abort_token(abort.clone());
    drive_to_completion(&mut suffix.machine, runner, abort, prepared.checkpoint.tick())
}

/// One driven suffix, awaiting classification.
type Driven = (usize, Machine<GemFiEngine>, RunExit, bool);

fn drive_all(
    suffixes: Vec<ForkedSuffix>,
    prepared: &PreparedWorkload,
    runner: &RunnerConfig,
    fork: &ForkConfig,
) -> Vec<Driven> {
    let drive_one = |mut s: ForkedSuffix| -> Driven {
        let (exit, aborted) = drive_suffix(&mut s, prepared, runner, &AbortToken::new());
        (s.index, s.machine, exit, aborted)
    };
    if fork.workers <= 1 {
        return suffixes.into_iter().map(drive_one).collect();
    }
    // Fan out over a shared work queue; classification stays on the caller's
    // thread (`&dyn Workload` need not be `Sync`), so workers hand whole
    // machines back.
    let queue = Mutex::new(suffixes);
    let driven = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..fork.workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop();
                let Some(suffix) = next else { break };
                let done = drive_one(suffix);
                driven.lock().expect("result lock").push(done);
            });
        }
    });
    driven.into_inner().expect("workers joined")
}

/// Runs a whole campaign fork-at-injection style: plan, drive (optionally
/// across [`ForkConfig::workers`] threads), classify. Results come back in
/// experiment order and are element-wise equivalent to running
/// [`crate::runner::run_experiment_from`] per spec — bit-identical machine
/// states included, which `tests/fork_prefix_conformance.rs` enforces.
pub fn run_campaign_forked(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
    fork: &ForkConfig,
) -> Vec<ExperimentResult> {
    let suffixes = plan_suffixes(prepared, specs, runner, fork);
    assemble(drive_all(suffixes, prepared, runner, fork), prepared, workload, specs)
}

/// [`run_campaign_forked`] with the campaign journal in the loop: a
/// `campaign` header, one `forked` event per suffix the planner actually
/// forked (whole-run fallbacks write none), and a `done` event per
/// classified result — the same terminal records a lease-driven campaign
/// writes, so existing replay tooling folds these journals unchanged.
///
/// # Errors
///
/// Propagates journal I/O errors.
pub fn run_campaign_forked_journaled(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
    fork: &ForkConfig,
    journal: &mut Journal,
) -> std::io::Result<Vec<ExperimentResult>> {
    journal.append(&JournalEvent::Campaign {
        version: JOURNAL_VERSION,
        experiments: specs.len() as u64,
        checkpoint_digest: prepared.checkpoint.digest(),
        spec_digest: spec_digest(specs),
    })?;
    let suffixes = plan_suffixes(prepared, specs, runner, fork);
    for suffix in &suffixes {
        if let Some(tick) = suffix.forked_at {
            journal.append(&JournalEvent::Forked { exp: suffix.index as u64, tick })?;
        }
    }
    let results = assemble(drive_all(suffixes, prepared, runner, fork), prepared, workload, specs);
    for (index, result) in results.iter().enumerate() {
        journal.append(&JournalEvent::Done {
            exp: index as u64,
            attempt: 1,
            outcome: result.outcome,
            exit: result.exit.to_string(),
            ticks: result.ticks,
        })?;
    }
    Ok(results)
}

/// Classifies driven machines and restores experiment order.
fn assemble(
    driven: Vec<Driven>,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
) -> Vec<ExperimentResult> {
    let mut results: Vec<Option<ExperimentResult>> = specs.iter().map(|_| None).collect();
    for (index, machine, exit, aborted) in driven {
        let result = finish_result(
            machine,
            prepared.checkpoint.tick(),
            prepared,
            workload,
            specs[index],
            exit,
            aborted,
        );
        results[index] = Some(result);
    }
    results.into_iter().map(|r| r.expect("every planned experiment was driven")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{prepare_workload, run_experiment};
    use gemfi::{FaultBehavior, FaultLocation, FaultTiming, Outcome};
    use gemfi_workloads::pi::MonteCarloPi;

    fn small_pi() -> MonteCarloPi {
        MonteCarloPi { points: 120, init_spins: 60, ..MonteCarloPi::default() }
    }

    fn late_fp_flip(p: &crate::runner::PreparedWorkload, offset: u64) -> FaultSpec {
        FaultSpec {
            location: FaultLocation::FpReg { core: 0, reg: 20 },
            thread: 0,
            timing: FaultTiming::Instructions(p.stage_events[4].saturating_sub(offset)),
            behavior: FaultBehavior::Flip(40),
            occurrences: 1,
        }
    }

    #[test]
    fn forked_campaign_matches_whole_runs() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let runner = RunnerConfig::default();
        let specs = vec![late_fp_flip(&p, 100), late_fp_flip(&p, 400), late_fp_flip(&p, 50)];
        let forked = run_campaign_forked(&p, &w, &specs, &runner, &ForkConfig::default());
        assert_eq!(forked.len(), specs.len());
        for (spec, got) in specs.iter().zip(&forked) {
            let whole = run_experiment(&p, &w, *spec, &runner);
            assert_eq!(got.outcome, whole.outcome);
            assert_eq!(got.exit, whole.exit);
            assert_eq!(got.ticks, whole.ticks);
            assert_eq!(got.injections, whole.injections);
            assert_eq!(got.output, whole.output);
        }
    }

    #[test]
    fn late_faults_actually_fork_and_parallel_agrees_with_sequential() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let runner = RunnerConfig::default();
        let specs = vec![late_fp_flip(&p, 60), late_fp_flip(&p, 200)];
        let planned = plan_suffixes(&p, &specs, &runner, &ForkConfig::default());
        assert!(
            planned.iter().any(|s| s.forked_at.is_some()),
            "late faults must fork, not fall back"
        );
        for s in planned.iter().filter(|s| s.forked_at.is_some()) {
            assert!(s.forked_at.unwrap() > p.checkpoint.tick(), "fork lies past the checkpoint");
        }
        let seq = run_campaign_forked(&p, &w, &specs, &runner, &ForkConfig::default());
        let par =
            run_campaign_forked(&p, &w, &specs, &runner, &ForkConfig { workers: 3, slack: 512 });
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.ticks, b.ticks);
            assert_eq!(a.injections, b.injections);
        }
    }

    #[test]
    fn armed_spec_falls_back_to_a_whole_run() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let runner = RunnerConfig::default();
        // Inst:0 is armed the moment its thread activates: never forkable.
        let spec = FaultSpec {
            location: FaultLocation::FpReg { core: 0, reg: 20 },
            thread: 0,
            timing: FaultTiming::Instructions(0),
            behavior: FaultBehavior::Flip(40),
            occurrences: 1,
        };
        let planned = plan_suffixes(&p, &[spec], &runner, &ForkConfig::default());
        assert_eq!(planned.len(), 1);
        assert_eq!(planned[0].forked_at, None, "armed spec must replay whole");
        let results = run_campaign_forked(&p, &w, &[spec], &runner, &ForkConfig::default());
        let whole = run_experiment(&p, &w, spec, &runner);
        assert_eq!(results[0].outcome, whole.outcome);
        assert_eq!(results[0].ticks, whole.ticks);
    }

    #[test]
    fn journaled_campaign_writes_forked_and_done_events() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let runner = RunnerConfig::default();
        let specs = vec![late_fp_flip(&p, 80)];
        let dir = std::env::temp_dir().join(format!("gemfi-fork-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut journal = Journal::open(&dir).unwrap();
        let results = run_campaign_forked_journaled(
            &p,
            &w,
            &specs,
            &runner,
            &ForkConfig::default(),
            &mut journal,
        )
        .unwrap();
        drop(journal);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcome, Outcome::NonPropagated);
        let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
        assert!(matches!(events[0], JournalEvent::Campaign { experiments: 1, .. }));
        assert!(
            events.iter().any(|e| matches!(e, JournalEvent::Forked { exp: 0, .. })),
            "a late fault's fork must be journaled"
        );
        assert!(events.iter().any(|e| matches!(e, JournalEvent::Done { exp: 0, attempt: 1, .. })));
        // The journal replays through the standard state folding.
        let state = crate::journal::CampaignState::from_events(&events, specs.len()).unwrap();
        assert_eq!(state.finished(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
