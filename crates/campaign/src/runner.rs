//! The experiment runner: checkpoint preparation and single-experiment
//! execution (Sec. IV-B methodology).

use crate::classify::classify;
use gemfi::{AbortToken, FaultConfig, FaultSpec, GemFiEngine, InjectionRecord, Outcome};
use gemfi_cpu::CpuKind;
use gemfi_sim::{Checkpoint, Machine, MachineConfig, RunExit};
use gemfi_workloads::{workload_machine_config, GuestWorkload, RunOutput, Workload};
use std::sync::Arc;

/// Everything a campaign needs about one workload, produced once and shared
/// by all experiments.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// The built guest program.
    pub guest: GuestWorkload,
    /// Snapshot taken at the `fi_read_init_all()` marker (post-boot,
    /// post-initialization — the Fig. 3 fast-forward point). Shared: every
    /// experiment restores straight from this one immutable checkpoint —
    /// restoring bumps page refcounts instead of copying guest memory.
    pub checkpoint: Arc<Checkpoint>,
    /// The fault-free reference run (output bytes, stats).
    pub golden: RunOutput,
    /// Instructions served per pipeline stage during the fault-injection
    /// window — the samplable fault space.
    pub stage_events: [u64; 5],
    /// Ticks from machine boot to the checkpoint (the initialization cost
    /// that checkpointing amortizes away, Fig. 8).
    pub boot_ticks: u64,
    /// Fault-free ticks from the checkpoint to termination.
    pub kernel_ticks: u64,
}

/// How experiments are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// CPU model used around the injection point (the paper uses O3).
    pub inject_cpu: CpuKind,
    /// CPU model used to fast-forward after the fault commits or squashes
    /// (the paper switches to atomic simple).
    pub finish_cpu: CpuKind,
    /// Extra ticks to run in the injection model after the last fault fires,
    /// letting it commit or squash before the switch.
    pub switch_grace: u64,
    /// Watchdog budget as a multiple of the fault-free kernel ticks.
    pub watchdog_factor: u64,
    /// Scheduling granularity in ticks while the engine can still observe
    /// something. Once the engine reports itself fully dormant the loop
    /// switches to horizon-sized chunks ([`DORMANT_CHUNK_FACTOR`]× larger):
    /// nothing can fire, so fine-grained polling buys nothing but abort
    /// latency.
    pub chunk: u64,
    /// Drive restored machines with the dormancy-elision fast path
    /// (architecturally invisible; disable for the ablation benchmark).
    pub elide: bool,
    /// Execute superblock translations inside dormant sprints
    /// (architecturally invisible; disable for the ablation benchmark).
    pub superblock: bool,
}

/// How much coarser the chunk granularity gets once the engine is dormant.
pub const DORMANT_CHUNK_FACTOR: u64 = 50;

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            inject_cpu: CpuKind::O3,
            finish_cpu: CpuKind::Atomic,
            switch_grace: 2_000,
            watchdog_factor: 30,
            chunk: 20_000,
            elide: true,
            superblock: true,
        }
    }
}

/// The record of one completed experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The injected fault.
    pub spec: FaultSpec,
    /// The classified outcome.
    pub outcome: Outcome,
    /// How the run terminated.
    pub exit: RunExit,
    /// Injection records (what was corrupted, and the affected instruction).
    pub injections: Vec<InjectionRecord>,
    /// The output region at termination (possibly partial after a crash).
    pub output: Vec<u8>,
    /// Total simulated ticks of this run (from boot, including the
    /// checkpointed prefix).
    pub ticks: u64,
    /// Normalized injection time actually observed: fraction of the
    /// fault-free kernel at which the (first) fault fired.
    pub injection_fraction: Option<f64>,
}

/// Builds the guest, runs to the checkpoint marker, snapshots, and finishes
/// a fault-free golden run, profiling the fault space along the way.
///
/// # Errors
///
/// Returns a message when the workload does not reach its checkpoint marker
/// or does not terminate cleanly.
pub fn prepare_workload(workload: &dyn Workload) -> Result<PreparedWorkload, String> {
    prepare_workload_with(workload, workload_machine_config(CpuKind::Atomic))
}

/// [`prepare_workload`] with an explicit machine configuration (the
/// `restore_fanout` bench uses this to flip [`gemfi_mem::MemConfig::cow`]
/// for its flat-clone ablation).
///
/// # Errors
///
/// Returns a message when the workload does not reach its checkpoint marker
/// or does not terminate cleanly.
pub fn prepare_workload_with(
    workload: &dyn Workload,
    machine_config: MachineConfig,
) -> Result<PreparedWorkload, String> {
    let guest = workload.build();
    // Profile with a faultless engine: its per-stage counters measure the
    // fault space between the fi_activate markers.
    let engine = GemFiEngine::new(FaultConfig::empty());
    let mut machine = Machine::boot(machine_config, &guest.program, engine)
        .map_err(|t| format!("{}: image does not fit: {t}", workload.name()))?;

    let exit = machine.run();
    if exit != RunExit::CheckpointRequest {
        return Err(format!(
            "{}: expected a fi_read_init_all checkpoint, got {exit}",
            workload.name()
        ));
    }
    let checkpoint = Arc::new(machine.checkpoint());
    let boot_ticks = machine.tick();

    let mut exit = machine.run();
    while exit == RunExit::CheckpointRequest {
        exit = machine.run();
    }
    if exit != RunExit::Halted(0) {
        return Err(format!("{}: golden run ended with {exit}", workload.name()));
    }
    let bytes = machine
        .mem()
        .read_slice(guest.output_addr(), guest.output_len)
        .expect("output region mapped");
    let golden =
        RunOutput { exit, bytes, console: machine.console().to_vec(), stats: machine.stats() };
    let stage_events = machine.hooks().stage_events();
    let kernel_ticks = machine.tick() - boot_ticks;
    Ok(PreparedWorkload { guest, checkpoint, golden, stage_events, boot_ticks, kernel_ticks })
}

/// The tick budget for one experiment: checkpoint time plus a multiple of
/// the fault-free kernel time, plus slack for the grace window.
pub(crate) fn watchdog_budget(
    checkpoint: &Checkpoint,
    prepared: &PreparedWorkload,
    config: &RunnerConfig,
) -> u64 {
    checkpoint
        .tick()
        .saturating_add(prepared.kernel_ticks.saturating_mul(config.watchdog_factor))
        .saturating_add(1_000_000)
}

/// The first scheduling boundary strictly after `tick` on the absolute grid
/// `{origin + n·granularity}`.
///
/// Anchoring boundaries to the *checkpoint's* tick rather than to wherever
/// the loop happens to stand makes the pre-switch polling schedule a pure
/// function of the machine's execution: a suffix forked mid-run lands on
/// the same grid as a whole run from the checkpoint, so both observe "the
/// fault has fired" at the identical tick and switch CPU models at the
/// identical tick — the load-bearing half of fork-at-injection's
/// bit-identical guarantee.
fn next_boundary(tick: u64, origin: u64, granularity: u64) -> u64 {
    let rel = tick.saturating_sub(origin);
    origin.saturating_add((rel / granularity + 1).saturating_mul(granularity))
}

/// Drives a restored machine to completion: the switch-grace/model-switch
/// protocol, horizon-aware chunked scheduling, and abort polling — the one
/// loop shared by the single-fault, multi-fault, and forked-suffix
/// experiment paths. `origin` is the checkpoint tick the experiment
/// descends from; pre-switch boundaries are anchored to it (see
/// [`next_boundary`]).
///
/// Pre-switch polling always runs at the fine granularity, even while the
/// engine is dormant: the boundary at which `pending_faults() == 0` is
/// first observed decides the CPU-switch tick, so it must not depend on a
/// dormancy observation a forked suffix (whose engine starts with its fault
/// queued) would make differently. Once switched, boundaries are
/// state-neutral and the dormant coarsening is pure abort-latency tuning.
///
/// Returns the terminal exit and whether the abort token cut the run short.
pub(crate) fn drive_to_completion(
    machine: &mut Machine<GemFiEngine>,
    config: &RunnerConfig,
    abort: &AbortToken,
    origin: u64,
) -> (RunExit, bool) {
    drive_to_completion_observed(machine, config, abort, origin, &mut |_, _| {})
}

/// [`drive_to_completion`] with an observer invoked once per scheduling
/// chunk (with the machine and whether the CPU switch has happened). The
/// mid-run snapshot policy ([`crate::snapshot`]) hangs off this hook; the
/// observer must not advance the machine.
pub(crate) fn drive_to_completion_observed(
    machine: &mut Machine<GemFiEngine>,
    config: &RunnerConfig,
    abort: &AbortToken,
    origin: u64,
    observer: &mut dyn FnMut(&Machine<GemFiEngine>, bool),
) -> (RunExit, bool) {
    let mut switched = config.inject_cpu == config.finish_cpu;
    loop {
        if abort.is_aborted() {
            return (RunExit::Watchdog, true);
        }
        observer(machine, switched);
        if !switched && machine.hooks_mut().pending_faults() == 0 {
            // The fault fired (or expired): give the affected instruction
            // time to commit or squash, then fast-forward in the cheap model.
            if let Some(exit) = machine.run_for(config.switch_grace) {
                if exit != RunExit::CheckpointRequest {
                    return (exit, false);
                }
            }
            machine.switch_cpu(config.finish_cpu);
            switched = true;
        }
        // Horizon-aware scheduling: after the switch, once the engine is
        // fully dormant nothing can fire and the chunk exists only to bound
        // abort latency, so poll far more coarsely.
        let target = if switched {
            let chunk = if machine.hooks().is_dormant(0, machine.tick()) {
                config.chunk.saturating_mul(DORMANT_CHUNK_FACTOR)
            } else {
                config.chunk
            };
            machine.tick().saturating_add(chunk)
        } else {
            next_boundary(machine.tick(), origin, config.chunk)
        };
        match machine.run_for(target.saturating_sub(machine.tick()).max(1)) {
            Some(RunExit::CheckpointRequest) => continue,
            Some(exit) => return (exit, false),
            None => {}
        }
    }
}

/// Restores from `checkpoint` with a fresh single-fault engine and drives
/// the whole experiment — everything [`run_experiment_from_with_abort`]
/// does short of classification. The fork-at-injection conformance suite
/// compares this machine's terminal state bit-for-bit against a forked
/// suffix's, so the full machine comes back, not just the result.
pub fn drive_whole_run(
    checkpoint: &Checkpoint,
    prepared: &PreparedWorkload,
    spec: FaultSpec,
    config: &RunnerConfig,
    abort: &AbortToken,
) -> (Machine<GemFiEngine>, RunExit, bool) {
    let mut engine = GemFiEngine::new(FaultConfig::from_specs(vec![spec]));
    engine.set_abort_token(abort.clone());
    let mut machine = Machine::restore_with(
        checkpoint,
        Some(config.inject_cpu),
        Some(watchdog_budget(checkpoint, prepared, config)),
        engine,
    );
    machine.set_elide(config.elide);
    machine.set_superblock(config.superblock);
    let (exit, aborted) = drive_to_completion(&mut machine, config, abort, checkpoint.tick());
    (machine, exit, aborted)
}

/// Runs one experiment from an explicit checkpoint (the NoW path passes a
/// workstation-local copy).
pub fn run_experiment_from(
    checkpoint: &Checkpoint,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    config: &RunnerConfig,
) -> ExperimentResult {
    run_experiment_from_with_abort(checkpoint, prepared, workload, spec, config, &AbortToken::new())
}

/// [`run_experiment_from`] with an external abort token checked between
/// scheduling chunks. The campaign's lease reaper raises the token when
/// this experiment's lease expires; the run then stops at the next chunk
/// boundary and classifies as [`Outcome::Infrastructure`] (the harness gave
/// up — the guest's own behavior is unknown).
pub fn run_experiment_from_with_abort(
    checkpoint: &Checkpoint,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    config: &RunnerConfig,
    abort: &AbortToken,
) -> ExperimentResult {
    // `fi_read_init_all` restore semantics: a fresh engine re-reads the
    // fault configuration for this experiment. The shared checkpoint is
    // restored in place — no per-experiment deep copy; the watchdog bound
    // (corrupted control flow loops forever, so cap the run relative to
    // the fault-free kernel time) rides along as a restore override.
    let (machine, exit, aborted) = drive_whole_run(checkpoint, prepared, spec, config, abort);
    finish_result(machine, checkpoint.tick(), prepared, workload, spec, exit, aborted)
}

/// Classification and result assembly shared by the experiment paths.
pub(crate) fn finish_result(
    machine: Machine<GemFiEngine>,
    checkpoint_tick: u64,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    exit: RunExit,
    aborted: bool,
) -> ExperimentResult {
    let injections = machine.hooks().records().to_vec();
    finish_result_with_records(
        machine,
        checkpoint_tick,
        prepared,
        workload,
        spec,
        exit,
        aborted,
        injections,
    )
}

/// [`finish_result`] with the injection records supplied by the caller. A
/// run resumed from a mid-run snapshot ([`crate::snapshot`]) finishes on a
/// machine whose engine never saw the injection — the records that classify
/// it were persisted in the snapshot and are threaded back in here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_result_with_records(
    machine: Machine<GemFiEngine>,
    checkpoint_tick: u64,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    exit: RunExit,
    aborted: bool,
    injections: Vec<InjectionRecord>,
) -> ExperimentResult {
    let output = machine
        .mem()
        .read_slice(prepared.guest.output_addr(), prepared.guest.output_len)
        .unwrap_or_default();
    let outcome = if aborted {
        Outcome::Infrastructure
    } else {
        classify(workload, &prepared.golden.bytes, exit, &output, &injections)
    };
    let injection_fraction = injections.first().map(|r| {
        let rel = r.tick.saturating_sub(checkpoint_tick) as f64;
        (rel / prepared.kernel_ticks.max(1) as f64).min(1.0)
    });
    ExperimentResult {
        spec,
        outcome,
        exit,
        injections,
        output,
        ticks: machine.tick(),
        injection_fraction,
    }
}

/// Runs one experiment with *multiple* simultaneous faults (multi-bit
/// upsets, or the Vdd-scaling model's per-run fault population). The
/// outcome is classified exactly like a single-fault experiment.
pub fn run_experiment_multi(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    config: &RunnerConfig,
) -> ExperimentResult {
    run_experiment_multi_with_abort(prepared, workload, specs, config, &AbortToken::new())
}

/// [`run_experiment_multi`] with an external abort token, so multi-fault
/// experiments can be reaped by the same lease watchdog as single-fault
/// ones. A raised token stops the run at the next chunk boundary and
/// classifies as [`Outcome::Infrastructure`].
pub fn run_experiment_multi_with_abort(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    config: &RunnerConfig,
    abort: &AbortToken,
) -> ExperimentResult {
    assert!(!specs.is_empty(), "at least one fault");
    let mut engine = GemFiEngine::new(FaultConfig::from_specs(specs.to_vec()));
    engine.set_abort_token(abort.clone());
    let mut machine = Machine::restore_with(
        &prepared.checkpoint,
        Some(config.inject_cpu),
        Some(watchdog_budget(&prepared.checkpoint, prepared, config)),
        engine,
    );
    machine.set_elide(config.elide);
    machine.set_superblock(config.superblock);
    let (exit, aborted) =
        drive_to_completion(&mut machine, config, abort, prepared.checkpoint.tick());
    finish_result(machine, prepared.checkpoint.tick(), prepared, workload, specs[0], exit, aborted)
}

/// Runs one experiment using the prepared workload's own checkpoint.
pub fn run_experiment(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    spec: FaultSpec,
    config: &RunnerConfig,
) -> ExperimentResult {
    run_experiment_from(&prepared.checkpoint, prepared, workload, spec, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemfi::{FaultBehavior, FaultLocation, FaultTiming};
    use gemfi_workloads::pi::MonteCarloPi;

    fn small_pi() -> MonteCarloPi {
        MonteCarloPi { points: 120, init_spins: 60, ..MonteCarloPi::default() }
    }

    #[test]
    fn prepare_measures_the_fault_space() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        assert_eq!(p.golden.bytes, w.reference(), "golden must match the host model");
        assert!(p.stage_events[0] > 0, "fetch events counted");
        assert!(p.stage_events[4] > 0, "committed instructions counted");
        assert!(p.boot_ticks > 0 && p.kernel_ticks > 0);
        // The kernel is ~120 iterations × ~20 instructions.
        assert!(p.stage_events[4] > 1_000 && p.stage_events[4] < 100_000);
    }

    #[test]
    fn harmless_fault_is_not_sdc() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        // Flip a bit of FP register f20 (unused by pi): never consumed.
        let spec = FaultSpec {
            location: FaultLocation::FpReg { core: 0, reg: 20 },
            thread: 0,
            timing: FaultTiming::Instructions(10),
            behavior: FaultBehavior::Flip(40),
            occurrences: 1,
        };
        let r = run_experiment(&p, &w, spec, &RunnerConfig::default());
        assert_eq!(r.outcome, Outcome::NonPropagated, "{:?}", r.exit);
        assert_eq!(r.injections.len(), 1);
    }

    #[test]
    fn wild_base_register_fault_crashes() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        // Set the stack pointer to garbage right inside the kernel: the
        // next stack access (or PAL context save) dies.
        let spec = FaultSpec {
            location: FaultLocation::Pc { core: 0 },
            thread: 0,
            timing: FaultTiming::Instructions(50),
            behavior: FaultBehavior::Set(0x00ff_ff00),
            occurrences: 1,
        };
        let r = run_experiment(&p, &w, spec, &RunnerConfig::default());
        assert_eq!(r.outcome, Outcome::Crashed, "{:?}", r.exit);
    }

    #[test]
    fn low_bit_flip_in_counted_register_gives_close_pi() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        // Flip the low bit of the inside-count register (r2) late in the
        // kernel: pi changes by ±4/120 — not strictly correct, and outside
        // the 2-decimal gate → SDC; or masked if r2's low bit flips back.
        let spec = FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 2 },
            thread: 0,
            timing: FaultTiming::Instructions(p.stage_events[4] - 100),
            behavior: FaultBehavior::Flip(0),
            occurrences: 1,
        };
        // Under O3 the in-flight consumer may have captured its operand
        // before the boundary injection, erasing the fault (a legitimate
        // non-propagated outcome); under atomic injection the next reader
        // always consumes it.
        let r = run_experiment(&p, &w, spec, &RunnerConfig::default());
        assert!(
            matches!(
                r.outcome,
                Outcome::Sdc | Outcome::StrictlyCorrect | Outcome::Correct | Outcome::NonPropagated
            ),
            "unexpected outcome {:?} ({:?})",
            r.outcome,
            r.exit
        );
        let atomic = run_experiment(
            &p,
            &w,
            spec,
            &RunnerConfig {
                inject_cpu: CpuKind::Atomic,
                finish_cpu: CpuKind::Atomic,
                ..RunnerConfig::default()
            },
        );
        assert!(
            atomic.injections.iter().any(|i| i.consumed),
            "atomic-mode injection into a live register must be consumed"
        );
    }

    #[test]
    fn injection_fraction_tracks_fault_time() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let spec = FaultSpec {
            location: FaultLocation::FpReg { core: 0, reg: 20 },
            thread: 0,
            timing: FaultTiming::Instructions(p.stage_events[4] / 2),
            behavior: FaultBehavior::Flip(1),
            occurrences: 1,
        };
        let r = run_experiment(&p, &w, spec, &RunnerConfig::default());
        let f = r.injection_fraction.expect("fault fired");
        assert!((0.2..0.9).contains(&f), "fraction {f}");
    }

    #[test]
    fn raised_abort_token_surfaces_as_infrastructure() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let spec = FaultSpec {
            location: FaultLocation::FpReg { core: 0, reg: 20 },
            thread: 0,
            timing: FaultTiming::Instructions(10),
            behavior: FaultBehavior::Flip(40),
            occurrences: 1,
        };
        let abort = AbortToken::new();
        abort.abort();
        let r = run_experiment_from_with_abort(
            &p.checkpoint,
            &p,
            &w,
            spec,
            &RunnerConfig::default(),
            &abort,
        );
        assert_eq!(r.outcome, Outcome::Infrastructure, "{:?}", r.exit);
        assert_eq!(r.exit, RunExit::Watchdog);
    }

    #[test]
    fn atomic_only_runner_agrees_with_o3_runner_on_outcome() {
        let w = small_pi();
        let p = prepare_workload(&w).unwrap();
        let spec = FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 1 },
            thread: 0,
            timing: FaultTiming::Instructions(200),
            behavior: FaultBehavior::Flip(3),
            occurrences: 1,
        };
        let o3 = run_experiment(&p, &w, spec, &RunnerConfig::default());
        let atomic = run_experiment(
            &p,
            &w,
            spec,
            &RunnerConfig {
                inject_cpu: CpuKind::Atomic,
                finish_cpu: CpuKind::Atomic,
                ..RunnerConfig::default()
            },
        );
        // Both models classify the experiment to *some* outcome and record
        // the injection; the exact class may differ because O3's in-flight
        // instructions capture operands before a boundary injection lands.
        assert_eq!(o3.injections.len(), 1);
        assert_eq!(atomic.injections.len(), 1);
        assert_ne!(atomic.outcome, Outcome::Crashed, "{:?}", atomic.exit);
    }
}
