//! The sequential sampling engine: adaptive statistical campaigns with
//! per-cell early stopping.
//!
//! The paper sizes every (workload × location) cell with the Leveugle
//! 99%/1% formula and runs that fixed n, even though lopsided cells (PC
//! faults are ~90% crash) are decided long before the worst-case sizing
//! says so. This engine replaces the up-front worklist with
//! draw-on-demand: each round it draws a small batch per still-undecided
//! cell, executes the batch, folds the classified outcomes into streaming
//! [`CellStats`], and stops a cell the moment every outcome-rate Wilson CI
//! is tighter than the target half-width (with a `min_n` floor). Budget
//! not spent on early-stopped cells keeps flowing to the high-variance
//! cells that still need it.
//!
//! # Determinism and resume
//!
//! Every cell owns an independent sampler stream
//! ([`FaultSampler::for_cell`]), so draw `k` of a cell is a pure function
//! of `(seed, cell, k)` — independent of how rounds interleave. Decisions
//! are evaluated only at round boundaries over commutative counts, so the
//! whole draw/stop trajectory is a pure function of the seed, the config,
//! and the per-experiment outcomes. The journaling drivers write every
//! draw of a round (`drawn` events) before executing any of it; a resumed
//! campaign re-derives the identical trajectory, verifies it against the
//! journaled draws, folds the outcomes already recorded, executes only the
//! remainder, and keeps drawing — reaching byte-identical per-cell
//! decisions to an uninterrupted run.

use crate::fork::{run_campaign_forked, ForkConfig};
use crate::journal::{Journal, JournalEvent, JOURNAL_VERSION};
use crate::report::OutcomeTable;
use crate::runner::{run_experiment, PreparedWorkload, RunnerConfig};
use crate::sampler::{FaultSampler, LocationClass};
use crate::stats::{CellDecision, CellStats, StopRule, Z_95};
use gemfi::{CacheLevel, FaultSpec, Outcome};
use gemfi_workloads::Workload;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Error, ErrorKind};
use std::path::Path;

/// One sampling cell: a fault family whose outcome rates are estimated
/// independently. The Fig. 5 location classes, the PR 7 memory-hierarchy
/// families, and the security-style behaviors are all cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// A Fig. 5 location class (uniform transient single-bit flips).
    Class(LocationClass),
    /// Cache-array lesions at one level (data/tag/way, MBU patterns,
    /// transient or stuck-at) — [`FaultSampler::sample_cache`].
    Cache(CacheLevel),
    /// Security-style behaviors (skip, opcode replacement, branch
    /// inversion) — [`FaultSampler::sample_security`].
    Security,
}

impl CellKind {
    /// The Fig. 5 default cell set: the seven location classes.
    pub const CLASSES: [CellKind; 7] = [
        CellKind::Class(LocationClass::IntReg),
        CellKind::Class(LocationClass::FpReg),
        CellKind::Class(LocationClass::Fetch),
        CellKind::Class(LocationClass::Decode),
        CellKind::Class(LocationClass::Execute),
        CellKind::Class(LocationClass::Mem),
        CellKind::Class(LocationClass::Pc),
    ];

    /// Parses a cell label (the inverse of the `Display` form).
    pub fn parse(label: &str) -> Option<CellKind> {
        match label {
            "int-reg" => Some(CellKind::Class(LocationClass::IntReg)),
            "fp-reg" => Some(CellKind::Class(LocationClass::FpReg)),
            "fetch" => Some(CellKind::Class(LocationClass::Fetch)),
            "decode" => Some(CellKind::Class(LocationClass::Decode)),
            "execute" => Some(CellKind::Class(LocationClass::Execute)),
            "mem" => Some(CellKind::Class(LocationClass::Mem)),
            "pc" => Some(CellKind::Class(LocationClass::Pc)),
            "l1i-cache" => Some(CellKind::Cache(CacheLevel::L1I)),
            "l1d-cache" => Some(CellKind::Cache(CacheLevel::L1D)),
            "l2-cache" => Some(CellKind::Cache(CacheLevel::L2)),
            "security" => Some(CellKind::Security),
            _ => None,
        }
    }

    /// Draws one fault of this family from a cell-owned sampler stream.
    pub fn draw(&self, sampler: &mut FaultSampler) -> FaultSpec {
        match self {
            CellKind::Class(class) => sampler.sample(*class),
            CellKind::Cache(level) => sampler.sample_cache(*level),
            CellKind::Security => sampler.sample_security(),
        }
    }

    /// The fault-space population (the Leveugle `N`): activation events of
    /// the family's stage × 64 samplable bits. For register/pipeline
    /// classes this is exactly [`FaultSampler::population`]; cache and
    /// security families use the stage whose queue arms them.
    pub fn population(&self, sampler: &FaultSampler) -> u64 {
        match self {
            CellKind::Class(class) => sampler.population(*class),
            CellKind::Cache(level) => {
                let stage = if *level == CacheLevel::L1I {
                    gemfi::Stage::Fetch
                } else {
                    gemfi::Stage::Memory
                };
                sampler.stage_events(stage).saturating_mul(64)
            }
            CellKind::Security => sampler.stage_events(gemfi::Stage::Fetch).saturating_mul(64),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Class(class) => write!(f, "{class}"),
            CellKind::Cache(CacheLevel::L1I) => f.write_str("l1i-cache"),
            CellKind::Cache(CacheLevel::L1D) => f.write_str("l1d-cache"),
            CellKind::Cache(CacheLevel::L2) => f.write_str("l2-cache"),
            CellKind::Security => f.write_str("security"),
        }
    }
}

/// Sequential-campaign parameters: the stopping rule plus the sampling
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Confidence z-value of the stopping rule (default [`Z_95`]).
    pub z: f64,
    /// Target Wilson CI half-width every outcome rate must reach.
    pub ci_halfwidth: f64,
    /// Minimum experiments per cell before it may stop.
    pub min_n: u64,
    /// Global experiment budget; `0` means bounded only by the cell
    /// populations. Budget unspent by early-stopped cells is what keeps
    /// flowing to the undecided ones.
    pub budget: u64,
    /// Draws per undecided cell per round (the granularity at which the
    /// stopping rule is re-evaluated).
    pub batch: u64,
    /// The cells under estimation, in sampling order.
    pub cells: Vec<CellKind>,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            z: Z_95,
            ci_halfwidth: 0.05,
            min_n: 25,
            budget: 0,
            batch: 16,
            cells: CellKind::CLASSES.to_vec(),
        }
    }
}

impl AdaptiveConfig {
    /// The stopping rule this config describes.
    pub fn rule(&self) -> StopRule {
        StopRule { z: self.z, halfwidth: self.ci_halfwidth, min_n: self.min_n }
    }

    /// Comma-joined cell labels (the journal-header identity form).
    pub fn cells_label(&self) -> String {
        self.cells.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
    }

    /// The journal header pinning this campaign's identity.
    pub fn header(&self, seed: u64, checkpoint_digest: u64) -> JournalEvent {
        JournalEvent::AdaptiveCampaign {
            version: JOURNAL_VERSION,
            seed,
            checkpoint_digest,
            z_ppm: ppm(self.z),
            halfwidth_ppm: ppm(self.ci_halfwidth),
            min_n: self.min_n,
            budget: self.budget,
            batch: self.batch,
            cells: self.cells_label(),
        }
    }
}

/// Fractional parameters ride the integer-only journal as parts per
/// million.
fn ppm(x: f64) -> u64 {
    (x * 1e6).round() as u64
}

/// One fault point the engine decided to spend budget on.
#[derive(Debug, Clone)]
pub struct Draw {
    /// Globally sequential experiment index (draw order).
    pub exp: u64,
    /// Index into [`AdaptiveConfig::cells`].
    pub cell: usize,
    /// 0-based ordinal within the cell's stream.
    pub draw: u64,
    /// The sampled fault.
    pub spec: FaultSpec,
}

/// Per-cell live state.
#[derive(Debug, Clone)]
struct Cell {
    kind: CellKind,
    sampler: FaultSampler,
    stats: CellStats,
    decision: CellDecision,
    /// Draws issued (≥ folded n: in-flight draws and infrastructure
    /// failures consume budget without contributing evidence).
    drawn: u64,
    population: u64,
}

/// The sequential sampler: per-cell streams, streaming stats, and the
/// round loop. Drivers call [`next_round`] / [`record`] / [`end_round`]
/// until [`next_round`] returns no draws, then [`finalize`].
///
/// [`next_round`]: AdaptiveState::next_round
/// [`record`]: AdaptiveState::record
/// [`end_round`]: AdaptiveState::end_round
/// [`finalize`]: AdaptiveState::finalize
#[derive(Debug, Clone)]
pub struct AdaptiveState {
    rule: StopRule,
    batch: u64,
    /// Resolved global cap (config budget, or the summed populations).
    budget: u64,
    cells: Vec<Cell>,
    drawn_total: u64,
    next_exp: u64,
    rounds: u64,
}

impl AdaptiveState {
    /// A fresh engine over the measured fault space of a prepared
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics on a config with no cells or a zero batch.
    pub fn new(config: &AdaptiveConfig, seed: u64, stage_events: [u64; 5]) -> AdaptiveState {
        assert!(!config.cells.is_empty(), "adaptive campaign needs at least one cell");
        assert!(config.batch > 0, "adaptive campaign needs a non-zero batch");
        let cells: Vec<Cell> = config
            .cells
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let sampler = FaultSampler::for_cell(seed, i, stage_events);
                let population = kind.population(&sampler);
                Cell {
                    kind: *kind,
                    sampler,
                    stats: CellStats::new(),
                    decision: CellDecision::Sampling,
                    drawn: 0,
                    population,
                }
            })
            .collect();
        let budget = if config.budget == 0 {
            cells.iter().fold(0u64, |a, c| a.saturating_add(c.population))
        } else {
            config.budget
        };
        AdaptiveState {
            rule: config.rule(),
            batch: config.batch,
            budget,
            cells,
            drawn_total: 0,
            next_exp: 0,
            rounds: 0,
        }
    }

    /// Draws the next round: up to `batch` faults per still-sampling cell,
    /// bounded by each cell's remaining population and the remaining
    /// global budget, in fixed cell order. An empty result means the
    /// campaign is over (every cell stopped, or the budget is spent).
    pub fn next_round(&mut self) -> Vec<Draw> {
        let mut draws = Vec::new();
        for i in 0..self.cells.len() {
            if !self.cells[i].decision.is_sampling() {
                continue;
            }
            let cell = &mut self.cells[i];
            let k = self
                .batch
                .min(cell.population.saturating_sub(cell.drawn))
                .min(self.budget.saturating_sub(self.drawn_total));
            for _ in 0..k {
                let spec = cell.kind.draw(&mut cell.sampler);
                draws.push(Draw { exp: self.next_exp, cell: i, draw: cell.drawn, spec });
                self.next_exp += 1;
                cell.drawn += 1;
                self.drawn_total += 1;
            }
        }
        if !draws.is_empty() {
            self.rounds += 1;
        }
        draws
    }

    /// Folds one classified outcome into its cell. Infrastructure
    /// failures are *not* evidence: they spent budget at draw time but
    /// must not bias the rates, so they are skipped here.
    pub fn record(&mut self, cell: usize, outcome: Outcome) {
        if outcome.is_experiment_outcome() {
            self.cells[cell].stats.record(outcome);
        }
    }

    /// Evaluates the stopping rule at a round boundary: cells whose every
    /// outcome-rate CI reached the target become `Decided`; cells whose
    /// population ran dry become `Exhausted`.
    pub fn end_round(&mut self) {
        for cell in &mut self.cells {
            if !cell.decision.is_sampling() {
                continue;
            }
            if self.rule.satisfied(&cell.stats) {
                cell.decision = CellDecision::Decided { n: cell.stats.n() };
            } else if cell.drawn >= cell.population {
                cell.decision = CellDecision::Exhausted { n: cell.stats.n() };
            }
        }
    }

    /// Marks every still-sampling cell `Exhausted` — called once the
    /// budget is spent (i.e. when [`AdaptiveState::next_round`] comes back
    /// empty).
    pub fn finalize(&mut self) {
        for cell in &mut self.cells {
            if cell.decision.is_sampling() {
                cell.decision = CellDecision::Exhausted { n: cell.stats.n() };
            }
        }
    }

    /// Total draws issued so far (the spent budget).
    pub fn drawn_total(&self) -> u64 {
        self.drawn_total
    }

    /// Rounds drawn so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Per-cell reports in cell order.
    pub fn reports(&self, z: f64) -> Vec<CellReport> {
        self.cells
            .iter()
            .map(|c| CellReport {
                cell: c.kind,
                n: c.stats.n(),
                drawn: c.drawn,
                decision: c.decision,
                stats: c.stats,
                max_halfwidth: c.stats.max_halfwidth(z),
            })
            .collect()
    }
}

/// The terminal per-cell record of an adaptive campaign.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell.
    pub cell: CellKind,
    /// Experiments folded as evidence.
    pub n: u64,
    /// Draws issued (n plus infrastructure failures).
    pub drawn: u64,
    /// How sampling ended.
    pub decision: CellDecision,
    /// The streamed outcome statistics.
    pub stats: CellStats,
    /// Widest outcome-rate Wilson half-interval at campaign end.
    pub max_halfwidth: f64,
}

/// What an adaptive campaign concluded.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Per-cell reports, in cell order.
    pub cells: Vec<CellReport>,
    /// All outcomes pooled (including infrastructure failures).
    pub table: OutcomeTable,
    /// Total experiments drawn — the number the fixed-n ablation compares
    /// against.
    pub experiments: u64,
    /// Sampling rounds executed.
    pub rounds: u64,
    /// Experiments whose outcome was replayed from a journal rather than
    /// executed (resume path; 0 for in-process runs).
    pub resumed: u64,
    /// The z-value the per-cell half-widths were computed at.
    pub z: f64,
}

impl fmt::Display for AdaptiveOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>6} {:>6} {:>13} {:>7}  crash nonprop strict correct sdc (rate%±ci)",
            "cell", "n", "drawn", "decision", "max±"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<10} {:>6} {:>6} {:>13} {:>6.1}%  {}",
                c.cell.to_string(),
                c.n,
                c.drawn,
                c.decision.to_string(),
                c.max_halfwidth * 100.0,
                c.stats.table().rate_ci_row(self.z),
            )?;
        }
        write!(f, "total: {} experiments in {} rounds", self.experiments, self.rounds)
    }
}

/// Runs a whole adaptive campaign in-process: each round's batch executes
/// through the fork-at-injection executor when `fork` is given (the trunk
/// sprints the shared fault-free prefix once per round), or serially
/// otherwise, and the outcomes fold straight back into the engine.
pub fn run_campaign_adaptive(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    runner: &RunnerConfig,
    fork: Option<&ForkConfig>,
    config: &AdaptiveConfig,
    seed: u64,
) -> AdaptiveOutcome {
    let mut state = AdaptiveState::new(config, seed, prepared.stage_events);
    let mut table = OutcomeTable::new();
    loop {
        let draws = state.next_round();
        if draws.is_empty() {
            break;
        }
        let specs: Vec<FaultSpec> = draws.iter().map(|d| d.spec).collect();
        let outcomes: Vec<Outcome> = match fork {
            Some(fork) => run_campaign_forked(prepared, workload, &specs, runner, fork)
                .iter()
                .map(|r| r.outcome)
                .collect(),
            None => specs
                .iter()
                .map(|s| run_experiment(prepared, workload, *s, runner).outcome)
                .collect(),
        };
        for (draw, outcome) in draws.iter().zip(&outcomes) {
            state.record(draw.cell, *outcome);
            table.add(*outcome);
        }
        state.end_round();
    }
    state.finalize();
    AdaptiveOutcome {
        cells: state.reports(config.z),
        table,
        experiments: state.drawn_total(),
        rounds: state.rounds(),
        resumed: 0,
        z: config.z,
    }
}

/// A replayed adaptive journal: the draw sequence already committed and
/// every terminal outcome already recorded.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveReplay {
    /// `(cell label, draw ordinal)` per experiment, in draw order.
    pub drawn: Vec<(String, u64)>,
    /// Terminal records by experiment index.
    pub terminal: BTreeMap<u64, ReplayTerminal>,
    /// Attempts burned on experiments without a terminal record.
    pub attempts: BTreeMap<u64, u64>,
}

/// One replayed terminal record.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayTerminal {
    /// Finished with a classified outcome.
    Done {
        /// The journaled outcome.
        outcome: Outcome,
        /// Attempt that completed it.
        attempt: u64,
        /// Simulated ticks of the completing run.
        ticks: u64,
    },
    /// Retries exhausted ([`Outcome::Infrastructure`]).
    Failed {
        /// Attempts consumed.
        attempts: u64,
    },
}

/// Replays an adaptive journal and validates it against this campaign's
/// identity (seed, checkpoint, stopping rule, cell set).
///
/// # Errors
///
/// [`ErrorKind::InvalidData`] when the journal belongs to a different
/// campaign, has no adaptive header, or records an inconsistent draw
/// sequence; I/O errors from reading the journal.
pub fn replay_adaptive(
    share: &Path,
    config: &AdaptiveConfig,
    seed: u64,
    checkpoint_digest: u64,
) -> std::io::Result<AdaptiveReplay> {
    let events = Journal::replay(&Journal::path_in(share))?;
    let header = events
        .iter()
        .find(|e| {
            matches!(e, JournalEvent::AdaptiveCampaign { .. } | JournalEvent::Campaign { .. })
        })
        .cloned()
        .ok_or_else(|| Error::new(ErrorKind::InvalidData, "journal has no campaign header"))?;
    if matches!(header, JournalEvent::Campaign { .. }) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "journal belongs to a fixed-n campaign, not an adaptive one",
        ));
    }
    if header != config.header(seed, checkpoint_digest) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "journal was recorded for a different adaptive campaign \
             (seed, checkpoint, stopping rule, or cell set differs)",
        ));
    }
    let mut replay = AdaptiveReplay::default();
    for event in events {
        match event {
            JournalEvent::Drawn { exp, cell, draw } => {
                if exp != replay.drawn.len() as u64 {
                    return Err(Error::new(
                        ErrorKind::InvalidData,
                        format!("draw record out of order: exp {exp} after {}", replay.drawn.len()),
                    ));
                }
                replay.drawn.push((cell, draw));
            }
            JournalEvent::Done { exp, attempt, outcome, ticks, .. } => {
                // First terminal record wins (zombie workers may double-
                // report after a reap).
                replay.terminal.entry(exp).or_insert(ReplayTerminal::Done {
                    outcome,
                    attempt,
                    ticks,
                });
            }
            JournalEvent::Failed { exp, attempts, .. } => {
                replay.terminal.entry(exp).or_insert(ReplayTerminal::Failed { attempts });
            }
            JournalEvent::AttemptFailed { exp, attempt, .. } => {
                let burned = replay.attempts.entry(exp).or_insert(0);
                *burned = (*burned).max(attempt);
            }
            _ => {}
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare_workload;
    use gemfi_cpu::CpuKind;
    use gemfi_workloads::pi::MonteCarloPi;

    fn tiny() -> (MonteCarloPi, PreparedWorkload, RunnerConfig) {
        let w = MonteCarloPi { points: 40, init_spins: 30, ..MonteCarloPi::default() };
        let p = prepare_workload(&w).unwrap();
        let runner = RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        };
        (w, p, runner)
    }

    #[test]
    fn cell_labels_roundtrip() {
        let mut cells = CellKind::CLASSES.to_vec();
        cells.extend([
            CellKind::Cache(CacheLevel::L1I),
            CellKind::Cache(CacheLevel::L1D),
            CellKind::Cache(CacheLevel::L2),
            CellKind::Security,
        ]);
        for cell in cells {
            assert_eq!(CellKind::parse(&cell.to_string()), Some(cell), "{cell}");
        }
        assert_eq!(CellKind::parse("bogus"), None);
    }

    #[test]
    fn rounds_draw_only_undecided_cells_within_budget() {
        let config = AdaptiveConfig {
            min_n: 4,
            batch: 5,
            budget: 23,
            cells: vec![CellKind::Class(LocationClass::Pc), CellKind::Class(LocationClass::IntReg)],
            ..AdaptiveConfig::default()
        };
        let mut state = AdaptiveState::new(&config, 9, [500; 5]);
        let first = state.next_round();
        assert_eq!(first.len(), 10, "batch per cell");
        assert_eq!(first.iter().filter(|d| d.cell == 0).count(), 5);
        // Exp indices are globally sequential; draw ordinals per-cell.
        for (i, d) in first.iter().enumerate() {
            assert_eq!(d.exp, i as u64);
        }
        for d in &first {
            state.record(d.cell, Outcome::Crashed);
        }
        state.end_round();
        // Decide cell 0 artificially by exhausting nothing: both still
        // sampling (±0.05 unreachable at n=5), so round 2 draws both, but
        // the 23-experiment budget caps the tail.
        let second = state.next_round();
        let third = state.next_round();
        assert_eq!(second.len(), 10);
        assert_eq!(third.len(), 3, "budget caps the last round");
        assert_eq!(state.drawn_total(), 23);
        assert!(state.next_round().is_empty());
        state.finalize();
        assert!(state.reports(Z_95).iter().all(|c| !c.decision.is_sampling()));
    }

    #[test]
    fn lopsided_cells_stop_early_and_release_budget() {
        let config = AdaptiveConfig {
            ci_halfwidth: 0.12,
            min_n: 10,
            batch: 8,
            budget: 400,
            cells: vec![CellKind::Class(LocationClass::Pc), CellKind::Class(LocationClass::IntReg)],
            ..AdaptiveConfig::default()
        };
        let mut state = AdaptiveState::new(&config, 3, [400; 5]);
        let mut lopsided_stopped_at = None;
        loop {
            let draws = state.next_round();
            if draws.is_empty() {
                break;
            }
            for d in &draws {
                // Cell 0 always crashes (perfectly lopsided); cell 1
                // alternates (maximum variance).
                let outcome = if d.cell == 0 || d.draw % 2 == 0 {
                    Outcome::Crashed
                } else {
                    Outcome::Correct
                };
                state.record(d.cell, outcome);
            }
            state.end_round();
            let reports = state.reports(Z_95);
            if lopsided_stopped_at.is_none() && reports[0].decision.is_decided() {
                lopsided_stopped_at = Some(reports[0].n);
            }
        }
        state.finalize();
        let reports = state.reports(Z_95);
        let stopped = lopsided_stopped_at.expect("lopsided cell decided");
        assert!(stopped <= 40, "lopsided cell stopped at n={stopped}");
        assert!(
            reports[1].n > reports[0].n * 2,
            "freed budget flowed to the mixed cell: {} vs {}",
            reports[1].n,
            reports[0].n
        );
        // The mixed cell kept its rule honest: decided only if its widest
        // CI reached the target.
        if reports[1].decision.is_decided() {
            assert!(reports[1].max_halfwidth <= 0.12 + 1e-9);
        }
    }

    #[test]
    fn min_n_floor_blocks_single_digit_decisions() {
        let config = AdaptiveConfig {
            ci_halfwidth: 0.49,
            min_n: 30,
            batch: 4,
            budget: 200,
            cells: vec![CellKind::Class(LocationClass::Fetch)],
            ..AdaptiveConfig::default()
        };
        let mut state = AdaptiveState::new(&config, 1, [300; 5]);
        loop {
            let draws = state.next_round();
            if draws.is_empty() {
                break;
            }
            for d in &draws {
                state.record(d.cell, Outcome::NonPropagated);
            }
            state.end_round();
            let r = &state.reports(Z_95)[0];
            if r.decision.is_decided() {
                assert!(r.n >= 30, "decided below the floor: n={}", r.n);
                break;
            }
        }
    }

    #[test]
    fn adaptive_campaign_runs_end_to_end_and_respects_the_budget() {
        let (w, p, runner) = tiny();
        let config = AdaptiveConfig {
            ci_halfwidth: 0.2,
            min_n: 5,
            batch: 6,
            budget: 40,
            cells: vec![CellKind::Class(LocationClass::FpReg), CellKind::Class(LocationClass::Pc)],
            ..AdaptiveConfig::default()
        };
        let out = run_campaign_adaptive(&p, &w, &runner, None, &config, 11);
        assert!(out.experiments <= 40, "budget respected: {}", out.experiments);
        assert_eq!(out.table.total(), out.experiments);
        assert_eq!(out.cells.len(), 2);
        for c in &out.cells {
            assert!(!c.decision.is_sampling(), "{}: {}", c.cell, c.decision);
            if let CellDecision::Decided { n } = c.decision {
                assert!(n >= 5, "min_n floor");
            }
        }
        let rendered = out.to_string();
        assert!(rendered.contains("fp-reg") && rendered.contains("pc"), "{rendered}");
    }

    #[test]
    fn forked_and_serial_adaptive_campaigns_agree() {
        let (w, p, runner) = tiny();
        let config = AdaptiveConfig {
            ci_halfwidth: 0.25,
            min_n: 4,
            batch: 5,
            budget: 25,
            cells: vec![CellKind::Class(LocationClass::IntReg)],
            ..AdaptiveConfig::default()
        };
        let serial = run_campaign_adaptive(&p, &w, &runner, None, &config, 5);
        let fork = ForkConfig::default();
        let forked = run_campaign_adaptive(&p, &w, &runner, Some(&fork), &config, 5);
        assert_eq!(serial.experiments, forked.experiments);
        for (a, b) in serial.cells.iter().zip(&forked.cells) {
            assert_eq!(a.decision, b.decision, "{}", a.cell);
            assert_eq!(a.stats, b.stats, "{}", a.cell);
        }
    }
}
