//! Fault-injection campaigns over the GemFI engine (Sec. IV–V methodology).
//!
//! A campaign reproduces the paper's experimental pipeline end to end:
//!
//! 1. **Checkpoint**: run the workload once up to its `fi_read_init_all()`
//!    marker (system "boot" + application initialization) and snapshot the
//!    machine (Fig. 3).
//! 2. **Golden run**: continue fault-free to get the reference output, the
//!    kernel's per-stage event counts (the samplable fault space), and the
//!    fault-free timing.
//! 3. **Sampling**: draw faults uniformly over *Location*, *Time* and
//!    *Behavior* (Sec. IV-B-1, single-event-upset bit flips), sized by the
//!    statistical-fault-injection formula of Leveugle et al. (DATE'09).
//! 4. **Experiments**: for each fault, restore the checkpoint into **O3**
//!    mode, inject, continue "until the affected instruction commits or
//!    squashes", then switch to **atomic** mode until termination.
//! 5. **Classification**: crashed / non-propagated / strictly-correct /
//!    correct / SDC, using each workload's acceptability gate.
//! 6. Optionally, execute the experiment set on a simulated **network of
//!    workstations** pulling work from a shared spool directory
//!    (Sec. III-E).

pub mod adaptive;
pub mod classify;
pub mod clock;
pub mod fork;
pub mod journal;
pub mod lease;
pub mod now;
pub mod report;
pub mod rng;
pub mod runner;
pub mod sampler;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod timing;
pub mod transport;
pub mod window;
pub mod wire;
pub mod worker;

pub use adaptive::{
    replay_adaptive, run_campaign_adaptive, AdaptiveConfig, AdaptiveOutcome, AdaptiveReplay,
    AdaptiveState, CellKind, CellReport, ReplayTerminal,
};
pub use classify::classify;
pub use clock::{system_clock, Clock, SystemClock, TestClock};
pub use fork::{
    drive_suffix, plan_suffixes, run_campaign_forked, run_campaign_forked_journaled, ForkConfig,
    ForkedSuffix,
};
pub use journal::{CampaignState, ExpState, Journal, JournalEvent};
pub use lease::{Lease, LeaseDir};
pub use now::{
    run_campaign_adaptive_now, run_campaign_now, ChaosConfig, CompletedExperiment, NowConfig,
    NowReport,
};
pub use report::OutcomeTable;
pub use rng::SplitMix64;
pub use runner::{
    drive_whole_run, prepare_workload, prepare_workload_with, run_experiment, run_experiment_from,
    run_experiment_from_with_abort, run_experiment_multi, run_experiment_multi_with_abort,
    ExperimentResult, PreparedWorkload, RunnerConfig, DORMANT_CHUNK_FACTOR,
};
pub use sampler::{FaultSampler, LocationClass};
pub use server::{CampaignServer, QueueKind, QueueReport, QueueSpec, ServerConfig, ServerReport};
pub use snapshot::SnapshotPolicy;
pub use stats::{
    leveugle_sample_size, proportion_ci, wilson_interval, CellDecision, CellStats, StopRule, Z_95,
    Z_99,
};
pub use transport::{CampaignTransport, ClaimReply, QueueContext, ReportAck, WorkAssignment};
pub use wire::{ClientMsg, ServerMsg, PROTO_VERSION};
pub use worker::{
    run_socket_worker, SocketTransport, WorkerOptions, WorkerReport, WorkloadResolver,
};
