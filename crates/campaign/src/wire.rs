//! The campaign wire format: flat JSON lines shared by the journal and the
//! socket protocol.
//!
//! One encoding serves two transports. The journal has always been
//! hand-rolled, greppable, flat JSON — strings and unsigned integers only,
//! one object per line — and the campaign server speaks exactly the same
//! dialect over TCP: every request and reply is one `\n`-terminated flat
//! JSON object, so a protocol exchange can be debugged with `nc` and the
//! same parser that replays journals decodes network frames. The single
//! exception is checkpoint shipping, where a JSON header line announcing
//! `{"len":N,"digest":D}` is followed by exactly `N` raw bytes.
//!
//! Nothing here allocates a general JSON tree: no nesting, no arrays, no
//! floats, no booleans. Fractions travel in parts-per-million and flags as
//! `0`/`1`, mirroring the journal's conventions.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, Read, Write};

/// Wire-protocol version, sent in `hello`/`welcome`. Bumped on
/// incompatible message-schema changes; a server refuses mismatched
/// workers rather than guessing.
pub const PROTO_VERSION: u64 = 1;

/// Escapes a string for embedding in a flat JSON object.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed flat JSON object: string and unsigned-integer values only.
#[derive(Debug, Default)]
pub(crate) struct FlatObject {
    strings: BTreeMap<String, String>,
    numbers: BTreeMap<String, u64>,
}

impl FlatObject {
    pub(crate) fn str_field(&self, key: &str) -> Result<String, String> {
        self.strings.get(key).cloned().ok_or_else(|| format!("missing string field `{key}`"))
    }

    pub(crate) fn opt_str_field(&self, key: &str) -> Option<String> {
        self.strings.get(key).cloned()
    }

    pub(crate) fn num_field(&self, key: &str) -> Result<u64, String> {
        self.numbers.get(key).copied().ok_or_else(|| format!("missing numeric field `{key}`"))
    }
}

/// Parses `{"k":"v","n":42,...}` — exactly the shape the journal and the
/// protocol emit. Not a general JSON parser: no nesting, no arrays, no
/// floats.
pub(crate) fn parse_flat_object(line: &str) -> Result<FlatObject, String> {
    let mut chars = line.trim().chars().peekable();
    let mut obj = FlatObject::default();
    if chars.next() != Some('{') {
        return Err("expected `{`".into());
    }
    loop {
        match chars.peek() {
            Some('}') => break,
            Some('"') => {}
            Some(',') => {
                chars.next();
                continue;
            }
            Some(c) if c.is_whitespace() => {
                chars.next();
                continue;
            }
            other => return Err(format!("expected key, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("missing `:` after key `{key}`"));
        }
        skip_ws(&mut chars);
        match chars.peek() {
            Some('"') => {
                let value = parse_string(&mut chars)?;
                obj.strings.insert(key, value);
            }
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = chars.peek() {
                    let Some(d) = c.to_digit(10) else { break };
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or_else(|| format!("numeric overflow in `{key}`"))?;
                    chars.next();
                }
                obj.numbers.insert(key, n);
            }
            other => return Err(format!("unsupported value for `{key}`: {other:?}")),
        }
    }
    Ok(obj)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected `\"`".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

/// A worker → server request. One JSON line on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Registration: announces the worker and its protocol version.
    Hello {
        /// Worker id (unique per connection owner).
        worker: String,
        /// The worker's [`PROTO_VERSION`].
        proto: u64,
    },
    /// Ask for one experiment lease.
    Claim {
        /// Claiming worker id.
        worker: String,
    },
    /// Ask for a queue's campaign metadata (workload identity, golden
    /// reference, timing) — everything a worker needs besides the
    /// checkpoint image to execute experiments locally.
    Meta {
        /// Queue name.
        queue: String,
    },
    /// Ask for a queue's checkpoint image. Answered with
    /// [`ServerMsg::Blob`] followed by the raw bytes.
    Checkpoint {
        /// Queue name.
        queue: String,
    },
    /// Renew the lease on an in-flight attempt.
    Heartbeat {
        /// Owning worker id.
        worker: String,
        /// Queue name.
        queue: String,
        /// Experiment index.
        exp: u64,
        /// 1-based attempt under lease.
        attempt: u64,
    },
    /// Report a finished experiment.
    Result {
        /// Reporting worker id.
        worker: String,
        /// Queue name.
        queue: String,
        /// Experiment index.
        exp: u64,
        /// Attempt that completed it.
        attempt: u64,
        /// Classified outcome name (`Outcome::name`).
        outcome: String,
        /// Human-readable termination (`RunExit` display).
        exit: String,
        /// Simulated ticks of the run.
        ticks: u64,
        /// Rendered fault spec (audit; lets the server re-verify).
        spec: String,
    },
    /// Report a failed attempt (panic, abort, simulated death).
    Failed {
        /// Reporting worker id.
        worker: String,
        /// Queue name.
        queue: String,
        /// Experiment index.
        exp: u64,
        /// The failed attempt number.
        attempt: u64,
        /// Failure description.
        reason: String,
        /// Rendered fault spec, when known.
        spec: String,
    },
    /// Ask for the live metrics snapshot. Answered with a stream of
    /// status lines terminated by `{"status":"end"}`.
    Status,
}

impl ClientMsg {
    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            ClientMsg::Hello { worker, proto } => {
                format!(
                    "{{\"req\":\"hello\",\"worker\":\"{}\",\"proto\":{proto}}}",
                    json_escape(worker)
                )
            }
            ClientMsg::Claim { worker } => {
                format!("{{\"req\":\"claim\",\"worker\":\"{}\"}}", json_escape(worker))
            }
            ClientMsg::Meta { queue } => {
                format!("{{\"req\":\"meta\",\"queue\":\"{}\"}}", json_escape(queue))
            }
            ClientMsg::Checkpoint { queue } => {
                format!("{{\"req\":\"checkpoint\",\"queue\":\"{}\"}}", json_escape(queue))
            }
            ClientMsg::Heartbeat { worker, queue, exp, attempt } => format!(
                "{{\"req\":\"heartbeat\",\"worker\":\"{}\",\"queue\":\"{}\",\"exp\":{exp},\
                 \"attempt\":{attempt}}}",
                json_escape(worker),
                json_escape(queue)
            ),
            ClientMsg::Result { worker, queue, exp, attempt, outcome, exit, ticks, spec } => {
                format!(
                    "{{\"req\":\"result\",\"worker\":\"{}\",\"queue\":\"{}\",\"exp\":{exp},\
                     \"attempt\":{attempt},\"outcome\":\"{}\",\"exit\":\"{}\",\"ticks\":{ticks},\
                     \"spec\":\"{}\"}}",
                    json_escape(worker),
                    json_escape(queue),
                    json_escape(outcome),
                    json_escape(exit),
                    json_escape(spec)
                )
            }
            ClientMsg::Failed { worker, queue, exp, attempt, reason, spec } => format!(
                "{{\"req\":\"failed\",\"worker\":\"{}\",\"queue\":\"{}\",\"exp\":{exp},\
                 \"attempt\":{attempt},\"reason\":\"{}\",\"spec\":\"{}\"}}",
                json_escape(worker),
                json_escape(queue),
                json_escape(reason),
                json_escape(spec)
            ),
            ClientMsg::Status => "{\"req\":\"status\"}".to_string(),
        }
    }

    /// Parses one JSON line back into a request.
    ///
    /// # Errors
    ///
    /// A message describing the malformed line.
    pub fn parse(line: &str) -> Result<ClientMsg, String> {
        let fields = parse_flat_object(line)?;
        let kind = fields.str_field("req")?;
        match kind.as_str() {
            "hello" => Ok(ClientMsg::Hello {
                worker: fields.str_field("worker")?,
                proto: fields.num_field("proto")?,
            }),
            "claim" => Ok(ClientMsg::Claim { worker: fields.str_field("worker")? }),
            "meta" => Ok(ClientMsg::Meta { queue: fields.str_field("queue")? }),
            "checkpoint" => Ok(ClientMsg::Checkpoint { queue: fields.str_field("queue")? }),
            "heartbeat" => Ok(ClientMsg::Heartbeat {
                worker: fields.str_field("worker")?,
                queue: fields.str_field("queue")?,
                exp: fields.num_field("exp")?,
                attempt: fields.num_field("attempt")?,
            }),
            "result" => Ok(ClientMsg::Result {
                worker: fields.str_field("worker")?,
                queue: fields.str_field("queue")?,
                exp: fields.num_field("exp")?,
                attempt: fields.num_field("attempt")?,
                outcome: fields.str_field("outcome")?,
                exit: fields.str_field("exit")?,
                ticks: fields.num_field("ticks")?,
                spec: fields.str_field("spec")?,
            }),
            "failed" => Ok(ClientMsg::Failed {
                worker: fields.str_field("worker")?,
                queue: fields.str_field("queue")?,
                exp: fields.num_field("exp")?,
                attempt: fields.num_field("attempt")?,
                reason: fields.str_field("reason")?,
                spec: fields.str_field("spec")?,
            }),
            "status" => Ok(ClientMsg::Status),
            other => Err(format!("unknown request `{other}`")),
        }
    }
}

/// A server → worker reply. One JSON line on the wire (plus raw bytes
/// after a [`ServerMsg::Blob`] header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// Registration accepted.
    Welcome {
        /// The server's [`PROTO_VERSION`].
        proto: u64,
        /// Number of campaign queues currently configured.
        queues: u64,
    },
    /// A leased experiment window entry.
    Work {
        /// Queue the experiment belongs to.
        queue: String,
        /// Experiment index.
        exp: u64,
        /// 1-based attempt this lease covers.
        attempt: u64,
        /// Lease expiry, ms since the Unix epoch (server clock).
        deadline_ms: u64,
        /// Lease duration — the worker derives its heartbeat cadence
        /// (`lease_ms / 3`) from this.
        lease_ms: u64,
        /// Rendered fault spec (Listing-1 line) to execute.
        spec: String,
    },
    /// Nothing claimable right now (all leased or backing off); retry
    /// after the hinted delay.
    Idle {
        /// Suggested retry delay.
        backoff_ms: u64,
    },
    /// Every queue is terminal: the worker may exit.
    Complete,
    /// Campaign metadata for one queue.
    Meta {
        /// Queue name.
        queue: String,
        /// Workload name (resolved by the worker's own registry).
        workload: String,
        /// Workload scale label.
        scale: String,
        /// Digest of the queue's checkpoint image.
        checkpoint_digest: u64,
        /// Ticks consumed by boot (checkpoint capture point).
        boot_ticks: u64,
        /// Fault-free kernel ticks (watchdog sizing).
        kernel_ticks: u64,
        /// Golden per-stage event counts (sampler space), fetch→writeback.
        stage_events: [u64; 5],
        /// Hex-encoded golden output bytes (classification reference).
        golden_hex: String,
    },
    /// Binary transfer header: exactly `len` raw bytes follow this line.
    Blob {
        /// Byte count following the header line.
        len: u64,
        /// Digest of the payload (checkpoint digest).
        digest: u64,
    },
    /// Heartbeat accepted: the lease now expires at `deadline_ms`.
    HeartbeatAck {
        /// Renewed expiry, ms since the Unix epoch.
        deadline_ms: u64,
    },
    /// Heartbeat rejected: the lease was reaped or reassigned. The worker
    /// must abandon the window.
    HeartbeatLost,
    /// Result/failure report acknowledged; `accepted` is `0` when the
    /// report was stale (a newer attempt owns the experiment).
    Ack {
        /// `1` accepted, `0` stale.
        accepted: u64,
    },
    /// Protocol or server-side error.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

impl ServerMsg {
    /// Renders the reply as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            ServerMsg::Welcome { proto, queues } => {
                format!("{{\"reply\":\"welcome\",\"proto\":{proto},\"queues\":{queues}}}")
            }
            ServerMsg::Work { queue, exp, attempt, deadline_ms, lease_ms, spec } => format!(
                "{{\"reply\":\"work\",\"queue\":\"{}\",\"exp\":{exp},\"attempt\":{attempt},\
                 \"deadline_ms\":{deadline_ms},\"lease_ms\":{lease_ms},\"spec\":\"{}\"}}",
                json_escape(queue),
                json_escape(spec)
            ),
            ServerMsg::Idle { backoff_ms } => {
                format!("{{\"reply\":\"idle\",\"backoff_ms\":{backoff_ms}}}")
            }
            ServerMsg::Complete => "{\"reply\":\"complete\"}".to_string(),
            ServerMsg::Meta {
                queue,
                workload,
                scale,
                checkpoint_digest,
                boot_ticks,
                kernel_ticks,
                stage_events,
                golden_hex,
            } => format!(
                "{{\"reply\":\"meta\",\"queue\":\"{}\",\"workload\":\"{}\",\"scale\":\"{}\",\
                 \"checkpoint_digest\":{checkpoint_digest},\"boot_ticks\":{boot_ticks},\
                 \"kernel_ticks\":{kernel_ticks},\"ev0\":{},\"ev1\":{},\"ev2\":{},\"ev3\":{},\
                 \"ev4\":{},\"golden_hex\":\"{}\"}}",
                json_escape(queue),
                json_escape(workload),
                json_escape(scale),
                stage_events[0],
                stage_events[1],
                stage_events[2],
                stage_events[3],
                stage_events[4],
                json_escape(golden_hex)
            ),
            ServerMsg::Blob { len, digest } => {
                format!("{{\"reply\":\"blob\",\"len\":{len},\"digest\":{digest}}}")
            }
            ServerMsg::HeartbeatAck { deadline_ms } => {
                format!("{{\"reply\":\"heartbeat-ack\",\"deadline_ms\":{deadline_ms}}}")
            }
            ServerMsg::HeartbeatLost => "{\"reply\":\"heartbeat-lost\"}".to_string(),
            ServerMsg::Ack { accepted } => format!("{{\"reply\":\"ack\",\"accepted\":{accepted}}}"),
            ServerMsg::Error { reason } => {
                format!("{{\"reply\":\"error\",\"reason\":\"{}\"}}", json_escape(reason))
            }
        }
    }

    /// Parses one JSON line back into a reply.
    ///
    /// # Errors
    ///
    /// A message describing the malformed line.
    pub fn parse(line: &str) -> Result<ServerMsg, String> {
        let fields = parse_flat_object(line)?;
        let kind = fields.str_field("reply")?;
        match kind.as_str() {
            "welcome" => Ok(ServerMsg::Welcome {
                proto: fields.num_field("proto")?,
                queues: fields.num_field("queues")?,
            }),
            "work" => Ok(ServerMsg::Work {
                queue: fields.str_field("queue")?,
                exp: fields.num_field("exp")?,
                attempt: fields.num_field("attempt")?,
                deadline_ms: fields.num_field("deadline_ms")?,
                lease_ms: fields.num_field("lease_ms")?,
                spec: fields.str_field("spec")?,
            }),
            "idle" => Ok(ServerMsg::Idle { backoff_ms: fields.num_field("backoff_ms")? }),
            "complete" => Ok(ServerMsg::Complete),
            "meta" => Ok(ServerMsg::Meta {
                queue: fields.str_field("queue")?,
                workload: fields.str_field("workload")?,
                scale: fields.str_field("scale")?,
                checkpoint_digest: fields.num_field("checkpoint_digest")?,
                boot_ticks: fields.num_field("boot_ticks")?,
                kernel_ticks: fields.num_field("kernel_ticks")?,
                stage_events: [
                    fields.num_field("ev0")?,
                    fields.num_field("ev1")?,
                    fields.num_field("ev2")?,
                    fields.num_field("ev3")?,
                    fields.num_field("ev4")?,
                ],
                golden_hex: fields.str_field("golden_hex")?,
            }),
            "blob" => Ok(ServerMsg::Blob {
                len: fields.num_field("len")?,
                digest: fields.num_field("digest")?,
            }),
            "heartbeat-ack" => {
                Ok(ServerMsg::HeartbeatAck { deadline_ms: fields.num_field("deadline_ms")? })
            }
            "heartbeat-lost" => Ok(ServerMsg::HeartbeatLost),
            "ack" => Ok(ServerMsg::Ack { accepted: fields.num_field("accepted")? }),
            "error" => Ok(ServerMsg::Error { reason: fields.str_field("reason")? }),
            other => Err(format!("unknown reply `{other}`")),
        }
    }
}

/// Writes one protocol line (appends the terminating `\n`) and flushes.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_line<W: Write>(w: &mut W, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one `\n`-terminated line; `Ok(None)` on clean EOF.
///
/// # Errors
///
/// Propagates I/O errors; `InvalidData` on non-UTF-8.
pub fn read_line<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let n = r.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Reads the `len` raw bytes following a [`ServerMsg::Blob`] header.
///
/// # Errors
///
/// Propagates I/O errors (including truncation as `UnexpectedEof`).
pub fn read_blob<R: Read>(r: &mut R, len: u64) -> std::io::Result<Vec<u8>> {
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes)?;
    Ok(bytes)
}

/// Hex-encodes bytes (golden outputs inside [`ServerMsg::Meta`]).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes a [`hex_encode`] string.
///
/// # Errors
///
/// A message on odd length or non-hex digits.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".into());
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {:?}", pair[0] as char))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit {:?}", pair[1] as char))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_messages_roundtrip() {
        let msgs = vec![
            ClientMsg::Hello { worker: "w\"1\"".into(), proto: PROTO_VERSION },
            ClientMsg::Claim { worker: "w1".into() },
            ClientMsg::Meta { queue: "pi".into() },
            ClientMsg::Checkpoint { queue: "pi".into() },
            ClientMsg::Heartbeat { worker: "w1".into(), queue: "pi".into(), exp: 3, attempt: 2 },
            ClientMsg::Result {
                worker: "w1".into(),
                queue: "pi".into(),
                exp: 3,
                attempt: 2,
                outcome: "sdc".into(),
                exit: "halted (exit code 0)".into(),
                ticks: 123_456,
                spec: "reg f $1 0x1 1:100:i".into(),
            },
            ClientMsg::Failed {
                worker: "w1".into(),
                queue: "pi".into(),
                exp: 3,
                attempt: 2,
                reason: "worker panic: \"chaos\"\nline2".into(),
                spec: "reg f $1 0x1 1:100:i".into(),
            },
            ClientMsg::Status,
        ];
        for m in msgs {
            let line = m.to_json();
            assert!(!line.contains('\n'), "one message, one line: {line}");
            assert_eq!(ClientMsg::parse(&line).unwrap(), m, "{line}");
        }
    }

    #[test]
    fn server_messages_roundtrip() {
        let msgs = vec![
            ServerMsg::Welcome { proto: PROTO_VERSION, queues: 2 },
            ServerMsg::Work {
                queue: "pi".into(),
                exp: 7,
                attempt: 3,
                deadline_ms: 1_700_000_000_000,
                lease_ms: 30_000,
                spec: "reg f $1 0x1 1:100:i".into(),
            },
            ServerMsg::Idle { backoff_ms: 50 },
            ServerMsg::Complete,
            ServerMsg::Meta {
                queue: "pi".into(),
                workload: "pi".into(),
                scale: "small".into(),
                checkpoint_digest: 0xdead_beef,
                boot_ticks: 1_000,
                kernel_ticks: 50_000,
                stage_events: [1, 2, 3, 4, 5],
                golden_hex: "00ff10".into(),
            },
            ServerMsg::Blob { len: 4096, digest: 99 },
            ServerMsg::HeartbeatAck { deadline_ms: 42 },
            ServerMsg::HeartbeatLost,
            ServerMsg::Ack { accepted: 1 },
            ServerMsg::Error { reason: "unknown queue \"x\"".into() },
        ];
        for m in msgs {
            let line = m.to_json();
            assert!(!line.contains('\n'), "one message, one line: {line}");
            assert_eq!(ServerMsg::parse(&line).unwrap(), m, "{line}");
        }
    }

    #[test]
    fn framing_roundtrips_lines_and_blobs() {
        let mut buf = Vec::new();
        write_line(&mut buf, "{\"reply\":\"blob\",\"len\":3,\"digest\":7}").unwrap();
        buf.extend_from_slice(&[1, 2, 3]);
        write_line(&mut buf, "{\"reply\":\"complete\"}").unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let header = read_line(&mut r).unwrap().unwrap();
        let ServerMsg::Blob { len, digest } = ServerMsg::parse(&header).unwrap() else {
            panic!("expected blob header");
        };
        assert_eq!((len, digest), (3, 7));
        assert_eq!(read_blob(&mut r, len).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            ServerMsg::parse(&read_line(&mut r).unwrap().unwrap()).unwrap(),
            ServerMsg::Complete
        );
        assert_eq!(read_line(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn hex_roundtrips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex");
    }
}
