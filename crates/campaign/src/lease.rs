//! Expiring experiment leases on the network share.
//!
//! A worker claims experiment *i* by creating `exp{i:05}.lease` with
//! `O_CREAT|O_EXCL` semantics ([`std::fs::OpenOptions::create_new`]) — the
//! filesystem arbitrates races, so two workers (even on different machines
//! mounting the same share) can never both own an experiment. The file
//! carries the owner, the attempt number, and a wall-clock deadline; a
//! worker that dies or hangs simply stops renewing reality, and once the
//! deadline passes any other worker's reaper may break the lease and
//! return the experiment to the pending pool.
//!
//! Leases are *liveness* state and deliberately separate from the journal
//! (*history* state): a lease file exists only while an attempt is in
//! flight, while the journal records every transition forever.

use std::fs::OpenOptions;
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};

use crate::clock::{Clock, SystemClock};

/// Milliseconds since the Unix epoch — the clock leases are stamped in.
/// Served by [`SystemClock`], so it never runs backwards even if
/// `SystemTime` does; code that needs a *test-controllable* clock takes an
/// `Arc<dyn Clock>` instead of calling this.
pub fn now_ms() -> u64 {
    SystemClock.now_ms()
}

/// A decoded lease file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Experiment index.
    pub exp: usize,
    /// Owning worker id.
    pub worker: String,
    /// 1-based attempt number this lease covers.
    pub attempt: u64,
    /// Expiry, milliseconds since the Unix epoch.
    pub deadline_ms: u64,
}

impl Lease {
    /// Whether the lease has expired at time `now_ms`.
    pub fn expired(&self, now_ms: u64) -> bool {
        now_ms > self.deadline_ms
    }

    fn render(&self) -> String {
        format!(
            "worker={}\nattempt={}\ndeadline_ms={}\n",
            self.worker, self.attempt, self.deadline_ms
        )
    }

    fn parse(exp: usize, text: &str) -> Result<Lease, String> {
        let mut worker = None;
        let mut attempt = None;
        let mut deadline_ms = None;
        for line in text.lines() {
            let Some((k, v)) = line.split_once('=') else { continue };
            match k {
                "worker" => worker = Some(v.to_string()),
                "attempt" => attempt = v.parse::<u64>().ok(),
                "deadline_ms" => deadline_ms = v.parse::<u64>().ok(),
                _ => {}
            }
        }
        Ok(Lease {
            exp,
            worker: worker.ok_or("lease missing worker")?,
            attempt: attempt.ok_or("lease missing attempt")?,
            deadline_ms: deadline_ms.ok_or("lease missing deadline_ms")?,
        })
    }
}

/// The lease directory protocol over one share.
#[derive(Debug, Clone)]
pub struct LeaseDir {
    share: PathBuf,
}

impl LeaseDir {
    /// Wraps a share directory (must already exist).
    pub fn new(share: &Path) -> LeaseDir {
        LeaseDir { share: share.to_path_buf() }
    }

    /// The lease file path for experiment `exp`.
    pub fn lease_path(&self, exp: usize) -> PathBuf {
        self.share.join(format!("exp{exp:05}.lease"))
    }

    /// Atomically claims experiment `exp`: creates the lease file if and
    /// only if no lease exists. Returns `Ok(None)` when another worker
    /// holds it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the already-exists race loss.
    pub fn claim(
        &self,
        exp: usize,
        worker: &str,
        attempt: u64,
        deadline_ms: u64,
    ) -> std::io::Result<Option<Lease>> {
        let lease = Lease { exp, worker: worker.to_string(), attempt, deadline_ms };
        match OpenOptions::new().write(true).create_new(true).open(self.lease_path(exp)) {
            Ok(mut f) => {
                f.write_all(lease.render().as_bytes())?;
                f.flush()?;
                Ok(Some(lease))
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads the lease on `exp`, if one exists. A vanished-under-us file
    /// (owner released it mid-read) reads as `None`.
    ///
    /// # Errors
    ///
    /// I/O errors other than `NotFound`, or `InvalidData` for a malformed
    /// lease file.
    pub fn read(&self, exp: usize) -> std::io::Result<Option<Lease>> {
        match std::fs::read_to_string(self.lease_path(exp)) {
            Ok(text) => Lease::parse(exp, &text)
                .map(Some)
                .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Releases a lease (attempt finished, in success or failure). Missing
    /// files are fine — a reaper may have broken the lease already.
    ///
    /// # Errors
    ///
    /// I/O errors other than `NotFound`.
    pub fn release(&self, exp: usize) -> std::io::Result<()> {
        match std::fs::remove_file(self.lease_path(exp)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Renews the lease on `exp` to a new deadline — the heartbeat path.
    /// The rewrite only happens when the caller still owns the lease
    /// (worker and attempt match); returns whether it did. A missing lease
    /// means a reaper already broke it: the caller has lost the window.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn renew(
        &self,
        exp: usize,
        worker: &str,
        attempt: u64,
        new_deadline_ms: u64,
    ) -> std::io::Result<bool> {
        let Some(current) = self.read(exp)? else { return Ok(false) };
        if current.worker != worker || current.attempt != attempt {
            return Ok(false);
        }
        let renewed = Lease { deadline_ms: new_deadline_ms, ..current };
        std::fs::write(self.lease_path(exp), renewed.render())?;
        Ok(true)
    }

    /// Breaks an *expired* lease so the experiment can be reclaimed.
    /// Returns the broken lease, or `None` when the lease is gone or still
    /// live (someone else got here first, or the owner finished in time).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn reap(&self, exp: usize, now_ms: u64) -> std::io::Result<Option<Lease>> {
        let Some(lease) = self.read(exp)? else { return Ok(None) };
        if !lease.expired(now_ms) {
            return Ok(None);
        }
        self.release(exp)?;
        Ok(Some(lease))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gemfi-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let d = dir("excl");
        let leases = LeaseDir::new(&d);
        let lease = leases.claim(3, "ws0.slot0", 1, 10_000).unwrap().expect("first claim wins");
        assert_eq!(lease.worker, "ws0.slot0");
        assert!(leases.claim(3, "ws1.slot0", 1, 10_000).unwrap().is_none(), "second claim loses");
        assert_eq!(leases.read(3).unwrap().unwrap(), lease);
        leases.release(3).unwrap();
        assert!(leases.read(3).unwrap().is_none());
        assert!(leases.claim(3, "ws1.slot0", 2, 20_000).unwrap().is_some(), "reclaimable");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reap_breaks_only_expired_leases() {
        let d = dir("reap");
        let leases = LeaseDir::new(&d);
        leases.claim(0, "w", 1, 1_000).unwrap().unwrap();
        assert!(leases.reap(0, 500).unwrap().is_none(), "live lease survives");
        let broken = leases.reap(0, 1_001).unwrap().expect("expired lease broken");
        assert_eq!(broken.attempt, 1);
        assert!(leases.read(0).unwrap().is_none());
        assert!(leases.reap(0, 2_000).unwrap().is_none(), "idempotent");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn renew_extends_only_the_owners_lease() {
        let d = dir("renew");
        let leases = LeaseDir::new(&d);
        leases.claim(5, "w0", 1, 1_000).unwrap().unwrap();
        assert!(leases.renew(5, "w0", 1, 2_000).unwrap(), "owner renews");
        assert_eq!(leases.read(5).unwrap().unwrap().deadline_ms, 2_000);
        assert!(!leases.renew(5, "w1", 1, 9_000).unwrap(), "stranger cannot renew");
        assert!(!leases.renew(5, "w0", 2, 9_000).unwrap(), "wrong attempt cannot renew");
        assert_eq!(leases.read(5).unwrap().unwrap().deadline_ms, 2_000);
        leases.release(5).unwrap();
        assert!(!leases.renew(5, "w0", 1, 9_000).unwrap(), "reaped lease cannot renew");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn release_of_absent_lease_is_ok() {
        let d = dir("absent");
        let leases = LeaseDir::new(&d);
        leases.release(42).unwrap();
        assert!(leases.read(42).unwrap().is_none());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn concurrent_claims_admit_exactly_one_winner() {
        let d = dir("race");
        let leases = LeaseDir::new(&d);
        let wins: Vec<bool> = std::thread::scope(|s| {
            (0..8)
                .map(|t| {
                    let leases = leases.clone();
                    s.spawn(move || {
                        leases.claim(7, &format!("t{t}"), 1, u64::MAX).unwrap().is_some()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(wins.iter().filter(|&&w| w).count(), 1, "{wins:?}");
        std::fs::remove_dir_all(&d).ok();
    }
}
