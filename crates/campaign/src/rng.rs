//! A small, dependency-free deterministic PRNG for fault sampling.
//!
//! Campaigns must be reproducible from a seed alone — the resume path
//! re-derives the exact fault specs of an interrupted run — so the
//! generator is a fixed, well-known algorithm (SplitMix64, Steele et al.,
//! OOPSLA'14) whose sequence is stable across platforms and releases.

/// SplitMix64: a 64-bit generator with a single u64 of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded deterministically.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)` (Lemire's debiased multiply-shift).
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection-sample the biased tail of the 128-bit multiply.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_deterministic_and_matches_reference() {
        // Reference values for seed 0 from the published SplitMix64
        // algorithm (used to seed the xoshiro family).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues reachable");
        for _ in 0..1_000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
        }
        assert_eq!(r.range_inclusive(3, 3), 3);
    }

    #[test]
    fn full_width_range_does_not_overflow() {
        let mut r = SplitMix64::new(1);
        let _ = r.range_inclusive(0, u64::MAX);
        let _ = r.below(u64::MAX);
    }
}
