//! Injection-time campaigns (Fig. 6): outcome vs. normalized fault time.

use crate::report::OutcomeTable;
use crate::runner::{run_experiment, PreparedWorkload, RunnerConfig};
use crate::sampler::{FaultSampler, LocationClass};
use gemfi_workloads::Workload;

/// Runs `per_band` experiments in each of `bands` equal fractions of the
/// kernel's execution, sampling faults uniformly over the given location
/// classes. Returns one [`OutcomeTable`] per band — the Fig. 6 series.
pub fn timing_campaign(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    classes: &[LocationClass],
    bands: usize,
    per_band: usize,
    seed: u64,
    config: &RunnerConfig,
) -> Vec<OutcomeTable> {
    assert!(bands > 0 && !classes.is_empty());
    let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
    let mut tables = vec![OutcomeTable::new(); bands];
    for (band, table) in tables.iter_mut().enumerate() {
        let lo = band as f64 / bands as f64;
        let hi = (band + 1) as f64 / bands as f64;
        for i in 0..per_band {
            let class = classes[i % classes.len()];
            let spec = sampler.sample_in_band(class, lo, hi);
            let result = run_experiment(prepared, workload, spec, config);
            table.add(result.outcome);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare_workload;
    use gemfi_cpu::CpuKind;
    use gemfi_workloads::pi::MonteCarloPi;

    #[test]
    fn bands_partition_experiments() {
        let w = MonteCarloPi { points: 80, init_spins: 40, ..MonteCarloPi::default() };
        let p = prepare_workload(&w).unwrap();
        let cfg = RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        };
        let tables =
            timing_campaign(&p, &w, &[LocationClass::IntReg, LocationClass::FpReg], 3, 4, 9, &cfg);
        assert_eq!(tables.len(), 3);
        assert!(tables.iter().all(|t| t.total() == 4));
    }
}
