//! The backend-neutral window scheduler: one execution window's
//! claim/lease/heartbeat/result-fold state machine.
//!
//! Extracted from the NoW executor so both transports drive the *same*
//! protocol object: the spool backend locks a [`WindowScheduler`] directly
//! from in-process worker threads, and the campaign server locks one per
//! queue on behalf of remote workers. Everything an attempt's lifecycle
//! touches — the journal append, the lease file, the retry backoff, the
//! reaper, the result spool file — happens inside this type, so a
//! recovery-path fix lands on both backends at once.
//!
//! All timing goes through an injected [`Clock`]: tests drive lease
//! expiry, reaping and capped backoff by advancing a [`TestClock`]
//! instead of sleeping through real lease windows.
//!
//! [`TestClock`]: crate::clock::TestClock

use crate::clock::Clock;
use crate::journal::{Journal, JournalEvent};
use crate::lease::LeaseDir;
use crate::now::CompletedExperiment;
use gemfi::{AbortToken, FaultSpec, Outcome};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fault-tolerance policy of one window (derived from `NowConfig` or the
/// server's queue configuration).
#[derive(Debug, Clone)]
pub(crate) struct SchedulerPolicy {
    /// Lease duration in milliseconds.
    pub lease_ms: u64,
    /// Attempts before an experiment is terminally
    /// [`Outcome::Infrastructure`].
    pub max_attempts: u64,
    /// Base retry backoff in milliseconds; doubles per failed attempt,
    /// capped at 64×.
    pub backoff_ms: u64,
    /// Suggested idle retry delay handed to claimants when nothing is
    /// claimable.
    pub idle_backoff_ms: u64,
    /// Chaos: stop scheduling after this many experiments finish in this
    /// process (counted across windows via `finished_before`).
    pub halt_after: Option<usize>,
}

/// What a claim attempt produced.
#[derive(Debug)]
pub(crate) enum ClaimOutcome {
    /// A leased experiment.
    Work {
        /// Global experiment index.
        exp: usize,
        /// 1-based attempt now under lease.
        attempt: u64,
        /// Lease expiry (scheduler clock, ms since epoch).
        deadline_ms: u64,
        /// The fault to inject.
        spec: FaultSpec,
        /// Abort token the reaper will raise if the lease expires.
        abort: AbortToken,
    },
    /// Everything pending is leased or backing off; retry later.
    Idle,
    /// The window is terminal (or the chaos halt tripped): stop claiming.
    Complete,
}

/// Whether a report landed or arrived from a zombie attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportAck {
    /// The report was folded into the journal and schedule.
    Accepted,
    /// A reaper already moved the experiment on; the report was dropped
    /// (first-terminal-wins).
    Stale,
}

/// Per-experiment scheduler state (the in-process mirror of the on-share
/// lease/journal truth).
#[derive(Debug)]
enum Slot {
    /// Waiting to run; `attempts` already burned, claimable at
    /// `not_before_ms`.
    Pending { attempts: u64, not_before_ms: u64 },
    /// In flight under a lease.
    Leased { attempt: u64, deadline_ms: u64, worker: String, abort: AbortToken },
    /// Finished (outcome journaled).
    Done,
    /// Terminally failed in the harness.
    Failed,
}

impl Slot {
    /// A fresh or replayed pending slot.
    pub(crate) fn pending(attempts: u64) -> Slot {
        Slot::Pending { attempts, not_before_ms: 0 }
    }
}

/// Prefabricated slot state for [`WindowScheduler::new`] — how the campaign
/// driver seeds a window from a journal replay.
#[derive(Debug)]
pub(crate) enum SeedSlot {
    /// Needs execution, with attempts already burned by dead workers.
    Pending {
        /// Attempts consumed so far.
        attempts: u64,
    },
    /// Terminal before this window started (replayed from the journal).
    Terminal {
        /// The replayed record.
        record: CompletedExperiment,
    },
}

/// The scheduler of one execution window: a set of experiments run
/// together over a worker pool. A fixed-n campaign is a single window
/// covering every experiment; an adaptive campaign runs one window per
/// sampling round; a server queue is whatever window its campaign is
/// currently executing.
#[derive(Debug)]
pub(crate) struct WindowScheduler {
    /// Local slot → global experiment index.
    exps: Vec<usize>,
    /// Global experiment index → local slot.
    by_exp: BTreeMap<usize, usize>,
    /// Fault spec per local slot.
    specs: Vec<FaultSpec>,
    slots: Vec<Slot>,
    journal: Journal,
    completed: Vec<Option<CompletedExperiment>>,
    /// Experiments finished per worker name (server metrics).
    per_worker: BTreeMap<String, usize>,
    /// Experiments finished per workstation index (spool load balance).
    per_ws: Vec<usize>,
    retries: u64,
    reclaimed: u64,
    terminal: usize,
    finished_here: usize,
    /// Experiments finished in this process by *earlier* windows — keeps
    /// the chaos halt a per-process count across rounds.
    finished_before: usize,
    halted: bool,
    share: PathBuf,
    leases: LeaseDir,
    clock: Arc<dyn Clock>,
    policy: SchedulerPolicy,
}

/// The fault-configuration spool file for experiment `i`.
pub(crate) fn fault_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.fault"))
}

/// The result spool file for experiment `i`.
pub(crate) fn result_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.result"))
}

/// The mid-run snapshot file for experiment `i` (crash-resume state; local
/// scratch, deleted on terminal completion).
pub(crate) fn snapshot_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.snap"))
}

impl WindowScheduler {
    /// Builds a window over `exps` (global indices) with `seed[i]`
    /// describing each slot's starting state. `workstations` sizes the
    /// spool load-balance vector (0 is fine for the server).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        share: &Path,
        clock: Arc<dyn Clock>,
        policy: SchedulerPolicy,
        journal: Journal,
        exps: Vec<usize>,
        specs: Vec<FaultSpec>,
        seed: Vec<SeedSlot>,
        workstations: usize,
        reclaimed_at_start: u64,
        finished_before: usize,
    ) -> WindowScheduler {
        debug_assert!(exps.len() == specs.len() && exps.len() == seed.len());
        let mut slots = Vec::with_capacity(seed.len());
        let mut completed = vec![None; seed.len()];
        let mut terminal = 0;
        for (local, s) in seed.into_iter().enumerate() {
            match s {
                SeedSlot::Pending { attempts } => slots.push(Slot::pending(attempts)),
                SeedSlot::Terminal { record } => {
                    slots.push(if record.outcome == Outcome::Infrastructure {
                        Slot::Failed
                    } else {
                        Slot::Done
                    });
                    completed[local] = Some(record);
                    terminal += 1;
                }
            }
        }
        let by_exp = exps.iter().enumerate().map(|(local, &exp)| (exp, local)).collect();
        WindowScheduler {
            by_exp,
            exps,
            specs,
            slots,
            journal,
            completed,
            per_worker: BTreeMap::new(),
            per_ws: vec![0; workstations],
            retries: 0,
            reclaimed: reclaimed_at_start,
            terminal,
            finished_here: 0,
            finished_before,
            halted: false,
            share: share.to_path_buf(),
            leases: LeaseDir::new(share),
            clock,
            policy,
        }
    }

    /// Claims the next runnable experiment for `worker`: reaps expired
    /// leases first, then leases the first pending slot whose backoff has
    /// elapsed (journal + lease file + schedule, in that order).
    ///
    /// # Errors
    ///
    /// I/O errors from the journal or lease directory.
    pub(crate) fn try_claim(&mut self, worker: &str) -> std::io::Result<ClaimOutcome> {
        if self.halted || self.terminal == self.exps.len() {
            return Ok(ClaimOutcome::Complete);
        }
        self.reap_expired()?;
        if self.halted {
            return Ok(ClaimOutcome::Complete);
        }
        let now = self.clock.now_ms();
        let pick = self.slots.iter().position(
            |slot| matches!(slot, Slot::Pending { not_before_ms, .. } if now >= *not_before_ms),
        );
        let Some(local) = pick else { return Ok(ClaimOutcome::Idle) };
        let Slot::Pending { attempts, .. } = self.slots[local] else { unreachable!() };
        let exp = self.exps[local];
        let attempt = attempts + 1;
        let deadline_ms = now + self.policy.lease_ms;
        let lease = self
            .leases
            .claim(exp, worker, attempt, deadline_ms)?
            .expect("scheduler state guarantees the lease is free");
        let abort = AbortToken::new();
        self.journal.append(&JournalEvent::Leased {
            exp: exp as u64,
            worker: worker.to_string(),
            attempt,
            deadline_ms: lease.deadline_ms,
        })?;
        self.slots[local] =
            Slot::Leased { attempt, deadline_ms, worker: worker.to_string(), abort: abort.clone() };
        Ok(ClaimOutcome::Work { exp, attempt, deadline_ms, spec: self.specs[local], abort })
    }

    /// Renews the lease on an in-flight attempt (the heartbeat path).
    /// Returns the new deadline, or `None` when the caller no longer owns
    /// the experiment (reaped, reassigned, or already terminal) and must
    /// abandon the window.
    ///
    /// # Errors
    ///
    /// I/O errors from the lease directory.
    pub(crate) fn heartbeat(
        &mut self,
        exp: usize,
        worker: &str,
        attempt: u64,
    ) -> std::io::Result<Option<u64>> {
        let Some(&local) = self.by_exp.get(&exp) else { return Ok(None) };
        let owns = matches!(
            &self.slots[local],
            Slot::Leased { attempt: a, worker: w, .. } if *a == attempt && w == worker
        );
        if !owns {
            return Ok(None);
        }
        let new_deadline = self.clock.now_ms() + self.policy.lease_ms;
        if !self.leases.renew(exp, worker, attempt, new_deadline)? {
            // The lease file vanished under us (external reaper on a real
            // share); surrender rather than resurrect it.
            return Ok(None);
        }
        if let Slot::Leased { deadline_ms, .. } = &mut self.slots[local] {
            *deadline_ms = new_deadline;
        }
        Ok(Some(new_deadline))
    }

    /// Folds a successful terminal outcome: journal, result file,
    /// schedule, metrics. A report for an attempt the scheduler no longer
    /// considers leased is a zombie and is dropped ([`ReportAck::Stale`]).
    ///
    /// # Errors
    ///
    /// I/O errors from the journal or the share.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn report_done(
        &mut self,
        exp: usize,
        attempt: u64,
        worker: &str,
        ws: Option<usize>,
        outcome: Outcome,
        exit: &str,
        ticks: u64,
    ) -> std::io::Result<ReportAck> {
        let Some(&local) = self.by_exp.get(&exp) else { return Ok(ReportAck::Stale) };
        let still_mine =
            matches!(self.slots[local], Slot::Leased { attempt: a, .. } if a == attempt);
        if !still_mine {
            return Ok(ReportAck::Stale);
        }
        self.journal.append(&JournalEvent::Done {
            exp: exp as u64,
            attempt,
            outcome,
            exit: exit.to_string(),
            ticks,
        })?;
        std::fs::write(
            result_path(&self.share, exp),
            format!("{} outcome={} exit={}\n", self.specs[local], outcome, exit),
        )?;
        self.leases.release(exp)?;
        self.slots[local] = Slot::Done;
        self.completed[local] =
            Some(CompletedExperiment { exp, outcome, attempts: attempt, ticks, resumed: false });
        if let Some(ws) = ws {
            if let Some(n) = self.per_ws.get_mut(ws) {
                *n += 1;
            }
        }
        *self.per_worker.entry(worker.to_string()).or_insert(0) += 1;
        self.terminal += 1;
        self.finished_here += 1;
        self.check_halt();
        Ok(ReportAck::Accepted)
    }

    /// Folds a failed attempt (panic, abort, simulated death): back to
    /// pending with capped backoff, or terminally
    /// [`Outcome::Infrastructure`] once retries are exhausted. Zombie
    /// reports are dropped.
    ///
    /// # Errors
    ///
    /// I/O errors from the journal or the share.
    pub(crate) fn report_failed(
        &mut self,
        exp: usize,
        attempt: u64,
        worker: &str,
        reason: &str,
    ) -> std::io::Result<ReportAck> {
        let Some(&local) = self.by_exp.get(&exp) else { return Ok(ReportAck::Stale) };
        let still_mine =
            matches!(self.slots[local], Slot::Leased { attempt: a, .. } if a == attempt);
        if !still_mine {
            return Ok(ReportAck::Stale);
        }
        self.attempt_failed(local, attempt, worker, reason)?;
        self.check_halt();
        Ok(ReportAck::Accepted)
    }

    /// Transitions a failed attempt: back to pending with backoff, or
    /// terminally failed once retries are exhausted. The experiment's
    /// rendered fault spec is journaled alongside the failure so an
    /// `Infrastructure` row carries its own reproduction handle.
    fn attempt_failed(
        &mut self,
        local: usize,
        attempt: u64,
        worker: &str,
        reason: &str,
    ) -> std::io::Result<()> {
        let exp = self.exps[local];
        let spec = self.specs[local].to_string();
        self.journal.append(&JournalEvent::AttemptFailed {
            exp: exp as u64,
            attempt,
            worker: worker.to_string(),
            reason: reason.to_string(),
            spec: Some(spec.clone()),
        })?;
        self.leases.release(exp)?;
        if attempt >= self.policy.max_attempts {
            self.journal.append(&JournalEvent::Failed {
                exp: exp as u64,
                attempts: attempt,
                reason: reason.to_string(),
                spec: Some(spec),
            })?;
            std::fs::write(
                result_path(&self.share, exp),
                format!("outcome={} attempts={attempt} reason={reason}\n", Outcome::Infrastructure),
            )?;
            self.slots[local] = Slot::Failed;
            self.completed[local] = Some(CompletedExperiment {
                exp,
                outcome: Outcome::Infrastructure,
                attempts: attempt,
                ticks: 0,
                resumed: false,
            });
            self.terminal += 1;
            self.finished_here += 1;
        } else {
            self.retries += 1;
            // Capped exponential backoff: base × 2^(attempt-1), at most 64×.
            let factor = 1u64 << (attempt - 1).min(6);
            let backoff = self.policy.backoff_ms * factor;
            self.slots[local] =
                Slot::Pending { attempts: attempt, not_before_ms: self.clock.now_ms() + backoff };
        }
        Ok(())
    }

    /// Breaks expired leases (raising the runaway runs' abort tokens) and
    /// requeues or terminally fails their experiments.
    fn reap_expired(&mut self) -> std::io::Result<()> {
        let now = self.clock.now_ms();
        for local in 0..self.slots.len() {
            let Slot::Leased { attempt, deadline_ms, ref abort, .. } = self.slots[local] else {
                continue;
            };
            if now <= deadline_ms {
                continue;
            }
            abort.abort();
            let held = self.leases.reap(self.exps[local], now)?;
            let worker = held.map(|l| l.worker).unwrap_or_else(|| "unknown".into());
            self.reclaimed += 1;
            self.attempt_failed(local, attempt, &worker, "lease expired")?;
            self.check_halt();
        }
        Ok(())
    }

    fn check_halt(&mut self) {
        if self.policy.halt_after.is_some_and(|n| self.finished_before + self.finished_here >= n) {
            self.halted = true;
        }
    }

    /// Whether every slot is terminal.
    pub(crate) fn is_complete(&self) -> bool {
        self.terminal == self.exps.len()
    }

    /// `(terminal, total)` progress of the window.
    pub(crate) fn progress(&self) -> (usize, usize) {
        (self.terminal, self.exps.len())
    }

    /// Currently-leased slot count (quota accounting).
    pub(crate) fn leased(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Leased { .. })).count()
    }

    /// Failed attempts retried so far.
    pub(crate) fn retries(&self) -> u64 {
        self.retries
    }

    /// Expired leases broken so far (including any counted at seeding).
    pub(crate) fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Per-worker completion counts.
    pub(crate) fn per_worker(&self) -> &BTreeMap<String, usize> {
        &self.per_worker
    }

    /// Terminal records in local-slot order (None while unfinished).
    pub(crate) fn completed(&self) -> &[Option<CompletedExperiment>] {
        &self.completed
    }

    /// Tears the window down into its result parts:
    /// `(journal, completed, per_ws, retries, reclaimed, terminal,
    /// finished_here, halted)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (Journal, Vec<Option<CompletedExperiment>>, Vec<usize>, u64, u64, usize, usize, bool) {
        (
            self.journal,
            self.completed,
            self.per_ws,
            self.retries,
            self.reclaimed,
            self.terminal,
            self.finished_here,
            self.halted,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use gemfi::{FaultBehavior, FaultLocation, FaultSpec, FaultTiming};

    fn spec(reg: u8) -> FaultSpec {
        FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg },
            thread: 0,
            timing: FaultTiming::Instructions(10),
            behavior: FaultBehavior::Flip(1),
            occurrences: 1,
        }
    }

    fn scheduler(
        tag: &str,
        n: usize,
        clock: TestClock,
        policy: SchedulerPolicy,
    ) -> WindowScheduler {
        let share = std::env::temp_dir().join(format!("gemfi-window-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&share);
        std::fs::create_dir_all(&share).unwrap();
        let journal = Journal::open(&share).unwrap();
        WindowScheduler::new(
            &share,
            Arc::new(clock),
            policy,
            journal,
            (0..n).collect(),
            (0..n).map(|i| spec(i as u8 + 1)).collect(),
            (0..n).map(|_| SeedSlot::Pending { attempts: 0 }).collect(),
            1,
            0,
            0,
        )
    }

    fn policy() -> SchedulerPolicy {
        SchedulerPolicy {
            lease_ms: 1_000,
            max_attempts: 10,
            backoff_ms: 100,
            idle_backoff_ms: 1,
            halt_after: None,
        }
    }

    fn claim_exp(s: &mut WindowScheduler, worker: &str) -> (usize, u64, AbortToken) {
        match s.try_claim(worker).unwrap() {
            ClaimOutcome::Work { exp, attempt, abort, .. } => (exp, attempt, abort),
            other => panic!("expected work, got {other:?}"),
        }
    }

    #[test]
    fn reap_fires_only_past_the_deadline_and_aborts_the_runaway() {
        let clock = TestClock::at(1_000);
        let mut s = scheduler("reap", 1, clock.clone(), policy());
        let (exp, attempt, abort) = claim_exp(&mut s, "w0");
        assert_eq!((exp, attempt), (0, 1));
        // Within the lease: nothing claimable, nothing reaped.
        clock.advance(999);
        assert!(matches!(s.try_claim("w1").unwrap(), ClaimOutcome::Idle));
        assert!(!abort.is_aborted());
        // Past the deadline: reaped, aborted, and (after backoff) reclaimed.
        clock.advance(2);
        assert!(matches!(s.try_claim("w1").unwrap(), ClaimOutcome::Idle), "backoff holds it");
        assert!(abort.is_aborted(), "runaway run aborted");
        assert_eq!(s.reclaimed(), 1);
        clock.advance(100);
        let (_, attempt2, _) = claim_exp(&mut s, "w1");
        assert_eq!(attempt2, 2, "reclaim burns an attempt");
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        // Drive the backoff directly (no probe claims): fail attempts
        // 1..=9 and read the reopen delay off the claim boundary.
        let clock = TestClock::at(0);
        let mut s = scheduler("backoff2", 1, clock.clone(), policy());
        for attempt in 1..=9u64 {
            let (_, a, _) = claim_exp(&mut s, "w");
            assert_eq!(a, attempt);
            s.report_failed(0, attempt, "w", "chaos").unwrap();
            let backoff = 100 * (1u64 << (attempt - 1).min(6));
            // One tick before the backoff elapses: still idle.
            clock.advance(backoff - 1);
            assert!(
                matches!(s.try_claim("w").unwrap(), ClaimOutcome::Idle),
                "attempt {attempt}: backoff {backoff}ms held"
            );
            // At the boundary: claimable again.
            clock.advance(1);
        }
        // Attempts 7, 8 and 9 all used the 64× cap (6400 ms).
        let (_, a, _) = claim_exp(&mut s, "w");
        assert_eq!(a, 10);
    }

    #[test]
    fn exhausted_retries_go_terminal_with_result_file() {
        let clock = TestClock::at(0);
        let mut s =
            scheduler("exhaust", 2, clock.clone(), SchedulerPolicy { max_attempts: 2, ..policy() });
        for attempt in 1..=2u64 {
            let (exp, a, _) = claim_exp(&mut s, "w");
            assert_eq!((exp, a), (0, attempt));
            s.report_failed(0, attempt, "w", "chaos").unwrap();
            clock.advance(100_000);
        }
        assert!(!s.is_complete(), "second experiment still pending");
        let (exp, _, _) = claim_exp(&mut s, "w");
        assert_eq!(exp, 1, "experiment 0 is terminal");
        let done = s.completed()[0].clone().expect("terminal record");
        assert_eq!(done.outcome, Outcome::Infrastructure);
        assert_eq!(done.attempts, 2);
        assert!(result_path(&s.share, 0).exists(), "infra failure writes a result");
        std::fs::remove_dir_all(s.share.clone()).ok();
    }

    #[test]
    fn heartbeat_renews_the_lease_and_defers_the_reaper() {
        let clock = TestClock::at(0);
        let mut s = scheduler("hb", 1, clock.clone(), policy());
        let (exp, attempt, abort) = claim_exp(&mut s, "w0");
        clock.advance(900);
        let renewed = s.heartbeat(exp, "w0", attempt).unwrap().expect("owner renews");
        assert_eq!(renewed, 900 + 1_000);
        // Past the *original* deadline: the renewed lease holds.
        clock.advance(200);
        assert!(matches!(s.try_claim("w1").unwrap(), ClaimOutcome::Idle));
        assert!(!abort.is_aborted(), "renewed lease is not reaped");
        // Strangers and stale attempts cannot renew.
        assert_eq!(s.heartbeat(exp, "w1", attempt).unwrap(), None);
        assert_eq!(s.heartbeat(exp, "w0", attempt + 1).unwrap(), None);
        // Silence past the renewed deadline: reaped after all.
        clock.advance(1_000);
        let _ = s.try_claim("w1").unwrap();
        assert!(abort.is_aborted());
    }

    #[test]
    fn zombie_reports_are_stale_and_do_not_double_count() {
        let clock = TestClock::at(0);
        let mut s = scheduler("zombie", 1, clock.clone(), policy());
        let (exp, attempt, _) = claim_exp(&mut s, "w0");
        // Reap w0, back off, re-claim as w1.
        clock.advance(1_001);
        assert!(matches!(s.try_claim("w1").unwrap(), ClaimOutcome::Idle));
        clock.advance(100);
        let (_, attempt2, _) = claim_exp(&mut s, "w1");
        assert_eq!(attempt2, attempt + 1);
        // The zombie's late result is dropped...
        assert_eq!(
            s.report_done(exp, attempt, "w0", None, Outcome::Sdc, "zombie", 1).unwrap(),
            ReportAck::Stale
        );
        assert!(s.completed()[0].is_none(), "no terminal record from the zombie");
        // ...and the live attempt's result lands.
        assert_eq!(
            s.report_done(exp, attempt2, "w1", None, Outcome::Correct, "halted (exit code 0)", 9)
                .unwrap(),
            ReportAck::Accepted
        );
        assert!(s.is_complete());
        assert_eq!(s.completed()[0].as_ref().unwrap().outcome, Outcome::Correct);
        // A double-report of the finished attempt is also stale.
        assert_eq!(
            s.report_done(exp, attempt2, "w1", None, Outcome::Sdc, "dup", 9).unwrap(),
            ReportAck::Stale
        );
    }
}
