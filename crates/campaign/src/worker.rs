//! The campaign worker: one loop, any transport.
//!
//! [`drive_worker`] is the claim → execute → report cycle written against
//! [`CampaignTransport`], so the in-process spool threads of
//! [`crate::now`] and a remote process connected to a
//! [`crate::server::CampaignServer`] run byte-for-byte the same protocol
//! logic — `catch_unwind` containment, zombie-report suppression, chaos
//! hooks and all.
//!
//! [`SocketTransport`] is the TCP backend: flat-JSON lines to the campaign
//! server ([`crate::wire`]), transparent reconnect with capped backoff, and
//! a per-attempt heartbeat thread that renews the lease at a third of its
//! duration and raises the assignment's [`AbortToken`] when the server is
//! unreachable or answers [`ServerMsg::HeartbeatLost`] — the
//! network-partition recovery path: the in-flight run stops at its next
//! chunk boundary, the worker re-registers, and the server re-offers the
//! reaped experiment to the fleet.
//!
//! [`run_socket_worker`] stacks the workload-context bootstrap on top: per
//! queue it fetches campaign metadata once, rebuilds the workload through a
//! caller-supplied resolver, and fetches the checkpoint image once per
//! distinct digest (shared across queues that campaign the same prepared
//! workload).

use crate::runner::{
    run_experiment_from_with_abort, ExperimentResult, PreparedWorkload, RunnerConfig,
};
use crate::snapshot::{run_experiment_snapshotted, SnapshotPolicy};
use crate::transport::{AttemptGuard, CampaignTransport, ClaimReply, ReportAck, WorkAssignment};
use crate::wire::{
    hex_decode, read_blob, read_line, write_line, ClientMsg, ServerMsg, PROTO_VERSION,
};
use gemfi::{AbortToken, FaultConfig, Outcome};
use gemfi_isa::codec::Codec;
use gemfi_sim::{Checkpoint, RunExit};
use gemfi_workloads::{RunOutput, Workload};
use std::collections::HashMap;
use std::io::{BufReader, Error, ErrorKind};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a worker behaves, for either backend.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Worker id (lease owner, journal provenance, server metrics key).
    pub name: String,
    /// Experiment execution configuration.
    pub runner: RunnerConfig,
    /// Mid-run snapshot cadence (disabled by default).
    pub snapshot: SnapshotPolicy,
    /// Worker-local scratch directory for snapshot files; required for
    /// snapshots on the socket backend (the spool backend snapshots onto
    /// the share).
    pub scratch_dir: Option<PathBuf>,
    /// Chaos: `(experiment, attempt)` pairs whose execution panics.
    pub chaos_panic_on: Vec<(usize, u64)>,
    /// Chaos: die (return [`ErrorKind::Interrupted`], lease still held)
    /// immediately after making this many claims — a stand-in for
    /// `kill -9` on a worker.
    pub die_after_claims: Option<u64>,
    /// Connection attempts per request before the socket transport gives
    /// up and surfaces the error.
    pub connect_attempts: u32,
    /// Base delay between reconnect attempts; doubles per retry, capped
    /// at 32×.
    pub reconnect_delay: Duration,
}

impl WorkerOptions {
    /// Defaults: no snapshots, no chaos, 8 connection attempts with 50 ms
    /// base backoff.
    pub fn new(name: impl Into<String>) -> WorkerOptions {
        WorkerOptions {
            name: name.into(),
            runner: RunnerConfig::default(),
            snapshot: SnapshotPolicy::disabled(),
            scratch_dir: None,
            chaos_panic_on: Vec::new(),
            die_after_claims: None,
            connect_attempts: 8,
            reconnect_delay: Duration::from_millis(50),
        }
    }
}

/// What one worker did.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Leases obtained.
    pub claims: u64,
    /// Successful terminal results accepted by the scheduler.
    pub completed: u64,
    /// Failed attempts reported (panics and aborted runs).
    pub failed: u64,
    /// Reports dropped as zombies (the reaper had moved on).
    pub stale: u64,
}

/// Extracts a readable message from a panic payload.
pub(crate) fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The generic worker loop: claim, execute under `catch_unwind`, report,
/// until the transport says the campaign is complete. `execute` runs one
/// assignment and returns its result, or a failure description (context
/// fetch errors, snapshot I/O) that burns the attempt like a panic would.
///
/// # Errors
///
/// Transport I/O errors, and [`ErrorKind::Interrupted`] from the
/// [`WorkerOptions::die_after_claims`] chaos hook.
pub(crate) fn drive_worker<T: CampaignTransport>(
    transport: &mut T,
    opts: &WorkerOptions,
    execute: &mut dyn FnMut(&WorkAssignment) -> Result<ExperimentResult, String>,
) -> std::io::Result<WorkerReport> {
    let mut report = WorkerReport::default();
    loop {
        let assignment = match transport.claim(&opts.name)? {
            ClaimReply::Complete => return Ok(report),
            ClaimReply::Idle { backoff_ms } => {
                std::thread::sleep(Duration::from_millis(backoff_ms.max(1)));
                continue;
            }
            ClaimReply::Work(assignment) => assignment,
        };
        report.claims += 1;
        if opts.die_after_claims.is_some_and(|n| report.claims >= n) {
            // Simulated worker kill: the lease stays held until the
            // scheduler's reaper expires it.
            return Err(Error::new(
                ErrorKind::Interrupted,
                format!("chaos: worker {} died after {} claims", opts.name, report.claims),
            ));
        }

        let chaos_panic = opts.chaos_panic_on.contains(&(assignment.exp, assignment.attempt));
        let guard = transport.begin_attempt(&opts.name, &assignment);
        let run = catch_unwind(AssertUnwindSafe(|| {
            assert!(
                !chaos_panic,
                "chaos: injected panic for experiment {} attempt {}",
                assignment.exp, assignment.attempt
            );
            execute(&assignment)
        }));
        drop(guard);

        let ack = match run {
            Ok(Ok(result)) if result.outcome != Outcome::Infrastructure => {
                let ack = transport.report_result(
                    &opts.name,
                    &assignment,
                    result.outcome,
                    &result.exit.to_string(),
                    result.ticks,
                )?;
                if ack == ReportAck::Accepted {
                    report.completed += 1;
                }
                ack
            }
            Ok(Ok(result)) => {
                // The runner aborted (reaper or heartbeat loss raced us) —
                // treat like any other failed attempt.
                let reason = format!("runner aborted ({})", result.exit);
                let ack = transport.report_failure(&opts.name, &assignment, &reason)?;
                if ack == ReportAck::Accepted {
                    report.failed += 1;
                }
                ack
            }
            Ok(Err(reason)) => {
                let ack = transport.report_failure(&opts.name, &assignment, &reason)?;
                if ack == ReportAck::Accepted {
                    report.failed += 1;
                }
                ack
            }
            Err(panic) => {
                // Panic provenance: the payload message, so the journal
                // alone reproduces the case (the scheduler adds the spec).
                let reason = format!("worker panic: {}", panic_message(&panic));
                let ack = transport.report_failure(&opts.name, &assignment, &reason)?;
                if ack == ReportAck::Accepted {
                    report.failed += 1;
                }
                ack
            }
        };
        if ack == ReportAck::Stale {
            report.stale += 1;
        }
    }
}

/// One framed connection to the campaign server (registered via
/// `hello`/`welcome` at construction).
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn open_conn(addr: &str, worker: &str) -> std::io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let writer = stream.try_clone()?;
    let mut conn = Conn { reader: BufReader::new(stream), writer };
    let reply = exchange(
        &mut conn,
        &ClientMsg::Hello { worker: worker.to_string(), proto: PROTO_VERSION },
    )?;
    match reply {
        ServerMsg::Welcome { proto, .. } if proto == PROTO_VERSION => Ok(conn),
        ServerMsg::Welcome { proto, .. } => Err(Error::new(
            ErrorKind::InvalidData,
            format!("server speaks protocol {proto}, worker speaks {PROTO_VERSION}"),
        )),
        other => {
            Err(Error::new(ErrorKind::InvalidData, format!("expected welcome, got {other:?}")))
        }
    }
}

fn exchange(conn: &mut Conn, msg: &ClientMsg) -> std::io::Result<ServerMsg> {
    write_line(&mut conn.writer, &msg.to_json())?;
    let line = read_line(&mut conn.reader)?
        .ok_or_else(|| Error::new(ErrorKind::UnexpectedEof, "server closed the connection"))?;
    ServerMsg::parse(&line).map_err(|e| Error::new(ErrorKind::InvalidData, e))
}

/// The TCP backend of [`CampaignTransport`]: every verb is one
/// request/reply line to the campaign server. Connection loss is retried
/// with capped exponential backoff (re-registering via `hello` each time);
/// only an exhausted retry budget surfaces as an error. Requests are
/// idempotent on the server (zombie reports come back
/// [`ReportAck::Stale`]), so a retried request after a half-delivered one
/// cannot double-count.
pub struct SocketTransport {
    addr: String,
    conn: Option<Conn>,
    connect_attempts: u32,
    reconnect_delay: Duration,
}

impl SocketTransport {
    /// A transport for `addr` (`host:port`), with `opts` supplying the
    /// retry budget.
    pub fn new(addr: impl Into<String>, opts: &WorkerOptions) -> SocketTransport {
        SocketTransport {
            addr: addr.into(),
            conn: None,
            connect_attempts: opts.connect_attempts.max(1),
            reconnect_delay: opts.reconnect_delay,
        }
    }

    /// Sends `msg`, reconnecting (with capped backoff) on connection loss.
    fn request(&mut self, worker: &str, msg: &ClientMsg) -> std::io::Result<ServerMsg> {
        let mut last_err: Option<Error> = None;
        for attempt in 0..self.connect_attempts {
            if attempt > 0 {
                let factor = 1u64 << (attempt as u64 - 1).min(5);
                std::thread::sleep(self.reconnect_delay.saturating_mul(factor as u32));
            }
            if self.conn.is_none() {
                match open_conn(&self.addr, worker) {
                    Ok(conn) => self.conn = Some(conn),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection just ensured");
            match exchange(conn, msg) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Drop the broken connection; the next iteration
                    // re-registers from scratch.
                    self.conn = None;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| Error::other("no connection attempts made")))
    }
}

impl CampaignTransport for SocketTransport {
    fn claim(&mut self, worker: &str) -> std::io::Result<ClaimReply> {
        match self.request(worker, &ClientMsg::Claim { worker: worker.to_string() })? {
            ServerMsg::Complete => Ok(ClaimReply::Complete),
            ServerMsg::Idle { backoff_ms } => Ok(ClaimReply::Idle { backoff_ms }),
            ServerMsg::Work { queue, exp, attempt, deadline_ms, lease_ms, spec } => {
                let cfg: FaultConfig = spec
                    .parse()
                    .map_err(|e| Error::new(ErrorKind::InvalidData, format!("work spec: {e}")))?;
                let &[spec] = cfg.faults() else {
                    return Err(Error::new(ErrorKind::InvalidData, "work must carry one fault"));
                };
                Ok(ClaimReply::Work(WorkAssignment {
                    queue,
                    exp: exp as usize,
                    attempt,
                    deadline_ms,
                    lease_ms,
                    spec,
                    abort: AbortToken::new(),
                }))
            }
            ServerMsg::Error { reason } => Err(Error::new(ErrorKind::InvalidData, reason)),
            other => Err(Error::new(ErrorKind::InvalidData, format!("unexpected reply {other:?}"))),
        }
    }

    fn begin_attempt(&mut self, worker: &str, assignment: &WorkAssignment) -> AttemptGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let abort = assignment.abort.clone();
        let addr = self.addr.clone();
        let worker = worker.to_string();
        let msg = ClientMsg::Heartbeat {
            worker: worker.clone(),
            queue: assignment.queue.clone(),
            exp: assignment.exp as u64,
            attempt: assignment.attempt,
        };
        // Renew at a third of the lease: two beats can be lost before the
        // server-side reaper fires.
        let period = Duration::from_millis((assignment.lease_ms / 3).max(10));
        std::thread::spawn(move || {
            let mut misses = 0u32;
            loop {
                // Sleep in short steps so dropping the guard stops the
                // thread promptly.
                let deadline = std::time::Instant::now() + period;
                while std::time::Instant::now() < deadline {
                    if thread_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                if thread_stop.load(Ordering::SeqCst) {
                    return;
                }
                // Each beat uses a fresh connection: heartbeat liveness
                // must not depend on the state of the main request stream.
                let beat = open_conn(&addr, &worker).and_then(|mut c| exchange(&mut c, &msg));
                match beat {
                    Ok(ServerMsg::HeartbeatAck { .. }) => misses = 0,
                    Ok(_) => {
                        // `heartbeat-lost` (or anything unexpected): the
                        // lease is gone; stop the doomed run now.
                        abort.abort();
                        return;
                    }
                    Err(_) => {
                        misses += 1;
                        if misses >= 3 {
                            // Partition detected: abandon the window; the
                            // worker loop will re-register and re-claim.
                            abort.abort();
                            return;
                        }
                    }
                }
            }
        });
        AttemptGuard::stopping(stop)
    }

    fn report_result(
        &mut self,
        worker: &str,
        assignment: &WorkAssignment,
        outcome: Outcome,
        exit: &str,
        ticks: u64,
    ) -> std::io::Result<ReportAck> {
        let msg = ClientMsg::Result {
            worker: worker.to_string(),
            queue: assignment.queue.clone(),
            exp: assignment.exp as u64,
            attempt: assignment.attempt,
            outcome: outcome.to_string(),
            exit: exit.to_string(),
            ticks,
            spec: assignment.spec.to_string(),
        };
        match self.request(worker, &msg)? {
            ServerMsg::Ack { accepted } => {
                Ok(if accepted == 1 { ReportAck::Accepted } else { ReportAck::Stale })
            }
            other => Err(Error::new(ErrorKind::InvalidData, format!("unexpected reply {other:?}"))),
        }
    }

    fn report_failure(
        &mut self,
        worker: &str,
        assignment: &WorkAssignment,
        reason: &str,
    ) -> std::io::Result<ReportAck> {
        let msg = ClientMsg::Failed {
            worker: worker.to_string(),
            queue: assignment.queue.clone(),
            exp: assignment.exp as u64,
            attempt: assignment.attempt,
            reason: reason.to_string(),
            spec: assignment.spec.to_string(),
        };
        match self.request(worker, &msg)? {
            ServerMsg::Ack { accepted } => {
                Ok(if accepted == 1 { ReportAck::Accepted } else { ReportAck::Stale })
            }
            other => Err(Error::new(ErrorKind::InvalidData, format!("unexpected reply {other:?}"))),
        }
    }
}

/// A worker's workload registry: maps the server's `(workload, scale)`
/// metadata to a locally-built guest, or [`None`] for names the worker
/// does not know how to reconstruct.
pub type WorkloadResolver = dyn Fn(&str, &str) -> Option<Box<dyn Workload>>;

/// Everything a socket worker rebuilds per queue from the server's `meta`
/// reply: the workload (via the resolver), the prepared context, and the
/// checkpoint (fetched once per distinct digest).
struct QueueContext {
    workload: Box<dyn Workload>,
    prepared: PreparedWorkload,
}

/// Fetches queue metadata and the checkpoint image over dedicated
/// connections, rebuilding the worker-local execution context.
fn fetch_queue_context(
    addr: &str,
    worker: &str,
    queue: &str,
    resolver: &WorkloadResolver,
    checkpoints: &mut HashMap<u64, Arc<Checkpoint>>,
) -> Result<QueueContext, String> {
    let mut conn = open_conn(addr, worker).map_err(|e| format!("meta connect: {e}"))?;
    let meta = exchange(&mut conn, &ClientMsg::Meta { queue: queue.to_string() })
        .map_err(|e| format!("meta request: {e}"))?;
    let ServerMsg::Meta {
        workload,
        scale,
        checkpoint_digest,
        boot_ticks,
        kernel_ticks,
        stage_events,
        golden_hex,
        ..
    } = meta
    else {
        return Err(format!("expected meta, got {meta:?}"));
    };
    let workload = resolver(&workload, &scale)
        .ok_or_else(|| format!("no local workload for `{workload}` (scale `{scale}`)"))?;
    let checkpoint = match checkpoints.get(&checkpoint_digest) {
        Some(ckpt) => Arc::clone(ckpt),
        None => {
            // One image per digest per worker; queues sharing a prepared
            // workload share the fetched bytes.
            let reply = exchange(&mut conn, &ClientMsg::Checkpoint { queue: queue.to_string() })
                .map_err(|e| format!("checkpoint request: {e}"))?;
            let ServerMsg::Blob { len, digest } = reply else {
                return Err(format!("expected blob, got {reply:?}"));
            };
            let bytes =
                read_blob(&mut conn.reader, len).map_err(|e| format!("checkpoint bytes: {e}"))?;
            let ckpt =
                Checkpoint::from_bytes(&bytes).map_err(|e| format!("checkpoint decode: {e:?}"))?;
            if ckpt.digest() != digest || digest != checkpoint_digest {
                return Err("checkpoint digest mismatch after transfer".to_string());
            }
            let ckpt = Arc::new(ckpt);
            checkpoints.insert(checkpoint_digest, Arc::clone(&ckpt));
            ckpt
        }
    };
    let golden_bytes = hex_decode(&golden_hex).map_err(|e| format!("golden output: {e}"))?;
    let guest = workload.build();
    let prepared = PreparedWorkload {
        guest,
        checkpoint,
        golden: RunOutput {
            exit: RunExit::Halted(0),
            bytes: golden_bytes,
            console: Vec::new(),
            stats: Default::default(),
        },
        stage_events,
        boot_ticks,
        kernel_ticks,
    };
    Ok(QueueContext { workload, prepared })
}

/// Runs one remote worker against the campaign server at `addr` until the
/// server reports every queue complete. `resolver` maps the server's
/// `(workload, scale)` metadata to a locally-built [`Workload`] — the
/// binary's registry of workloads it knows how to reconstruct.
///
/// # Errors
///
/// Transport errors that survive the reconnect budget, and
/// [`ErrorKind::Interrupted`] from the chaos kill hook.
pub fn run_socket_worker(
    addr: &str,
    resolver: &WorkloadResolver,
    opts: &WorkerOptions,
) -> std::io::Result<WorkerReport> {
    let mut transport = SocketTransport::new(addr, opts);
    let mut contexts: HashMap<String, QueueContext> = HashMap::new();
    let mut checkpoints: HashMap<u64, Arc<Checkpoint>> = HashMap::new();
    let addr = addr.to_string();
    let name = opts.name.clone();
    let runner = opts.runner;
    let snapshot = opts.snapshot;
    let scratch = opts.scratch_dir.clone();

    let mut execute = move |assignment: &WorkAssignment| -> Result<ExperimentResult, String> {
        if !contexts.contains_key(&assignment.queue) {
            let ctx =
                fetch_queue_context(&addr, &name, &assignment.queue, resolver, &mut checkpoints)?;
            contexts.insert(assignment.queue.clone(), ctx);
        }
        let ctx = contexts.get(&assignment.queue).expect("context just inserted");
        let snap_path = scratch
            .as_ref()
            .filter(|_| snapshot.enabled())
            .map(|dir| dir.join(format!("{}-exp{:05}.snap", assignment.queue, assignment.exp)));
        let result = match &snap_path {
            Some(path) => run_experiment_snapshotted(
                &ctx.prepared.checkpoint,
                &ctx.prepared,
                ctx.workload.as_ref(),
                assignment.spec,
                &runner,
                &assignment.abort,
                path,
                snapshot,
            ),
            None => run_experiment_from_with_abort(
                &ctx.prepared.checkpoint,
                &ctx.prepared,
                ctx.workload.as_ref(),
                assignment.spec,
                &runner,
                &assignment.abort,
            ),
        };
        // The run reached a verdict: its snapshot has served its purpose.
        // Aborted runs keep theirs — the retry resumes from it.
        if result.outcome != Outcome::Infrastructure {
            if let Some(path) = &snap_path {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(result)
    };
    drive_worker(&mut transport, opts, &mut execute)
}
