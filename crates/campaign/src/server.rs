//! The campaign server: the NoW spool share lifted onto a socket.
//!
//! [`CampaignServer`] owns one [`WindowScheduler`] per campaign queue and
//! speaks the line-delimited JSON protocol of [`crate::wire`] to a fleet
//! of remote [`crate::worker`] processes. The server side of every verb is
//! the same state machine the spool backend locks in-process — claims
//! lease experiments, heartbeats renew them, results fold into the
//! durable journal as they arrive, expired leases are reaped and retried
//! with capped backoff — so the fault-tolerance story is written (and
//! tested) exactly once, in [`crate::window`].
//!
//! Topology (Sec. III-E, networked): the server process holds the share
//! directory and the journal; workers hold nothing durable. A worker that
//! dies mid-window simply stops heartbeating — the lease expires, the
//! server reaps it and re-offers the experiment. A server that dies is
//! restarted with `resume: true` and replays its journal, re-offering
//! only the remainder. Workers that lose the server abandon their window
//! via the heartbeat-miss abort and re-register against the restarted
//! instance.
//!
//! Queues are multi-tenant: each has a priority (higher is offered
//! first) and an optional lease quota (a cap on concurrently outstanding
//! experiments, so a low-priority bulk campaign cannot starve an urgent
//! one of workers). Fixed-n and adaptive campaigns both run behind the
//! same claim verb; the adaptive engine plans sampling rounds lazily as
//! claims drain each window.

use crate::adaptive::{AdaptiveConfig, AdaptiveOutcome, AdaptiveReplay, AdaptiveState};
use crate::clock::{system_clock, Clock};
use crate::journal::Journal;
use crate::lease::LeaseDir;
use crate::now::{
    fold_round, plan_round, seed_adaptive_campaign, seed_fixed_campaign, CompletedExperiment,
};
use crate::report::OutcomeTable;
use crate::runner::PreparedWorkload;
use crate::window::{ClaimOutcome, ReportAck, SchedulerPolicy, WindowScheduler};
use crate::wire::{hex_encode, json_escape, read_line, write_line, ClientMsg, ServerMsg};
use crate::PROTO_VERSION;
use gemfi::{FaultSpec, Outcome};
use gemfi_isa::codec::Codec;
use std::collections::BTreeMap;
use std::io::{BufReader, Error, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server-wide configuration: bind address, share layout and the
/// fault-tolerance policy applied to every queue's scheduler.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on. Default `127.0.0.1:0` (ephemeral port;
    /// read the bound address back via [`CampaignServer::addr`]).
    pub bind_addr: String,
    /// Root share directory; each queue gets a subdirectory.
    pub share_dir: PathBuf,
    /// Lease duration. Remote workers heartbeat at a third of this.
    pub lease: Duration,
    /// Failed attempts retried per experiment before it is terminally
    /// [`Outcome::Infrastructure`].
    pub max_retries: u64,
    /// Base retry backoff; doubles per failed attempt, capped at 64×.
    pub retry_backoff: Duration,
    /// Idle hint handed to workers when nothing is claimable.
    pub idle_backoff: Duration,
    /// Replay existing journals instead of starting fresh campaigns.
    pub resume: bool,
    /// Time source for leases (tests inject a [`crate::clock::TestClock`]).
    pub clock: Arc<dyn Clock>,
}

impl ServerConfig {
    /// A config serving `share_dir` on an ephemeral localhost port.
    pub fn new(share_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            share_dir: share_dir.into(),
            lease: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
            idle_backoff: Duration::from_millis(20),
            resume: false,
            clock: system_clock(),
        }
    }

    fn scheduler_policy(&self) -> SchedulerPolicy {
        SchedulerPolicy {
            lease_ms: self.lease.as_millis() as u64,
            max_attempts: self.max_retries + 1,
            backoff_ms: self.retry_backoff.as_millis() as u64,
            idle_backoff_ms: self.idle_backoff.as_millis().max(1) as u64,
            halt_after: None,
        }
    }
}

/// What kind of campaign a queue runs.
#[derive(Debug, Clone)]
pub enum QueueKind {
    /// A fixed experiment list (statistical-fault-injection sized).
    FixedN {
        /// The faults to inject, one experiment each.
        specs: Vec<FaultSpec>,
    },
    /// An adaptive sequential-sampling campaign.
    Adaptive {
        /// Stopping rule and cell layout.
        config: AdaptiveConfig,
        /// Campaign RNG seed (drives the draw sequence).
        seed: u64,
    },
}

/// One campaign queue as submitted to [`CampaignServer::start`].
pub struct QueueSpec {
    /// Queue name (also its share subdirectory; must be unique).
    pub name: String,
    /// Scheduling priority; higher is offered to claimants first.
    pub priority: u32,
    /// Max concurrently leased experiments, `0` = unlimited.
    pub quota: usize,
    /// Workload name workers resolve against their own registry.
    pub workload: String,
    /// Workload scale label (same registry key).
    pub scale: String,
    /// Prepared golden-run context (checkpoint, reference output, timing).
    pub prepared: PreparedWorkload,
    /// Fixed-n or adaptive.
    pub kind: QueueKind,
}

/// The per-queue campaign engine behind the shared claim verb. Both
/// variants box their state so the enum stays pointer-sized per queue.
enum QueueEngine {
    Fixed { scheduler: Box<WindowScheduler> },
    Adaptive(Box<AdaptiveEngine>),
}

/// An adaptive queue's sequential-sampling driver plus its live window.
struct AdaptiveEngine {
    config: AdaptiveConfig,
    state: AdaptiveState,
    table: OutcomeTable,
    replay: AdaptiveReplay,
    /// Journal between windows; [`None`] while a window is live.
    journal: Option<Journal>,
    /// Live window; [`None`] between windows (journal holds it).
    scheduler: Option<WindowScheduler>,
    /// Cell index per live-window slot (fold key).
    cells: Vec<usize>,
    retries: u64,
    reclaimed: u64,
    done: bool,
}

/// One queue: engine plus the static context served to workers.
struct Queue {
    name: String,
    priority: u32,
    quota: usize,
    workload: String,
    scale: String,
    share: PathBuf,
    prepared: PreparedWorkload,
    /// Serialized checkpoint image, encoded once and served by digest.
    ckpt_bytes: Arc<Vec<u8>>,
    /// Terminal records replayed from the journal at seeding/planning.
    resumed: usize,
    /// Completions credited per worker across finished windows.
    per_worker: BTreeMap<String, usize>,
    engine: QueueEngine,
}

/// What one queue said to a claim.
enum QueueClaim {
    Work(ServerMsg),
    Idle,
    Done,
}

impl Queue {
    /// Folds a completed adaptive window and plans until a claimable
    /// window exists or the campaign finalizes. No-op for fixed queues
    /// and for adaptive queues whose live window is still in flight.
    fn poke(&mut self, policy: &SchedulerPolicy, clock: &Arc<dyn Clock>) -> std::io::Result<()> {
        let QueueEngine::Adaptive(engine) = &mut self.engine else {
            return Ok(());
        };
        let AdaptiveEngine {
            config,
            state,
            table,
            replay,
            journal,
            scheduler,
            cells,
            retries,
            reclaimed,
            done,
        } = &mut **engine;
        if *done {
            return Ok(());
        }
        if let Some(live) = scheduler.as_ref() {
            if !live.is_complete() {
                return Ok(());
            }
            let live = scheduler.take().expect("live window present");
            for (worker, n) in live.per_worker() {
                *self.per_worker.entry(worker.clone()).or_insert(0) += n;
            }
            let (j, completed, _per_ws, r, rc, _terminal, _finished, _halted) = live.into_parts();
            fold_round(state, table, cells, completed);
            *retries += r;
            *reclaimed += rc;
            *journal = Some(j);
            state.end_round();
        }
        let leases = LeaseDir::new(&self.share);
        loop {
            let draws = state.next_round();
            if draws.is_empty() {
                state.finalize();
                *done = true;
                return Ok(());
            }
            let mut j = journal.take().expect("journal held between windows");
            let round =
                plan_round(&draws, config, replay, state, table, &mut j, &self.share, &leases)?;
            self.resumed += round.resumed;
            *reclaimed += round.reclaimed;
            if round.exps.is_empty() {
                // Every draw of this round was already terminal in the
                // journal; keep planning.
                *journal = Some(j);
                state.end_round();
                continue;
            }
            *cells = round.cells;
            *scheduler = Some(WindowScheduler::new(
                &self.share,
                clock.clone(),
                policy.clone(),
                j,
                round.exps,
                round.specs,
                round.seed,
                0,
                0,
                0,
            ));
            return Ok(());
        }
    }

    fn try_claim(
        &mut self,
        worker: &str,
        policy: &SchedulerPolicy,
        clock: &Arc<dyn Clock>,
    ) -> std::io::Result<QueueClaim> {
        loop {
            self.poke(policy, clock)?;
            let scheduler = match &mut self.engine {
                QueueEngine::Fixed { scheduler } => {
                    if scheduler.is_complete() {
                        return Ok(QueueClaim::Done);
                    }
                    &mut **scheduler
                }
                QueueEngine::Adaptive(engine) => {
                    if engine.done {
                        return Ok(QueueClaim::Done);
                    }
                    engine.scheduler.as_mut().expect("poke left a live window or finished")
                }
            };
            if self.quota > 0 && scheduler.leased() >= self.quota {
                return Ok(QueueClaim::Idle);
            }
            match scheduler.try_claim(worker)? {
                // The window drained between poke and claim (or the fixed
                // campaign just became terminal): advance and retry.
                ClaimOutcome::Complete => {
                    if matches!(self.engine, QueueEngine::Fixed { .. }) {
                        return Ok(QueueClaim::Done);
                    }
                }
                ClaimOutcome::Idle => return Ok(QueueClaim::Idle),
                // The server-side abort token is dropped: remote workers
                // abandon reaped windows via heartbeat loss instead.
                ClaimOutcome::Work { exp, attempt, deadline_ms, spec, abort: _ } => {
                    return Ok(QueueClaim::Work(ServerMsg::Work {
                        queue: self.name.clone(),
                        exp: exp as u64,
                        attempt,
                        deadline_ms,
                        lease_ms: policy.lease_ms,
                        spec: spec.to_string(),
                    }));
                }
            }
        }
    }

    /// `(terminal, total, leased, retries, reclaimed, done)` for STATUS.
    fn progress(&self) -> (u64, u64, u64, u64, u64, bool) {
        match &self.engine {
            QueueEngine::Fixed { scheduler } => {
                let (terminal, total) = scheduler.progress();
                (
                    terminal as u64,
                    total as u64,
                    scheduler.leased() as u64,
                    scheduler.retries(),
                    scheduler.reclaimed(),
                    scheduler.is_complete(),
                )
            }
            QueueEngine::Adaptive(engine) => {
                let live = engine.scheduler.as_ref();
                let in_window = live.map_or(0, |s| s.progress().0 as u64);
                (
                    engine.table.total() + in_window,
                    engine.state.drawn_total(),
                    live.map_or(0, |s| s.leased() as u64),
                    engine.retries + live.map_or(0, |s| s.retries()),
                    engine.reclaimed + live.map_or(0, |s| s.reclaimed()),
                    engine.done,
                )
            }
        }
    }

    fn is_done(&self) -> bool {
        match &self.engine {
            QueueEngine::Fixed { scheduler } => scheduler.is_complete(),
            QueueEngine::Adaptive(engine) => engine.done,
        }
    }

    /// Per-worker completions: finished windows plus the live one.
    fn worker_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = self.per_worker.clone();
        let live = match &self.engine {
            QueueEngine::Fixed { scheduler } => Some(&**scheduler),
            QueueEngine::Adaptive(engine) => engine.scheduler.as_ref(),
        };
        if let Some(live) = live {
            for (worker, n) in live.per_worker() {
                *counts.entry(worker.clone()).or_insert(0) += n;
            }
        }
        counts
    }

    fn report(&self) -> QueueReport {
        let (completed, table, adaptive, retries, reclaimed) = match &self.engine {
            QueueEngine::Fixed { scheduler } => {
                let completed: Vec<CompletedExperiment> =
                    scheduler.completed().iter().flatten().cloned().collect();
                let table: OutcomeTable = completed.iter().map(|c| c.outcome).collect();
                (completed, table, None, scheduler.retries(), scheduler.reclaimed())
            }
            QueueEngine::Adaptive(engine) => {
                let AdaptiveEngine {
                    config,
                    state,
                    table,
                    scheduler,
                    retries,
                    reclaimed,
                    done,
                    ..
                } = &**engine;
                let completed: Vec<CompletedExperiment> = scheduler
                    .as_ref()
                    .map(|s| s.completed().iter().flatten().cloned().collect())
                    .unwrap_or_default();
                let adaptive = done.then(|| AdaptiveOutcome {
                    cells: state.reports(config.z),
                    table: *table,
                    experiments: state.drawn_total(),
                    rounds: state.rounds(),
                    resumed: self.resumed as u64,
                    z: config.z,
                });
                let live = scheduler.as_ref();
                (
                    completed,
                    *table,
                    adaptive,
                    retries + live.map_or(0, |s| s.retries()),
                    reclaimed + live.map_or(0, |s| s.reclaimed()),
                )
            }
        };
        QueueReport {
            name: self.name.clone(),
            table,
            completed,
            adaptive,
            resumed: self.resumed,
            retries,
            reclaimed,
            per_worker: self.worker_counts(),
        }
    }
}

/// The terminal summary of one queue.
#[derive(Debug)]
pub struct QueueReport {
    /// Queue name.
    pub name: String,
    /// Outcome histogram of every folded experiment.
    pub table: OutcomeTable,
    /// Terminal per-experiment records (fixed queues: the full list;
    /// adaptive: the last live window only — the table is authoritative).
    pub completed: Vec<CompletedExperiment>,
    /// Adaptive conclusion, when the queue ran to its stopping rule.
    pub adaptive: Option<AdaptiveOutcome>,
    /// Terminal records replayed from the journal rather than executed.
    pub resumed: usize,
    /// Failed attempts retried.
    pub retries: u64,
    /// Expired leases reaped.
    pub reclaimed: u64,
    /// Completions credited per worker.
    pub per_worker: BTreeMap<String, usize>,
}

/// What the server did over its lifetime.
#[derive(Debug)]
pub struct ServerReport {
    /// Per-queue summaries, in priority order.
    pub queues: Vec<QueueReport>,
    /// Server uptime.
    pub wall: Duration,
}

/// State shared between the accept loop, connection handlers and the
/// owning [`CampaignServer`] handle.
struct Shared {
    queues: Mutex<Vec<Queue>>,
    policy: SchedulerPolicy,
    clock: Arc<dyn Clock>,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn claim(&self, worker: &str) -> std::io::Result<ServerMsg> {
        let mut queues = self.queues.lock().expect("queue mutex");
        let mut any_open = false;
        for queue in queues.iter_mut() {
            match queue.try_claim(worker, &self.policy, &self.clock)? {
                QueueClaim::Work(msg) => return Ok(msg),
                QueueClaim::Idle => any_open = true,
                QueueClaim::Done => {}
            }
        }
        if any_open {
            Ok(ServerMsg::Idle { backoff_ms: self.policy.idle_backoff_ms })
        } else {
            Ok(ServerMsg::Complete)
        }
    }

    fn heartbeat(&self, queue: &str, worker: &str, exp: usize, attempt: u64) -> ServerMsg {
        let mut queues = self.queues.lock().expect("queue mutex");
        let Some(q) = queues.iter_mut().find(|q| q.name == queue) else {
            return ServerMsg::HeartbeatLost;
        };
        let scheduler = match &mut q.engine {
            QueueEngine::Fixed { scheduler } => Some(&mut **scheduler),
            QueueEngine::Adaptive(engine) => engine.scheduler.as_mut(),
        };
        let Some(scheduler) = scheduler else { return ServerMsg::HeartbeatLost };
        match scheduler.heartbeat(exp, worker, attempt) {
            Ok(Some(deadline_ms)) => ServerMsg::HeartbeatAck { deadline_ms },
            Ok(None) => ServerMsg::HeartbeatLost,
            Err(e) => ServerMsg::Error { reason: format!("heartbeat journal append: {e}") },
        }
    }

    /// Folds a result or failure report. Reports for unknown queues or
    /// already-folded windows are stale, not errors — a worker may land a
    /// report after losing a race with the reaper.
    fn report(&self, msg: &ClientMsg) -> std::io::Result<ServerMsg> {
        let (queue, exp, attempt, worker) = match msg {
            ClientMsg::Result { queue, exp, attempt, worker, .. }
            | ClientMsg::Failed { queue, exp, attempt, worker, .. } => {
                (queue, *exp as usize, *attempt, worker)
            }
            _ => unreachable!("report() is called for Result/Failed only"),
        };
        let mut queues = self.queues.lock().expect("queue mutex");
        let Some(q) = queues.iter_mut().find(|q| &q.name == queue) else {
            return Ok(ServerMsg::Ack { accepted: 0 });
        };
        let scheduler = match &mut q.engine {
            QueueEngine::Fixed { scheduler } => Some(&mut **scheduler),
            QueueEngine::Adaptive(engine) => engine.scheduler.as_mut(),
        };
        let Some(scheduler) = scheduler else { return Ok(ServerMsg::Ack { accepted: 0 }) };
        let ack = match msg {
            ClientMsg::Result { outcome, exit, ticks, .. } => {
                let outcome: Outcome = match outcome.parse() {
                    Ok(o) => o,
                    Err(_) => {
                        return Ok(ServerMsg::Error {
                            reason: format!("unknown outcome `{outcome}`"),
                        })
                    }
                };
                scheduler.report_done(exp, attempt, worker, None, outcome, exit, *ticks)?
            }
            ClientMsg::Failed { reason, .. } => {
                scheduler.report_failed(exp, attempt, worker, reason)?
            }
            _ => unreachable!(),
        };
        Ok(ServerMsg::Ack { accepted: u64::from(ack == ReportAck::Accepted) })
    }

    /// The STATUS line stream: flat JSON, one object per line, terminated
    /// by `{"status":"end"}`.
    fn status_lines(&self) -> Vec<String> {
        let queues = self.queues.lock().expect("queue mutex");
        let done = queues.iter().all(Queue::is_done);
        let mut lines = vec![format!(
            "{{\"status\":\"server\",\"queues\":{},\"uptime_ms\":{},\"done\":{}}}",
            queues.len(),
            self.started.elapsed().as_millis(),
            u64::from(done)
        )];
        for q in queues.iter() {
            let kind = match q.engine {
                QueueEngine::Fixed { .. } => "fixed",
                QueueEngine::Adaptive(_) => "adaptive",
            };
            let (terminal, total, leased, retries, reclaimed, q_done) = q.progress();
            lines.push(format!(
                "{{\"status\":\"queue\",\"queue\":\"{}\",\"kind\":\"{kind}\",\"priority\":{},\
                 \"quota\":{},\"workload\":\"{}\",\"terminal\":{terminal},\"total\":{total},\
                 \"leased\":{leased},\"retries\":{retries},\"reclaimed\":{reclaimed},\
                 \"resumed\":{},\"done\":{}}}",
                json_escape(&q.name),
                q.priority,
                q.quota,
                json_escape(&q.workload),
                q.resumed,
                u64::from(q_done)
            ));
            for (worker, n) in q.worker_counts() {
                lines.push(format!(
                    "{{\"status\":\"worker\",\"queue\":\"{}\",\"worker\":\"{}\",\
                     \"completed\":{n}}}",
                    json_escape(&q.name),
                    json_escape(&worker)
                ));
            }
            if let QueueEngine::Adaptive(engine) = &q.engine {
                let AdaptiveEngine { config, state, .. } = &**engine;
                // Per-cell sequential-sampling telemetry: the live Wilson
                // intervals the stopping rule is watching, in ppm.
                for cell in state.reports(config.z) {
                    lines.push(format!(
                        "{{\"status\":\"cell\",\"queue\":\"{}\",\"cell\":\"{}\",\
                         \"decision\":\"{}\",\"n\":{},\"drawn\":{},\"max_hw_ppm\":{}}}",
                        json_escape(&q.name),
                        json_escape(&cell.cell.to_string()),
                        json_escape(&cell.decision.to_string()),
                        cell.n,
                        cell.drawn,
                        ppm(cell.stats.max_halfwidth(config.z))
                    ));
                    for outcome in Outcome::ALL {
                        if !outcome.is_experiment_outcome() {
                            continue;
                        }
                        lines.push(format!(
                            "{{\"status\":\"rate\",\"queue\":\"{}\",\"cell\":\"{}\",\
                             \"outcome\":\"{}\",\"rate_ppm\":{},\"hw_ppm\":{}}}",
                            json_escape(&q.name),
                            json_escape(&cell.cell.to_string()),
                            outcome.name(),
                            ppm(cell.stats.rate(outcome)),
                            ppm(cell.stats.halfwidth(outcome, config.z))
                        ));
                    }
                }
            }
        }
        lines.push("{\"status\":\"end\"}".to_string());
        lines
    }
}

/// Fractions as parts-per-million (keeps the status stream integer-only).
fn ppm(x: f64) -> u64 {
    (x * 1e6).round() as u64
}

/// A running campaign server. Dropping the handle does **not** stop the
/// daemon; call [`CampaignServer::shutdown`].
pub struct CampaignServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl CampaignServer {
    /// Seeds every queue's share (spooling fault files and the checkpoint,
    /// or replaying the journal on resume), binds the listener and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Seeding I/O, journal-replay mismatches, or bind failures.
    pub fn start(config: ServerConfig, specs: Vec<QueueSpec>) -> std::io::Result<CampaignServer> {
        if specs.is_empty() {
            return Err(Error::new(ErrorKind::InvalidInput, "campaign server needs >= 1 queue"));
        }
        std::fs::create_dir_all(&config.share_dir)?;
        let policy = config.scheduler_policy();
        let mut queues = Vec::with_capacity(specs.len());
        for spec in specs {
            if queues.iter().any(|q: &Queue| q.name == spec.name) {
                return Err(Error::new(
                    ErrorKind::InvalidInput,
                    format!("duplicate queue name `{}`", spec.name),
                ));
            }
            queues.push(build_queue(&config, &policy, spec)?);
        }
        // Priority order is claim order; stable sort keeps submission
        // order among equals.
        queues.sort_by_key(|q| std::cmp::Reverse(q.priority));

        let listener = TcpListener::bind(&config.bind_addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queues: Mutex::new(queues),
            policy,
            clock: config.clock.clone(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("gemfi-serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(CampaignServer { addr, shared, accept: Some(accept) })
    }

    /// The bound listen address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether every queue is terminal.
    pub fn is_complete(&self) -> bool {
        let mut queues = self.shared.queues.lock().expect("queue mutex");
        for q in queues.iter_mut() {
            // Adaptive queues advance on claims; with no worker traffic the
            // final fold/finalize still has to happen somewhere.
            let _ = q.poke(&self.shared.policy, &self.shared.clock);
        }
        queues.iter().all(Queue::is_done)
    }

    /// Polls until every queue is terminal or `timeout` elapses. Returns
    /// whether completion was reached.
    pub fn wait_complete(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_complete() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops accepting connections and returns the per-queue summaries.
    /// In-flight journals stay on disk: a later `resume: true` start
    /// replays them and re-offers only the remainder.
    ///
    /// # Errors
    ///
    /// Propagates accept-thread panics as I/O errors.
    pub fn shutdown(mut self) -> std::io::Result<ServerReport> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop; a failed connect means it is already
        // gone, which is fine.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().map_err(|_| Error::other("campaign server accept thread panicked"))?;
        }
        let queues = self.shared.queues.lock().expect("queue mutex");
        Ok(ServerReport {
            queues: queues.iter().map(Queue::report).collect(),
            wall: self.shared.started.elapsed(),
        })
    }
}

fn build_queue(
    config: &ServerConfig,
    policy: &SchedulerPolicy,
    spec: QueueSpec,
) -> std::io::Result<Queue> {
    let share = config.share_dir.join(&spec.name);
    let ckpt_bytes = Arc::new(spec.prepared.checkpoint.to_bytes());
    let (engine, resumed) = match spec.kind {
        QueueKind::FixedN { specs } => {
            let seeded = seed_fixed_campaign(&share, &spec.prepared, &specs, config.resume)?;
            let scheduler = WindowScheduler::new(
                &share,
                config.clock.clone(),
                policy.clone(),
                seeded.journal,
                (0..specs.len()).collect(),
                specs,
                seeded.seed,
                0,
                seeded.reclaimed,
                0,
            );
            (QueueEngine::Fixed { scheduler: Box::new(scheduler) }, seeded.resumed)
        }
        QueueKind::Adaptive { config: adaptive, seed } => {
            let (journal, replay) =
                seed_adaptive_campaign(&share, &spec.prepared, &adaptive, seed, config.resume)?;
            let state = AdaptiveState::new(&adaptive, seed, spec.prepared.stage_events);
            (
                QueueEngine::Adaptive(Box::new(AdaptiveEngine {
                    config: adaptive,
                    state,
                    table: OutcomeTable::new(),
                    replay,
                    journal: Some(journal),
                    scheduler: None,
                    cells: Vec::new(),
                    retries: 0,
                    reclaimed: 0,
                    done: false,
                })),
                0,
            )
        }
    };
    Ok(Queue {
        name: spec.name,
        priority: spec.priority,
        quota: spec.quota,
        workload: spec.workload,
        scale: spec.scale,
        share,
        prepared: spec.prepared,
        ckpt_bytes,
        resumed,
        per_worker: BTreeMap::new(),
        engine,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("gemfi-serve-conn".to_string())
            .spawn(move || handle_connection(stream, conn_shared));
    }
}

/// One connection: a loop of line-delimited requests. Any read/parse/write
/// failure drops the connection; workers reconnect and retry.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else { return };
    let mut writer = writer;
    let mut reader = BufReader::new(stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let line = match read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        let msg = match ClientMsg::parse(&line) {
            Ok(msg) => msg,
            Err(reason) => {
                let reply = ServerMsg::Error { reason };
                if write_line(&mut writer, &reply.to_json()).is_err() {
                    return;
                }
                continue;
            }
        };
        if dispatch(&shared, msg, &mut writer).is_err() {
            return;
        }
    }
}

fn dispatch(shared: &Shared, msg: ClientMsg, writer: &mut TcpStream) -> std::io::Result<()> {
    match msg {
        ClientMsg::Hello { worker: _, proto } => {
            let reply = if proto == PROTO_VERSION {
                let queues = shared.queues.lock().expect("queue mutex").len() as u64;
                ServerMsg::Welcome { proto: PROTO_VERSION, queues }
            } else {
                ServerMsg::Error {
                    reason: format!("protocol mismatch: server {PROTO_VERSION}, worker {proto}"),
                }
            };
            write_line(writer, &reply.to_json())
        }
        ClientMsg::Claim { worker } => {
            let reply = shared.claim(&worker)?;
            write_line(writer, &reply.to_json())
        }
        ClientMsg::Meta { queue } => {
            let reply = {
                let queues = shared.queues.lock().expect("queue mutex");
                match queues.iter().find(|q| q.name == queue) {
                    Some(q) => ServerMsg::Meta {
                        queue: q.name.clone(),
                        workload: q.workload.clone(),
                        scale: q.scale.clone(),
                        checkpoint_digest: q.prepared.checkpoint.digest(),
                        boot_ticks: q.prepared.boot_ticks,
                        kernel_ticks: q.prepared.kernel_ticks,
                        stage_events: q.prepared.stage_events,
                        golden_hex: hex_encode(&q.prepared.golden.bytes),
                    },
                    None => ServerMsg::Error { reason: format!("unknown queue `{queue}`") },
                }
            };
            write_line(writer, &reply.to_json())
        }
        ClientMsg::Checkpoint { queue } => {
            // Clone the Arc under the lock, stream the bytes outside it.
            let blob = {
                let queues = shared.queues.lock().expect("queue mutex");
                queues
                    .iter()
                    .find(|q| q.name == queue)
                    .map(|q| (Arc::clone(&q.ckpt_bytes), q.prepared.checkpoint.digest()))
            };
            match blob {
                Some((bytes, digest)) => {
                    let header = ServerMsg::Blob { len: bytes.len() as u64, digest };
                    write_line(writer, &header.to_json())?;
                    use std::io::Write;
                    writer.write_all(&bytes)?;
                    writer.flush()
                }
                None => {
                    let reply = ServerMsg::Error { reason: format!("unknown queue `{queue}`") };
                    write_line(writer, &reply.to_json())
                }
            }
        }
        ClientMsg::Heartbeat { worker, queue, exp, attempt } => {
            let reply = shared.heartbeat(&queue, &worker, exp as usize, attempt);
            write_line(writer, &reply.to_json())
        }
        msg @ (ClientMsg::Result { .. } | ClientMsg::Failed { .. }) => {
            let reply = shared.report(&msg)?;
            write_line(writer, &reply.to_json())
        }
        ClientMsg::Status => {
            for line in shared.status_lines() {
                write_line(writer, &line)?;
            }
            Ok(())
        }
    }
}
