//! Campaign execution on a (simulated) network of workstations — the
//! Sec. III-E protocol:
//!
//! 1. fault-configuration files for all experiments go to a network share;
//! 2. one simulation runs to the activation point and the checkpoint is
//!    stored on the share;
//! 3. each workstation takes a local copy of the checkpoint;
//! 4. each workstation repeatedly claims a remaining experiment from the
//!    share and executes it locally from the checkpointed state;
//! 5. results move back to the share;
//! 6. until no experiments remain.
//!
//! "Workstations" are thread groups sharing one local checkpoint copy; the
//! share is a real spool directory, so the artifacts (fault files, the
//! checkpoint blob, result files) are the same ones a physical cluster
//! would exchange over NFS.

use crate::report::OutcomeTable;
use crate::runner::{run_experiment_from, ExperimentResult, PreparedWorkload, RunnerConfig};
use gemfi::{FaultConfig, FaultSpec};
use gemfi_sim::Checkpoint;
use gemfi_workloads::Workload;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cluster shape.
#[derive(Debug, Clone)]
pub struct NowConfig {
    /// Number of workstations (the paper uses 27).
    pub workstations: usize,
    /// Concurrent experiments per workstation (the paper uses 4).
    pub slots_per_workstation: usize,
    /// The shared spool directory ("network share").
    pub share_dir: PathBuf,
}

/// What the cluster did.
#[derive(Debug, Clone)]
pub struct NowReport {
    /// Wall-clock duration of the parallel phase.
    pub wall: Duration,
    /// Experiments executed per workstation (load balance check).
    pub per_workstation: Vec<usize>,
    /// Total experiments.
    pub experiments: usize,
}

/// Runs a whole campaign on the simulated NoW. Returns the merged outcome
/// table, per-experiment results (in experiment order), and the report.
///
/// # Errors
///
/// Propagates I/O errors from the share directory.
pub fn run_campaign_now(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
    config: &NowConfig,
) -> std::io::Result<(OutcomeTable, Vec<ExperimentResult>, NowReport)> {
    std::fs::create_dir_all(&config.share_dir)?;

    // Step 1: experiment configurations onto the share.
    for (i, spec) in specs.iter().enumerate() {
        FaultConfig::from_specs(vec![*spec]).save(&fault_path(&config.share_dir, i))?;
    }
    // Step 2: the checkpoint onto the share.
    let ckpt_path = config.share_dir.join("campaign.ckpt");
    prepared.checkpoint.save(&ckpt_path)?;

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<ExperimentResult>>> = Mutex::new(vec![None; specs.len()]);
    let per_ws: Mutex<Vec<usize>> = Mutex::new(vec![0; config.workstations]);

    let started = Instant::now();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for ws in 0..config.workstations {
            // Step 3: one local checkpoint copy per workstation.
            let local = Arc::new(Checkpoint::load(&ckpt_path)?);
            for _slot in 0..config.slots_per_workstation {
                let local = Arc::clone(&local);
                let next = &next;
                let results = &results;
                let per_ws = &per_ws;
                let share = config.share_dir.clone();
                handles.push(scope.spawn(move || {
                    loop {
                        // Step 4: claim the next remaining experiment.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        let cfg = FaultConfig::load(&fault_path(&share, i))
                            .expect("spooled fault file readable");
                        let spec = cfg.faults()[0];
                        let result =
                            run_experiment_from(&local, prepared, workload, spec, runner);
                        // Step 5: the result back to the share.
                        let line = format!(
                            "{} outcome={} exit={}\n",
                            spec, result.outcome, result.exit
                        );
                        std::fs::write(result_path(&share, i), line)
                            .expect("share writable");
                        results.lock()[i] = Some(result);
                        per_ws.lock()[ws] += 1;
                    }
                }));
            }
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        Ok(())
    })?;
    let wall = started.elapsed();

    let results: Vec<ExperimentResult> = results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all experiments executed"))
        .collect();
    let table: OutcomeTable = results.iter().map(|r| r.outcome).collect();
    let per_workstation = per_ws.into_inner();
    Ok((
        table,
        results,
        NowReport { wall, per_workstation, experiments: specs.len() },
    ))
}

fn fault_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.fault"))
}

fn result_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare_workload;
    use crate::sampler::FaultSampler;
    use gemfi_cpu::CpuKind;
    use gemfi_workloads::pi::MonteCarloPi;

    #[test]
    fn now_executes_every_experiment_and_spools_artifacts() {
        let w = MonteCarloPi { points: 60, init_spins: 30, ..MonteCarloPi::default() };
        let p = prepare_workload(&w).unwrap();
        let mut sampler = FaultSampler::new(3, p.stage_events, 0, 0);
        let specs: Vec<_> = (0..12).map(|_| sampler.sample_any()).collect();
        let share = std::env::temp_dir().join(format!("gemfi-now-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&share);
        let runner = RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        };
        let cfg = NowConfig { workstations: 3, slots_per_workstation: 2, share_dir: share.clone() };
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 12);
        assert_eq!(results.len(), 12);
        assert_eq!(report.experiments, 12);
        assert_eq!(report.per_workstation.iter().sum::<usize>(), 12);
        // Spool artifacts exist.
        assert!(share.join("campaign.ckpt").exists());
        assert!(share.join("exp00000.fault").exists());
        assert!(share.join("exp00011.result").exists());
        std::fs::remove_dir_all(&share).ok();
    }

    #[test]
    fn now_results_match_serial_execution() {
        let w = MonteCarloPi { points: 50, init_spins: 20, ..MonteCarloPi::default() };
        let p = prepare_workload(&w).unwrap();
        let mut sampler = FaultSampler::new(11, p.stage_events, 0, 0);
        let specs: Vec<_> = (0..6).map(|_| sampler.sample_any()).collect();
        let runner = RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        };
        let serial: Vec<_> = specs
            .iter()
            .map(|s| crate::runner::run_experiment(&p, &w, *s, &runner).outcome)
            .collect();
        let share = std::env::temp_dir().join(format!("gemfi-now2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&share);
        let cfg = NowConfig { workstations: 2, slots_per_workstation: 2, share_dir: share.clone() };
        let (_, results, _) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        let parallel: Vec<_> = results.iter().map(|r| r.outcome).collect();
        assert_eq!(serial, parallel, "determinism across execution modes");
        std::fs::remove_dir_all(&share).ok();
    }
}
