//! Campaign execution on a (simulated) network of workstations — the
//! Sec. III-E protocol, hardened for real clusters:
//!
//! 1. fault-configuration files for all experiments go to a network share;
//! 2. one simulation runs to the activation point and the checkpoint is
//!    stored on the share;
//! 3. each workstation takes a local copy of the checkpoint;
//! 4. each workstation repeatedly claims a remaining experiment from the
//!    share by writing an **expiring lease** ([`crate::lease`]);
//! 5. results move back to the share, and every lifecycle transition is
//!    appended to a durable **journal** ([`crate::journal`]);
//! 6. until no experiments remain.
//!
//! "Workstations" are thread groups sharing one local checkpoint copy; the
//! share is a real spool directory, so the artifacts (fault files, the
//! checkpoint blob, lease files, result files, the journal) are the same
//! ones a physical cluster would exchange over NFS.
//!
//! Fault tolerance, on top of the paper's protocol:
//!
//! - A worker that panics releases its lease and journals the failed
//!   attempt; the experiment returns to the pending pool with capped
//!   exponential backoff.
//! - A worker that hangs past its lease deadline is reaped: any other
//!   worker's claim loop breaks the expired lease, raises the runaway
//!   run's [`AbortToken`], and requeues the experiment.
//! - An experiment that exhausts its retries is terminally classified
//!   [`Outcome::Infrastructure`] — counted, never silently dropped.
//! - A killed campaign resumes: [`run_campaign_now`] with
//!   [`NowConfig::resume`] replays the journal, verifies it belongs to this
//!   campaign (experiment count, fault-spec digest, checkpoint digest),
//!   reaps orphaned leases, and schedules only the unfinished remainder.
//!   The merged [`OutcomeTable`] is identical to an uninterrupted run.

use crate::adaptive::{
    replay_adaptive, AdaptiveConfig, AdaptiveOutcome, AdaptiveReplay, AdaptiveState, ReplayTerminal,
};
use crate::journal::{
    spec_digest, CampaignState, ExpState, Journal, JournalEvent, JOURNAL_VERSION,
};
use crate::lease::{now_ms, LeaseDir};
use crate::report::OutcomeTable;
use crate::runner::{
    run_experiment_from_with_abort, ExperimentResult, PreparedWorkload, RunnerConfig,
};
use gemfi::{AbortToken, FaultConfig, FaultSpec, Outcome};
use gemfi_sim::Checkpoint;
use gemfi_workloads::Workload;
use std::io::{Error, ErrorKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deterministic failure injection for testing the campaign harness itself.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// `(experiment, attempt)` pairs whose execution panics (a simulated
    /// workstation crash). Attempts are 1-based.
    pub panic_on: Vec<(usize, u64)>,
    /// Stop claiming after this many experiments finish *in this process*
    /// and return [`ErrorKind::Interrupted`] — a controlled stand-in for
    /// `kill -9` on the campaign driver. The journal survives; resume
    /// finishes the rest.
    pub halt_after: Option<usize>,
}

/// Cluster shape and fault-tolerance policy.
#[derive(Debug, Clone)]
pub struct NowConfig {
    /// Number of workstations (the paper uses 27).
    pub workstations: usize,
    /// Concurrent experiments per workstation (the paper uses 4).
    pub slots_per_workstation: usize,
    /// The shared spool directory ("network share").
    pub share_dir: PathBuf,
    /// Lease duration: a worker silent for longer than this is presumed
    /// dead and its experiment is reaped.
    pub lease: Duration,
    /// Retries after the first attempt before an experiment is terminally
    /// classified [`Outcome::Infrastructure`].
    pub max_retries: u64,
    /// Base retry backoff; doubles per failed attempt, capped at 64×.
    pub retry_backoff: Duration,
    /// Replay an existing journal and run only the unfinished remainder.
    /// Without a journal on the share this is an ordinary fresh start.
    pub resume: bool,
    /// Failure injection for harness tests.
    pub chaos: ChaosConfig,
}

impl NowConfig {
    /// A config with the given cluster shape and default fault-tolerance
    /// policy (30 s leases, 2 retries, 50 ms base backoff, fresh start).
    pub fn new(
        workstations: usize,
        slots_per_workstation: usize,
        share_dir: impl Into<PathBuf>,
    ) -> NowConfig {
        NowConfig {
            workstations,
            slots_per_workstation,
            share_dir: share_dir.into(),
            lease: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
            resume: false,
            chaos: ChaosConfig::default(),
        }
    }

    fn max_attempts(&self) -> u64 {
        self.max_retries + 1
    }
}

/// The terminal record of one experiment, from this run or replayed from
/// the journal on resume.
#[derive(Debug, Clone)]
pub struct CompletedExperiment {
    /// Experiment index.
    pub exp: usize,
    /// The classified outcome ([`Outcome::Infrastructure`] when the harness
    /// exhausted its retries).
    pub outcome: Outcome,
    /// Attempts consumed.
    pub attempts: u64,
    /// Simulated ticks of the completing run (0 for infrastructure
    /// failures).
    pub ticks: u64,
    /// Whether this record was replayed from the journal rather than
    /// executed by this process.
    pub resumed: bool,
}

/// What the cluster did.
#[derive(Debug, Clone)]
pub struct NowReport {
    /// Wall-clock duration of the parallel phase.
    pub wall: Duration,
    /// Experiments completed per workstation in this process (load balance
    /// check).
    pub per_workstation: Vec<usize>,
    /// Total experiments.
    pub experiments: usize,
    /// Experiments whose terminal record was replayed from the journal.
    pub resumed: usize,
    /// Failed attempts that were retried (panics and reaped leases).
    pub retries: u64,
    /// Expired leases broken by the reaper (subset of `retries` plus any
    /// orphans reaped at resume).
    pub reclaimed_leases: u64,
    /// Experiments terminally classified [`Outcome::Infrastructure`].
    pub infrastructure_failures: u64,
}

/// Per-experiment scheduler state (the in-process mirror of the on-share
/// lease/journal truth).
#[derive(Debug)]
enum Slot {
    /// Waiting to run; `attempts` already burned, claimable at
    /// `not_before_ms`.
    Pending { attempts: u64, not_before_ms: u64 },
    /// In flight under a lease.
    Leased { attempt: u64, deadline_ms: u64, abort: AbortToken },
    /// Finished (outcome journaled).
    Done,
    /// Terminally failed in the harness.
    Failed,
}

/// The in-process scheduler of one execution *window*: a set of
/// experiments run together over the workstation pool. A fixed-n campaign
/// is a single window covering every experiment; an adaptive campaign runs
/// one window per sampling round. Slots and completions are indexed
/// locally; `exps` maps a local slot to its global experiment index (the
/// one leases, fault files, and journal records use).
struct Shared {
    /// Local slot → global experiment index.
    exps: Vec<usize>,
    /// Fault spec per local slot.
    specs: Vec<FaultSpec>,
    slots: Vec<Slot>,
    journal: Journal,
    completed: Vec<Option<CompletedExperiment>>,
    per_ws: Vec<usize>,
    retries: u64,
    reclaimed: u64,
    terminal: usize,
    finished_here: usize,
    /// Experiments finished in this process by *earlier* windows — keeps
    /// [`ChaosConfig::halt_after`] a per-process count across rounds.
    finished_before: usize,
    halted: bool,
}

impl Shared {
    /// Transitions a failed attempt: back to pending with backoff, or
    /// terminally failed once retries are exhausted. `spec` is the rendered
    /// fault spec of the experiment — journaled alongside the failure so an
    /// `Infrastructure` row carries its own reproduction handle.
    #[allow(clippy::too_many_arguments)]
    fn attempt_failed(
        &mut self,
        local: usize,
        attempt: u64,
        worker: &str,
        reason: &str,
        spec: &str,
        config: &NowConfig,
        leases: &LeaseDir,
    ) -> std::io::Result<()> {
        let exp = self.exps[local];
        self.journal.append(&JournalEvent::AttemptFailed {
            exp: exp as u64,
            attempt,
            worker: worker.to_string(),
            reason: reason.to_string(),
            spec: Some(spec.to_string()),
        })?;
        leases.release(exp)?;
        if attempt >= config.max_attempts() {
            self.journal.append(&JournalEvent::Failed {
                exp: exp as u64,
                attempts: attempt,
                reason: reason.to_string(),
                spec: Some(spec.to_string()),
            })?;
            std::fs::write(
                result_path(&config.share_dir, exp),
                format!("outcome={} attempts={attempt} reason={reason}\n", Outcome::Infrastructure),
            )?;
            self.slots[local] = Slot::Failed;
            self.completed[local] = Some(CompletedExperiment {
                exp,
                outcome: Outcome::Infrastructure,
                attempts: attempt,
                ticks: 0,
                resumed: false,
            });
            self.terminal += 1;
            self.finished_here += 1;
        } else {
            self.retries += 1;
            // Capped exponential backoff: base × 2^(attempt-1), at most 64×.
            let factor = 1u64 << (attempt - 1).min(6);
            let backoff = config.retry_backoff.as_millis() as u64 * factor;
            self.slots[local] =
                Slot::Pending { attempts: attempt, not_before_ms: now_ms() + backoff };
        }
        Ok(())
    }

    /// Breaks expired leases (raising the runaway runs' abort tokens) and
    /// requeues or terminally fails their experiments.
    fn reap_expired(&mut self, config: &NowConfig, leases: &LeaseDir) -> std::io::Result<()> {
        let now = now_ms();
        for local in 0..self.slots.len() {
            let Slot::Leased { attempt, deadline_ms, ref abort } = self.slots[local] else {
                continue;
            };
            if now <= deadline_ms {
                continue;
            }
            abort.abort();
            let held = leases.reap(self.exps[local], now)?;
            let worker = held.map(|l| l.worker).unwrap_or_else(|| "unknown".into());
            self.reclaimed += 1;
            let rendered = self.specs[local].to_string();
            self.attempt_failed(
                local,
                attempt,
                &worker,
                "lease expired",
                &rendered,
                config,
                leases,
            )?;
        }
        Ok(())
    }
}

/// Runs a whole campaign on the simulated NoW. Returns the merged outcome
/// table, per-experiment terminal records (in experiment order), and the
/// report.
///
/// # Errors
///
/// I/O errors from the share; [`ErrorKind::InvalidData`] when resume finds
/// a journal from a different campaign (count, specs, or checkpoint
/// mismatch); [`ErrorKind::Interrupted`] when
/// [`ChaosConfig::halt_after`] stops the campaign early (the journal
/// remains resumable).
pub fn run_campaign_now(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
    config: &NowConfig,
) -> std::io::Result<(OutcomeTable, Vec<CompletedExperiment>, NowReport)> {
    std::fs::create_dir_all(&config.share_dir)?;
    let leases = LeaseDir::new(&config.share_dir);
    let ckpt_path = config.share_dir.join("campaign.ckpt");
    let resuming = config.resume && Journal::path_in(&config.share_dir).exists();

    // Step 1: experiment configurations onto the share (idempotent).
    for (i, spec) in specs.iter().enumerate() {
        FaultConfig::from_specs(vec![*spec]).save(&fault_path(&config.share_dir, i))?;
    }

    let mut resumed_count = 0;
    let mut reclaimed_at_start = 0;
    let mut orphans: Vec<(usize, u64, String)> = Vec::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(specs.len());
    let mut completed: Vec<Option<CompletedExperiment>> = vec![None; specs.len()];

    if resuming {
        // The checkpoint must be the very one the journal was recorded
        // against; compare digests before trusting any replayed outcome.
        let header = Checkpoint::load_header(&ckpt_path)?;
        let state = replay_state(&config.share_dir, specs, header.digest)?;
        for (exp, exp_state) in state.experiments.iter().enumerate() {
            match exp_state {
                ExpState::Unfinished { attempts } => {
                    // Break any orphaned lease left by the dead campaign
                    // process, whatever its deadline says.
                    let mut attempts = *attempts;
                    if let Some(orphan) = leases.read(exp)? {
                        leases.release(exp)?;
                        reclaimed_at_start += 1;
                        attempts = attempts.max(orphan.attempt);
                        orphans.push((exp, orphan.attempt, orphan.worker));
                    }
                    slots.push(Slot::Pending { attempts, not_before_ms: 0 });
                }
                ExpState::Done { outcome, attempt, ticks } => {
                    slots.push(Slot::Done);
                    completed[exp] = Some(CompletedExperiment {
                        exp,
                        outcome: *outcome,
                        attempts: *attempt,
                        ticks: *ticks,
                        resumed: true,
                    });
                    resumed_count += 1;
                }
                ExpState::Failed { attempts } => {
                    slots.push(Slot::Failed);
                    completed[exp] = Some(CompletedExperiment {
                        exp,
                        outcome: Outcome::Infrastructure,
                        attempts: *attempts,
                        ticks: 0,
                        resumed: true,
                    });
                    resumed_count += 1;
                }
            }
        }
    } else {
        // Fresh start: clear any stale run artifacts, then spool the
        // checkpoint (step 2) and open a new journal with the campaign
        // identity header.
        clear_run_artifacts(&config.share_dir)?;
        prepared.checkpoint.save(&ckpt_path)?;
        slots.extend((0..specs.len()).map(|_| Slot::Pending { attempts: 0, not_before_ms: 0 }));
    }

    let mut journal = Journal::open(&config.share_dir)?;
    if resuming {
        // Journal the attempts burned by orphaned leases, so a *second*
        // resume still counts them toward the retry cap.
        for (exp, attempt, worker) in orphans {
            journal.append(&JournalEvent::AttemptFailed {
                exp: exp as u64,
                attempt,
                worker,
                reason: "orphaned lease (campaign restart)".to_string(),
                spec: Some(specs[exp].to_string()),
            })?;
        }
    } else {
        journal.append(&JournalEvent::Campaign {
            version: JOURNAL_VERSION,
            experiments: specs.len() as u64,
            checkpoint_digest: prepared.checkpoint.digest(),
            spec_digest: spec_digest(specs),
        })?;
    }

    // Step 3: one local checkpoint copy per workstation.
    let locals = load_local_checkpoints(&ckpt_path, config.workstations)?;
    let window = execute_window(
        prepared,
        workload,
        (0..specs.len()).collect(),
        specs.to_vec(),
        slots,
        completed,
        &locals,
        runner,
        config,
        journal,
        &leases,
        reclaimed_at_start,
        0,
    )?;
    if window.halted {
        return Err(Error::new(
            ErrorKind::Interrupted,
            format!(
                "campaign halted by chaos after {} experiments ({} of {} terminal); resume to finish",
                window.finished_here,
                window.terminal,
                specs.len()
            ),
        ));
    }

    let results: Vec<CompletedExperiment> = window
        .completed
        .into_iter()
        .map(|r| r.expect("all experiments reached a terminal state"))
        .collect();
    let table: OutcomeTable = results.iter().map(|r| r.outcome).collect();
    let report = NowReport {
        wall: window.wall,
        per_workstation: window.per_ws,
        experiments: specs.len(),
        resumed: resumed_count,
        retries: window.retries,
        reclaimed_leases: window.reclaimed,
        infrastructure_failures: table.count(Outcome::Infrastructure),
    };
    Ok((table, results, report))
}

/// What one execution window did.
struct WindowResult {
    journal: Journal,
    completed: Vec<Option<CompletedExperiment>>,
    per_ws: Vec<usize>,
    retries: u64,
    reclaimed: u64,
    terminal: usize,
    finished_here: usize,
    halted: bool,
    wall: Duration,
}

fn load_local_checkpoints(
    ckpt_path: &Path,
    workstations: usize,
) -> std::io::Result<Vec<std::sync::Arc<Checkpoint>>> {
    (0..workstations).map(|_| Checkpoint::load(ckpt_path).map(std::sync::Arc::new)).collect()
}

/// Runs one window of experiments over the workstation pool: the paper's
/// claim/lease/execute/journal protocol (steps 4–5), factored out so both
/// the fixed-n campaign (one window) and the adaptive engine (one window
/// per round) share it. `exps[i]` is the global index of local slot `i`;
/// fault files for every listed experiment must already be spooled.
#[allow(clippy::too_many_arguments)]
fn execute_window(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    exps: Vec<usize>,
    specs: Vec<FaultSpec>,
    slots: Vec<Slot>,
    completed: Vec<Option<CompletedExperiment>>,
    locals: &[std::sync::Arc<Checkpoint>],
    runner: &RunnerConfig,
    config: &NowConfig,
    journal: Journal,
    leases: &LeaseDir,
    reclaimed_at_start: u64,
    finished_before: usize,
) -> std::io::Result<WindowResult> {
    debug_assert!(exps.len() == specs.len() && exps.len() == slots.len());
    let shared = Mutex::new(Shared {
        terminal: slots.iter().filter(|s| matches!(s, Slot::Done | Slot::Failed)).count(),
        exps,
        specs,
        slots,
        journal,
        completed,
        per_ws: vec![0; config.workstations],
        retries: 0,
        reclaimed: reclaimed_at_start,
        finished_here: 0,
        finished_before,
        halted: false,
    });

    let started = Instant::now();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for (ws, local) in locals.iter().enumerate() {
            for slot in 0..config.slots_per_workstation {
                let local = std::sync::Arc::clone(local);
                let shared = &shared;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        &format!("ws{ws}.slot{slot}"),
                        ws,
                        &local,
                        prepared,
                        workload,
                        runner,
                        config,
                        shared,
                        leases,
                    )
                }));
            }
        }
        for h in handles {
            h.join().expect("worker thread panicked outside catch_unwind")?;
        }
        Ok(())
    })?;
    let wall = started.elapsed();

    let s = shared.into_inner().expect("no worker holds the schedule");
    Ok(WindowResult {
        journal: s.journal,
        completed: s.completed,
        per_ws: s.per_ws,
        retries: s.retries,
        reclaimed: s.reclaimed,
        terminal: s.terminal,
        finished_here: s.finished_here,
        halted: s.halted,
        wall,
    })
}

/// One worker slot: claim → lease → execute (under `catch_unwind`) →
/// journal, until the campaign has no claimable work left.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    worker: &str,
    ws: usize,
    local_ckpt: &Checkpoint,
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    runner: &RunnerConfig,
    config: &NowConfig,
    shared: &Mutex<Shared>,
    leases: &LeaseDir,
) -> std::io::Result<()> {
    loop {
        // Step 4: claim the next remaining experiment under a lease.
        let claimed = {
            let mut s = shared.lock().expect("schedule mutex");
            if s.halted || s.terminal == s.exps.len() {
                return Ok(());
            }
            s.reap_expired(config, leases)?;
            let now = now_ms();
            let pick = s.slots.iter().position(
                |slot| matches!(slot, Slot::Pending { not_before_ms, .. } if now >= *not_before_ms),
            );
            match pick {
                None => None,
                Some(local) => {
                    let Slot::Pending { attempts, .. } = s.slots[local] else { unreachable!() };
                    let exp = s.exps[local];
                    let attempt = attempts + 1;
                    let deadline_ms = now + config.lease.as_millis() as u64;
                    let lease = leases
                        .claim(exp, worker, attempt, deadline_ms)?
                        .expect("in-process schedule guarantees the lease is free");
                    let abort = AbortToken::new();
                    s.journal.append(&JournalEvent::Leased {
                        exp: exp as u64,
                        worker: worker.to_string(),
                        attempt,
                        deadline_ms: lease.deadline_ms,
                    })?;
                    s.slots[local] = Slot::Leased { attempt, deadline_ms, abort: abort.clone() };
                    Some((local, exp, attempt, abort))
                }
            }
        };

        let Some((local, exp, attempt, abort)) = claimed else {
            // Everything is leased or backing off; wait for the world to
            // change rather than busy-spinning on the lock.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };

        let cfg = FaultConfig::load(&fault_path(&config.share_dir, exp))
            .expect("spooled fault file readable");
        let spec = cfg.faults()[0];
        let chaos_panic = config.chaos.panic_on.contains(&(exp, attempt));
        let run = catch_unwind(AssertUnwindSafe(|| {
            assert!(!chaos_panic, "chaos: injected panic for experiment {exp} attempt {attempt}");
            run_experiment_from_with_abort(local_ckpt, prepared, workload, spec, runner, &abort)
        }));

        let mut s = shared.lock().expect("schedule mutex");
        // A reaped worker's slot has moved on; its late result is a zombie
        // and must not double-count (the journal keeps first-terminal-wins
        // semantics too).
        let still_mine = matches!(s.slots[local], Slot::Leased { attempt: a, .. } if a == attempt);
        if !still_mine {
            continue;
        }
        match run {
            Ok(result) if result.outcome != Outcome::Infrastructure => {
                finish_experiment(&mut s, local, attempt, ws, &result, config)?;
                leases.release(exp)?;
                if config.chaos.halt_after.is_some_and(|n| s.finished_before + s.finished_here >= n)
                {
                    s.halted = true;
                }
            }
            Ok(result) => {
                // The runner aborted (reaper raced us) — treat like any
                // other failed attempt.
                let reason = format!("runner aborted ({})", result.exit);
                let rendered = spec.to_string();
                s.attempt_failed(local, attempt, worker, &reason, &rendered, config, leases)?;
            }
            Err(panic) => {
                // Panic provenance: the payload message plus the offending
                // fault spec, so the journal alone reproduces the case.
                let reason = format!("worker panic: {}", panic_message(&panic));
                let rendered = spec.to_string();
                s.attempt_failed(local, attempt, worker, &reason, &rendered, config, leases)?;
                if config.chaos.halt_after.is_some_and(|n| s.finished_before + s.finished_here >= n)
                {
                    s.halted = true;
                }
            }
        }
    }
}

/// Records a successful terminal outcome: journal, result file, schedule.
fn finish_experiment(
    s: &mut Shared,
    local: usize,
    attempt: u64,
    ws: usize,
    result: &ExperimentResult,
    config: &NowConfig,
) -> std::io::Result<()> {
    let exp = s.exps[local];
    s.journal.append(&JournalEvent::Done {
        exp: exp as u64,
        attempt,
        outcome: result.outcome,
        exit: result.exit.to_string(),
        ticks: result.ticks,
    })?;
    // Step 5: the result back to the share.
    std::fs::write(
        result_path(&config.share_dir, exp),
        format!("{} outcome={} exit={}\n", result.spec, result.outcome, result.exit),
    )?;
    s.slots[local] = Slot::Done;
    s.completed[local] = Some(CompletedExperiment {
        exp,
        outcome: result.outcome,
        attempts: attempt,
        ticks: result.ticks,
        resumed: false,
    });
    s.per_ws[ws] += 1;
    s.terminal += 1;
    s.finished_here += 1;
    Ok(())
}

/// Runs an adaptive (sequential early-stopping) campaign on the NoW: each
/// round the engine draws the next batch per undecided cell, journals
/// every draw, executes the not-yet-terminal remainder as one
/// lease/journal window across the workstations, and folds the outcomes
/// back into the live per-cell stats before re-evaluating the stopping
/// rule.
///
/// Resume ([`NowConfig::resume`]): the engine re-derives the identical
/// draw trajectory from the seed, validates it against the journaled
/// `drawn` records, folds terminal outcomes already recorded, reaps
/// orphaned leases, and executes only what is missing — reaching
/// byte-identical per-cell decisions to an uninterrupted run.
///
/// # Errors
///
/// I/O errors from the share; [`ErrorKind::InvalidData`] when resume finds
/// a journal from a different campaign (seed, checkpoint, stopping rule,
/// or cell set mismatch); [`ErrorKind::Interrupted`] when
/// [`ChaosConfig::halt_after`] stops the campaign early (the journal
/// remains resumable).
pub fn run_campaign_adaptive_now(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    runner: &RunnerConfig,
    config: &NowConfig,
    adaptive: &AdaptiveConfig,
    seed: u64,
) -> std::io::Result<(AdaptiveOutcome, NowReport)> {
    std::fs::create_dir_all(&config.share_dir)?;
    let leases = LeaseDir::new(&config.share_dir);
    let ckpt_path = config.share_dir.join("campaign.ckpt");
    let resuming = config.resume && Journal::path_in(&config.share_dir).exists();

    let replay = if resuming {
        let header = Checkpoint::load_header(&ckpt_path)?;
        replay_adaptive(&config.share_dir, adaptive, seed, header.digest)?
    } else {
        clear_run_artifacts(&config.share_dir)?;
        prepared.checkpoint.save(&ckpt_path)?;
        AdaptiveReplay::default()
    };
    let mut journal = Journal::open(&config.share_dir)?;
    if !resuming {
        journal.append(&adaptive.header(seed, prepared.checkpoint.digest()))?;
    }
    let locals = load_local_checkpoints(&ckpt_path, config.workstations)?;

    let mut state = AdaptiveState::new(adaptive, seed, prepared.stage_events);
    let mut table = OutcomeTable::new();
    let mut per_ws = vec![0usize; config.workstations];
    let mut wall = Duration::ZERO;
    let (mut retries, mut reclaimed) = (0u64, 0u64);
    let (mut resumed, mut finished_in_process) = (0usize, 0usize);

    loop {
        let draws = state.next_round();
        if draws.is_empty() {
            break;
        }
        // Commit the whole round's draw decisions to the journal before
        // executing any of them; a journaled prefix must match the
        // re-derived trajectory exactly.
        let mut window_exps: Vec<usize> = Vec::new();
        let mut window_cells: Vec<usize> = Vec::new();
        let mut window_specs: Vec<FaultSpec> = Vec::new();
        let mut window_slots: Vec<Slot> = Vec::new();
        for d in &draws {
            let label = adaptive.cells[d.cell].to_string();
            if let Some((cell, ordinal)) = replay.drawn.get(d.exp as usize) {
                if *cell != label || *ordinal != d.draw {
                    return Err(Error::new(
                        ErrorKind::InvalidData,
                        format!(
                            "journaled draw {} ({cell} #{ordinal}) does not match the \
                             re-derived trajectory ({label} #{})",
                            d.exp, d.draw
                        ),
                    ));
                }
            } else {
                journal.append(&JournalEvent::Drawn { exp: d.exp, cell: label, draw: d.draw })?;
            }
            match replay.terminal.get(&d.exp) {
                Some(ReplayTerminal::Done { outcome, .. }) => {
                    state.record(d.cell, *outcome);
                    table.add(*outcome);
                    resumed += 1;
                }
                Some(ReplayTerminal::Failed { .. }) => {
                    // Infrastructure failures spent budget but are not
                    // evidence — mirror of the live path.
                    table.add(Outcome::Infrastructure);
                    resumed += 1;
                }
                None => {
                    let global = d.exp as usize;
                    FaultConfig::from_specs(vec![d.spec])
                        .save(&fault_path(&config.share_dir, global))?;
                    let mut attempts = replay.attempts.get(&d.exp).copied().unwrap_or(0);
                    if let Some(orphan) = leases.read(global)? {
                        // A worker of the dead campaign process died
                        // holding this draw.
                        leases.release(global)?;
                        reclaimed += 1;
                        attempts = attempts.max(orphan.attempt);
                        journal.append(&JournalEvent::AttemptFailed {
                            exp: d.exp,
                            attempt: orphan.attempt,
                            worker: orphan.worker,
                            reason: "orphaned lease (campaign restart)".to_string(),
                            spec: Some(d.spec.to_string()),
                        })?;
                    }
                    window_exps.push(global);
                    window_cells.push(d.cell);
                    window_specs.push(d.spec);
                    window_slots.push(Slot::Pending { attempts, not_before_ms: 0 });
                }
            }
        }

        if !window_exps.is_empty() {
            let prefilled = vec![None; window_exps.len()];
            let window = execute_window(
                prepared,
                workload,
                window_exps,
                window_specs,
                window_slots,
                prefilled,
                &locals,
                runner,
                config,
                journal,
                &leases,
                0,
                finished_in_process,
            )?;
            journal = window.journal;
            wall += window.wall;
            retries += window.retries;
            reclaimed += window.reclaimed;
            finished_in_process += window.finished_here;
            for (ws, n) in window.per_ws.iter().enumerate() {
                per_ws[ws] += n;
            }
            if window.halted {
                return Err(Error::new(
                    ErrorKind::Interrupted,
                    format!(
                        "adaptive campaign halted by chaos after {finished_in_process} \
                         experiments ({} drawn); resume to finish",
                        state.drawn_total()
                    ),
                ));
            }
            for (local, done) in window.completed.into_iter().enumerate() {
                let done = done.expect("all window experiments reached a terminal state");
                state.record(window_cells[local], done.outcome);
                table.add(done.outcome);
            }
        }
        state.end_round();
    }

    state.finalize();
    let outcome = AdaptiveOutcome {
        cells: state.reports(adaptive.z),
        table,
        experiments: state.drawn_total(),
        rounds: state.rounds(),
        resumed: resumed as u64,
        z: adaptive.z,
    };
    let report = NowReport {
        wall,
        per_workstation: per_ws,
        experiments: outcome.experiments as usize,
        resumed,
        retries,
        reclaimed_leases: reclaimed,
        infrastructure_failures: outcome.table.count(Outcome::Infrastructure),
    };
    Ok((outcome, report))
}

/// Replays and validates the journal against this campaign's identity.
fn replay_state(
    share: &Path,
    specs: &[FaultSpec],
    checkpoint_digest: u64,
) -> std::io::Result<CampaignState> {
    let events = Journal::replay(&Journal::path_in(share))?;
    // Identity checks come before state folding so a journal from a
    // different campaign reports the mismatch, not a confusing
    // out-of-range experiment.
    let Some(JournalEvent::Campaign {
        version,
        experiments,
        checkpoint_digest: journal_ckpt,
        spec_digest: journal_specs,
    }) = events.iter().find(|e| matches!(e, JournalEvent::Campaign { .. })).cloned()
    else {
        return Err(Error::new(ErrorKind::InvalidData, "journal has no campaign header"));
    };
    if version != JOURNAL_VERSION {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("journal version {version}, expected {JOURNAL_VERSION}"),
        ));
    }
    if experiments != specs.len() as u64 {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("journal covers {experiments} experiments, campaign has {}", specs.len()),
        ));
    }
    if journal_specs != spec_digest(specs) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "journal was recorded for a different fault-spec set",
        ));
    }
    if journal_ckpt != checkpoint_digest {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "spooled checkpoint does not match the journaled campaign (stale or swapped)",
        ));
    }
    CampaignState::from_events(&events, specs.len())
        .map_err(|e| Error::new(ErrorKind::InvalidData, e))
}

/// Removes journal/lease/result leftovers so a fresh (non-resume) start
/// cannot mix state from an earlier campaign in the same directory.
fn clear_run_artifacts(share: &Path) -> std::io::Result<()> {
    let journal = Journal::path_in(share);
    if journal.exists() {
        std::fs::remove_file(&journal)?;
    }
    for entry in std::fs::read_dir(share)? {
        let path = entry?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("lease") | Some("result") => std::fs::remove_file(&path)?,
            _ => {}
        }
    }
    Ok(())
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn fault_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.fault"))
}

fn result_path(share: &Path, i: usize) -> PathBuf {
    share.join(format!("exp{i:05}.result"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::prepare_workload;
    use crate::sampler::FaultSampler;
    use gemfi_cpu::CpuKind;
    use gemfi_workloads::pi::MonteCarloPi;

    fn small_campaign(
        points: u64,
        seed: u64,
        experiments: usize,
    ) -> (MonteCarloPi, PreparedWorkload, Vec<FaultSpec>, RunnerConfig) {
        let w = MonteCarloPi { points, init_spins: 30, ..MonteCarloPi::default() };
        let p = prepare_workload(&w).unwrap();
        let mut sampler = FaultSampler::new(seed, p.stage_events, 0, 0);
        let specs: Vec<_> = (0..experiments).map(|_| sampler.sample_any()).collect();
        let runner = RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        };
        (w, p, specs, runner)
    }

    fn share(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gemfi-now-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fast_config(workstations: usize, slots: usize, dir: &Path) -> NowConfig {
        NowConfig {
            retry_backoff: Duration::from_millis(1),
            ..NowConfig::new(workstations, slots, dir)
        }
    }

    #[test]
    fn now_executes_every_experiment_and_spools_artifacts() {
        let (w, p, specs, runner) = small_campaign(60, 3, 12);
        let dir = share("basic");
        let cfg = fast_config(3, 2, &dir);
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 12);
        assert_eq!(results.len(), 12);
        assert_eq!(report.experiments, 12);
        assert_eq!(report.per_workstation.iter().sum::<usize>(), 12);
        assert_eq!(report.retries, 0);
        assert_eq!(report.infrastructure_failures, 0);
        // Spool artifacts exist, including the journal and no leaked leases.
        assert!(dir.join("campaign.ckpt").exists());
        assert!(dir.join("exp00000.fault").exists());
        assert!(dir.join("exp00011.result").exists());
        assert!(Journal::path_in(&dir).exists());
        assert!(!dir.join("exp00000.lease").exists(), "leases released");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn now_results_match_serial_execution() {
        let (w, p, specs, runner) = small_campaign(50, 11, 6);
        let serial: Vec<_> = specs
            .iter()
            .map(|s| crate::runner::run_experiment(&p, &w, *s, &runner).outcome)
            .collect();
        let dir = share("serial");
        let cfg = fast_config(2, 2, &dir);
        let (_, results, _) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        let parallel: Vec<_> = results.iter().map(|r| r.outcome).collect();
        assert_eq!(serial, parallel, "determinism across execution modes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_worker_attempt_is_retried() {
        let (w, p, specs, runner) = small_campaign(50, 5, 6);
        let dir = share("panic");
        let mut cfg = fast_config(2, 2, &dir);
        cfg.chaos.panic_on = vec![(2, 1)]; // first attempt of experiment 2 dies
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 6);
        assert_eq!(report.retries, 1);
        assert_eq!(report.infrastructure_failures, 0);
        assert_eq!(results[2].attempts, 2, "retry consumed a second attempt");
        assert!(results[2].outcome.is_experiment_outcome());
        // The journal recorded the failed attempt with full provenance:
        // the panic payload and the offending fault spec.
        let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
        let failed = events
            .iter()
            .find_map(|e| match e {
                JournalEvent::AttemptFailed { exp: 2, attempt: 1, reason, spec, .. } => {
                    Some((reason.clone(), spec.clone()))
                }
                _ => None,
            })
            .expect("journal has the failed attempt");
        assert!(failed.0.contains("worker panic"), "payload recorded: {}", failed.0);
        assert_eq!(failed.1.as_deref(), Some(specs[2].to_string().as_str()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_land_in_the_infrastructure_bucket() {
        let (w, p, specs, runner) = small_campaign(50, 7, 4);
        let dir = share("exhaust");
        let mut cfg = fast_config(1, 2, &dir);
        cfg.max_retries = 2;
        // Every attempt of experiment 1 panics.
        cfg.chaos.panic_on = (1..=3).map(|a| (1, a)).collect();
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 4, "no experiment goes missing");
        assert_eq!(table.count(Outcome::Infrastructure), 1);
        assert_eq!(report.infrastructure_failures, 1);
        assert_eq!(results[1].outcome, Outcome::Infrastructure);
        assert_eq!(results[1].attempts, 3);
        assert!(dir.join("exp00001.result").exists(), "infra failure still writes a result");
        let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, JournalEvent::Failed { exp: 1, attempts: 3, .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halted_campaign_resumes_to_the_identical_table() {
        let (w, p, specs, runner) = small_campaign(50, 13, 8);
        let serial: Vec<_> = specs
            .iter()
            .map(|s| crate::runner::run_experiment(&p, &w, *s, &runner).outcome)
            .collect();
        let serial_table: OutcomeTable = serial.iter().copied().collect();

        let dir = share("halt");
        let mut cfg = fast_config(2, 1, &dir);
        cfg.chaos.halt_after = Some(3); // ≥ 25% of 8, then "kill -9"
        let err = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted, "{err}");

        let mut cfg = fast_config(2, 1, &dir);
        cfg.resume = true;
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert!(report.resumed >= 3, "journal replay skipped finished work: {}", report.resumed);
        assert!(report.resumed < 8, "something was left to execute");
        assert_eq!(results.iter().filter(|r| r.resumed).count(), report.resumed);
        let resumed_outcomes: Vec<_> = results.iter().map(|r| r.outcome).collect();
        assert_eq!(resumed_outcomes, serial, "resume reproduces the serial outcomes");
        for o in Outcome::ALL {
            assert_eq!(table.count(o), serial_table.count(o), "{o}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_expired_lease_is_reclaimed_on_resume() {
        let (w, p, specs, runner) = small_campaign(50, 17, 3);
        let dir = share("orphan");
        // Interrupt immediately: journal exists, nothing finished.
        let mut cfg = fast_config(1, 1, &dir);
        cfg.chaos.halt_after = Some(1);
        let _ = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err();
        // Fake a worker that died holding experiment 2: an expired lease
        // plus its journaled claim.
        let leases = LeaseDir::new(&dir);
        leases.release(2).unwrap();
        leases.claim(2, "ws9.slot9", 1, now_ms().saturating_sub(10_000)).unwrap().unwrap();
        let mut journal = Journal::open(&dir).unwrap();
        journal
            .append(&JournalEvent::Leased {
                exp: 2,
                worker: "ws9.slot9".into(),
                attempt: 1,
                deadline_ms: now_ms().saturating_sub(10_000),
            })
            .unwrap();
        drop(journal);

        let mut cfg = fast_config(1, 1, &dir);
        cfg.resume = true;
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 3, "reclaimed experiment was re-run");
        assert!(report.reclaimed_leases >= 1, "orphaned lease broken: {report:?}");
        assert!(results[2].outcome.is_experiment_outcome());
        assert!(results[2].attempts >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_campaign() {
        let (w, p, specs, runner) = small_campaign(50, 19, 4);
        let dir = share("mismatch");
        let cfg = fast_config(1, 2, &dir);
        run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        // Same share, different fault set.
        let mut sampler = FaultSampler::new(999, p.stage_events, 0, 0);
        let other: Vec<_> = (0..4).map(|_| sampler.sample_any()).collect();
        let mut cfg = fast_config(1, 2, &dir);
        cfg.resume = true;
        let err = run_campaign_now(&p, &w, &other, &runner, &cfg).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        // And a different experiment count.
        let mut cfg = fast_config(1, 2, &dir);
        cfg.resume = true;
        let err = run_campaign_now(&p, &w, &specs[..3], &runner, &cfg).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_a_finished_campaign_executes_nothing() {
        let (w, p, specs, runner) = small_campaign(50, 23, 5);
        let dir = share("noop");
        let cfg = fast_config(2, 1, &dir);
        let (first, ..) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        let mut cfg = fast_config(2, 1, &dir);
        cfg.resume = true;
        let (again, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(report.resumed, 5);
        assert_eq!(report.per_workstation.iter().sum::<usize>(), 0, "nothing re-executed");
        assert!(results.iter().all(|r| r.resumed));
        for o in Outcome::ALL {
            assert_eq!(first.count(o), again.count(o), "{o}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
