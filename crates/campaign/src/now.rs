//! Campaign execution on a (simulated) network of workstations — the
//! Sec. III-E protocol, hardened for real clusters:
//!
//! 1. fault-configuration files for all experiments go to a network share;
//! 2. one simulation runs to the activation point and the checkpoint is
//!    stored on the share;
//! 3. each workstation takes a local copy of the checkpoint;
//! 4. each workstation repeatedly claims a remaining experiment from the
//!    share by writing an **expiring lease** ([`crate::lease`]);
//! 5. results move back to the share, and every lifecycle transition is
//!    appended to a durable **journal** ([`crate::journal`]);
//! 6. until no experiments remain.
//!
//! "Workstations" are thread groups sharing one local checkpoint copy; the
//! share is a real spool directory, so the artifacts (fault files, the
//! checkpoint blob, lease files, result files, the journal) are the same
//! ones a physical cluster would exchange over NFS.
//!
//! The claim/execute/report cycle itself lives in the backend-neutral
//! pieces this module composes: the [`WindowScheduler`] owns the
//! lease/journal/backoff state machine, [`SpoolTransport`] exposes it
//! through the [`crate::transport::CampaignTransport`] verbs, and
//! [`drive_worker`] is the very worker loop a remote socket worker runs
//! against a [`crate::server::CampaignServer`] — so every recovery path
//! tested here holds for the network backend too.
//!
//! Fault tolerance, on top of the paper's protocol:
//!
//! - A worker that panics releases its lease and journals the failed
//!   attempt; the experiment returns to the pending pool with capped
//!   exponential backoff.
//! - A worker that hangs past its lease deadline is reaped: any other
//!   worker's claim loop breaks the expired lease, raises the runaway
//!   run's [`AbortToken`], and requeues the experiment.
//! - An experiment that exhausts its retries is terminally classified
//!   [`Outcome::Infrastructure`] — counted, never silently dropped.
//! - With [`NowConfig::snapshot_ticks`] set, workers drop periodic mid-run
//!   snapshots ([`crate::snapshot`]) onto the share; a retried attempt
//!   resumes from the last snapshot instead of re-running from the
//!   campaign checkpoint.
//! - A killed campaign resumes: [`run_campaign_now`] with
//!   [`NowConfig::resume`] replays the journal, verifies it belongs to this
//!   campaign (experiment count, fault-spec digest, checkpoint digest),
//!   reaps orphaned leases, and schedules only the unfinished remainder.
//!   The merged [`OutcomeTable`] is identical to an uninterrupted run.
//!
//! [`AbortToken`]: gemfi::AbortToken

use crate::adaptive::{
    replay_adaptive, AdaptiveConfig, AdaptiveOutcome, AdaptiveReplay, AdaptiveState, Draw,
    ReplayTerminal,
};
use crate::clock::{system_clock, Clock};
use crate::journal::{
    spec_digest, CampaignState, ExpState, Journal, JournalEvent, JOURNAL_VERSION,
};
use crate::lease::LeaseDir;
use crate::report::OutcomeTable;
use crate::runner::{
    run_experiment_from_with_abort, ExperimentResult, PreparedWorkload, RunnerConfig,
};
use crate::snapshot::{run_experiment_snapshotted, SnapshotPolicy};
use crate::transport::{SpoolTransport, WorkAssignment};
use crate::window::{fault_path, snapshot_path, SchedulerPolicy, SeedSlot, WindowScheduler};
use crate::worker::{drive_worker, WorkerOptions};
use gemfi::{FaultConfig, FaultSpec, Outcome};
use gemfi_sim::Checkpoint;
use gemfi_workloads::Workload;
use std::io::{Error, ErrorKind};
use std::path::Path;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Deterministic failure injection for testing the campaign harness itself.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// `(experiment, attempt)` pairs whose execution panics (a simulated
    /// workstation crash). Attempts are 1-based.
    pub panic_on: Vec<(usize, u64)>,
    /// Stop claiming after this many experiments finish *in this process*
    /// and return [`ErrorKind::Interrupted`] — a controlled stand-in for
    /// `kill -9` on the campaign driver. The journal survives; resume
    /// finishes the rest.
    pub halt_after: Option<usize>,
}

/// Cluster shape and fault-tolerance policy.
#[derive(Debug, Clone)]
pub struct NowConfig {
    /// Number of workstations (the paper uses 27).
    pub workstations: usize,
    /// Concurrent experiments per workstation (the paper uses 4).
    pub slots_per_workstation: usize,
    /// The shared spool directory ("network share").
    pub share_dir: PathBuf,
    /// Lease duration: a worker silent for longer than this is presumed
    /// dead and its experiment is reaped.
    pub lease: Duration,
    /// Retries after the first attempt before an experiment is terminally
    /// classified [`Outcome::Infrastructure`].
    pub max_retries: u64,
    /// Base retry backoff; doubles per failed attempt, capped at 64×.
    pub retry_backoff: Duration,
    /// Replay an existing journal and run only the unfinished remainder.
    /// Without a journal on the share this is an ordinary fresh start.
    pub resume: bool,
    /// Mid-run snapshot cadence in simulated ticks; `0` disables. Snapshot
    /// files land on the share next to the experiment's fault file and are
    /// deleted once the experiment reaches a terminal outcome.
    pub snapshot_ticks: u64,
    /// The clock leases and backoffs are judged by. Production uses
    /// [`system_clock`]; tests inject a [`crate::clock::TestClock`].
    pub clock: Arc<dyn Clock>,
    /// Failure injection for harness tests.
    pub chaos: ChaosConfig,
}

impl NowConfig {
    /// A config with the given cluster shape and default fault-tolerance
    /// policy (30 s leases, 2 retries, 50 ms base backoff, fresh start,
    /// system clock, no snapshots).
    pub fn new(
        workstations: usize,
        slots_per_workstation: usize,
        share_dir: impl Into<PathBuf>,
    ) -> NowConfig {
        NowConfig {
            workstations,
            slots_per_workstation,
            share_dir: share_dir.into(),
            lease: Duration::from_secs(30),
            max_retries: 2,
            retry_backoff: Duration::from_millis(50),
            resume: false,
            snapshot_ticks: 0,
            clock: system_clock(),
            chaos: ChaosConfig::default(),
        }
    }

    fn max_attempts(&self) -> u64 {
        self.max_retries + 1
    }

    /// The window-scheduler policy this config implies.
    pub(crate) fn scheduler_policy(&self) -> SchedulerPolicy {
        SchedulerPolicy {
            lease_ms: self.lease.as_millis() as u64,
            max_attempts: self.max_attempts(),
            backoff_ms: self.retry_backoff.as_millis() as u64,
            idle_backoff_ms: 1,
            halt_after: self.chaos.halt_after,
        }
    }
}

/// The terminal record of one experiment, from this run or replayed from
/// the journal on resume.
#[derive(Debug, Clone)]
pub struct CompletedExperiment {
    /// Experiment index.
    pub exp: usize,
    /// The classified outcome ([`Outcome::Infrastructure`] when the harness
    /// exhausted its retries).
    pub outcome: Outcome,
    /// Attempts consumed.
    pub attempts: u64,
    /// Simulated ticks of the completing run (0 for infrastructure
    /// failures).
    pub ticks: u64,
    /// Whether this record was replayed from the journal rather than
    /// executed by this process.
    pub resumed: bool,
}

/// What the cluster did.
#[derive(Debug, Clone)]
pub struct NowReport {
    /// Wall-clock duration of the parallel phase.
    pub wall: Duration,
    /// Experiments completed per workstation in this process (load balance
    /// check).
    pub per_workstation: Vec<usize>,
    /// Total experiments.
    pub experiments: usize,
    /// Experiments whose terminal record was replayed from the journal.
    pub resumed: usize,
    /// Failed attempts that were retried (panics and reaped leases).
    pub retries: u64,
    /// Expired leases broken by the reaper (subset of `retries` plus any
    /// orphans reaped at resume).
    pub reclaimed_leases: u64,
    /// Experiments terminally classified [`Outcome::Infrastructure`].
    pub infrastructure_failures: u64,
}

/// Runs a whole campaign on the simulated NoW. Returns the merged outcome
/// table, per-experiment terminal records (in experiment order), and the
/// report.
///
/// # Errors
///
/// I/O errors from the share; [`ErrorKind::InvalidData`] when resume finds
/// a journal from a different campaign (count, specs, or checkpoint
/// mismatch); [`ErrorKind::Interrupted`] when
/// [`ChaosConfig::halt_after`] stops the campaign early (the journal
/// remains resumable).
pub fn run_campaign_now(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    specs: &[FaultSpec],
    runner: &RunnerConfig,
    config: &NowConfig,
) -> std::io::Result<(OutcomeTable, Vec<CompletedExperiment>, NowReport)> {
    let seeded = seed_fixed_campaign(&config.share_dir, prepared, specs, config.resume)?;
    let resumed_count = seeded.resumed;

    // Step 3: one local checkpoint copy per workstation.
    let locals =
        load_local_checkpoints(&config.share_dir.join("campaign.ckpt"), config.workstations)?;
    let window = execute_window(
        prepared,
        workload,
        (0..specs.len()).collect(),
        specs.to_vec(),
        seeded.seed,
        &locals,
        runner,
        config,
        seeded.journal,
        seeded.reclaimed,
        0,
    )?;
    if window.halted {
        return Err(Error::new(
            ErrorKind::Interrupted,
            format!(
                "campaign halted by chaos after {} experiments ({} of {} terminal); resume to finish",
                window.finished_here,
                window.terminal,
                specs.len()
            ),
        ));
    }

    let results: Vec<CompletedExperiment> = window
        .completed
        .into_iter()
        .map(|r| r.expect("all experiments reached a terminal state"))
        .collect();
    let table: OutcomeTable = results.iter().map(|r| r.outcome).collect();
    let report = NowReport {
        wall: window.wall,
        per_workstation: window.per_ws,
        experiments: specs.len(),
        resumed: resumed_count,
        retries: window.retries,
        reclaimed_leases: window.reclaimed,
        infrastructure_failures: table.count(Outcome::Infrastructure),
    };
    Ok((table, results, report))
}

/// The seeded starting state of a fixed-n campaign: the opened journal
/// plus one [`SeedSlot`] per experiment.
pub(crate) struct CampaignSeed {
    /// The campaign journal, header written (fresh) or replayed (resume).
    pub(crate) journal: Journal,
    /// Starting slot state per experiment.
    pub(crate) seed: Vec<SeedSlot>,
    /// Experiments whose terminal record was replayed.
    pub(crate) resumed: usize,
    /// Orphaned leases broken while seeding.
    pub(crate) reclaimed: u64,
}

/// Seeds a fixed-n campaign on `share`: spools the fault files (step 1)
/// and the checkpoint (step 2), opens the journal, and — on resume —
/// replays it, verifies the campaign identity, reaps orphaned leases, and
/// marks already-terminal experiments. Shared by the in-process NoW
/// executor and the campaign server's fixed-n queues.
pub(crate) fn seed_fixed_campaign(
    share: &Path,
    prepared: &PreparedWorkload,
    specs: &[FaultSpec],
    resume: bool,
) -> std::io::Result<CampaignSeed> {
    std::fs::create_dir_all(share)?;
    let leases = LeaseDir::new(share);
    let ckpt_path = share.join("campaign.ckpt");
    let resuming = resume && Journal::path_in(share).exists();

    // Step 1: experiment configurations onto the share (idempotent).
    for (i, spec) in specs.iter().enumerate() {
        FaultConfig::from_specs(vec![*spec]).save(&fault_path(share, i))?;
    }

    let mut resumed_count = 0;
    let mut reclaimed_at_start = 0;
    let mut orphans: Vec<(usize, u64, String)> = Vec::new();
    let mut seed: Vec<SeedSlot> = Vec::with_capacity(specs.len());

    if resuming {
        // The checkpoint must be the very one the journal was recorded
        // against; compare digests before trusting any replayed outcome.
        let header = Checkpoint::load_header(&ckpt_path)?;
        let state = replay_state(share, specs, header.digest)?;
        for (exp, exp_state) in state.experiments.iter().enumerate() {
            match exp_state {
                ExpState::Unfinished { attempts } => {
                    // Break any orphaned lease left by the dead campaign
                    // process, whatever its deadline says.
                    let mut attempts = *attempts;
                    if let Some(orphan) = leases.read(exp)? {
                        leases.release(exp)?;
                        reclaimed_at_start += 1;
                        attempts = attempts.max(orphan.attempt);
                        orphans.push((exp, orphan.attempt, orphan.worker));
                    }
                    seed.push(SeedSlot::Pending { attempts });
                }
                ExpState::Done { outcome, attempt, ticks } => {
                    seed.push(SeedSlot::Terminal {
                        record: CompletedExperiment {
                            exp,
                            outcome: *outcome,
                            attempts: *attempt,
                            ticks: *ticks,
                            resumed: true,
                        },
                    });
                    resumed_count += 1;
                }
                ExpState::Failed { attempts } => {
                    seed.push(SeedSlot::Terminal {
                        record: CompletedExperiment {
                            exp,
                            outcome: Outcome::Infrastructure,
                            attempts: *attempts,
                            ticks: 0,
                            resumed: true,
                        },
                    });
                    resumed_count += 1;
                }
            }
        }
    } else {
        // Fresh start: clear any stale run artifacts, then spool the
        // checkpoint (step 2) and open a new journal with the campaign
        // identity header.
        clear_run_artifacts(share)?;
        prepared.checkpoint.save(&ckpt_path)?;
        seed.extend((0..specs.len()).map(|_| SeedSlot::Pending { attempts: 0 }));
    }

    let mut journal = Journal::open(share)?;
    if resuming {
        // Journal the attempts burned by orphaned leases, so a *second*
        // resume still counts them toward the retry cap.
        for (exp, attempt, worker) in orphans {
            journal.append(&JournalEvent::AttemptFailed {
                exp: exp as u64,
                attempt,
                worker,
                reason: "orphaned lease (campaign restart)".to_string(),
                spec: Some(specs[exp].to_string()),
            })?;
        }
    } else {
        journal.append(&JournalEvent::Campaign {
            version: JOURNAL_VERSION,
            experiments: specs.len() as u64,
            checkpoint_digest: prepared.checkpoint.digest(),
            spec_digest: spec_digest(specs),
        })?;
    }
    Ok(CampaignSeed { journal, seed, resumed: resumed_count, reclaimed: reclaimed_at_start })
}

/// Seeds an adaptive campaign on `share`: spools the checkpoint, opens
/// the journal (header on fresh start), and — on resume — replays the
/// draw/terminal prefix. Shared by the in-process adaptive executor and
/// the campaign server's adaptive queues.
pub(crate) fn seed_adaptive_campaign(
    share: &Path,
    prepared: &PreparedWorkload,
    adaptive: &AdaptiveConfig,
    seed: u64,
    resume: bool,
) -> std::io::Result<(Journal, AdaptiveReplay)> {
    std::fs::create_dir_all(share)?;
    let ckpt_path = share.join("campaign.ckpt");
    let resuming = resume && Journal::path_in(share).exists();
    let replay = if resuming {
        let header = Checkpoint::load_header(&ckpt_path)?;
        replay_adaptive(share, adaptive, seed, header.digest)?
    } else {
        clear_run_artifacts(share)?;
        prepared.checkpoint.save(&ckpt_path)?;
        AdaptiveReplay::default()
    };
    let mut journal = Journal::open(share)?;
    if !resuming {
        journal.append(&adaptive.header(seed, prepared.checkpoint.digest()))?;
    }
    Ok((journal, replay))
}

/// What one execution window did.
struct WindowResult {
    journal: Journal,
    completed: Vec<Option<CompletedExperiment>>,
    per_ws: Vec<usize>,
    retries: u64,
    reclaimed: u64,
    terminal: usize,
    finished_here: usize,
    halted: bool,
    wall: Duration,
}

fn load_local_checkpoints(
    ckpt_path: &Path,
    workstations: usize,
) -> std::io::Result<Vec<Arc<Checkpoint>>> {
    (0..workstations).map(|_| Checkpoint::load(ckpt_path).map(Arc::new)).collect()
}

/// Runs one window of experiments over the workstation pool: the paper's
/// claim/lease/execute/journal protocol (steps 4–5), factored out so both
/// the fixed-n campaign (one window) and the adaptive engine (one window
/// per round) share it. `exps[i]` is the global index of local slot `i`;
/// fault files for every listed experiment must already be spooled.
///
/// Each worker thread is the generic [`drive_worker`] loop over a
/// [`SpoolTransport`] — the same loop remote socket workers run.
#[allow(clippy::too_many_arguments)]
fn execute_window(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    exps: Vec<usize>,
    specs: Vec<FaultSpec>,
    seed: Vec<SeedSlot>,
    locals: &[Arc<Checkpoint>],
    runner: &RunnerConfig,
    config: &NowConfig,
    journal: Journal,
    reclaimed_at_start: u64,
    finished_before: usize,
) -> std::io::Result<WindowResult> {
    debug_assert!(exps.len() == specs.len() && exps.len() == seed.len());
    let scheduler = Mutex::new(WindowScheduler::new(
        &config.share_dir,
        Arc::clone(&config.clock),
        config.scheduler_policy(),
        journal,
        exps,
        specs,
        seed,
        config.workstations,
        reclaimed_at_start,
        finished_before,
    ));

    let started = Instant::now();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut handles = Vec::new();
        for (ws, local) in locals.iter().enumerate() {
            for slot in 0..config.slots_per_workstation {
                let local = Arc::clone(local);
                let scheduler = &scheduler;
                handles.push(scope.spawn(move || {
                    let mut opts = WorkerOptions::new(format!("ws{ws}.slot{slot}"));
                    opts.runner = *runner;
                    opts.chaos_panic_on = config.chaos.panic_on.clone();
                    let mut transport =
                        SpoolTransport { scheduler, share: config.share_dir.clone(), ws };
                    let mut execute =
                        |assignment: &WorkAssignment| -> Result<ExperimentResult, String> {
                            let snap = snapshot_path(&config.share_dir, assignment.exp);
                            let result = if config.snapshot_ticks > 0 {
                                run_experiment_snapshotted(
                                    &local,
                                    prepared,
                                    workload,
                                    assignment.spec,
                                    runner,
                                    &assignment.abort,
                                    &snap,
                                    SnapshotPolicy::every(config.snapshot_ticks),
                                )
                            } else {
                                run_experiment_from_with_abort(
                                    &local,
                                    prepared,
                                    workload,
                                    assignment.spec,
                                    runner,
                                    &assignment.abort,
                                )
                            };
                            // A verdict was reached: the crash-resume state
                            // is spent. Aborted runs keep theirs — the
                            // retry resumes from it.
                            if config.snapshot_ticks > 0
                                && result.outcome != Outcome::Infrastructure
                            {
                                let _ = std::fs::remove_file(&snap);
                            }
                            Ok(result)
                        };
                    drive_worker(&mut transport, &opts, &mut execute).map(|_| ())
                }));
            }
        }
        for h in handles {
            h.join().expect("worker thread panicked outside catch_unwind")?;
        }
        Ok(())
    })?;
    let wall = started.elapsed();

    let s = scheduler.into_inner().expect("no worker holds the schedule");
    let (journal, completed, per_ws, retries, reclaimed, terminal, finished_here, halted) =
        s.into_parts();
    Ok(WindowResult {
        journal,
        completed,
        per_ws,
        retries,
        reclaimed,
        terminal,
        finished_here,
        halted,
        wall,
    })
}

/// One adaptive round's executable remainder, after replayed terminals
/// were folded straight into the state.
pub(crate) struct RoundWindow {
    /// Global experiment indices to execute.
    pub(crate) exps: Vec<usize>,
    /// Cell index per window slot (for folding completions back).
    pub(crate) cells: Vec<usize>,
    /// Fault spec per window slot.
    pub(crate) specs: Vec<FaultSpec>,
    /// Scheduler seed per window slot.
    pub(crate) seed: Vec<SeedSlot>,
    /// Draws whose terminal outcome was replayed from the journal.
    pub(crate) resumed: usize,
    /// Orphaned leases broken while planning.
    pub(crate) reclaimed: u64,
}

/// Plans one adaptive round: validates/journals the round's draws against
/// the replayed prefix, folds already-terminal draws into `state` and
/// `table`, spools fault files and reaps per-experiment orphans for the
/// remainder. Shared by the in-process adaptive campaign and the campaign
/// server's adaptive queues.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_round(
    draws: &[Draw],
    adaptive: &AdaptiveConfig,
    replay: &AdaptiveReplay,
    state: &mut AdaptiveState,
    table: &mut OutcomeTable,
    journal: &mut Journal,
    share: &Path,
    leases: &LeaseDir,
) -> std::io::Result<RoundWindow> {
    let mut round = RoundWindow {
        exps: Vec::new(),
        cells: Vec::new(),
        specs: Vec::new(),
        seed: Vec::new(),
        resumed: 0,
        reclaimed: 0,
    };
    // Commit the whole round's draw decisions to the journal before
    // executing any of them; a journaled prefix must match the re-derived
    // trajectory exactly.
    for d in draws {
        let label = adaptive.cells[d.cell].to_string();
        if let Some((cell, ordinal)) = replay.drawn.get(d.exp as usize) {
            if *cell != label || *ordinal != d.draw {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "journaled draw {} ({cell} #{ordinal}) does not match the \
                         re-derived trajectory ({label} #{})",
                        d.exp, d.draw
                    ),
                ));
            }
        } else {
            journal.append(&JournalEvent::Drawn { exp: d.exp, cell: label, draw: d.draw })?;
        }
        match replay.terminal.get(&d.exp) {
            Some(ReplayTerminal::Done { outcome, .. }) => {
                state.record(d.cell, *outcome);
                table.add(*outcome);
                round.resumed += 1;
            }
            Some(ReplayTerminal::Failed { .. }) => {
                // Infrastructure failures spent budget but are not
                // evidence — mirror of the live path.
                table.add(Outcome::Infrastructure);
                round.resumed += 1;
            }
            None => {
                let global = d.exp as usize;
                FaultConfig::from_specs(vec![d.spec]).save(&fault_path(share, global))?;
                let mut attempts = replay.attempts.get(&d.exp).copied().unwrap_or(0);
                if let Some(orphan) = leases.read(global)? {
                    // A worker of the dead campaign process died holding
                    // this draw.
                    leases.release(global)?;
                    round.reclaimed += 1;
                    attempts = attempts.max(orphan.attempt);
                    journal.append(&JournalEvent::AttemptFailed {
                        exp: d.exp,
                        attempt: orphan.attempt,
                        worker: orphan.worker,
                        reason: "orphaned lease (campaign restart)".to_string(),
                        spec: Some(d.spec.to_string()),
                    })?;
                }
                round.exps.push(global);
                round.cells.push(d.cell);
                round.specs.push(d.spec);
                round.seed.push(SeedSlot::Pending { attempts });
            }
        }
    }
    Ok(round)
}

/// Folds one executed round's terminal records back into the adaptive
/// state and the pooled table. `cells[i]` is the cell of window slot `i`.
pub(crate) fn fold_round(
    state: &mut AdaptiveState,
    table: &mut OutcomeTable,
    cells: &[usize],
    completed: Vec<Option<CompletedExperiment>>,
) {
    for (local, done) in completed.into_iter().enumerate() {
        let done = done.expect("all window experiments reached a terminal state");
        state.record(cells[local], done.outcome);
        table.add(done.outcome);
    }
}

/// Runs an adaptive (sequential early-stopping) campaign on the NoW: each
/// round the engine draws the next batch per undecided cell, journals
/// every draw, executes the not-yet-terminal remainder as one
/// lease/journal window across the workstations, and folds the outcomes
/// back into the live per-cell stats before re-evaluating the stopping
/// rule.
///
/// Resume ([`NowConfig::resume`]): the engine re-derives the identical
/// draw trajectory from the seed, validates it against the journaled
/// `drawn` records, folds terminal outcomes already recorded, reaps
/// orphaned leases, and executes only what is missing — reaching
/// byte-identical per-cell decisions to an uninterrupted run.
///
/// # Errors
///
/// I/O errors from the share; [`ErrorKind::InvalidData`] when resume finds
/// a journal from a different campaign (seed, checkpoint, stopping rule,
/// or cell set mismatch); [`ErrorKind::Interrupted`] when
/// [`ChaosConfig::halt_after`] stops the campaign early (the journal
/// remains resumable).
pub fn run_campaign_adaptive_now(
    prepared: &PreparedWorkload,
    workload: &dyn Workload,
    runner: &RunnerConfig,
    config: &NowConfig,
    adaptive: &AdaptiveConfig,
    seed: u64,
) -> std::io::Result<(AdaptiveOutcome, NowReport)> {
    let leases = LeaseDir::new(&config.share_dir);
    let (mut journal, replay) =
        seed_adaptive_campaign(&config.share_dir, prepared, adaptive, seed, config.resume)?;
    let locals =
        load_local_checkpoints(&config.share_dir.join("campaign.ckpt"), config.workstations)?;

    let mut state = AdaptiveState::new(adaptive, seed, prepared.stage_events);
    let mut table = OutcomeTable::new();
    let mut per_ws = vec![0usize; config.workstations];
    let mut wall = Duration::ZERO;
    let (mut retries, mut reclaimed) = (0u64, 0u64);
    let (mut resumed, mut finished_in_process) = (0usize, 0usize);

    loop {
        let draws = state.next_round();
        if draws.is_empty() {
            break;
        }
        let round = plan_round(
            &draws,
            adaptive,
            &replay,
            &mut state,
            &mut table,
            &mut journal,
            &config.share_dir,
            &leases,
        )?;
        resumed += round.resumed;
        reclaimed += round.reclaimed;

        if !round.exps.is_empty() {
            let window = execute_window(
                prepared,
                workload,
                round.exps,
                round.specs,
                round.seed,
                &locals,
                runner,
                config,
                journal,
                0,
                finished_in_process,
            )?;
            journal = window.journal;
            wall += window.wall;
            retries += window.retries;
            reclaimed += window.reclaimed;
            finished_in_process += window.finished_here;
            for (ws, n) in window.per_ws.iter().enumerate() {
                per_ws[ws] += n;
            }
            if window.halted {
                return Err(Error::new(
                    ErrorKind::Interrupted,
                    format!(
                        "adaptive campaign halted by chaos after {finished_in_process} \
                         experiments ({} drawn); resume to finish",
                        state.drawn_total()
                    ),
                ));
            }
            fold_round(&mut state, &mut table, &round.cells, window.completed);
        }
        state.end_round();
    }

    state.finalize();
    let outcome = AdaptiveOutcome {
        cells: state.reports(adaptive.z),
        table,
        experiments: state.drawn_total(),
        rounds: state.rounds(),
        resumed: resumed as u64,
        z: adaptive.z,
    };
    let report = NowReport {
        wall,
        per_workstation: per_ws,
        experiments: outcome.experiments as usize,
        resumed,
        retries,
        reclaimed_leases: reclaimed,
        infrastructure_failures: outcome.table.count(Outcome::Infrastructure),
    };
    Ok((outcome, report))
}

/// Replays and validates the journal against this campaign's identity.
pub(crate) fn replay_state(
    share: &Path,
    specs: &[FaultSpec],
    checkpoint_digest: u64,
) -> std::io::Result<CampaignState> {
    let events = Journal::replay(&Journal::path_in(share))?;
    // Identity checks come before state folding so a journal from a
    // different campaign reports the mismatch, not a confusing
    // out-of-range experiment.
    let Some(JournalEvent::Campaign {
        version,
        experiments,
        checkpoint_digest: journal_ckpt,
        spec_digest: journal_specs,
    }) = events.iter().find(|e| matches!(e, JournalEvent::Campaign { .. })).cloned()
    else {
        return Err(Error::new(ErrorKind::InvalidData, "journal has no campaign header"));
    };
    if version != JOURNAL_VERSION {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("journal version {version}, expected {JOURNAL_VERSION}"),
        ));
    }
    if experiments != specs.len() as u64 {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("journal covers {experiments} experiments, campaign has {}", specs.len()),
        ));
    }
    if journal_specs != spec_digest(specs) {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "journal was recorded for a different fault-spec set",
        ));
    }
    if journal_ckpt != checkpoint_digest {
        return Err(Error::new(
            ErrorKind::InvalidData,
            "spooled checkpoint does not match the journaled campaign (stale or swapped)",
        ));
    }
    CampaignState::from_events(&events, specs.len())
        .map_err(|e| Error::new(ErrorKind::InvalidData, e))
}

/// Removes journal/lease/result/snapshot leftovers so a fresh (non-resume)
/// start cannot mix state from an earlier campaign in the same directory.
pub(crate) fn clear_run_artifacts(share: &Path) -> std::io::Result<()> {
    let journal = Journal::path_in(share);
    if journal.exists() {
        std::fs::remove_file(&journal)?;
    }
    for entry in std::fs::read_dir(share)? {
        let path = entry?.path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("lease") | Some("result") | Some("snap") => std::fs::remove_file(&path)?,
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::now_ms;
    use crate::runner::prepare_workload;
    use crate::sampler::FaultSampler;
    use gemfi_cpu::CpuKind;
    use gemfi_workloads::pi::MonteCarloPi;

    fn small_campaign(
        points: u64,
        seed: u64,
        experiments: usize,
    ) -> (MonteCarloPi, PreparedWorkload, Vec<FaultSpec>, RunnerConfig) {
        let w = MonteCarloPi { points, init_spins: 30, ..MonteCarloPi::default() };
        let p = prepare_workload(&w).unwrap();
        let mut sampler = FaultSampler::new(seed, p.stage_events, 0, 0);
        let specs: Vec<_> = (0..experiments).map(|_| sampler.sample_any()).collect();
        let runner = RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        };
        (w, p, specs, runner)
    }

    fn share(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gemfi-now-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fast_config(workstations: usize, slots: usize, dir: &Path) -> NowConfig {
        NowConfig {
            retry_backoff: Duration::from_millis(1),
            ..NowConfig::new(workstations, slots, dir)
        }
    }

    #[test]
    fn now_executes_every_experiment_and_spools_artifacts() {
        let (w, p, specs, runner) = small_campaign(60, 3, 12);
        let dir = share("basic");
        let cfg = fast_config(3, 2, &dir);
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 12);
        assert_eq!(results.len(), 12);
        assert_eq!(report.experiments, 12);
        assert_eq!(report.per_workstation.iter().sum::<usize>(), 12);
        assert_eq!(report.retries, 0);
        assert_eq!(report.infrastructure_failures, 0);
        // Spool artifacts exist, including the journal and no leaked leases.
        assert!(dir.join("campaign.ckpt").exists());
        assert!(dir.join("exp00000.fault").exists());
        assert!(dir.join("exp00011.result").exists());
        assert!(Journal::path_in(&dir).exists());
        assert!(!dir.join("exp00000.lease").exists(), "leases released");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn now_results_match_serial_execution() {
        let (w, p, specs, runner) = small_campaign(50, 11, 6);
        let serial: Vec<_> = specs
            .iter()
            .map(|s| crate::runner::run_experiment(&p, &w, *s, &runner).outcome)
            .collect();
        let dir = share("serial");
        let cfg = fast_config(2, 2, &dir);
        let (_, results, _) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        let parallel: Vec<_> = results.iter().map(|r| r.outcome).collect();
        assert_eq!(serial, parallel, "determinism across execution modes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_worker_attempt_is_retried() {
        let (w, p, specs, runner) = small_campaign(50, 5, 6);
        let dir = share("panic");
        let mut cfg = fast_config(2, 2, &dir);
        cfg.chaos.panic_on = vec![(2, 1)]; // first attempt of experiment 2 dies
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 6);
        assert_eq!(report.retries, 1);
        assert_eq!(report.infrastructure_failures, 0);
        assert_eq!(results[2].attempts, 2, "retry consumed a second attempt");
        assert!(results[2].outcome.is_experiment_outcome());
        // The journal recorded the failed attempt with full provenance:
        // the panic payload and the offending fault spec.
        let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
        let failed = events
            .iter()
            .find_map(|e| match e {
                JournalEvent::AttemptFailed { exp: 2, attempt: 1, reason, spec, .. } => {
                    Some((reason.clone(), spec.clone()))
                }
                _ => None,
            })
            .expect("journal has the failed attempt");
        assert!(failed.0.contains("worker panic"), "payload recorded: {}", failed.0);
        assert_eq!(failed.1.as_deref(), Some(specs[2].to_string().as_str()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_retries_land_in_the_infrastructure_bucket() {
        let (w, p, specs, runner) = small_campaign(50, 7, 4);
        let dir = share("exhaust");
        let mut cfg = fast_config(1, 2, &dir);
        cfg.max_retries = 2;
        // Every attempt of experiment 1 panics.
        cfg.chaos.panic_on = (1..=3).map(|a| (1, a)).collect();
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 4, "no experiment goes missing");
        assert_eq!(table.count(Outcome::Infrastructure), 1);
        assert_eq!(report.infrastructure_failures, 1);
        assert_eq!(results[1].outcome, Outcome::Infrastructure);
        assert_eq!(results[1].attempts, 3);
        assert!(dir.join("exp00001.result").exists(), "infra failure still writes a result");
        let events = Journal::replay(&Journal::path_in(&dir)).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e, JournalEvent::Failed { exp: 1, attempts: 3, .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn halted_campaign_resumes_to_the_identical_table() {
        let (w, p, specs, runner) = small_campaign(50, 13, 8);
        let serial: Vec<_> = specs
            .iter()
            .map(|s| crate::runner::run_experiment(&p, &w, *s, &runner).outcome)
            .collect();
        let serial_table: OutcomeTable = serial.iter().copied().collect();

        let dir = share("halt");
        let mut cfg = fast_config(2, 1, &dir);
        cfg.chaos.halt_after = Some(3); // ≥ 25% of 8, then "kill -9"
        let err = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Interrupted, "{err}");

        let mut cfg = fast_config(2, 1, &dir);
        cfg.resume = true;
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert!(report.resumed >= 3, "journal replay skipped finished work: {}", report.resumed);
        assert!(report.resumed < 8, "something was left to execute");
        assert_eq!(results.iter().filter(|r| r.resumed).count(), report.resumed);
        let resumed_outcomes: Vec<_> = results.iter().map(|r| r.outcome).collect();
        assert_eq!(resumed_outcomes, serial, "resume reproduces the serial outcomes");
        for o in Outcome::ALL {
            assert_eq!(table.count(o), serial_table.count(o), "{o}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphaned_expired_lease_is_reclaimed_on_resume() {
        let (w, p, specs, runner) = small_campaign(50, 17, 3);
        let dir = share("orphan");
        // Interrupt immediately: journal exists, nothing finished.
        let mut cfg = fast_config(1, 1, &dir);
        cfg.chaos.halt_after = Some(1);
        let _ = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap_err();
        // Fake a worker that died holding experiment 2: an expired lease
        // plus its journaled claim.
        let leases = LeaseDir::new(&dir);
        leases.release(2).unwrap();
        leases.claim(2, "ws9.slot9", 1, now_ms().saturating_sub(10_000)).unwrap().unwrap();
        let mut journal = Journal::open(&dir).unwrap();
        journal
            .append(&JournalEvent::Leased {
                exp: 2,
                worker: "ws9.slot9".into(),
                attempt: 1,
                deadline_ms: now_ms().saturating_sub(10_000),
            })
            .unwrap();
        drop(journal);

        let mut cfg = fast_config(1, 1, &dir);
        cfg.resume = true;
        let (table, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(table.total(), 3, "reclaimed experiment was re-run");
        assert!(report.reclaimed_leases >= 1, "orphaned lease broken: {report:?}");
        assert!(results[2].outcome.is_experiment_outcome());
        assert!(results[2].attempts >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_journal_from_a_different_campaign() {
        let (w, p, specs, runner) = small_campaign(50, 19, 4);
        let dir = share("mismatch");
        let cfg = fast_config(1, 2, &dir);
        run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        // Same share, different fault set.
        let mut sampler = FaultSampler::new(999, p.stage_events, 0, 0);
        let other: Vec<_> = (0..4).map(|_| sampler.sample_any()).collect();
        let mut cfg = fast_config(1, 2, &dir);
        cfg.resume = true;
        let err = run_campaign_now(&p, &w, &other, &runner, &cfg).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        // And a different experiment count.
        let mut cfg = fast_config(1, 2, &dir);
        cfg.resume = true;
        let err = run_campaign_now(&p, &w, &specs[..3], &runner, &cfg).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_a_finished_campaign_executes_nothing() {
        let (w, p, specs, runner) = small_campaign(50, 23, 5);
        let dir = share("noop");
        let cfg = fast_config(2, 1, &dir);
        let (first, ..) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        let mut cfg = fast_config(2, 1, &dir);
        cfg.resume = true;
        let (again, results, report) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        assert_eq!(report.resumed, 5);
        assert_eq!(report.per_workstation.iter().sum::<usize>(), 0, "nothing re-executed");
        assert!(results.iter().all(|r| r.resumed));
        for o in Outcome::ALL {
            assert_eq!(first.count(o), again.count(o), "{o}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshotting_campaign_matches_plain_and_cleans_up() {
        let (w, p, specs, runner) = small_campaign(50, 29, 4);
        let plain_dir = share("snapless");
        let cfg = fast_config(2, 1, &plain_dir);
        let (plain, ..) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();

        let dir = share("snapful");
        let mut cfg = fast_config(2, 1, &dir);
        cfg.snapshot_ticks = (p.kernel_ticks / 6).max(1);
        let (snapped, ..) = run_campaign_now(&p, &w, &specs, &runner, &cfg).unwrap();
        for o in Outcome::ALL {
            assert_eq!(plain.count(o), snapped.count(o), "{o}");
        }
        // Every experiment went terminal, so no snapshot survives.
        for i in 0..specs.len() {
            assert!(!snapshot_path(&dir, i).exists(), "exp {i} snapshot cleaned up");
        }
        std::fs::remove_dir_all(&plain_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
