//! The durable campaign journal: an append-only JSONL lifecycle log on the
//! network share.
//!
//! The paper's NoW protocol (Sec. III-E) tolerates workstation failure by
//! construction — experiments live on a shared spool until *somebody*
//! finishes them. The journal is the bookkeeping that makes that durable:
//! every lifecycle transition of every experiment
//! (`pending → leased(worker, deadline) → done(outcome) | failed(attempts)`)
//! is one JSON object on one line of `campaign.journal`, appended and
//! flushed before the transition is acted on. A campaign process that dies
//! mid-flight leaves a journal whose replay reconstructs exactly which
//! experiments are finished, which were in flight (their leases now
//! orphaned), and which were never started — the resume path schedules only
//! the unfinished remainder.
//!
//! The format is deliberately hand-rolled, flat JSON (string and integer
//! fields only): the workspace builds fully offline, and a lifecycle log
//! should be greppable from a shell on the share without tooling. The
//! encoding itself lives in [`crate::wire`], where the campaign server's
//! socket protocol speaks the same dialect.

use crate::wire::{json_escape, parse_flat_object};
use gemfi::Outcome;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// File name of the journal on the share.
pub const JOURNAL_FILE: &str = "campaign.journal";

/// Journal format version (bumped on incompatible event-schema changes).
pub const JOURNAL_VERSION: u64 = 1;

/// One lifecycle event. Serialized as one JSON object per line.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// Campaign header: written once at the start, replayed on resume to
    /// verify the journal belongs to the same campaign (same experiment
    /// count, same fault specs, same checkpoint).
    Campaign {
        /// Journal format version.
        version: u64,
        /// Total number of experiments.
        experiments: u64,
        /// Digest of the spooled checkpoint file (see
        /// `gemfi_sim::Checkpoint::digest`); resume rejects a share whose
        /// checkpoint no longer matches.
        checkpoint_digest: u64,
        /// FNV-1a digest over the rendered fault specs; resume rejects a
        /// journal recorded for different faults.
        spec_digest: u64,
    },
    /// Adaptive-campaign header: written once at the start of a sequential
    /// (early-stopping) campaign instead of [`JournalEvent::Campaign`]. The
    /// experiment count is open-ended — the engine draws until the stopping
    /// rule or the budget ends it — so identity is pinned by the sampler
    /// seed, the checkpoint, and the stopping-rule parameters instead.
    /// Fractional parameters are stored in parts-per-million because the
    /// journal's flat format is integers-and-strings only.
    AdaptiveCampaign {
        /// Journal format version.
        version: u64,
        /// Campaign sampler seed (per-cell streams derive from it).
        seed: u64,
        /// Digest of the spooled checkpoint file.
        checkpoint_digest: u64,
        /// Confidence z-value, in parts per million (1.96 → 1_960_000).
        z_ppm: u64,
        /// Target CI half-width, in parts per million (0.05 → 50_000).
        halfwidth_ppm: u64,
        /// Minimum experiments per cell before it may stop.
        min_n: u64,
        /// Global experiment budget.
        budget: u64,
        /// Draws per undecided cell per round.
        batch: u64,
        /// Comma-joined cell labels, in sampling order.
        cells: String,
    },
    /// The sequential engine drew one fault point for a cell and assigned
    /// it the next experiment index. Journaled for the whole round *before*
    /// any of the round's experiments execute, so a resumed campaign can
    /// verify it re-derives the identical draw sequence.
    Drawn {
        /// Experiment index (globally sequential in draw order).
        exp: u64,
        /// Cell label (e.g. `int-reg`, `l1d-cache`, `security`).
        cell: String,
        /// 0-based ordinal of this draw within its cell's stream.
        draw: u64,
    },
    /// A worker claimed the experiment under an expiring lease.
    Leased {
        /// Experiment index.
        exp: u64,
        /// Claiming worker id (`ws<W>.slot<S>` for the simulated NoW).
        worker: String,
        /// 1-based attempt number.
        attempt: u64,
        /// Lease expiry, milliseconds since the Unix epoch.
        deadline_ms: u64,
    },
    /// Fork-at-injection trunk progress: the experiment's divergent suffix
    /// was forked off the shared fault-free trunk at `tick` instead of
    /// replaying the whole prefix. Audit/perf-accounting only — replay
    /// validates the index and changes no state, and whole-run fallbacks
    /// simply never write one.
    Forked {
        /// Experiment index.
        exp: u64,
        /// Trunk tick at which the suffix forked.
        tick: u64,
    },
    /// The experiment finished and its outcome is final.
    Done {
        /// Experiment index.
        exp: u64,
        /// Attempt that completed it.
        attempt: u64,
        /// Classified outcome.
        outcome: Outcome,
        /// Human-readable termination (`RunExit` display; audit only).
        exit: String,
        /// Total simulated ticks of the run.
        ticks: u64,
    },
    /// One attempt failed (worker panic, expired lease, abort); the
    /// experiment goes back to pending unless retries are exhausted.
    AttemptFailed {
        /// Experiment index.
        exp: u64,
        /// The failed attempt number.
        attempt: u64,
        /// Worker that held the lease.
        worker: String,
        /// Failure description (for a worker panic, the panic payload).
        reason: String,
        /// Rendered fault spec of the offending experiment, when known —
        /// the reproduction handle that makes `Infrastructure` rows
        /// triageable. Optional so journals written before this field (or
        /// failures with no spec context) still replay.
        spec: Option<String>,
    },
    /// Terminal infrastructure failure: retries exhausted.
    Failed {
        /// Experiment index.
        exp: u64,
        /// Attempts consumed.
        attempts: u64,
        /// Last failure description.
        reason: String,
        /// Rendered fault spec of the offending experiment, when known.
        spec: Option<String>,
    },
}

/// Renders the optional `"spec"` member (empty when absent, so old-format
/// lines stay byte-identical).
fn spec_suffix(spec: Option<&str>) -> String {
    match spec {
        Some(s) => format!(",\"spec\":\"{}\"", json_escape(s)),
        None => String::new(),
    }
}

impl JournalEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            JournalEvent::Campaign { version, experiments, checkpoint_digest, spec_digest } => {
                format!(
                    "{{\"event\":\"campaign\",\"version\":{version},\"experiments\":{experiments},\
                     \"checkpoint_digest\":{checkpoint_digest},\"spec_digest\":{spec_digest}}}"
                )
            }
            JournalEvent::AdaptiveCampaign {
                version,
                seed,
                checkpoint_digest,
                z_ppm,
                halfwidth_ppm,
                min_n,
                budget,
                batch,
                cells,
            } => format!(
                "{{\"event\":\"adaptive-campaign\",\"version\":{version},\"seed\":{seed},\
                 \"checkpoint_digest\":{checkpoint_digest},\"z_ppm\":{z_ppm},\
                 \"halfwidth_ppm\":{halfwidth_ppm},\"min_n\":{min_n},\"budget\":{budget},\
                 \"batch\":{batch},\"cells\":\"{}\"}}",
                json_escape(cells)
            ),
            JournalEvent::Drawn { exp, cell, draw } => format!(
                "{{\"event\":\"drawn\",\"exp\":{exp},\"cell\":\"{}\",\"draw\":{draw}}}",
                json_escape(cell)
            ),
            JournalEvent::Leased { exp, worker, attempt, deadline_ms } => format!(
                "{{\"event\":\"leased\",\"exp\":{exp},\"worker\":\"{}\",\"attempt\":{attempt},\
                 \"deadline_ms\":{deadline_ms}}}",
                json_escape(worker)
            ),
            JournalEvent::Forked { exp, tick } => {
                format!("{{\"event\":\"forked\",\"exp\":{exp},\"tick\":{tick}}}")
            }
            JournalEvent::Done { exp, attempt, outcome, exit, ticks } => format!(
                "{{\"event\":\"done\",\"exp\":{exp},\"attempt\":{attempt},\"outcome\":\"{}\",\
                 \"exit\":\"{}\",\"ticks\":{ticks}}}",
                outcome.name(),
                json_escape(exit)
            ),
            JournalEvent::AttemptFailed { exp, attempt, worker, reason, spec } => format!(
                "{{\"event\":\"attempt-failed\",\"exp\":{exp},\"attempt\":{attempt},\
                 \"worker\":\"{}\",\"reason\":\"{}\"{}}}",
                json_escape(worker),
                json_escape(reason),
                spec_suffix(spec.as_deref())
            ),
            JournalEvent::Failed { exp, attempts, reason, spec } => format!(
                "{{\"event\":\"failed\",\"exp\":{exp},\"attempts\":{attempts},\"reason\":\"{}\"{}}}",
                json_escape(reason),
                spec_suffix(spec.as_deref())
            ),
        }
    }

    /// Parses one JSON line back into an event.
    ///
    /// # Errors
    ///
    /// A message describing the malformed line.
    pub fn parse(line: &str) -> Result<JournalEvent, String> {
        let fields = parse_flat_object(line)?;
        let kind = fields.str_field("event")?;
        match kind.as_str() {
            "campaign" => Ok(JournalEvent::Campaign {
                version: fields.num_field("version")?,
                experiments: fields.num_field("experiments")?,
                checkpoint_digest: fields.num_field("checkpoint_digest")?,
                spec_digest: fields.num_field("spec_digest")?,
            }),
            "adaptive-campaign" => Ok(JournalEvent::AdaptiveCampaign {
                version: fields.num_field("version")?,
                seed: fields.num_field("seed")?,
                checkpoint_digest: fields.num_field("checkpoint_digest")?,
                z_ppm: fields.num_field("z_ppm")?,
                halfwidth_ppm: fields.num_field("halfwidth_ppm")?,
                min_n: fields.num_field("min_n")?,
                budget: fields.num_field("budget")?,
                batch: fields.num_field("batch")?,
                cells: fields.str_field("cells")?,
            }),
            "drawn" => Ok(JournalEvent::Drawn {
                exp: fields.num_field("exp")?,
                cell: fields.str_field("cell")?,
                draw: fields.num_field("draw")?,
            }),
            "leased" => Ok(JournalEvent::Leased {
                exp: fields.num_field("exp")?,
                worker: fields.str_field("worker")?,
                attempt: fields.num_field("attempt")?,
                deadline_ms: fields.num_field("deadline_ms")?,
            }),
            "forked" => Ok(JournalEvent::Forked {
                exp: fields.num_field("exp")?,
                tick: fields.num_field("tick")?,
            }),
            "done" => Ok(JournalEvent::Done {
                exp: fields.num_field("exp")?,
                attempt: fields.num_field("attempt")?,
                outcome: fields.str_field("outcome")?.parse()?,
                exit: fields.str_field("exit")?,
                ticks: fields.num_field("ticks")?,
            }),
            "attempt-failed" => Ok(JournalEvent::AttemptFailed {
                exp: fields.num_field("exp")?,
                attempt: fields.num_field("attempt")?,
                worker: fields.str_field("worker")?,
                reason: fields.str_field("reason")?,
                // Lenient: absent in journals written before this field.
                spec: fields.opt_str_field("spec"),
            }),
            "failed" => Ok(JournalEvent::Failed {
                exp: fields.num_field("exp")?,
                attempts: fields.num_field("attempts")?,
                reason: fields.str_field("reason")?,
                spec: fields.opt_str_field("spec"),
            }),
            other => Err(format!("unknown journal event `{other}`")),
        }
    }
}

/// An open, append-only journal.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl Journal {
    /// The journal path under a share directory.
    pub fn path_in(share: &Path) -> PathBuf {
        share.join(JOURNAL_FILE)
    }

    /// Opens the journal for appending, creating it if absent.
    ///
    /// A writer that died mid-append leaves a torn final line. [`replay`]
    /// tolerates and drops it, but appending after the fragment would glue
    /// the next event onto it — turning an expected torn *tail* into fatal
    /// *interior* corruption on every later resume — so the torn tail is
    /// trimmed off here, before the first append.
    ///
    /// [`replay`]: Journal::replay
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn open(share: &Path) -> std::io::Result<Journal> {
        let path = Journal::path_in(share);
        match std::fs::read(&path) {
            Ok(bytes) if !bytes.is_empty() && !bytes.ends_with(b"\n") => {
                let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(keep as u64)?;
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { writer: BufWriter::new(file), path })
    }

    /// The journal file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event and flushes it to the file before returning, so a
    /// crash immediately after a transition never loses the record of it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        self.writer.write_all(event.to_json().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Replays a journal file into its event sequence. A torn final line
    /// (the writer died mid-append) is tolerated and dropped; corruption
    /// anywhere else is an error.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for corrupt interior lines.
    pub fn replay(path: &Path) -> std::io::Result<Vec<JournalEvent>> {
        let text = std::fs::read_to_string(path)?;
        let lines: Vec<&str> = text.lines().collect();
        let mut events = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match JournalEvent::parse(line) {
                Ok(e) => events.push(e),
                // A torn tail is expected after a crash; anything earlier
                // means the journal itself is damaged.
                Err(_) if i + 1 == lines.len() && !text.ends_with('\n') => break,
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{}:{}: {e}", path.display(), i + 1),
                    ));
                }
            }
        }
        Ok(events)
    }
}

/// Replayed per-experiment terminal state.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpState {
    /// Never claimed, or claimed but not finished (the orphaned-lease case
    /// carries the attempts already burned).
    Unfinished {
        /// Attempts already consumed by dead workers.
        attempts: u64,
    },
    /// Finished with a classified outcome.
    Done {
        /// The outcome recorded in the journal.
        outcome: Outcome,
        /// The attempt that completed it.
        attempt: u64,
        /// Simulated ticks of the completing run.
        ticks: u64,
    },
    /// Terminally failed in the harness (tabulated as
    /// [`Outcome::Infrastructure`]).
    Failed {
        /// Attempts consumed before giving up.
        attempts: u64,
    },
}

/// The reconstruction of a campaign from its journal.
#[derive(Debug, Clone)]
pub struct CampaignState {
    /// The campaign header, if the journal got far enough to record one.
    pub header: Option<JournalEvent>,
    /// Per-experiment state, indexed by experiment number.
    pub experiments: Vec<ExpState>,
}

impl CampaignState {
    /// Folds an event sequence into per-experiment terminal state.
    /// `experiments` is the campaign size (journaled events beyond it are
    /// rejected).
    ///
    /// # Errors
    ///
    /// A message when the journal references out-of-range experiments or
    /// double-finishes one.
    pub fn from_events(
        events: &[JournalEvent],
        experiments: usize,
    ) -> Result<CampaignState, String> {
        let mut state = CampaignState {
            header: None,
            experiments: vec![ExpState::Unfinished { attempts: 0 }; experiments],
        };
        for event in events {
            match event {
                JournalEvent::Campaign { .. } | JournalEvent::AdaptiveCampaign { .. } => {
                    if state.header.is_none() {
                        state.header = Some(event.clone());
                    }
                }
                JournalEvent::Drawn { .. } => {
                    // Adaptive draw records are folded by the sequential
                    // engine's own replay (`adaptive::replay_adaptive`);
                    // they carry no lifecycle transition.
                }
                JournalEvent::Leased { exp, .. } => {
                    // Liveness is tracked by the lease files; the journal
                    // entry is the audit record. Claiming a finished
                    // experiment is a protocol violation.
                    let s = state.slot(*exp)?;
                    if !matches!(s, ExpState::Unfinished { .. }) {
                        return Err(format!("experiment {exp} leased after finishing"));
                    }
                }
                JournalEvent::Forked { exp, .. } => {
                    // Informational: validate the index, change nothing.
                    state.slot(*exp)?;
                }
                JournalEvent::Done { exp, attempt, outcome, ticks, .. } => {
                    let s = state.slot(*exp)?;
                    // First terminal event wins: a zombie worker completing
                    // after its lease was reaped and the experiment re-ran
                    // must not double-count.
                    if matches!(s, ExpState::Unfinished { .. }) {
                        *s = ExpState::Done { outcome: *outcome, attempt: *attempt, ticks: *ticks };
                    }
                }
                JournalEvent::AttemptFailed { exp, attempt, .. } => {
                    let s = state.slot(*exp)?;
                    if let ExpState::Unfinished { attempts } = s {
                        *attempts = (*attempts).max(*attempt);
                    }
                }
                JournalEvent::Failed { exp, attempts, .. } => {
                    let s = state.slot(*exp)?;
                    if matches!(s, ExpState::Unfinished { .. }) {
                        *s = ExpState::Failed { attempts: *attempts };
                    }
                }
            }
        }
        Ok(state)
    }

    fn slot(&mut self, exp: u64) -> Result<&mut ExpState, String> {
        self.experiments
            .get_mut(exp as usize)
            .ok_or_else(|| format!("experiment {exp} out of range"))
    }

    /// Indices of experiments still needing execution, with the attempts
    /// already burned on each.
    pub fn unfinished(&self) -> Vec<(usize, u64)> {
        self.experiments
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ExpState::Unfinished { attempts } => Some((i, *attempts)),
                _ => None,
            })
            .collect()
    }

    /// Count of experiments already finished (done or terminally failed).
    pub fn finished(&self) -> usize {
        self.experiments.len() - self.unfinished().len()
    }
}

/// FNV-1a digest of the rendered fault specs — the campaign identity the
/// journal header pins (resume refuses to mix journals across spec sets).
pub fn spec_digest(specs: &[gemfi::FaultSpec]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for spec in specs {
        for b in spec.to_string().bytes().chain([b'\n']) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Campaign {
                version: JOURNAL_VERSION,
                experiments: 3,
                checkpoint_digest: 0xdead_beef,
                spec_digest: 42,
            },
            JournalEvent::Leased {
                exp: 0,
                worker: "ws0.slot1".into(),
                attempt: 1,
                deadline_ms: 1_700_000_000_000,
            },
            JournalEvent::Forked { exp: 0, tick: 98_765 },
            JournalEvent::Done {
                exp: 0,
                attempt: 1,
                outcome: Outcome::Sdc,
                exit: "halted (exit code 0)".into(),
                ticks: 12_345,
            },
            JournalEvent::AttemptFailed {
                exp: 1,
                attempt: 1,
                worker: "ws1.slot0".into(),
                reason: "worker panic: \"chaos\"\nbacktrace".into(),
                spec: Some("reg f $1 0x1 1:100:i".into()),
            },
            JournalEvent::Failed {
                exp: 2,
                attempts: 3,
                reason: "lease expired".into(),
                spec: None,
            },
            JournalEvent::AdaptiveCampaign {
                version: JOURNAL_VERSION,
                seed: 7,
                checkpoint_digest: 0xdead_beef,
                z_ppm: 1_960_000,
                halfwidth_ppm: 50_000,
                min_n: 25,
                budget: 5_000,
                batch: 16,
                cells: "int-reg,fp-reg,pc".into(),
            },
            JournalEvent::Drawn { exp: 3, cell: "fp-reg".into(), draw: 0 },
        ]
    }

    #[test]
    fn events_roundtrip_through_json() {
        for event in sample_events() {
            let line = event.to_json();
            assert_eq!(JournalEvent::parse(&line).unwrap(), event, "{line}");
        }
    }

    #[test]
    fn escaping_survives_hostile_reasons() {
        let event = JournalEvent::AttemptFailed {
            exp: 0,
            attempt: 1,
            worker: "w".into(),
            reason: "quote \" backslash \\ newline \n tab \t nul \u{0} end".into(),
            spec: Some("hostile \"spec\" \\ with newline \n".into()),
        };
        let line = event.to_json();
        assert!(!line.contains('\n'), "one event, one line: {line}");
        assert_eq!(JournalEvent::parse(&line).unwrap(), event);
    }

    #[test]
    fn journal_appends_and_replays() {
        let dir = std::env::temp_dir().join(format!("gemfi-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut j = Journal::open(&dir).unwrap();
        let events = sample_events();
        for e in &events {
            j.append(e).unwrap();
        }
        drop(j);
        assert_eq!(Journal::replay(&Journal::path_in(&dir)).unwrap(), events);
        // Re-opening appends rather than truncating.
        let mut j = Journal::open(&dir).unwrap();
        j.append(&events[1]).unwrap();
        drop(j);
        assert_eq!(Journal::replay(&Journal::path_in(&dir)).unwrap().len(), events.len() + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_but_interior_corruption_is_fatal() {
        let dir = std::env::temp_dir().join(format!("gemfi-journal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = Journal::path_in(&dir);
        let good = sample_events()[0].to_json();
        std::fs::write(&path, format!("{good}\n{{\"event\":\"leas")).unwrap();
        assert_eq!(Journal::replay(&path).unwrap().len(), 1, "torn tail dropped");
        std::fs::write(&path, format!("{{\"event\":\"leas\n{good}\n")).unwrap();
        assert!(Journal::replay(&path).is_err(), "interior corruption detected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_trims_a_torn_tail_so_later_appends_stay_parseable() {
        let dir = std::env::temp_dir().join(format!("gemfi-journal-trim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = Journal::path_in(&dir);
        let events = sample_events();
        std::fs::write(&path, format!("{}\n{{\"event\":\"leas", events[0].to_json())).unwrap();
        // Re-opening after the crash must drop the fragment; the next
        // append then lands on its own line and a full replay parses.
        let mut j = Journal::open(&dir).unwrap();
        j.append(&events[1]).unwrap();
        drop(j);
        let replayed = Journal::replay(&path).unwrap();
        assert_eq!(replayed, vec![events[0].clone(), events[1].clone()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_folding_tracks_lifecycles() {
        let state = CampaignState::from_events(&sample_events(), 3).unwrap();
        assert!(state.header.is_some());
        assert_eq!(
            state.experiments[0],
            ExpState::Done { outcome: Outcome::Sdc, attempt: 1, ticks: 12_345 }
        );
        assert_eq!(state.experiments[1], ExpState::Unfinished { attempts: 1 });
        assert_eq!(state.experiments[2], ExpState::Failed { attempts: 3 });
        assert_eq!(state.unfinished(), vec![(1, 1)]);
        assert_eq!(state.finished(), 2);
    }

    #[test]
    fn duplicate_done_keeps_the_first_record() {
        let mut events = sample_events();
        events.push(JournalEvent::Done {
            exp: 0,
            attempt: 2,
            outcome: Outcome::Crashed,
            exit: "zombie".into(),
            ticks: 1,
        });
        let state = CampaignState::from_events(&events, 3).unwrap();
        assert_eq!(
            state.experiments[0],
            ExpState::Done { outcome: Outcome::Sdc, attempt: 1, ticks: 12_345 }
        );
    }

    #[test]
    fn pre_spec_journal_lines_still_parse() {
        // Lines written before the `spec` field existed must keep replaying.
        let old = "{\"event\":\"attempt-failed\",\"exp\":1,\"attempt\":2,\
                   \"worker\":\"w\",\"reason\":\"boom\"}";
        assert_eq!(
            JournalEvent::parse(old).unwrap(),
            JournalEvent::AttemptFailed {
                exp: 1,
                attempt: 2,
                worker: "w".into(),
                reason: "boom".into(),
                spec: None,
            }
        );
        let old = "{\"event\":\"failed\",\"exp\":3,\"attempts\":4,\"reason\":\"gone\"}";
        assert_eq!(
            JournalEvent::parse(old).unwrap(),
            JournalEvent::Failed { exp: 3, attempts: 4, reason: "gone".into(), spec: None }
        );
    }

    #[test]
    fn out_of_range_experiments_are_rejected() {
        let events =
            vec![JournalEvent::Failed { exp: 9, attempts: 1, reason: "x".into(), spec: None }];
        assert!(CampaignState::from_events(&events, 3).is_err());
    }

    #[test]
    fn spec_digest_distinguishes_spec_sets() {
        use gemfi::{FaultBehavior, FaultLocation, FaultSpec, FaultTiming};
        let a = FaultSpec {
            location: FaultLocation::IntReg { core: 0, reg: 1 },
            thread: 0,
            timing: FaultTiming::Instructions(10),
            behavior: FaultBehavior::Flip(3),
            occurrences: 1,
        };
        let mut b = a;
        b.behavior = FaultBehavior::Flip(4);
        assert_ne!(spec_digest(&[a]), spec_digest(&[b]));
        assert_ne!(spec_digest(&[a, b]), spec_digest(&[b, a]));
        assert_eq!(spec_digest(&[a, b]), spec_digest(&[a, b]));
    }
}
