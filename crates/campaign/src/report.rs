//! Outcome tabulation (the Fig. 5/6 data structure).

use gemfi::Outcome;
use std::fmt;

/// Counts of experiment outcomes, one bar of the paper's stacked charts
/// (plus the harness-side infrastructure-failure bucket).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTable {
    counts: [u64; Outcome::ALL.len()],
}

impl OutcomeTable {
    /// An empty table.
    pub fn new() -> OutcomeTable {
        OutcomeTable::default()
    }

    /// Records one experiment.
    pub fn add(&mut self, outcome: Outcome) {
        self.counts[outcome.index()] += 1;
    }

    /// Count of one outcome class.
    pub fn count(&self, outcome: Outcome) -> u64 {
        self.counts[outcome.index()]
    }

    /// Total experiments recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of one outcome class in `[0, 1]`.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.total() as f64
        }
    }

    /// The paper's Fig. 6 *Acceptable* series: correct ∪ strictly-correct ∪
    /// non-propagated.
    pub fn acceptable_fraction(&self) -> f64 {
        Outcome::ALL.iter().filter(|o| o.is_acceptable()).map(|o| self.fraction(*o)).sum()
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &OutcomeTable) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Count of experiments whose harness failed (retries exhausted).
    pub fn infrastructure_failures(&self) -> u64 {
        self.count(Outcome::Infrastructure)
    }

    /// A fixed-width percentage row: `crash non-prop strict correct sdc
    /// infra`.
    pub fn percent_row(&self) -> String {
        Outcome::ALL
            .iter()
            .map(|o| format!("{:6.1}%", self.fraction(*o) * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// A rate ± Wilson-half-width row over the five experiment outcomes
    /// (infrastructure failures are harness noise, not rates): the
    /// adaptive-campaign report column.
    pub fn rate_ci_row(&self, z: f64) -> String {
        let n = Outcome::ALL
            .iter()
            .filter(|o| o.is_experiment_outcome())
            .map(|o| self.count(*o))
            .sum::<u64>();
        Outcome::ALL
            .iter()
            .filter(|o| o.is_experiment_outcome())
            .map(|o| {
                let hw = crate::stats::proportion_ci(self.count(*o), n, z);
                let rate = if n == 0 { 0.0 } else { self.count(*o) as f64 / n as f64 };
                format!("{:5.1}±{:4.1}%", rate * 100.0, hw * 100.0)
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for OutcomeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (n={})", self.percent_row(), self.total())
    }
}

impl FromIterator<Outcome> for OutcomeTable {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> OutcomeTable {
        let mut t = OutcomeTable::new();
        for o in iter {
            t.add(o);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let t: OutcomeTable = [
            Outcome::Crashed,
            Outcome::Crashed,
            Outcome::Correct,
            Outcome::Sdc,
            Outcome::StrictlyCorrect,
            Outcome::NonPropagated,
        ]
        .into_iter()
        .collect();
        let sum: f64 = Outcome::ALL.iter().map(|o| t.fraction(*o)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(t.total(), 6);
        assert_eq!(t.count(Outcome::Crashed), 2);
        assert!((t.acceptable_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: OutcomeTable = [Outcome::Crashed].into_iter().collect();
        let b: OutcomeTable = [Outcome::Sdc, Outcome::Sdc].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(Outcome::Sdc), 2);
    }

    #[test]
    fn empty_table_is_safe() {
        let t = OutcomeTable::new();
        assert_eq!(t.fraction(Outcome::Crashed), 0.0);
        assert_eq!(t.acceptable_fraction(), 0.0);
        assert!(t.to_string().contains("n=0"));
    }
}
