//! Injectable wall clocks for lease and heartbeat timing.
//!
//! Lease expiry, reaping, retry backoff and heartbeat renewal all compare
//! millisecond timestamps. Production code stamps them from the system
//! clock; tests drive a [`TestClock`] directly so expiry paths run in
//! microseconds instead of sleeping through real lease windows.
//!
//! The system clock is additionally guarded against going *backwards*
//! (NTP step, VM migration): [`SystemClock`] remembers the largest
//! timestamp it has ever handed out and never returns less. A lease
//! stamped at time T must not be judged by a clock that later reads
//! T - delta, or a live lease would never expire and an expired one could
//! resurrect.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// A source of milliseconds-since-epoch timestamps.
///
/// Implementations must be monotonic: two calls on the same clock never
/// observe time moving backwards.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time, milliseconds since the Unix epoch.
    fn now_ms(&self) -> u64;
}

/// High-water mark shared by every [`SystemClock`] in the process, so the
/// backwards guard holds across independently-constructed clocks (the
/// campaign driver and each worker thread build their own).
static SYSTEM_HIGH_WATER: AtomicU64 = AtomicU64::new(0);

/// The real wall clock, guarded against `SystemTime` stepping backwards.
#[derive(Debug, Clone, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        let raw =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        // Publish `raw` as the new high-water mark unless time ran
        // backwards, in which case serve the previous maximum.
        let mut seen = SYSTEM_HIGH_WATER.load(Ordering::Relaxed);
        loop {
            if raw <= seen {
                return seen;
            }
            match SYSTEM_HIGH_WATER.compare_exchange_weak(
                seen,
                raw,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return raw,
                Err(now) => seen = now,
            }
        }
    }
}

/// A manually-driven clock for tests. Cloning shares the underlying time,
/// so a scheduler and the test that prods it see the same instant.
#[derive(Debug, Clone, Default)]
pub struct TestClock {
    ms: Arc<AtomicU64>,
}

impl TestClock {
    /// A test clock starting at `start_ms`.
    pub fn at(start_ms: u64) -> TestClock {
        TestClock { ms: Arc::new(AtomicU64::new(start_ms)) }
    }

    /// Advances the clock by `delta_ms`.
    pub fn advance(&self, delta_ms: u64) {
        self.ms.fetch_add(delta_ms, Ordering::SeqCst);
    }

    /// Jumps the clock to `ms` if that is forward; backwards jumps are
    /// ignored (the trait promises monotonicity).
    pub fn set(&self, ms: u64) {
        self.ms.fetch_max(ms, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

/// The default production clock, shared-ownership form used in configs.
pub fn system_clock() -> Arc<dyn Clock> {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic_and_roughly_now() {
        let c = SystemClock;
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
        // Sanity: after 2020-01-01 in real runs.
        assert!(a > 1_577_836_800_000, "system clock reads {a}");
    }

    #[test]
    fn system_clock_high_water_survives_across_instances() {
        let a = SystemClock.now_ms();
        let b = SystemClock.now_ms();
        assert!(b >= a, "independent instances share the guard");
    }

    #[test]
    fn test_clock_advances_only_forward() {
        let c = TestClock::at(1_000);
        assert_eq!(c.now_ms(), 1_000);
        c.advance(500);
        assert_eq!(c.now_ms(), 1_500);
        c.set(1_200); // backwards jump ignored
        assert_eq!(c.now_ms(), 1_500);
        c.set(2_000);
        assert_eq!(c.now_ms(), 2_000);
        let shared = c.clone();
        shared.advance(1);
        assert_eq!(c.now_ms(), 2_001, "clones share time");
    }
}
