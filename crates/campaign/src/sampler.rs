//! Uniform fault sampling over (Location, Time, Behavior) — Sec. IV-B-1:
//! "Each experiment injects a flip-bit fault, using a uniform distribution
//! for the Location, Time and Behavior" (a single-event-upset model).

use crate::rng::SplitMix64;
use gemfi::spec::OCC_PERMANENT;
use gemfi::{
    CacheLevel, FaultBehavior, FaultLocation, FaultSpec, FaultTiming, MbuPattern, MemTarget, Stage,
    VddModel,
};
use std::fmt;

/// The (sets, ways) geometry cache-fault sampling draws targets from,
/// matching `gemfi_mem::MemConfig::default()`: 32 KiB 2-way L1s and a 1 MiB
/// 8-way L2, all with 64-byte lines.
pub fn cache_geometry(level: CacheLevel) -> (u64, u32) {
    match level {
        CacheLevel::L1I | CacheLevel::L1D => (256, 2),
        CacheLevel::L2 => (2048, 8),
    }
}

/// Total data-array bits of `level` under the default geometry — the `bits`
/// argument for [`VddModel::expected_upsets`] when scaling cache-fault
/// density with supply voltage.
pub fn cache_bits(level: CacheLevel) -> u64 {
    let (sets, ways) = cache_geometry(level);
    sets * u64::from(ways) * 64 * 8
}

/// The location classes of the paper's Fig. 5 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocationClass {
    /// Integer register file.
    IntReg,
    /// Floating-point register file.
    FpReg,
    /// Fetched instruction word.
    Fetch,
    /// Decode-stage register selection.
    Decode,
    /// Execution-stage result.
    Execute,
    /// Memory transaction data.
    Mem,
    /// Program counter.
    Pc,
}

impl LocationClass {
    /// All classes, Fig. 5 column order.
    pub const ALL: [LocationClass; 7] = [
        LocationClass::IntReg,
        LocationClass::FpReg,
        LocationClass::Fetch,
        LocationClass::Decode,
        LocationClass::Execute,
        LocationClass::Mem,
        LocationClass::Pc,
    ];

    /// The stage whose event counter bounds this class's injection times.
    pub fn stage(self) -> Stage {
        match self {
            LocationClass::Fetch => Stage::Fetch,
            LocationClass::Decode => Stage::Decode,
            LocationClass::Execute => Stage::Execute,
            LocationClass::Mem => Stage::Memory,
            LocationClass::IntReg | LocationClass::FpReg | LocationClass::Pc => Stage::Register,
        }
    }

    /// Number of corruptible bits at this location class.
    pub fn bit_width(self) -> u8 {
        match self {
            LocationClass::Fetch => 32,
            LocationClass::Decode => gemfi::engine::DECODE_SELECTOR_BITS,
            _ => 64,
        }
    }
}

impl fmt::Display for LocationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LocationClass::IntReg => "int-reg",
            LocationClass::FpReg => "fp-reg",
            LocationClass::Fetch => "fetch",
            LocationClass::Decode => "decode",
            LocationClass::Execute => "execute",
            LocationClass::Mem => "mem",
            LocationClass::Pc => "pc",
        };
        f.write_str(name)
    }
}

/// Uniform single-bit-flip fault sampler over a measured fault space.
///
/// `stage_events` come from a fault-free profiling run: the number of
/// instructions served per stage while injection was active, which bounds
/// the `Inst:` times so every sampled fault lands inside the kernel.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    rng: SplitMix64,
    stage_events: [u64; 5],
    thread: u32,
    core: usize,
}

impl FaultSampler {
    /// A sampler for thread `thread` on core `core`, over the given
    /// per-stage event counts, seeded deterministically.
    pub fn new(seed: u64, stage_events: [u64; 5], thread: u32, core: usize) -> FaultSampler {
        FaultSampler { rng: SplitMix64::new(seed), stage_events, thread, core }
    }

    /// A sampler dedicated to one campaign cell: the campaign seed mixed
    /// with the cell's index, so each cell owns an independent deterministic
    /// stream. The sequential engine draws cells batch-by-batch in whatever
    /// order the stopping rule dictates; per-cell streams make draw `k` of a
    /// cell invariant to that interleaving — the property its resume path
    /// (and its byte-identical-decisions guarantee) is built on.
    pub fn for_cell(seed: u64, cell: usize, stage_events: [u64; 5]) -> FaultSampler {
        // SplitMix64's increment constant keeps distinct cells' seeds
        // decorrelated even for adjacent campaign seeds.
        let mixed = seed ^ (cell as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        FaultSampler::new(mixed, stage_events, 0, 0)
    }

    /// The population size of class `class` (events × bits), the `N` of the
    /// Leveugle sizing formula.
    pub fn population(&self, class: LocationClass) -> u64 {
        let events = self.stage_events[class.stage().index()].max(1);
        events.saturating_mul(class.bit_width() as u64)
    }

    /// Profiled events of one stage (≥ 1) — the time axis of any fault
    /// family whose activation rides that stage's queue.
    pub fn stage_events(&self, stage: Stage) -> u64 {
        self.stage_events[stage.index()].max(1)
    }

    /// Total population over all classes.
    pub fn total_population(&self) -> u64 {
        LocationClass::ALL.iter().map(|c| self.population(*c)).sum()
    }

    /// Draws one transient single-bit-flip fault in `class`.
    pub fn sample(&mut self, class: LocationClass) -> FaultSpec {
        let core = self.core;
        let location = match class {
            // R31/F31 are architectural zeroes; the samplable file is 0–30.
            LocationClass::IntReg => FaultLocation::IntReg { core, reg: self.rng.below(31) as u8 },
            LocationClass::FpReg => FaultLocation::FpReg { core, reg: self.rng.below(31) as u8 },
            LocationClass::Fetch => FaultLocation::Fetch { core },
            LocationClass::Decode => FaultLocation::Decode { core },
            LocationClass::Execute => FaultLocation::Execute { core },
            LocationClass::Mem => FaultLocation::Mem {
                core,
                target: if self.rng.coin() { MemTarget::Load } else { MemTarget::Store },
            },
            LocationClass::Pc => FaultLocation::Pc { core },
        };
        let events = self.stage_events[class.stage().index()].max(1);
        let time = self.rng.range_inclusive(1, events);
        let bit = self.rng.below(class.bit_width() as u64) as u8;
        FaultSpec {
            location,
            thread: self.thread,
            timing: FaultTiming::Instructions(time),
            behavior: FaultBehavior::Flip(bit),
            occurrences: 1,
        }
    }

    /// Draws one fault with the injection time confined to the given
    /// fraction band `[lo, hi)` of the kernel (the Fig. 6 deciles).
    pub fn sample_in_band(&mut self, class: LocationClass, lo: f64, hi: f64) -> FaultSpec {
        let events = self.stage_events[class.stage().index()].max(1);
        let start = ((events as f64 * lo) as u64).max(1);
        let end = ((events as f64 * hi) as u64).max(start + 1);
        let mut spec = self.sample(class);
        spec.timing = FaultTiming::Instructions(self.rng.range_inclusive(start, end - 1));
        spec
    }

    /// Draws a batch of `k` transient single-bit-flip faults in `class` —
    /// the draw-on-demand entry point of the sequential engine, which asks
    /// for one round's worth of faults at a time instead of an up-front
    /// Leveugle-sized worklist. Equivalent to `k` calls of
    /// [`FaultSampler::sample`].
    pub fn sample_batch(&mut self, class: LocationClass, k: usize) -> Vec<FaultSpec> {
        (0..k).map(|_| self.sample(class)).collect()
    }

    /// Draws a fault from a uniformly chosen class (the whole-space model).
    pub fn sample_any(&mut self) -> FaultSpec {
        let class = LocationClass::ALL[self.rng.below(LocationClass::ALL.len() as u64) as usize];
        self.sample(class)
    }

    /// Draws one memory-hierarchy fault in `level`: a uniformly chosen
    /// data-line, tag, or whole-way target, a uniformly chosen MBU spatial
    /// pattern (tag faults always corrupt the full tag), and a fair coin
    /// between a transient lesion (`occ:1`) and a stuck-at (`occ:perm`).
    pub fn sample_cache(&mut self, level: CacheLevel) -> FaultSpec {
        let core = self.core;
        let (sets, ways) = cache_geometry(level);
        let set = self.rng.below(sets) as u32;
        let way = self.rng.below(u64::from(ways)) as u32;
        let pattern = match self.rng.below(4) {
            0 => MbuPattern::Single,
            1 => MbuPattern::Adjacent {
                bit: self.rng.below(64) as u8,
                width: 2 + self.rng.below(3) as u8,
            },
            2 => MbuPattern::Row(self.rng.below(8) as u8),
            _ => MbuPattern::Column(self.rng.below(8) as u8),
        };
        let location = match self.rng.below(3) {
            0 => FaultLocation::CacheData { core, level, set, way, pattern },
            1 => FaultLocation::CacheTag { core, level, set, way },
            _ => FaultLocation::CacheWay { core, level, way, pattern },
        };
        let events = self.stage_events[location.stage().index()].max(1);
        FaultSpec {
            location,
            thread: self.thread,
            timing: FaultTiming::Instructions(self.rng.range_inclusive(1, events)),
            behavior: FaultBehavior::Flip(self.rng.below(64) as u8),
            occurrences: if self.rng.coin() { 1 } else { OCC_PERMANENT },
        }
    }

    /// Draws one security-style control-flow fault: instruction skip, opcode
    /// replacement (fetch stage), or branch-condition inversion (execute
    /// stage), uniformly.
    pub fn sample_security(&mut self) -> FaultSpec {
        let core = self.core;
        let (location, behavior) = match self.rng.below(3) {
            0 => (FaultLocation::Fetch { core }, FaultBehavior::Skip),
            1 => (FaultLocation::Fetch { core }, FaultBehavior::Opcode(self.rng.below(64) as u8)),
            _ => (FaultLocation::Execute { core }, FaultBehavior::InvertBranch),
        };
        let events = self.stage_events[location.stage().index()].max(1);
        FaultSpec {
            location,
            thread: self.thread,
            timing: FaultTiming::Instructions(self.rng.range_inclusive(1, events)),
            behavior,
            occurrences: 1,
        }
    }

    /// Draws the Vdd-scaled cache fault set for `level`: the expected upset
    /// count over the level's bit population and `cycles` cycles at `vdd`,
    /// each drawn by [`FaultSampler::sample_cache`]. At nominal voltage this
    /// is empty; deep in the scaling region it grows exponentially (capped
    /// at 10k so a below-`v_min` request cannot allocate unboundedly).
    pub fn sample_cache_at_vdd(
        &mut self,
        level: CacheLevel,
        model: &VddModel,
        vdd: f64,
        cycles: u64,
    ) -> Vec<FaultSpec> {
        let expected = model.expected_upsets(vdd, cache_bits(level), cycles);
        let count = (expected.min(10_000.0)) as u64;
        (0..count).map(|_| self.sample_cache(level)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> FaultSampler {
        FaultSampler::new(42, [1000, 1000, 800, 300, 900], 0, 0)
    }

    #[test]
    fn samples_stay_inside_the_fault_space() {
        let mut s = sampler();
        for class in LocationClass::ALL {
            for _ in 0..200 {
                let f = s.sample(class);
                assert_eq!(f.thread, 0);
                assert_eq!(f.occurrences, 1);
                let FaultTiming::Instructions(t) = f.timing else { panic!("inst timing") };
                assert!((1..=1000).contains(&t), "{class}: t={t}");
                let FaultBehavior::Flip(bit) = f.behavior else { panic!("flip") };
                assert!(bit < class.bit_width());
                assert_eq!(f.location.stage(), class.stage());
            }
        }
    }

    #[test]
    fn register_samples_avoid_the_zero_registers() {
        let mut s = sampler();
        for _ in 0..500 {
            if let FaultLocation::IntReg { reg, .. } = s.sample(LocationClass::IntReg).location {
                assert!(reg < 31);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = FaultSampler::new(7, [100; 5], 0, 0);
        let mut b = FaultSampler::new(7, [100; 5], 0, 0);
        for _ in 0..50 {
            assert_eq!(a.sample_any(), b.sample_any());
        }
    }

    #[test]
    fn cell_samplers_are_independent_deterministic_streams() {
        let events = [100; 5];
        // Same (seed, cell) → same stream; different cell → different one.
        let mut a = FaultSampler::for_cell(7, 3, events);
        let mut b = FaultSampler::for_cell(7, 3, events);
        for _ in 0..50 {
            assert_eq!(a.sample_any(), b.sample_any());
        }
        let mut d = FaultSampler::for_cell(7, 3, events);
        let mut c = FaultSampler::for_cell(7, 4, events);
        let diverged =
            (0..50).any(|_| d.sample(LocationClass::Fetch) != c.sample(LocationClass::Fetch));
        assert!(diverged, "distinct cells draw distinct streams");
    }

    #[test]
    fn batched_draws_equal_repeated_single_draws() {
        let mut a = sampler();
        let mut b = sampler();
        let batch = a.sample_batch(LocationClass::Mem, 20);
        let singles: Vec<_> = (0..20).map(|_| b.sample(LocationClass::Mem)).collect();
        assert_eq!(batch, singles);
    }

    #[test]
    fn bands_confine_times() {
        let mut s = sampler();
        for _ in 0..100 {
            let f = s.sample_in_band(LocationClass::Execute, 0.5, 0.6);
            let FaultTiming::Instructions(t) = f.timing else { panic!() };
            assert!((400..=480).contains(&t), "t={t}");
        }
    }

    #[test]
    fn populations_multiply_events_and_bits() {
        let s = sampler();
        assert_eq!(s.population(LocationClass::Fetch), 1000 * 32);
        assert_eq!(s.population(LocationClass::Execute), 800 * 64);
        assert!(s.total_population() > 0);
    }

    #[test]
    fn cache_samples_stay_inside_the_geometry() {
        let mut s = sampler();
        for level in CacheLevel::ALL {
            let (sets, ways) = cache_geometry(level);
            for _ in 0..300 {
                let f = s.sample_cache(level);
                assert!(f.location.is_cache());
                assert_eq!(f.location.cache_level(), Some(level));
                match f.location {
                    FaultLocation::CacheData { set, way, .. }
                    | FaultLocation::CacheTag { set, way, .. } => {
                        assert!(u64::from(set) < sets);
                        assert!(way < ways);
                    }
                    FaultLocation::CacheWay { way, .. } => assert!(way < ways),
                    _ => unreachable!(),
                }
                assert!(f.occurrences == 1 || f.occurrences == OCC_PERMANENT);
                // Every sample round-trips through the Listing-1 syntax.
                let line = f.to_string();
                let parsed: gemfi::FaultConfig = line
                    .parse()
                    .unwrap_or_else(|e| panic!("sampled spec must reparse: {line}: {e:?}"));
                assert_eq!(parsed.faults(), &[f]);
            }
        }
    }

    #[test]
    fn security_samples_bind_behavior_to_the_right_stage() {
        let mut s = sampler();
        for _ in 0..300 {
            let f = s.sample_security();
            assert!(f.behavior.is_security());
            match f.behavior {
                FaultBehavior::Skip | FaultBehavior::Opcode(_) => {
                    assert!(matches!(f.location, FaultLocation::Fetch { .. }));
                }
                FaultBehavior::InvertBranch => {
                    assert!(matches!(f.location, FaultLocation::Execute { .. }));
                }
                _ => unreachable!(),
            }
            let line = f.to_string();
            let parsed: gemfi::FaultConfig =
                line.parse().unwrap_or_else(|e| panic!("must reparse: {line}: {e:?}"));
            assert_eq!(parsed.faults(), &[f]);
        }
    }

    #[test]
    fn vdd_scaling_grows_the_cache_fault_set() {
        let model = VddModel::new();
        let mut s = sampler();
        let nominal = s.sample_cache_at_vdd(CacheLevel::L2, &model, 1.0, 1_000);
        assert!(nominal.is_empty(), "nominal voltage: vanishing upset rate");
        let mut s = sampler();
        let low = s.sample_cache_at_vdd(CacheLevel::L2, &model, 0.55, 1_000);
        assert!(!low.is_empty(), "deep scaling region produces faults");
        assert!(low.len() <= 10_000, "bounded even below v_min");
    }
}
