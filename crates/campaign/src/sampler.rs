//! Uniform fault sampling over (Location, Time, Behavior) — Sec. IV-B-1:
//! "Each experiment injects a flip-bit fault, using a uniform distribution
//! for the Location, Time and Behavior" (a single-event-upset model).

use crate::rng::SplitMix64;
use gemfi::{FaultBehavior, FaultLocation, FaultSpec, FaultTiming, MemTarget, Stage};
use std::fmt;

/// The location classes of the paper's Fig. 5 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocationClass {
    /// Integer register file.
    IntReg,
    /// Floating-point register file.
    FpReg,
    /// Fetched instruction word.
    Fetch,
    /// Decode-stage register selection.
    Decode,
    /// Execution-stage result.
    Execute,
    /// Memory transaction data.
    Mem,
    /// Program counter.
    Pc,
}

impl LocationClass {
    /// All classes, Fig. 5 column order.
    pub const ALL: [LocationClass; 7] = [
        LocationClass::IntReg,
        LocationClass::FpReg,
        LocationClass::Fetch,
        LocationClass::Decode,
        LocationClass::Execute,
        LocationClass::Mem,
        LocationClass::Pc,
    ];

    /// The stage whose event counter bounds this class's injection times.
    pub fn stage(self) -> Stage {
        match self {
            LocationClass::Fetch => Stage::Fetch,
            LocationClass::Decode => Stage::Decode,
            LocationClass::Execute => Stage::Execute,
            LocationClass::Mem => Stage::Memory,
            LocationClass::IntReg | LocationClass::FpReg | LocationClass::Pc => Stage::Register,
        }
    }

    /// Number of corruptible bits at this location class.
    pub fn bit_width(self) -> u8 {
        match self {
            LocationClass::Fetch => 32,
            LocationClass::Decode => gemfi::engine::DECODE_SELECTOR_BITS,
            _ => 64,
        }
    }
}

impl fmt::Display for LocationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LocationClass::IntReg => "int-reg",
            LocationClass::FpReg => "fp-reg",
            LocationClass::Fetch => "fetch",
            LocationClass::Decode => "decode",
            LocationClass::Execute => "execute",
            LocationClass::Mem => "mem",
            LocationClass::Pc => "pc",
        };
        f.write_str(name)
    }
}

/// Uniform single-bit-flip fault sampler over a measured fault space.
///
/// `stage_events` come from a fault-free profiling run: the number of
/// instructions served per stage while injection was active, which bounds
/// the `Inst:` times so every sampled fault lands inside the kernel.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    rng: SplitMix64,
    stage_events: [u64; 5],
    thread: u32,
    core: usize,
}

impl FaultSampler {
    /// A sampler for thread `thread` on core `core`, over the given
    /// per-stage event counts, seeded deterministically.
    pub fn new(seed: u64, stage_events: [u64; 5], thread: u32, core: usize) -> FaultSampler {
        FaultSampler { rng: SplitMix64::new(seed), stage_events, thread, core }
    }

    /// The population size of class `class` (events × bits), the `N` of the
    /// Leveugle sizing formula.
    pub fn population(&self, class: LocationClass) -> u64 {
        let events = self.stage_events[class.stage().index()].max(1);
        events.saturating_mul(class.bit_width() as u64)
    }

    /// Total population over all classes.
    pub fn total_population(&self) -> u64 {
        LocationClass::ALL.iter().map(|c| self.population(*c)).sum()
    }

    /// Draws one transient single-bit-flip fault in `class`.
    pub fn sample(&mut self, class: LocationClass) -> FaultSpec {
        let core = self.core;
        let location = match class {
            // R31/F31 are architectural zeroes; the samplable file is 0–30.
            LocationClass::IntReg => FaultLocation::IntReg { core, reg: self.rng.below(31) as u8 },
            LocationClass::FpReg => FaultLocation::FpReg { core, reg: self.rng.below(31) as u8 },
            LocationClass::Fetch => FaultLocation::Fetch { core },
            LocationClass::Decode => FaultLocation::Decode { core },
            LocationClass::Execute => FaultLocation::Execute { core },
            LocationClass::Mem => FaultLocation::Mem {
                core,
                target: if self.rng.coin() { MemTarget::Load } else { MemTarget::Store },
            },
            LocationClass::Pc => FaultLocation::Pc { core },
        };
        let events = self.stage_events[class.stage().index()].max(1);
        let time = self.rng.range_inclusive(1, events);
        let bit = self.rng.below(class.bit_width() as u64) as u8;
        FaultSpec {
            location,
            thread: self.thread,
            timing: FaultTiming::Instructions(time),
            behavior: FaultBehavior::Flip(bit),
            occurrences: 1,
        }
    }

    /// Draws one fault with the injection time confined to the given
    /// fraction band `[lo, hi)` of the kernel (the Fig. 6 deciles).
    pub fn sample_in_band(&mut self, class: LocationClass, lo: f64, hi: f64) -> FaultSpec {
        let events = self.stage_events[class.stage().index()].max(1);
        let start = ((events as f64 * lo) as u64).max(1);
        let end = ((events as f64 * hi) as u64).max(start + 1);
        let mut spec = self.sample(class);
        spec.timing = FaultTiming::Instructions(self.rng.range_inclusive(start, end - 1));
        spec
    }

    /// Draws a fault from a uniformly chosen class (the whole-space model).
    pub fn sample_any(&mut self) -> FaultSpec {
        let class = LocationClass::ALL[self.rng.below(LocationClass::ALL.len() as u64) as usize];
        self.sample(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> FaultSampler {
        FaultSampler::new(42, [1000, 1000, 800, 300, 900], 0, 0)
    }

    #[test]
    fn samples_stay_inside_the_fault_space() {
        let mut s = sampler();
        for class in LocationClass::ALL {
            for _ in 0..200 {
                let f = s.sample(class);
                assert_eq!(f.thread, 0);
                assert_eq!(f.occurrences, 1);
                let FaultTiming::Instructions(t) = f.timing else { panic!("inst timing") };
                assert!((1..=1000).contains(&t), "{class}: t={t}");
                let FaultBehavior::Flip(bit) = f.behavior else { panic!("flip") };
                assert!(bit < class.bit_width());
                assert_eq!(f.location.stage(), class.stage());
            }
        }
    }

    #[test]
    fn register_samples_avoid_the_zero_registers() {
        let mut s = sampler();
        for _ in 0..500 {
            if let FaultLocation::IntReg { reg, .. } = s.sample(LocationClass::IntReg).location {
                assert!(reg < 31);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = FaultSampler::new(7, [100; 5], 0, 0);
        let mut b = FaultSampler::new(7, [100; 5], 0, 0);
        for _ in 0..50 {
            assert_eq!(a.sample_any(), b.sample_any());
        }
    }

    #[test]
    fn bands_confine_times() {
        let mut s = sampler();
        for _ in 0..100 {
            let f = s.sample_in_band(LocationClass::Execute, 0.5, 0.6);
            let FaultTiming::Instructions(t) = f.timing else { panic!() };
            assert!((400..=480).contains(&t), "t={t}");
        }
    }

    #[test]
    fn populations_multiply_events_and_bits() {
        let s = sampler();
        assert_eq!(s.population(LocationClass::Fetch), 1000 * 32);
        assert_eq!(s.population(LocationClass::Execute), 800 * 64);
        assert!(s.total_population() > 0);
    }
}
