//! The campaign transport abstraction: one claim/heartbeat/report protocol,
//! two backends.
//!
//! [`CampaignTransport`] is the worker-facing face of the window scheduler
//! ([`crate::window`]). The spool backend ([`SpoolTransport`]) locks the
//! scheduler directly — in-process worker threads sharing one spool
//! directory, the PR-1 topology. The socket backend
//! ([`crate::worker::SocketTransport`]) speaks the same verbs over TCP to a
//! [`crate::server::CampaignServer`], which locks the very same scheduler
//! type on the workers' behalf. The generic worker loop
//! ([`crate::worker`]) is written against this trait and cannot tell the
//! difference — which is the point: every recovery path (reap, backoff,
//! zombie suppression, journal fold) is tested once and holds on both.

use crate::window::{fault_path, ClaimOutcome, WindowScheduler};
use gemfi::{AbortToken, FaultConfig, FaultSpec, Outcome};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A leased experiment handed to a worker.
#[derive(Debug, Clone)]
pub struct WorkAssignment {
    /// Campaign queue the experiment belongs to (`"spool"` for the
    /// directory backend, the queue name for the server).
    pub queue: String,
    /// Global experiment index.
    pub exp: usize,
    /// 1-based attempt this lease covers.
    pub attempt: u64,
    /// Lease expiry, ms since the epoch on the *scheduler's* clock.
    pub deadline_ms: u64,
    /// Lease duration (heartbeat cadence derives from it).
    pub lease_ms: u64,
    /// The fault to inject.
    pub spec: FaultSpec,
    /// Raised when the attempt must stop: by the in-process reaper (spool)
    /// or by the worker's own heartbeat loop on server loss (socket).
    pub abort: AbortToken,
}

/// Reply to a claim request.
#[derive(Debug)]
pub enum ClaimReply {
    /// A leased experiment to execute.
    Work(WorkAssignment),
    /// Nothing claimable right now; retry after the hint.
    Idle {
        /// Suggested retry delay, milliseconds.
        backoff_ms: u64,
    },
    /// The campaign (or every queue) is terminal: the worker may exit.
    Complete,
}

/// Whether a report landed or was dropped as a zombie.
pub use crate::window::ReportAck;

/// Execution context of one queue: what a worker needs besides the
/// assignment itself. The checkpoint is the restore source (a worker-local
/// copy for the spool backend, the digest-cached fetched image for the
/// socket backend).
pub struct QueueContext<'w> {
    /// The workload being campaigned.
    pub workload: &'w dyn gemfi_workloads::Workload,
    /// Prepared golden-run context (reference output, watchdog timing).
    pub prepared: &'w crate::runner::PreparedWorkload,
    /// The checkpoint to restore experiments from.
    pub checkpoint: Arc<gemfi_sim::Checkpoint>,
}

/// Keeps an attempt's liveness machinery (the socket backend's heartbeat
/// thread) running for exactly the duration of the execution; dropping the
/// guard stops it.
#[derive(Debug, Default)]
pub struct AttemptGuard {
    stop: Option<Arc<AtomicBool>>,
}

impl AttemptGuard {
    /// A guard with no machinery behind it (spool backend).
    pub fn inert() -> AttemptGuard {
        AttemptGuard { stop: None }
    }

    /// A guard that raises `stop` when dropped.
    pub fn stopping(stop: Arc<AtomicBool>) -> AttemptGuard {
        AttemptGuard { stop: Some(stop) }
    }
}

impl Drop for AttemptGuard {
    fn drop(&mut self) {
        if let Some(stop) = &self.stop {
            stop.store(true, Ordering::SeqCst);
        }
    }
}

/// The claim/heartbeat/result-fold cycle, backend-neutral.
pub trait CampaignTransport {
    /// Asks for one experiment lease.
    ///
    /// # Errors
    ///
    /// Transport I/O errors (the socket backend retries transient
    /// connection loss internally before surfacing one).
    fn claim(&mut self, worker: &str) -> std::io::Result<ClaimReply>;

    /// Starts attempt-scoped liveness machinery (heartbeats). The default
    /// is inert: the spool backend's fixed-deadline lease semantics need
    /// none.
    fn begin_attempt(&mut self, _worker: &str, _assignment: &WorkAssignment) -> AttemptGuard {
        AttemptGuard::inert()
    }

    /// Reports a finished experiment.
    ///
    /// # Errors
    ///
    /// Transport I/O errors.
    fn report_result(
        &mut self,
        worker: &str,
        assignment: &WorkAssignment,
        outcome: Outcome,
        exit: &str,
        ticks: u64,
    ) -> std::io::Result<ReportAck>;

    /// Reports a failed attempt.
    ///
    /// # Errors
    ///
    /// Transport I/O errors.
    fn report_failure(
        &mut self,
        worker: &str,
        assignment: &WorkAssignment,
        reason: &str,
    ) -> std::io::Result<ReportAck>;
}

/// The spool-directory backend: in-process worker threads locking the
/// window scheduler directly, exactly the PR-1 NoW executor's shape.
pub(crate) struct SpoolTransport<'a> {
    pub(crate) scheduler: &'a Mutex<WindowScheduler>,
    pub(crate) share: PathBuf,
    /// Workstation index for load-balance accounting.
    pub(crate) ws: usize,
}

impl CampaignTransport for SpoolTransport<'_> {
    fn claim(&mut self, worker: &str) -> std::io::Result<ClaimReply> {
        let claimed = {
            let mut s = self.scheduler.lock().expect("schedule mutex");
            s.try_claim(worker)?
        };
        match claimed {
            ClaimOutcome::Complete => Ok(ClaimReply::Complete),
            ClaimOutcome::Idle => Ok(ClaimReply::Idle { backoff_ms: 1 }),
            ClaimOutcome::Work { exp, attempt, deadline_ms, abort, .. } => {
                // Execute the *spooled* fault file, not the in-memory spec:
                // the share artifact is the protocol artifact a physical
                // cluster would exchange, so the round-trip stays exercised.
                let cfg = FaultConfig::load(&fault_path(&self.share, exp))
                    .expect("spooled fault file readable");
                let spec = cfg.faults()[0];
                Ok(ClaimReply::Work(WorkAssignment {
                    queue: "spool".to_string(),
                    exp,
                    attempt,
                    deadline_ms,
                    lease_ms: 0,
                    spec,
                    abort,
                }))
            }
        }
    }

    fn report_result(
        &mut self,
        worker: &str,
        assignment: &WorkAssignment,
        outcome: Outcome,
        exit: &str,
        ticks: u64,
    ) -> std::io::Result<ReportAck> {
        let mut s = self.scheduler.lock().expect("schedule mutex");
        s.report_done(
            assignment.exp,
            assignment.attempt,
            worker,
            Some(self.ws),
            outcome,
            exit,
            ticks,
        )
    }

    fn report_failure(
        &mut self,
        worker: &str,
        assignment: &WorkAssignment,
        reason: &str,
    ) -> std::io::Result<ReportAck> {
        let mut s = self.scheduler.lock().expect("schedule mutex");
        s.report_failed(assignment.exp, assignment.attempt, worker, reason)
    }
}
