//! Outcome classification (Sec. IV-B-1).

use gemfi::{InjectionRecord, Outcome};
use gemfi_sim::RunExit;
use gemfi_workloads::{Quality, Workload};

/// Classifies one experiment.
///
/// * Any trap, hang, or abnormal exit code → [`Outcome::Crashed`].
/// * A violated simulator invariant → [`Outcome::Infrastructure`] (a tool
///   bug — kept out of the guest outcome distribution, and triageable from
///   the journal).
/// * If no injected fault propagated (register faults dead/overwritten, or
///   the corruption left the value unchanged) → [`Outcome::NonPropagated`].
/// * Bit-identical output → [`Outcome::StrictlyCorrect`].
/// * Within the workload's quality margin → [`Outcome::Correct`].
/// * Otherwise → [`Outcome::Sdc`].
pub fn classify(
    workload: &dyn Workload,
    golden_output: &[u8],
    exit: RunExit,
    output: &[u8],
    records: &[InjectionRecord],
) -> Outcome {
    match exit {
        RunExit::Trapped(_) | RunExit::Watchdog => return Outcome::Crashed,
        RunExit::Halted(code) if code != 0 => return Outcome::Crashed,
        RunExit::Halted(_) => {}
        // A checkpoint request is not a terminal state; reaching here is a
        // runner bug, but classify conservatively.
        RunExit::CheckpointRequest => return Outcome::Crashed,
        // Simulator bug, not a guest outcome: never pollute Crashed.
        RunExit::SimError(_) => return Outcome::Infrastructure,
    }
    let propagated = records.iter().any(InjectionRecord::propagated);
    if output == golden_output {
        return if propagated { Outcome::StrictlyCorrect } else { Outcome::NonPropagated };
    }
    match workload.classify(output, golden_output) {
        Quality::BitExact => unreachable!("handled by the byte comparison above"),
        Quality::Acceptable => Outcome::Correct,
        Quality::Unacceptable => Outcome::Sdc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemfi::{FaultLocation, Stage};
    use gemfi_isa::Trap;
    use gemfi_workloads::GuestWorkload;

    struct Threshold;
    impl Workload for Threshold {
        fn name(&self) -> &'static str {
            "threshold"
        }
        fn build(&self) -> GuestWorkload {
            unimplemented!("classification-only fake")
        }
        fn reference(&self) -> Vec<u8> {
            vec![10]
        }
        fn accept(&self, faulty: &[u8], golden: &[u8]) -> bool {
            !faulty.is_empty() && faulty[0].abs_diff(golden[0]) <= 3
        }
    }

    fn consumed_record() -> InjectionRecord {
        InjectionRecord {
            tick: 1,
            stage: Stage::Register,
            location: FaultLocation::IntReg { core: 0, reg: 1 },
            thread: 0,
            pc: 0,
            instr: None,
            before: 0,
            after: 1,
            consumed: true,
            overwritten: false,
        }
    }

    #[test]
    fn traps_and_hangs_are_crashes() {
        let w = Threshold;
        let g = w.reference();
        let trap = RunExit::Trapped(Trap::WatchdogTimeout);
        assert_eq!(classify(&w, &g, trap, &[], &[]), Outcome::Crashed);
        assert_eq!(classify(&w, &g, RunExit::Watchdog, &[], &[]), Outcome::Crashed);
        assert_eq!(classify(&w, &g, RunExit::Halted(1), &g, &[]), Outcome::Crashed);
    }

    #[test]
    fn sim_errors_are_infrastructure_not_crashes() {
        let w = Threshold;
        let g = w.reference();
        let exit = RunExit::SimError(gemfi_isa::SimError::new("o3", "broken invariant", 0x1000));
        assert_eq!(classify(&w, &g, exit, &[], &[]), Outcome::Infrastructure);
    }

    #[test]
    fn identical_output_splits_on_propagation() {
        let w = Threshold;
        let g = w.reference();
        assert_eq!(
            classify(&w, &g, RunExit::Halted(0), &g, &[]),
            Outcome::NonPropagated,
            "no fault fired"
        );
        let mut dead = consumed_record();
        dead.consumed = false;
        dead.overwritten = true;
        assert_eq!(
            classify(&w, &g, RunExit::Halted(0), &g, &[dead]),
            Outcome::NonPropagated,
            "overwritten before use"
        );
        assert_eq!(
            classify(&w, &g, RunExit::Halted(0), &g, &[consumed_record()]),
            Outcome::StrictlyCorrect,
            "consumed but masked"
        );
    }

    #[test]
    fn quality_gate_separates_correct_from_sdc() {
        let w = Threshold;
        let g = w.reference();
        let r = [consumed_record()];
        assert_eq!(classify(&w, &g, RunExit::Halted(0), &[12], &r), Outcome::Correct);
        assert_eq!(classify(&w, &g, RunExit::Halted(0), &[50], &r), Outcome::Sdc);
    }
}
