//! Chaos tests for the campaign server: every recovery path the networked
//! topology promises, exercised over real localhost sockets.
//!
//! - a worker killed mid-window (lease held) is reaped and its experiment
//!   retried, and a server killed mid-campaign restarts from the journal,
//!   re-offering only the remainder — with the final outcome table
//!   byte-identical to a single-host spool run of the same seed;
//! - a worker that loses the server mid-experiment (network partition)
//!   detects heartbeat loss, aborts its window, and the restarted campaign
//!   still converges to the spool baseline;
//! - adaptive sequential-sampling campaigns run over the socket backend and
//!   agree with the spool backend;
//! - the `STATUS` endpoint streams live per-queue and per-cell metrics.

use gemfi_campaign::wire::{read_line, write_line};
use gemfi_campaign::{
    prepare_workload, run_campaign_adaptive_now, run_campaign_now, run_socket_worker,
    AdaptiveConfig, CampaignServer, CellKind, ClientMsg, FaultSampler, NowConfig, QueueKind,
    QueueSpec, RunnerConfig, ServerConfig, WorkerOptions, PROTO_VERSION,
};
use gemfi_workloads::pi::MonteCarloPi;
use gemfi_workloads::Workload;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gemfi-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn pi_workload() -> MonteCarloPi {
    MonteCarloPi { points: 60, init_spins: 30, ..MonteCarloPi::default() }
}

fn resolver(workload: &str, scale: &str) -> Option<Box<dyn Workload>> {
    (workload == "pi" && scale == "test").then(|| Box::new(pi_workload()) as Box<dyn Workload>)
}

fn fast_server_config(share: &PathBuf) -> ServerConfig {
    ServerConfig {
        lease: Duration::from_millis(300),
        retry_backoff: Duration::from_millis(10),
        idle_backoff: Duration::from_millis(5),
        ..ServerConfig::new(share)
    }
}

fn fast_worker(name: &str) -> WorkerOptions {
    let mut opts = WorkerOptions::new(name);
    opts.connect_attempts = 4;
    opts.reconnect_delay = Duration::from_millis(5);
    opts
}

/// Scrapes the STATUS stream: Hello/Welcome handshake, then one line per
/// metrics object up to the `end` marker.
fn status_lines(addr: SocketAddr) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let hello = ClientMsg::Hello { worker: "probe".to_string(), proto: PROTO_VERSION };
    write_line(&mut stream, &hello.to_json()).unwrap();
    let welcome = read_line(&mut reader).unwrap().unwrap();
    assert!(welcome.contains("welcome"), "handshake reply: {welcome}");
    write_line(&mut stream, &ClientMsg::Status.to_json()).unwrap();
    let mut lines = Vec::new();
    loop {
        let line = read_line(&mut reader).unwrap().unwrap();
        let end = line.contains("\"end\"");
        lines.push(line);
        if end {
            return lines;
        }
    }
}

/// Crude flat-JSON field extraction for status assertions.
fn num_field(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat).unwrap() + pat.len()..];
    let end = rest.find([',', '}']).unwrap();
    rest[..end].parse().unwrap()
}

#[test]
fn killed_worker_and_restarted_server_match_the_spool_baseline() {
    let w = pi_workload();
    let prepared = prepare_workload(&w).unwrap();
    let mut sampler = FaultSampler::new(11, prepared.stage_events, 0, 0);
    let specs: Vec<_> = (0..6).map(|_| sampler.sample_any()).collect();
    let runner = RunnerConfig::default();

    // Single-host spool baseline of the same seed.
    let spool = scratch("kill-spool");
    let now_config = NowConfig::new(2, 1, &spool);
    let (baseline, baseline_completed, _) =
        run_campaign_now(&prepared, &w, &specs, &runner, &now_config).unwrap();

    // Phase 1: a worker that dies after its second claim, lease in hand.
    let share = scratch("kill-share");
    let queue = || QueueSpec {
        name: "pi-fixed".to_string(),
        priority: 1,
        quota: 0,
        workload: "pi".to_string(),
        scale: "test".to_string(),
        prepared: prepared.clone(),
        kind: QueueKind::FixedN { specs: specs.clone() },
    };
    let server1 = CampaignServer::start(fast_server_config(&share), vec![queue()]).unwrap();
    let addr1 = server1.addr();
    let doomed = std::thread::spawn(move || {
        let mut opts = fast_worker("doomed");
        opts.die_after_claims = Some(2);
        run_socket_worker(&addr1.to_string(), &resolver, &opts)
    });
    let death = doomed.join().unwrap();
    assert!(death.is_err(), "the doomed worker must die mid-campaign, got {death:?}");

    // Mid-campaign metrics: the queue is visibly incomplete and a lease is
    // still outstanding (the dead worker's orphan).
    let status = status_lines(addr1);
    let qline = status.iter().find(|l| l.contains("\"pi-fixed\"")).unwrap();
    assert!(num_field(qline, "terminal") < num_field(qline, "total"));
    assert_eq!(num_field(qline, "leased"), 1, "orphaned lease outstanding: {qline}");
    assert_eq!(num_field(qline, "done"), 0);

    // Phase 2: kill the server mid-campaign. Journal and lease files stay
    // on the share.
    let partial = server1.shutdown().unwrap();
    assert!(partial.queues[0].table.total() < specs.len() as u64);

    // Phase 3: restart on a fresh port with `resume`, finish with two new
    // workers.
    let config2 = ServerConfig { resume: true, ..fast_server_config(&share) };
    let server2 = CampaignServer::start(config2, vec![queue()]).unwrap();
    let addr2 = server2.addr();
    let workers: Vec<_> = ["w1", "w2"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                run_socket_worker(&addr2.to_string(), &resolver, &fast_worker(name))
            })
        })
        .collect();
    assert!(server2.wait_complete(Duration::from_secs(120)), "campaign must finish");
    for worker in workers {
        let report = worker.join().unwrap().unwrap();
        assert_eq!(report.failed, 0);
    }
    let report = server2.shutdown().unwrap();
    let q = &report.queues[0];

    // The restart replayed the journal (the dead worker's completed
    // experiment) and reaped its orphaned lease.
    assert!(q.resumed >= 1, "journal replay must supply the finished prefix");
    assert!(q.reclaimed >= 1, "the orphaned lease must be reaped");

    // Byte-identical outcome table and per-experiment outcomes vs the
    // spool run of the same seed.
    assert_eq!(q.table, baseline);
    let mut got: Vec<_> = q.completed.iter().map(|c| (c.exp, c.outcome)).collect();
    got.sort_unstable_by_key(|(exp, _)| *exp);
    let mut want: Vec<_> = baseline_completed.iter().map(|c| (c.exp, c.outcome)).collect();
    want.sort_unstable_by_key(|(exp, _)| *exp);
    assert_eq!(got, want);
}

#[test]
fn partitioned_worker_abandons_via_heartbeat_loss_and_the_campaign_recovers() {
    let w = MonteCarloPi { points: 4_000, init_spins: 200, ..MonteCarloPi::default() };
    let prepared = prepare_workload(&w).unwrap();
    let mut sampler = FaultSampler::new(23, prepared.stage_events, 0, 0);
    let specs: Vec<_> = (0..2).map(|_| sampler.sample_any()).collect();
    let runner = RunnerConfig::default();

    let spool = scratch("part-spool");
    let (baseline, _, _) =
        run_campaign_now(&prepared, &w, &specs, &runner, &NowConfig::new(1, 1, &spool)).unwrap();

    let resolve = move |workload: &str, scale: &str| -> Option<Box<dyn Workload>> {
        (workload == "pi" && scale == "test").then(|| Box::new(w) as Box<dyn Workload>)
    };
    let share = scratch("part-share");
    let queue = || QueueSpec {
        name: "pi-long".to_string(),
        priority: 1,
        quota: 0,
        workload: "pi".to_string(),
        scale: "test".to_string(),
        prepared: prepared.clone(),
        kind: QueueKind::FixedN { specs: specs.clone() },
    };
    let config = ServerConfig { lease: Duration::from_millis(150), ..fast_server_config(&share) };
    let server = CampaignServer::start(config, vec![queue()]).unwrap();
    let addr = server.addr();
    let stranded = std::thread::spawn(move || {
        let mut opts = fast_worker("stranded");
        // Poll the abort token often so heartbeat loss cuts the run fast.
        opts.runner = RunnerConfig { chunk: 2_000, ..RunnerConfig::default() };
        run_socket_worker(&addr.to_string(), &resolve, &opts)
    });

    // Wait until the worker holds a lease (it is mid-experiment), then
    // partition it by killing the server.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let status = status_lines(addr);
        let qline = status.iter().find(|l| l.contains("\"pi-long\"")).unwrap().clone();
        if num_field(&qline, "leased") >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "worker never claimed: {qline}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = server.shutdown().unwrap();

    // The stranded worker must notice the dead server (missed heartbeats
    // raise its abort token, reports cannot land) and give up with an
    // error rather than hanging.
    let stranded = stranded.join().unwrap();
    assert!(stranded.is_err(), "partitioned worker must surface the loss, got {stranded:?}");

    // Recovery: restart from the journal; a fresh worker finishes the
    // campaign and the abandoned experiment reruns cleanly.
    let config2 = ServerConfig { resume: true, ..fast_server_config(&share) };
    let server2 = CampaignServer::start(config2, vec![queue()]).unwrap();
    let addr2 = server2.addr();
    let finisher = std::thread::spawn(move || {
        run_socket_worker(&addr2.to_string(), &resolve, &fast_worker("finisher"))
    });
    assert!(server2.wait_complete(Duration::from_secs(120)));
    finisher.join().unwrap().unwrap();
    let report = server2.shutdown().unwrap();
    assert_eq!(report.queues[0].table, baseline);
}

#[test]
fn adaptive_campaign_over_the_socket_matches_the_spool_backend() {
    let w = pi_workload();
    let prepared = prepare_workload(&w).unwrap();
    let adaptive = AdaptiveConfig {
        min_n: 6,
        budget: 18,
        batch: 6,
        cells: vec![CellKind::parse("int-reg").unwrap(), CellKind::parse("pc").unwrap()],
        ..AdaptiveConfig::default()
    };
    let seed = 41;
    let runner = RunnerConfig::default();

    let spool = scratch("adapt-spool");
    let (spool_outcome, _) = run_campaign_adaptive_now(
        &prepared,
        &w,
        &runner,
        &NowConfig::new(2, 1, &spool),
        &adaptive,
        seed,
    )
    .unwrap();

    let share = scratch("adapt-share");
    let server = CampaignServer::start(
        fast_server_config(&share),
        vec![QueueSpec {
            name: "pi-adaptive".to_string(),
            priority: 1,
            quota: 0,
            workload: "pi".to_string(),
            scale: "test".to_string(),
            prepared: prepared.clone(),
            kind: QueueKind::Adaptive { config: adaptive.clone(), seed },
        }],
    )
    .unwrap();
    let addr = server.addr();
    let workers: Vec<_> = ["a1", "a2"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                run_socket_worker(&addr.to_string(), &resolver, &fast_worker(name))
            })
        })
        .collect();
    assert!(server.wait_complete(Duration::from_secs(120)));

    // The live STATUS stream carries the per-cell adaptive telemetry:
    // decision, sample counts, and Wilson-interval widths in ppm.
    let status = status_lines(addr);
    let cells: Vec<_> = status.iter().filter(|l| l.contains("\"status\":\"cell\"")).collect();
    assert_eq!(cells.len(), adaptive.cells.len(), "one cell line per cell: {status:?}");
    for cell in &cells {
        assert!(cell.contains("\"decision\""), "{cell}");
        assert!(num_field(cell, "drawn") >= num_field(cell, "n"));
    }
    let rates: Vec<_> = status.iter().filter(|l| l.contains("\"status\":\"rate\"")).collect();
    assert_eq!(rates.len(), adaptive.cells.len() * 5, "five outcome rates per cell");

    for worker in workers {
        worker.join().unwrap().unwrap();
    }
    let report = server.shutdown().unwrap();
    let socket_outcome = report.queues[0].adaptive.as_ref().expect("adaptive queue finished");

    // Same draw sequence, same per-experiment results: the two transports
    // must agree exactly.
    assert_eq!(socket_outcome.table, spool_outcome.table);
    assert_eq!(socket_outcome.experiments, spool_outcome.experiments);
    assert_eq!(socket_outcome.rounds, spool_outcome.rounds);
    for (a, b) in socket_outcome.cells.iter().zip(spool_outcome.cells.iter()) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.drawn, b.drawn);
        assert_eq!(a.stats.table(), b.stats.table());
    }
}
