//! The out-of-order (O3) CPU model.
//!
//! A speculative, register-renaming, reorder-buffer core in the spirit of
//! gem5's O3 model, with the properties the paper's methodology depends on:
//!
//! * instructions are fetched down **predicted** paths (tournament
//!   predictor + BTB + return-address stack) and execute **speculatively**
//!   out of order as operands become ready;
//! * a mispredicted branch **squashes** younger in-flight instructions —
//!   fault hooks fire for wrong-path instructions too, so an injected fault
//!   can land on an instruction that later squashes (an outcome class the
//!   paper explicitly observes);
//! * commit is **in-order and precise**: architectural state (including the
//!   PC) advances only at commit, traps are raised only when the faulting
//!   instruction reaches the commit head, and the campaign runner can
//!   switch CPU models at any commit boundary ("the simulation continues
//!   until the affected instruction commits or squashes");
//! * stores drain from a **store buffer** at commit; loads forward from
//!   older in-flight stores or wait on unresolved store addresses.

use crate::exec::{alu, cmov_cond, exec_latency, fp_cmov_cond, fpu, src_regs};
use crate::hooks::FaultHooks;
use crate::predictor::TournamentPredictor;
use crate::{StepEvent, StepResult};
use gemfi_isa::{ArchState, ExecError, Instr, JumpKind, Operand, RegRef, SimError, Trap};
use gemfi_kernel::{Kernel, PalOutcome};
use gemfi_mem::{MemorySystem, Ticks};
use std::collections::VecDeque;

/// Width/size parameters of the out-of-order engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct O3Config {
    /// Instructions fetched/dispatched per cycle.
    pub fetch_width: usize,
    /// Instructions issued to execution per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer capacity.
    pub rob_size: usize,
    /// Front-end refill delay after a squash, in ticks.
    pub mispredict_penalty: Ticks,
}

impl Default for O3Config {
    fn default() -> O3Config {
        O3Config {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            rob_size: 64,
            mispredict_penalty: 5,
        }
    }
}

/// Aggregate statistics of the out-of-order engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct O3Stats {
    /// Instructions committed.
    pub committed: u64,
    /// Speculative instructions squashed.
    pub squashed: u64,
    /// Pipeline flushes (mispredicts, serializing instructions, PC faults).
    pub squash_events: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Waiting for operands / not yet picked.
    Dispatched,
    /// Executing; completes at `done_at`.
    Issued,
    /// Result (or trap) available; eligible to commit in order.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct SrcOperand {
    /// Kept for debugging dumps of in-flight state.
    #[allow(dead_code)]
    reg: RegRef,
    /// Sequence number of the in-flight producer, if any.
    producer: Option<u64>,
    value: u64,
    ready: bool,
}

#[derive(Debug, Clone, Copy)]
struct MemAccess {
    is_store: bool,
    width: u64,
    /// Effective address, known after execute.
    addr: Option<u64>,
    /// Value to store (post-hook), captured at execute.
    store_val: u64,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    pc: u64,
    /// The PC fetch redirected to after this instruction.
    predicted_next: u64,
    /// Resolved next PC (valid once `Done`).
    actual_next: u64,
    instr: Option<Instr>,
    trap: Option<Trap>,
    state: EntryState,
    srcs: [Option<SrcOperand>; 3],
    dst: Option<RegRef>,
    result: u64,
    done_at: Ticks,
    /// Serializing instruction (PAL call / GemFI pseudo-op): executes its
    /// effect at the commit head and flushes younger instructions.
    serialize: bool,
    mem: Option<MemAccess>,
    predicted_taken: bool,
}

/// The out-of-order CPU.
#[derive(Debug, Clone)]
pub struct O3Cpu {
    config: O3Config,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    fetch_pc: u64,
    fetch_ready_at: Ticks,
    /// Fetch parked until a redirect (post-serialize or fetch fault).
    fetch_parked: bool,
    predictor: TournamentPredictor,
    /// Rename table: most recent in-flight producer of each register.
    rename_int: [Option<u64>; 32],
    rename_fp: [Option<u64>; 32],
    stats: O3Stats,
}

impl O3Cpu {
    /// A fresh core that will start fetching at `entry_pc`.
    pub fn new(config: O3Config, entry_pc: u64) -> O3Cpu {
        O3Cpu {
            config,
            rob: VecDeque::with_capacity(config.rob_size),
            next_seq: 0,
            fetch_pc: entry_pc,
            fetch_ready_at: 0,
            fetch_parked: false,
            predictor: TournamentPredictor::new(),
            rename_int: [None; 32],
            rename_fp: [None; 32],
            stats: O3Stats::default(),
        }
    }

    /// Engine statistics.
    pub fn stats(&self) -> &O3Stats {
        &self.stats
    }

    /// The branch predictor (stats inspection).
    pub fn predictor(&self) -> &TournamentPredictor {
        &self.predictor
    }

    /// Number of in-flight (uncommitted) instructions.
    pub fn in_flight(&self) -> usize {
        self.rob.len()
    }

    /// Discards all speculative state and restarts fetch at the committed
    /// PC. Used by the machine before delivering a timer interrupt and when
    /// switching CPU models.
    pub fn flush(&mut self, arch: &ArchState) {
        self.stats.squashed += self.rob.len() as u64;
        if !self.rob.is_empty() {
            self.stats.squash_events += 1;
        }
        self.rob.clear();
        self.rename_int = [None; 32];
        self.rename_fp = [None; 32];
        self.fetch_pc = arch.pc;
        self.fetch_parked = false;
    }

    fn rename_lookup(&self, reg: RegRef) -> Option<u64> {
        match reg {
            RegRef::Int(r) => self.rename_int[r.index()],
            RegRef::Fp(r) => self.rename_fp[r.index()],
            RegRef::Special(_) => None,
        }
    }

    fn rename_set(&mut self, reg: RegRef, seq: u64) {
        match reg {
            RegRef::Int(r) if !r.is_zero() => self.rename_int[r.index()] = Some(seq),
            RegRef::Fp(r) if !r.is_zero() => self.rename_fp[r.index()] = Some(seq),
            _ => {}
        }
    }

    /// Index of the entry with sequence number `seq`. A linear scan: the ROB
    /// is small and sequence numbers are *not* contiguous after a squash
    /// (`next_seq` is never rolled back).
    fn entry_index(&self, seq: u64) -> Option<usize> {
        self.rob.iter().position(|e| e.seq == seq)
    }

    /// Kills every entry younger than `seq` and rebuilds the rename table.
    fn squash_after(&mut self, seq: u64, redirect: u64, now: Ticks) {
        let keep = match self.entry_index(seq) {
            Some(i) => i + 1,
            None => 0,
        };
        let killed = self.rob.len().saturating_sub(keep);
        self.rob.truncate(keep);
        self.stats.squashed += killed as u64;
        self.stats.squash_events += 1;
        self.rename_int = [None; 32];
        self.rename_fp = [None; 32];
        for i in 0..self.rob.len() {
            if let Some(d) = self.rob[i].dst {
                let s = self.rob[i].seq;
                self.rename_set(d, s);
            }
        }
        self.fetch_pc = redirect;
        self.fetch_parked = false;
        self.fetch_ready_at = now + self.config.mispredict_penalty;
    }

    /// Broadcasts a completed result to waiting consumers.
    fn wakeup(&mut self, seq: u64, value: u64) {
        for e in &mut self.rob {
            for s in e.srcs.iter_mut().flatten() {
                if s.producer == Some(seq) {
                    s.value = value;
                    s.ready = true;
                }
            }
        }
    }

    // --------------------------------------------------------------- fetch

    /// Fetches, decodes, renames and dispatches one instruction. `Ok(false)`
    /// means the front-end stalled this cycle.
    ///
    /// # Errors
    ///
    /// [`SimError`] when the rename table names a producer that is not in
    /// the ROB (a broken internal invariant, never a guest outcome).
    fn dispatch_one<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &ArchState,
        mem: &mut MemorySystem,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<bool, SimError> {
        if self.rob.len() >= self.config.rob_size || self.fetch_parked {
            return Ok(false);
        }
        let pc = self.fetch_pc;
        let seq = self.next_seq;

        let (instr, fetch_lat) = match crate::exec::fetch_decode(core, mem, hooks, pc) {
            Ok(v) => v,
            Err(t) => {
                // Possibly a wrong-path fetch (unmapped PC) or a word that
                // does not decode: park fetch and let the trap become
                // precise at commit (or be squashed away).
                let next = if matches!(t, Trap::IllegalInstruction { .. }) {
                    pc.wrapping_add(4)
                } else {
                    pc
                };
                self.rob.push_back(RobEntry {
                    seq,
                    pc,
                    predicted_next: next,
                    actual_next: next,
                    instr: None,
                    trap: Some(t),
                    state: EntryState::Done,
                    srcs: [None, None, None],
                    dst: None,
                    result: 0,
                    done_at: now,
                    serialize: false,
                    mem: None,
                    predicted_taken: false,
                });
                self.next_seq += 1;
                self.fetch_parked = true;
                return Ok(false);
            }
        };
        if fetch_lat > mem.config().l1i.hit_latency {
            self.fetch_ready_at = now + fetch_lat;
        }

        // An instruction-skip fault nullifies the fetched instruction: it
        // occupies a ROB slot (and commits, advancing per-thread counters)
        // but executes nothing. Checked before the serialize split so a
        // skipped PAL call really is skipped. A skip armed by a wrong-path
        // fetch is consumed here and squashed away — harmless, exactly like
        // any other fault on a squashed instruction.
        if hooks.take_skip(core) {
            self.rob.push_back(RobEntry {
                seq,
                pc,
                predicted_next: pc.wrapping_add(4),
                actual_next: pc.wrapping_add(4),
                instr: Some(instr),
                trap: None,
                state: EntryState::Done,
                srcs: [None, None, None],
                dst: None,
                result: 0,
                done_at: now,
                serialize: false,
                mem: None,
                predicted_taken: false,
            });
            self.next_seq += 1;
            self.fetch_pc = pc.wrapping_add(4);
            return Ok(true);
        }

        let mut entry = RobEntry {
            seq,
            pc,
            predicted_next: pc.wrapping_add(4),
            actual_next: pc.wrapping_add(4),
            instr: Some(instr),
            trap: None,
            state: EntryState::Dispatched,
            srcs: [None, None, None],
            dst: None,
            result: 0,
            done_at: now,
            serialize: false,
            mem: None,
            predicted_taken: false,
        };

        // Serializing instructions execute at the commit head.
        if matches!(instr, Instr::CallPal { .. } | Instr::FiActivate { .. } | Instr::FiReadInit) {
            entry.serialize = true;
            entry.state = EntryState::Done;
            self.rob.push_back(entry);
            self.next_seq += 1;
            self.fetch_parked = true; // resume at the post-commit PC
            return Ok(false);
        }

        // Capture operands through the rename table. A producer that has
        // already completed (but not committed) supplies its result
        // directly — it will never broadcast again. Operands with no
        // in-flight producer read the *architectural* register file here at
        // dispatch: that is the moment a register-file fault is consumed,
        // so the read hook fires now (forwarded operands never touch the
        // register file and must not count as consumption).
        let srcs = src_regs(&instr);
        for (slot, reg) in entry.srcs.iter_mut().zip(srcs) {
            if let Some(reg) = reg {
                let producer = self.rename_lookup(reg);
                let (value, ready) = match (producer, reg) {
                    (Some(seq), _) => {
                        let idx = self.entry_index(seq).ok_or_else(|| {
                            SimError::new("o3", "renamed producer present in ROB", pc)
                        })?;
                        if self.rob[idx].state == EntryState::Done {
                            (self.rob[idx].result, true)
                        } else {
                            (0, false)
                        }
                    }
                    (None, RegRef::Int(r)) => {
                        hooks.on_reg_read(core, reg);
                        (arch.regs.read_int(r), true)
                    }
                    (None, RegRef::Fp(r)) => {
                        hooks.on_reg_read(core, reg);
                        (arch.regs.read_fp_bits(r), true)
                    }
                    (None, RegRef::Special(s)) => {
                        hooks.on_reg_read(core, reg);
                        (arch.read_special(s), true)
                    }
                };
                *slot = Some(SrcOperand { reg, producer, value, ready });
            }
        }
        entry.dst = crate::exec::dst_reg(&instr);

        if let Instr::Mem { op, .. } = instr {
            entry.mem = Some(MemAccess {
                is_store: op.is_store(),
                width: op.width(),
                addr: None,
                store_val: 0,
            });
        } else if matches!(instr, Instr::Ldt { .. }) {
            entry.mem = Some(MemAccess { is_store: false, width: 8, addr: None, store_val: 0 });
        } else if matches!(instr, Instr::Stt { .. }) {
            entry.mem = Some(MemAccess { is_store: true, width: 8, addr: None, store_val: 0 });
        }

        // Front-end next-PC selection.
        let next = match instr {
            Instr::Br { disp, .. } => pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2),
            Instr::Bsr { disp, .. } => {
                self.predictor.push_return(pc.wrapping_add(4));
                pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2)
            }
            Instr::CondBr { disp, .. } | Instr::FpCondBr { disp, .. } => {
                let taken = self.predictor.predict_direction(pc);
                entry.predicted_taken = taken;
                if taken {
                    pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2)
                } else {
                    pc.wrapping_add(4)
                }
            }
            Instr::Jump { kind, .. } => {
                if kind == JumpKind::Jsr {
                    self.predictor.push_return(pc.wrapping_add(4));
                }
                let guess = if kind == JumpKind::Ret {
                    self.predictor.pop_return()
                } else {
                    self.predictor.predict_target(pc)
                };
                guess.unwrap_or_else(|| pc.wrapping_add(4))
            }
            _ => pc.wrapping_add(4),
        };
        entry.predicted_next = next;

        if let Some(d) = entry.dst {
            self.rename_set(d, seq);
        }
        self.rob.push_back(entry);
        self.next_seq += 1;
        self.fetch_pc = next;
        Ok(true)
    }

    // ------------------------------------------------------------- execute

    /// Whether a load at `idx` may proceed given older stores, and the
    /// forwarded value, if any. `Err(())` means it must wait.
    fn load_check(&self, idx: usize, addr: u64, width: u64) -> Result<Option<u64>, ()> {
        for j in (0..idx).rev() {
            let e = &self.rob[j];
            let Some(m) = e.mem else { continue };
            if !m.is_store {
                continue;
            }
            match m.addr {
                // Older store address unknown: conservative wait.
                None => return Err(()),
                Some(sa) => {
                    // Widen to u128: a fault-corrupted base register can put
                    // `addr` (or `sa`) near u64::MAX, where `addr + width`
                    // would overflow and abort a debug build.
                    let overlap = (sa as u128) < addr as u128 + width as u128
                        && (addr as u128) < sa as u128 + m.width as u128;
                    if !overlap {
                        continue;
                    }
                    if sa == addr && m.width == width && e.state == EntryState::Done {
                        return Ok(Some(m.store_val));
                    }
                    // Partial overlap or store not finished: wait until the
                    // store commits (it will leave the ROB).
                    return Err(());
                }
            }
        }
        Ok(None)
    }

    /// Executes the dispatched entry at `idx`. `Ok(false)` means it could
    /// not issue this cycle (e.g. a load waiting on an older store).
    ///
    /// # Errors
    ///
    /// [`SimError`] when the entry violates pipeline bookkeeping invariants
    /// (undecoded, missing memory state, or a serializer reaching execute).
    fn execute_entry<H: FaultHooks>(
        &mut self,
        idx: usize,
        core: usize,
        mem: &mut MemorySystem,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<bool, SimError> {
        let e = self.rob[idx].clone();
        let Some(instr) = e.instr else {
            return Err(SimError::new("o3", "dispatched entries are decoded", e.pc));
        };
        let src = |n: usize| e.srcs[n].map(|s| s.value).unwrap_or(0);

        let mut result = 0u64;
        let mut actual_next = e.pc.wrapping_add(4);
        let mut lat = exec_latency(&instr);
        let mut trap = None;
        let mut mem_state = e.mem;

        match instr {
            Instr::Lda { disp, .. } => {
                result =
                    hooks.on_execute_result(core, &instr, src(0).wrapping_add(disp as i64 as u64));
            }
            Instr::Ldah { disp, .. } => {
                result = hooks.on_execute_result(
                    core,
                    &instr,
                    src(0).wrapping_add((disp as i64 as u64) << 16),
                );
            }
            Instr::IntOp { func, rb, .. } => {
                let a = src(0);
                let b = match rb {
                    Operand::Reg(_) => src(1),
                    Operand::Lit(v) => v as u64,
                };
                result = match cmov_cond(func, a) {
                    Some(cond) => {
                        let moved = hooks.on_execute_result(core, &instr, b);
                        if cond {
                            moved
                        } else {
                            src(2) // keep old destination value
                        }
                    }
                    None => hooks.on_execute_result(core, &instr, alu(func, a, b)),
                };
            }
            Instr::FpOp { func, .. } => {
                let a = src(0);
                let b = src(1);
                result = match fp_cmov_cond(func, a) {
                    Some(cond) => {
                        let moved = hooks.on_execute_result(core, &instr, b);
                        if cond {
                            moved
                        } else {
                            src(2)
                        }
                    }
                    None => hooks.on_execute_result(core, &instr, fpu(func, a, b)),
                };
            }
            Instr::Itoft { .. } | Instr::Ftoit { .. } => {
                result = hooks.on_execute_result(core, &instr, src(0));
            }
            Instr::Br { .. } | Instr::Bsr { .. } => {
                // Target already selected at fetch (always correct); the
                // result is the link value.
                actual_next = e.predicted_next;
                result = e.pc.wrapping_add(4);
            }
            Instr::Jump { .. } => {
                let target = hooks.on_execute_result(core, &instr, src(0) & !3);
                actual_next = target;
                result = e.pc.wrapping_add(4);
            }
            Instr::CondBr { cond, disp, .. } => {
                // Branch inversion hooks in at resolution; the predictor
                // trains on the post-inversion (architecturally committed)
                // direction.
                let taken = hooks.on_branch(core, &instr, cond.eval(src(0)));
                let target = if taken {
                    e.pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2)
                } else {
                    e.pc.wrapping_add(4)
                };
                actual_next = hooks.on_execute_result(core, &instr, target);
                self.predictor.update_direction(e.pc, taken, e.predicted_taken);
            }
            Instr::FpCondBr { cond, disp, .. } => {
                let taken = hooks.on_branch(core, &instr, cond.eval(src(0)));
                let target = if taken {
                    e.pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2)
                } else {
                    e.pc.wrapping_add(4)
                };
                actual_next = hooks.on_execute_result(core, &instr, target);
                self.predictor.update_direction(e.pc, taken, e.predicted_taken);
            }
            Instr::Mem { op, disp, .. } => {
                let addr =
                    hooks.on_execute_result(core, &instr, src(0).wrapping_add(disp as i64 as u64));
                let Some(m) = mem_state.as_mut() else {
                    return Err(SimError::new("o3", "memory entries carry mem state", e.pc));
                };
                m.addr = Some(addr);
                if op.is_store() {
                    m.store_val = hooks.on_mem_store(core, addr, src(1));
                    // Address generation only; data drains at commit.
                } else {
                    match self.load_check(idx, addr, m.width) {
                        Err(()) => return Ok(false), // retry next cycle
                        Ok(Some(fwd)) => {
                            let v =
                                if m.width == 4 { (fwd as u32) as i32 as i64 as u64 } else { fwd };
                            result = hooks.on_mem_load(core, addr, v);
                            lat = 1; // store-buffer forward
                        }
                        Ok(None) => {
                            let r = if m.width == 4 {
                                mem.read_u32(addr, e.pc).map(|(v, l)| (v as i32 as i64 as u64, l))
                            } else {
                                mem.read_u64(addr, e.pc)
                            };
                            match r {
                                Ok((v, l)) => {
                                    result = hooks.on_mem_load(core, addr, v);
                                    lat = l;
                                }
                                Err(t) => trap = Some(t), // precise at commit
                            }
                        }
                    }
                }
            }
            Instr::Ldt { disp, .. } => {
                let addr =
                    hooks.on_execute_result(core, &instr, src(0).wrapping_add(disp as i64 as u64));
                let Some(m) = mem_state.as_mut() else {
                    return Err(SimError::new("o3", "memory entries carry mem state", e.pc));
                };
                m.addr = Some(addr);
                match self.load_check(idx, addr, 8) {
                    Err(()) => return Ok(false),
                    Ok(Some(fwd)) => {
                        result = hooks.on_mem_load(core, addr, fwd);
                        lat = 1;
                    }
                    Ok(None) => match mem.read_u64(addr, e.pc) {
                        Ok((v, l)) => {
                            result = hooks.on_mem_load(core, addr, v);
                            lat = l;
                        }
                        Err(t) => trap = Some(t),
                    },
                }
            }
            Instr::Stt { disp, .. } => {
                let addr =
                    hooks.on_execute_result(core, &instr, src(0).wrapping_add(disp as i64 as u64));
                let Some(m) = mem_state.as_mut() else {
                    return Err(SimError::new("o3", "memory entries carry mem state", e.pc));
                };
                m.addr = Some(addr);
                m.store_val = hooks.on_mem_store(core, addr, src(1));
            }
            Instr::CallPal { .. } | Instr::FiActivate { .. } | Instr::FiReadInit => {
                return Err(SimError::new("o3", "serializers never reach execute", e.pc));
            }
        }

        let entry = &mut self.rob[idx];
        entry.state = EntryState::Issued;
        entry.done_at = now + lat;
        entry.result = result;
        entry.actual_next = actual_next;
        entry.trap = trap;
        entry.mem = mem_state;
        Ok(true)
    }

    // -------------------------------------------------------------- commit

    #[allow(clippy::too_many_arguments)]
    fn commit_head<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        hooks: &mut H,
        now: Ticks,
        event: &mut StepEvent,
    ) -> Result<bool, ExecError> {
        let Some(head) = self.rob.front() else { return Ok(false) };
        if head.state != EntryState::Done {
            return Ok(false);
        }
        // Register/PC fault window at the committed-instruction boundary
        // (the head is about to commit; faults land before its effects).
        let pc_before = arch.pc;
        hooks.before_instruction(core, now, arch);
        if arch.pc != pc_before {
            // A PC fault redirected control: flush and refetch.
            self.flush(arch);
            self.fetch_ready_at = now + self.config.mispredict_penalty;
            return Ok(false);
        }
        // The head's presence was checked above and nothing in between can
        // shrink the ROB; an empty queue here is just "nothing to commit".
        let Some(e) = self.rob.pop_front() else { return Ok(false) };
        if e.pc != arch.pc {
            // A committing entry off the architectural path is a renaming /
            // squash bookkeeping bug, not a guest outcome: report it as an
            // infrastructure error instead of corrupting the run silently.
            return Err(
                SimError::new("o3", "commit head on the architectural path", arch.pc).into()
            );
        }

        if let Some(t) = e.trap {
            arch.exc_addr = e.pc;
            return Err(t.into());
        }

        if e.serialize {
            let Some(instr) = e.instr else {
                return Err(SimError::new("o3", "serializing entries are decoded", e.pc).into());
            };
            match instr {
                Instr::CallPal { func } => {
                    let old_pcbb = arch.pcbb;
                    arch.pc = e.pc.wrapping_add(4);
                    match kernel.pal_call(func, arch, mem, now)? {
                        PalOutcome::Continue => {}
                        PalOutcome::Switched => {
                            if arch.pcbb != old_pcbb {
                                hooks.on_context_switch(core, arch.pcbb);
                            }
                        }
                        PalOutcome::AllExited(code) => *event = StepEvent::Halted(code),
                        PalOutcome::Halt => *event = StepEvent::Halted(0),
                    }
                }
                Instr::FiActivate { id } => {
                    arch.pc = e.pc.wrapping_add(4);
                    hooks.on_fi_activate(core, now, id, arch.pcbb);
                }
                Instr::FiReadInit => {
                    arch.pc = e.pc.wrapping_add(4);
                    *event = StepEvent::CheckpointRequest;
                }
                _ => {
                    return Err(
                        SimError::new("o3", "only serializers are marked serialize", e.pc).into()
                    );
                }
            }
            hooks.on_commit(core, now, e.pc, &instr);
            self.stats.committed += 1;
            // The serializer may have changed anything: restart the
            // front-end from the architectural PC.
            self.flush(arch);
            return Ok(true);
        }

        let Some(instr) = e.instr else {
            return Err(SimError::new("o3", "committing entries are decoded", e.pc).into());
        };

        // Stores drain to memory at commit (store buffer semantics).
        if let Some(m) = e.mem {
            if m.is_store {
                let Some(addr) = m.addr else {
                    return Err(SimError::new(
                        "o3",
                        "stores resolve their address before commit",
                        e.pc,
                    )
                    .into());
                };
                let r = if m.width == 4 {
                    mem.write_u32(addr, m.store_val as u32, e.pc).map(|_| ())
                } else {
                    mem.write_u64(addr, m.store_val, e.pc).map(|_| ())
                };
                if let Err(t) = r {
                    arch.exc_addr = e.pc;
                    return Err(t.into());
                }
            }
        }

        if let Some(d) = e.dst {
            match d {
                RegRef::Int(r) => arch.regs.write_int(r, e.result),
                RegRef::Fp(r) => arch.regs.write_fp_bits(r, e.result),
                RegRef::Special(s) => arch.write_special(s, e.result),
            }
            hooks.on_reg_write(core, d);
            // Retire from the rename table if this entry is still the
            // youngest producer.
            if self.rename_lookup(d) == Some(e.seq) {
                match d {
                    RegRef::Int(r) => self.rename_int[r.index()] = None,
                    RegRef::Fp(r) => self.rename_fp[r.index()] = None,
                    RegRef::Special(_) => {}
                }
            }
        }

        arch.pc = e.actual_next;
        hooks.on_commit(core, now, e.pc, &instr);
        self.stats.committed += 1;
        Ok(true)
    }

    /// Advances the engine by one cycle (one tick).
    ///
    /// # Errors
    ///
    /// [`ExecError::Trap`] when a faulting instruction reaches the commit
    /// head (traps are precise); [`ExecError::Sim`] when pipeline
    /// bookkeeping breaks an internal invariant (a simulator bug — the
    /// campaign classifies it as infrastructure, never a guest outcome).
    pub fn step<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<StepResult, ExecError> {
        let mut event = StepEvent::None;
        let mut committed = 0;

        // 1. Commit.
        for _ in 0..self.config.commit_width {
            if !self.commit_head(core, arch, mem, kernel, hooks, now, &mut event)? {
                break;
            }
            committed += 1;
            if event != StepEvent::None {
                break;
            }
        }
        if event != StepEvent::None {
            crate::exec::drain_lesions(hooks, mem);
            return Ok(StepResult { ticks: 1, committed, event });
        }

        // 2. Writeback/complete + branch resolution (oldest first).
        let mut i = 0;
        while i < self.rob.len() {
            if self.rob[i].state == EntryState::Issued && self.rob[i].done_at <= now {
                self.rob[i].state = EntryState::Done;
                let seq = self.rob[i].seq;
                let result = self.rob[i].result;
                if self.rob[i].dst.is_some() {
                    self.wakeup(seq, result);
                }
                // Control misprediction?
                let mispredicted = self.rob[i].actual_next != self.rob[i].predicted_next
                    && self.rob[i].instr.map(|ins| ins.is_control()).unwrap_or(false);
                if mispredicted {
                    let redirect = self.rob[i].actual_next;
                    let pc = self.rob[i].pc;
                    self.predictor.update_target(pc, redirect);
                    self.squash_after(seq, redirect, now);
                    // Everything younger is gone; stop scanning.
                    break;
                }
            }
            i += 1;
        }

        // 3. Issue.
        let mut issued = 0;
        let mut idx = 0;
        while idx < self.rob.len() && issued < self.config.issue_width {
            if self.rob[idx].state == EntryState::Dispatched
                && self.rob[idx].srcs.iter().flatten().all(|s| s.ready)
                && self.execute_entry(idx, core, mem, hooks, now)?
            {
                issued += 1;
            }
            idx += 1;
        }

        // 4. Fetch/dispatch.
        if self.fetch_ready_at <= now {
            for _ in 0..self.config.fetch_width {
                if !self.dispatch_one(core, arch, mem, hooks, now)? {
                    break;
                }
            }
        }

        // Cache lesions fired this cycle become visible at the cycle
        // boundary (the O3 instruction-boundary analogue).
        crate::exec::drain_lesions(hooks, mem);

        Ok(StepResult { ticks: 1, committed, event })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHooks;
    use gemfi_asm::{Assembler, FReg, Reg};
    use gemfi_mem::MemConfig;

    fn boot(program: &gemfi_asm::Program) -> (ArchState, MemorySystem, Kernel) {
        let mut mem = MemorySystem::new(MemConfig { phys_size: 8 << 20, ..MemConfig::default() });
        let mut text = Vec::new();
        for w in program.text_words() {
            text.extend_from_slice(&w.to_le_bytes());
        }
        mem.write_slice(gemfi_asm::TEXT_BASE, &text).unwrap();
        mem.write_slice(program.data_base(), program.data_bytes()).unwrap();
        let mut arch = ArchState::default();
        let kernel =
            Kernel::boot(&mut arch, &mut mem, program.entry(), program.image_end(), 0).unwrap();
        (arch, mem, kernel)
    }

    /// Runs to halt, or reports a watchdog-style `Trap::WatchdogTimeout`
    /// when the cycle budget runs out — a hung drain is an outcome
    /// (Crashed), never a panic.
    fn try_run_o3(
        p: &gemfi_asm::Program,
        max_cycles: u64,
    ) -> Result<(u64, O3Stats, Vec<u64>), ExecError> {
        let (mut arch, mut mem, mut kernel) = boot(p);
        let mut cpu = O3Cpu::new(O3Config::default(), arch.pc);
        let mut now = 0;
        for _ in 0..max_cycles {
            let r = cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, now)?;
            now += r.ticks;
            if let StepEvent::Halted(code) = r.event {
                return Ok((code, *cpu.stats(), kernel.out_words().to_vec()));
            }
        }
        Err(ExecError::Trap(Trap::WatchdogTimeout))
    }

    fn run_o3(p: &gemfi_asm::Program, max_cycles: u64) -> (u64, O3Stats, Vec<u64>) {
        try_run_o3(p, max_cycles).expect("program halts cleanly")
    }

    fn sum_loop() -> gemfi_asm::Program {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0);
        a.li(Reg::R2, 1);
        a.li(Reg::R3, 200);
        a.label("loop");
        a.addq(Reg::R1, Reg::R2, Reg::R1);
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.cmple(Reg::R2, Reg::R3, Reg::R4);
        a.bne(Reg::R4, "loop");
        a.mov(Reg::R1, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        a.finish().unwrap()
    }

    #[test]
    fn hung_drain_reports_watchdog_timeout_not_panic() {
        let mut a = Assembler::new();
        a.label("spin");
        a.br("spin");
        let p = a.finish().unwrap();
        let err = try_run_o3(&p, 2_000).unwrap_err();
        assert_eq!(err, ExecError::Trap(Trap::WatchdogTimeout));
    }

    #[test]
    fn o3_computes_the_same_answer_as_atomic() {
        let p = sum_loop();
        let (code, stats, _) = run_o3(&p, 1_000_000);
        assert_eq!(code, 20100);
        assert!(stats.committed > 600);
    }

    #[test]
    fn o3_squashes_wrong_path_work() {
        // A data-dependent unpredictable branch pattern forces mispredicts.
        let mut a = Assembler::new();
        a.li(Reg::R1, 0); // i
        a.li(Reg::R2, 0); // acc
        a.li(Reg::R5, 0x9E3779B9); // LCG-ish multiplier
        a.li(Reg::R6, 12345);
        a.li(Reg::R7, 1); // rng state
        a.label("loop");
        a.mulq(Reg::R7, Reg::R5, Reg::R7);
        a.addq(Reg::R7, Reg::R6, Reg::R7);
        a.srl_lit(Reg::R7, 13, Reg::R8);
        a.and_lit(Reg::R8, 1, Reg::R8);
        a.beq(Reg::R8, "skip");
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.label("skip");
        a.addq_lit(Reg::R1, 1, Reg::R1);
        a.cmplt(Reg::R1, Reg::R3, Reg::R4);
        a.li(Reg::R3, 500);
        a.cmplt(Reg::R1, Reg::R3, Reg::R4);
        a.bne(Reg::R4, "loop");
        a.mov(Reg::R2, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (_, stats, _) = run_o3(&p, 1_000_000);
        assert!(stats.squashed > 0, "unpredictable branches must squash work");
        assert!(stats.squash_events > 10);
    }

    #[test]
    fn o3_store_load_forwarding_is_correct() {
        let mut a = Assembler::new();
        a.dsym("buf");
        a.data_u64(&[0, 0]);
        a.la(Reg::R1, "buf");
        a.li(Reg::R2, 77);
        a.stq(Reg::R2, 0, Reg::R1); // store
        a.ldq(Reg::R3, 0, Reg::R1); // immediately load it back
        a.addq_lit(Reg::R3, 1, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (code, _, _) = run_o3(&p, 100_000);
        assert_eq!(code, 78);
    }

    #[test]
    fn o3_fp_pipeline_works() {
        let mut a = Assembler::new();
        a.lif(FReg::F1, 0.5, Reg::R9);
        a.lif(FReg::F2, 8.0, Reg::R9);
        a.mult(FReg::F1, FReg::F2, FReg::F3); // 4.0
        a.sqrtt(FReg::F3, FReg::F4); // 2.0
        a.cvttq(FReg::F4, FReg::F5);
        a.ftoit(FReg::F5, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (code, _, _) = run_o3(&p, 100_000);
        assert_eq!(code, 2);
    }

    #[test]
    fn o3_precise_trap_on_true_path_only() {
        // A branch guards a wild load; the wrong path may *speculatively*
        // touch the wild address but must not crash the machine.
        let mut a = Assembler::new();
        a.li(Reg::R1, 1); // condition: taken → skip the wild load
        a.li(Reg::R2, 0x7fff_fff8); // unmapped in an 8 MiB machine
        a.bne(Reg::R1, "safe");
        a.ldq(Reg::R3, 0, Reg::R2); // wrong path
        a.label("safe");
        a.li(Reg::A0, 9);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (code, _, _) = run_o3(&p, 100_000);
        assert_eq!(code, 9);
    }

    #[test]
    fn o3_true_path_trap_is_raised() {
        let mut a = Assembler::new();
        a.li(Reg::R2, 0x7fff_fff8);
        a.ldq(Reg::R3, 0, Reg::R2);
        a.exit(0);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut cpu = O3Cpu::new(O3Config::default(), arch.pc);
        let mut now = 0;
        let mut trapped = false;
        for _ in 0..10_000 {
            match cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, now) {
                Ok(r) => now += r.ticks,
                Err(t) => {
                    assert!(matches!(t, ExecError::Trap(Trap::UnmappedAccess { .. })));
                    trapped = true;
                    break;
                }
            }
        }
        assert!(trapped);
    }

    #[test]
    fn o3_ipc_exceeds_inorder_on_ilp_code() {
        // Independent operations expose instruction-level parallelism.
        let mut a = Assembler::new();
        a.li(Reg::R1, 1);
        a.li(Reg::R2, 2);
        a.li(Reg::R3, 3);
        a.li(Reg::R4, 4);
        a.li(Reg::R9, 0);
        a.li(Reg::R10, 2000);
        a.label("loop");
        for _ in 0..4 {
            a.addq(Reg::R1, Reg::R2, Reg::R5);
            a.addq(Reg::R3, Reg::R4, Reg::R6);
            a.addq(Reg::R1, Reg::R3, Reg::R7);
            a.addq(Reg::R2, Reg::R4, Reg::R8);
        }
        a.addq_lit(Reg::R9, 1, Reg::R9);
        a.cmplt(Reg::R9, Reg::R10, Reg::R11);
        a.bne(Reg::R11, "loop");
        a.exit(0);
        let p = a.finish().unwrap();

        // O3 cycles:
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut cpu = O3Cpu::new(O3Config::default(), arch.pc);
        let mut o3_cycles = 0u64;
        loop {
            let r =
                cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, o3_cycles).unwrap();
            o3_cycles += 1;
            if matches!(r.event, StepEvent::Halted(_)) {
                break;
            }
        }
        let o3_committed = cpu.stats().committed;

        // In-order ticks:
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut io = crate::inorder::InOrderCpu::new();
        let mut io_ticks = 0u64;
        loop {
            let r = io.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, io_ticks).unwrap();
            io_ticks += r.ticks;
            if matches!(r.event, StepEvent::Halted(_)) {
                break;
            }
        }
        let o3_ipc = o3_committed as f64 / o3_cycles as f64;
        let io_ipc = o3_committed as f64 / io_ticks as f64;
        assert!(
            o3_ipc > io_ipc,
            "O3 IPC {o3_ipc:.2} should beat in-order IPC {io_ipc:.2} on ILP code"
        );
        assert!(o3_ipc > 1.0, "O3 must exceed 1 IPC on independent ops, got {o3_ipc:.2}");
    }
}
