//! CPU models for the `ghost5` simulator.
//!
//! gem5 ships four CPU models trading speed against fidelity; this crate
//! reproduces that spectrum:
//!
//! * [`AtomicCpu`] — one instruction per tick, no memory timing (gem5's
//!   *Atomic Simple*). Used to fast-forward after a fault commits.
//! * [`TimingCpu`] — functional execution plus memory-reference timing
//!   (gem5's *Timing Simple*).
//! * [`InOrderCpu`] — a pipelined in-order core: icache/dcache stalls,
//!   load-use interlock, and a tournament branch predictor with a
//!   mispredict penalty.
//! * [`O3Cpu`] — a pipelined out-of-order core with a reorder buffer,
//!   renaming, speculative execution down predicted paths, a store buffer,
//!   and precise squash/commit — the model the paper performs injection in
//!   ("we restore from the checkpoint, start simulating in O3 mode and
//!   inject the fault. The simulation continues until the affected
//!   instruction commits or squashes").
//!
//! Every model drives the same [`FaultHooks`] surface, which is where GemFI
//! attaches (Fig. 2 of the paper): per-stage callbacks on fetch, decode,
//! execute, and memory transactions, plus register/PC corruption windows at
//! instruction boundaries. The [`NoopHooks`] implementation compiles to
//! nothing and serves as the "unmodified gem5" baseline for the Fig. 7
//! overhead comparison.
//!
//! Containment contract: every model's `step` returns
//! `Result<StepResult, ExecError>` — guest-reachable corruption surfaces as
//! `ExecError::Trap` (an architectural outcome) and broken simulator
//! invariants as `ExecError::Sim` (an infrastructure bug); neither panics.

// Guest-reachable crate: new unwrap/expect sites need an explicit allow with
// a written justification (fault containment, see DESIGN.md).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod exec;
mod hooks;
mod inorder;
mod model;
mod o3;
mod predictor;
mod simple;

pub use hooks::{Dormancy, ElidedHooks, ElisionBatch, FaultHooks, NoopHooks};
pub use inorder::InOrderCpu;
pub use model::{Cpu, CpuKind};
pub use o3::{O3Config, O3Cpu};
pub use predictor::{PredictorStats, TournamentPredictor};
pub use simple::{AtomicCpu, TimingCpu};

use gemfi_mem::Ticks;

/// What a CPU step did, beyond consuming time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Nothing special.
    None,
    /// A `fi_read_init_all` pseudo-op committed: the machine should take a
    /// checkpoint at this (quiesced) point.
    CheckpointRequest,
    /// The machine halted (all threads exited, or an explicit `halt`),
    /// carrying the main thread's exit code.
    Halted(u64),
}

/// The result of advancing a CPU model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepResult {
    /// Ticks consumed by this step.
    pub ticks: Ticks,
    /// Instructions committed during this step.
    pub committed: u64,
    /// Event raised, if any.
    pub event: StepEvent,
}
