//! Shared instruction semantics.
//!
//! Every CPU model funnels through the helpers here so that architectural
//! behaviour is identical across models (the paper's methodology switches
//! models mid-run, which is only sound if they agree functionally). The
//! in-order models use [`step_instruction`] wholesale; the out-of-order core
//! reuses the pure [`alu`]/[`fpu`]/[`cmov_cond`] helpers inside its own
//! machinery.

use crate::hooks::FaultHooks;
use crate::StepEvent;
use gemfi_isa::{ArchState, FpFunc, Instr, IntFunc, IntReg, Operand, RawInstr, RegRef, Trap};
use gemfi_kernel::{Kernel, PalOutcome};
use gemfi_mem::{MemorySystem, Ticks};

// The pure ALU/FPU semantics moved down into the ISA crate so the
// superblock micro-op handlers can share them; re-exported here so every
// existing `exec::alu`-style caller (including the o3 core) is unchanged.
pub use gemfi_isa::semantics::{alu, cmov_cond, fp_cmov_cond, fpu};

/// Execution latency of an instruction class in ticks (used by the pipelined
/// models; memory latency comes from the hierarchy instead).
pub fn exec_latency(instr: &Instr) -> Ticks {
    match instr {
        Instr::IntOp { func: IntFunc::Mull | IntFunc::Mulq | IntFunc::Umulh, .. } => 3,
        Instr::FpOp { func: FpFunc::Divt, .. } => 12,
        Instr::FpOp { func: FpFunc::Sqrtt, .. } => 20,
        Instr::FpOp { func: FpFunc::Cpys | FpFunc::Cpysn, .. } => 1,
        Instr::FpOp { .. } => 4,
        _ => 1,
    }
}

/// The source registers an instruction reads, in operand order. Conditional
/// moves list their destination as a third source (they need its old value
/// when the move is not performed — the classic renaming wrinkle).
pub fn src_regs(instr: &Instr) -> [Option<RegRef>; 3] {
    use Instr::*;
    match *instr {
        CallPal { .. } | FiActivate { .. } | FiReadInit | Br { .. } | Bsr { .. } => {
            [None, None, None]
        }
        Lda { rb, .. } | Ldah { rb, .. } => [Some(RegRef::Int(rb)), None, None],
        Mem { op, ra, rb, .. } => {
            if op.is_store() {
                [Some(RegRef::Int(rb)), Some(RegRef::Int(ra)), None]
            } else {
                [Some(RegRef::Int(rb)), None, None]
            }
        }
        Ldt { rb, .. } => [Some(RegRef::Int(rb)), None, None],
        Stt { fa, rb, .. } => [Some(RegRef::Int(rb)), Some(RegRef::Fp(fa)), None],
        Jump { rb, .. } => [Some(RegRef::Int(rb)), None, None],
        CondBr { ra, .. } => [Some(RegRef::Int(ra)), None, None],
        FpCondBr { fa, .. } => [Some(RegRef::Fp(fa)), None, None],
        IntOp { func, ra, rb, rc } => {
            let b = match rb {
                Operand::Reg(r) => Some(RegRef::Int(r)),
                Operand::Lit(_) => None,
            };
            let c = cmov_cond(func, 0).is_some().then_some(RegRef::Int(rc));
            [Some(RegRef::Int(ra)), b, c]
        }
        FpOp { func, fa, fb, fc } => {
            let c = fp_cmov_cond(func, 0).is_some().then_some(RegRef::Fp(fc));
            [Some(RegRef::Fp(fa)), Some(RegRef::Fp(fb)), c]
        }
        Itoft { rb, .. } => [Some(RegRef::Int(rb)), None, None],
        Ftoit { fa, .. } => [Some(RegRef::Fp(fa)), None, None],
    }
}

/// The register an instruction writes, if any.
pub fn dst_reg(instr: &Instr) -> Option<RegRef> {
    use Instr::*;
    match *instr {
        Lda { ra, .. } | Ldah { ra, .. } => Some(RegRef::Int(ra)),
        Mem { op, ra, .. } => (!op.is_store()).then_some(RegRef::Int(ra)),
        Ldt { fa, .. } => Some(RegRef::Fp(fa)),
        Jump { ra, .. } | Br { ra, .. } | Bsr { ra, .. } => Some(RegRef::Int(ra)),
        IntOp { rc, .. } => Some(RegRef::Int(rc)),
        FpOp { fc, .. } => Some(RegRef::Fp(fc)),
        Itoft { fc, .. } => Some(RegRef::Fp(fc)),
        Ftoit { rc, .. } => Some(RegRef::Int(rc)),
        _ => None,
    }
}

/// Fetches and decodes one instruction through the predecode fast path,
/// invoking the fetch- and decode-stage fault hooks on the raw word.
///
/// This is the single fetch/decode entry point shared by all four CPU
/// models. The hooks are *always* run on the raw word — their side effects
/// (per-stage instruction counters that arm `Inst:N` fault timings) must be
/// identical whether or not the predecode cache is enabled. The cached
/// decode is used only when the hooks return the word unchanged; a fetch- or
/// decode-stage fault therefore bypasses the cache, the corrupted word is
/// decoded fresh (bit-for-bit Table-I manifestation semantics), and the
/// corrupted decode is never installed.
///
/// # Errors
///
/// [`Trap::IllegalInstruction`] when the (possibly corrupted) word does not
/// decode, or the fetch trap from the memory system.
#[inline]
pub fn fetch_decode<H: FaultHooks>(
    core: usize,
    mem: &mut MemorySystem,
    hooks: &mut H,
    pc: u64,
) -> Result<(Instr, Ticks), Trap> {
    let (raw, cached, fetch_latency) = mem.fetch_predecoded(pc)?;
    let word = hooks.on_fetch(core, pc, RawInstr(raw));
    let word = hooks.on_decode(core, word);
    if word.0 == raw {
        if let Some(instr) = cached {
            return Ok((instr, fetch_latency));
        }
        let instr =
            gemfi_isa::decode(word).map_err(|_| Trap::IllegalInstruction { word: word.0, pc })?;
        mem.install_predecoded(pc, raw, instr);
        Ok((instr, fetch_latency))
    } else {
        // A fault corrupted the raw bits: decode fresh, never install.
        let instr =
            gemfi_isa::decode(word).map_err(|_| Trap::IllegalInstruction { word: word.0, pc })?;
        Ok((instr, fetch_latency))
    }
}

/// Plants any cache lesions that fired since the last drain into the memory
/// system. Every CPU model calls this at instruction boundaries (including
/// early returns), so a fired cache fault becomes architecturally visible on
/// the very next memory access. The `has_cache_lesions` pre-check keeps the
/// fault-free path allocation-free and inlineable to nothing.
#[inline]
pub fn drain_lesions<H: FaultHooks>(hooks: &mut H, mem: &mut MemorySystem) {
    if hooks.has_cache_lesions() {
        for lesion in hooks.take_cache_lesions() {
            mem.plant_lesion(lesion);
        }
    }
}

/// Everything a model needs to account for one architecturally executed
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecRecord {
    /// PC the instruction was fetched from.
    pub pc: u64,
    /// The decoded (post-fault) instruction.
    pub instr: Instr,
    /// Instruction-fetch latency (ticks).
    pub fetch_latency: Ticks,
    /// Data-access latency (ticks), zero for non-memory instructions.
    pub mem_latency: Ticks,
    /// Whether this was a conditional branch.
    pub is_cond_branch: bool,
    /// Whether a conditional branch was taken.
    pub taken: bool,
    /// The next architectural PC.
    pub next_pc: u64,
    /// Destination register of a load (for load-use interlocks).
    pub load_dest: Option<RegRef>,
    /// Event raised by the instruction.
    pub event: StepEvent,
}

/// Fetches, decodes, executes and retires exactly one instruction on the
/// given architectural state, invoking every fault hook at its stage.
///
/// # Errors
///
/// Returns the guest [`Trap`] that terminated execution (illegal
/// instruction, unmapped/misaligned access, illegal PAL call).
pub fn step_instruction<H: FaultHooks>(
    core: usize,
    arch: &mut ArchState,
    mem: &mut MemorySystem,
    kernel: &mut Kernel,
    hooks: &mut H,
    now: Ticks,
) -> Result<ExecRecord, Trap> {
    hooks.before_instruction(core, now, arch);

    let pc = arch.pc;
    let (instr, fetch_latency) = fetch_decode(core, mem, hooks, pc)?;

    let mut rec = ExecRecord {
        pc,
        instr,
        fetch_latency,
        mem_latency: 0,
        is_cond_branch: false,
        taken: false,
        next_pc: pc.wrapping_add(4),
        load_dest: None,
        event: StepEvent::None,
    };

    // An instruction-skip fault nullifies the fetched instruction: the PC
    // advances past it, but none of its side effects happen. The skipped
    // slot still commits (per-thread instruction counters keep advancing,
    // as they would for a pipeline bubble).
    if hooks.take_skip(core) {
        arch.pc = rec.next_pc;
        hooks.on_commit(core, now, pc, &instr);
        drain_lesions(hooks, mem);
        return Ok(rec);
    }

    let read_int = |hooks: &mut H, arch: &ArchState, r: IntReg| -> u64 {
        hooks.on_reg_read(core, RegRef::Int(r));
        arch.regs.read_int(r)
    };

    match instr {
        Instr::CallPal { func } => {
            let old_pcbb = arch.pcbb;
            // The PAL service sees the post-increment PC, so a context switch
            // saves the correct resume point for this thread.
            arch.pc = pc.wrapping_add(4);
            match kernel.pal_call(func, arch, mem, now)? {
                PalOutcome::Continue => {}
                PalOutcome::Switched => {
                    rec.next_pc = arch.pc;
                    if arch.pcbb != old_pcbb {
                        hooks.on_context_switch(core, arch.pcbb);
                    }
                    // The switched-in thread resumes at its own saved PC.
                    hooks.on_commit(core, now, pc, &instr);
                    drain_lesions(hooks, mem);
                    return Ok(rec);
                }
                PalOutcome::AllExited(code) => rec.event = StepEvent::Halted(code),
                PalOutcome::Halt => rec.event = StepEvent::Halted(0),
            }
        }
        Instr::FiActivate { id } => hooks.on_fi_activate(core, now, id, arch.pcbb),
        Instr::FiReadInit => rec.event = StepEvent::CheckpointRequest,
        Instr::Lda { ra, rb, disp } => {
            let base = read_int(hooks, arch, rb);
            let v = base.wrapping_add(disp as i64 as u64);
            let v = hooks.on_execute_result(core, &instr, v);
            arch.regs.write_int(ra, v);
            hooks.on_reg_write(core, RegRef::Int(ra));
        }
        Instr::Ldah { ra, rb, disp } => {
            let base = read_int(hooks, arch, rb);
            let v = base.wrapping_add((disp as i64 as u64).wrapping_shl(16));
            let v = hooks.on_execute_result(core, &instr, v);
            arch.regs.write_int(ra, v);
            hooks.on_reg_write(core, RegRef::Int(ra));
        }
        Instr::Mem { op, ra, rb, disp } => {
            let base = read_int(hooks, arch, rb);
            let addr = base.wrapping_add(disp as i64 as u64);
            let addr = hooks.on_execute_result(core, &instr, addr);
            if op.is_store() {
                let v = read_int(hooks, arch, ra);
                let v = hooks.on_mem_store(core, addr, v);
                rec.mem_latency = match op.width() {
                    4 => mem.write_u32(addr, v as u32, pc)?,
                    _ => mem.write_u64(addr, v, pc)?,
                };
            } else {
                let (v, lat) = match op.width() {
                    4 => {
                        let (v, lat) = mem.read_u32(addr, pc)?;
                        (v as i32 as i64 as u64, lat)
                    }
                    _ => mem.read_u64(addr, pc)?,
                };
                let v = hooks.on_mem_load(core, addr, v);
                rec.mem_latency = lat;
                arch.regs.write_int(ra, v);
                hooks.on_reg_write(core, RegRef::Int(ra));
                rec.load_dest = Some(RegRef::Int(ra));
            }
        }
        Instr::Ldt { fa, rb, disp } => {
            let base = read_int(hooks, arch, rb);
            let addr = base.wrapping_add(disp as i64 as u64);
            let addr = hooks.on_execute_result(core, &instr, addr);
            let (v, lat) = mem.read_u64(addr, pc)?;
            let v = hooks.on_mem_load(core, addr, v);
            rec.mem_latency = lat;
            arch.regs.write_fp_bits(fa, v);
            hooks.on_reg_write(core, RegRef::Fp(fa));
            rec.load_dest = Some(RegRef::Fp(fa));
        }
        Instr::Stt { fa, rb, disp } => {
            let base = read_int(hooks, arch, rb);
            let addr = base.wrapping_add(disp as i64 as u64);
            let addr = hooks.on_execute_result(core, &instr, addr);
            hooks.on_reg_read(core, RegRef::Fp(fa));
            let v = arch.regs.read_fp_bits(fa);
            let v = hooks.on_mem_store(core, addr, v);
            rec.mem_latency = mem.write_u64(addr, v, pc)?;
        }
        Instr::Jump { ra, rb, .. } => {
            let target = read_int(hooks, arch, rb) & !3;
            let target = hooks.on_execute_result(core, &instr, target);
            arch.regs.write_int(ra, pc.wrapping_add(4));
            hooks.on_reg_write(core, RegRef::Int(ra));
            rec.next_pc = target;
        }
        Instr::Br { ra, disp } | Instr::Bsr { ra, disp } => {
            let target = pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2);
            let target = hooks.on_execute_result(core, &instr, target);
            arch.regs.write_int(ra, pc.wrapping_add(4));
            hooks.on_reg_write(core, RegRef::Int(ra));
            rec.next_pc = target;
        }
        Instr::CondBr { cond, ra, disp } => {
            let v = read_int(hooks, arch, ra);
            rec.is_cond_branch = true;
            rec.taken = hooks.on_branch(core, &instr, cond.eval(v));
            let target = if rec.taken {
                pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2)
            } else {
                pc.wrapping_add(4)
            };
            rec.next_pc = hooks.on_execute_result(core, &instr, target);
        }
        Instr::FpCondBr { cond, fa, disp } => {
            hooks.on_reg_read(core, RegRef::Fp(fa));
            let v = arch.regs.read_fp_bits(fa);
            rec.is_cond_branch = true;
            rec.taken = hooks.on_branch(core, &instr, cond.eval(v));
            let target = if rec.taken {
                pc.wrapping_add(4).wrapping_add((disp as i64 as u64) << 2)
            } else {
                pc.wrapping_add(4)
            };
            rec.next_pc = hooks.on_execute_result(core, &instr, target);
        }
        Instr::IntOp { func, ra, rb, rc } => {
            let a = read_int(hooks, arch, ra);
            let b = match rb {
                Operand::Reg(r) => read_int(hooks, arch, r),
                Operand::Lit(v) => v as u64,
            };
            match cmov_cond(func, a) {
                Some(cond) => {
                    if cond {
                        let v = hooks.on_execute_result(core, &instr, b);
                        arch.regs.write_int(rc, v);
                        hooks.on_reg_write(core, RegRef::Int(rc));
                    }
                }
                None => {
                    let v = hooks.on_execute_result(core, &instr, alu(func, a, b));
                    arch.regs.write_int(rc, v);
                    hooks.on_reg_write(core, RegRef::Int(rc));
                }
            }
        }
        Instr::FpOp { func, fa, fb, fc } => {
            hooks.on_reg_read(core, RegRef::Fp(fa));
            hooks.on_reg_read(core, RegRef::Fp(fb));
            let a = arch.regs.read_fp_bits(fa);
            let b = arch.regs.read_fp_bits(fb);
            match fp_cmov_cond(func, a) {
                Some(cond) => {
                    if cond {
                        let v = hooks.on_execute_result(core, &instr, b);
                        arch.regs.write_fp_bits(fc, v);
                        hooks.on_reg_write(core, RegRef::Fp(fc));
                    }
                }
                None => {
                    let v = hooks.on_execute_result(core, &instr, fpu(func, a, b));
                    arch.regs.write_fp_bits(fc, v);
                    hooks.on_reg_write(core, RegRef::Fp(fc));
                }
            }
        }
        Instr::Itoft { rb, fc } => {
            let v = read_int(hooks, arch, rb);
            let v = hooks.on_execute_result(core, &instr, v);
            arch.regs.write_fp_bits(fc, v);
            hooks.on_reg_write(core, RegRef::Fp(fc));
        }
        Instr::Ftoit { fa, rc } => {
            hooks.on_reg_read(core, RegRef::Fp(fa));
            let v = arch.regs.read_fp_bits(fa);
            let v = hooks.on_execute_result(core, &instr, v);
            arch.regs.write_int(rc, v);
            hooks.on_reg_write(core, RegRef::Int(rc));
        }
    }

    arch.pc = rec.next_pc;
    hooks.on_commit(core, now, pc, &instr);
    drain_lesions(hooks, mem);
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_arithmetic_matches_two_complement() {
        assert_eq!(alu(IntFunc::Addq, u64::MAX, 1), 0);
        assert_eq!(alu(IntFunc::Subq, 0, 1), u64::MAX);
        assert_eq!(alu(IntFunc::Addl, 0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(alu(IntFunc::Mull, 0x10000, 0x10000), 0); // 2^32 truncates
        assert_eq!(alu(IntFunc::Umulh, 1 << 63, 4), 2);
        assert_eq!(alu(IntFunc::S8addq, 3, 10), 34);
    }

    #[test]
    fn alu_compares_are_signed_and_unsigned() {
        let neg1 = -1i64 as u64;
        assert_eq!(alu(IntFunc::Cmplt, neg1, 0), 1);
        assert_eq!(alu(IntFunc::Cmpult, neg1, 0), 0);
        assert_eq!(alu(IntFunc::Cmple, 5, 5), 1);
        assert_eq!(alu(IntFunc::Cmpule, 6, 5), 0);
    }

    #[test]
    fn alu_shifts_mask_to_six_bits() {
        assert_eq!(alu(IntFunc::Sll, 1, 64), 1); // shift by 64 & 63 == 0
        assert_eq!(alu(IntFunc::Sra, (-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(alu(IntFunc::Srl, (-8i64) as u64, 1), 0x7fff_ffff_ffff_fffc);
    }

    #[test]
    fn fpu_compare_encodes_two_or_zero() {
        let two = 2.0f64.to_bits();
        assert_eq!(fpu(FpFunc::Cmpteq, 1.5f64.to_bits(), 1.5f64.to_bits()), two);
        assert_eq!(fpu(FpFunc::Cmptlt, 2.0f64.to_bits(), 1.0f64.to_bits()), 0);
    }

    #[test]
    fn fpu_cvt_roundtrips_integers() {
        let q = 12345i64 as u64;
        let t = fpu(FpFunc::Cvtqt, 0, q);
        assert_eq!(f64::from_bits(t), 12345.0);
        assert_eq!(fpu(FpFunc::Cvttq, 0, (-3.75f64).to_bits()), (-3i64) as u64);
    }

    #[test]
    fn fpu_cvttq_saturates_and_handles_nan() {
        assert_eq!(fpu(FpFunc::Cvttq, 0, f64::NAN.to_bits()), 0);
        assert_eq!(fpu(FpFunc::Cvttq, 0, 1e300f64.to_bits()), i64::MAX as u64);
        assert_eq!(fpu(FpFunc::Cvttq, 0, (-1e300f64).to_bits()), i64::MIN as u64);
    }

    #[test]
    fn fpu_copy_sign() {
        let neg = (-1.0f64).to_bits();
        let pos = 2.5f64.to_bits();
        assert_eq!(f64::from_bits(fpu(FpFunc::Cpys, neg, pos)), -2.5);
        assert_eq!(f64::from_bits(fpu(FpFunc::Cpysn, neg, pos)), 2.5);
    }

    #[test]
    fn cmov_conditions() {
        assert_eq!(cmov_cond(IntFunc::Cmoveq, 0), Some(true));
        assert_eq!(cmov_cond(IntFunc::Cmovne, 0), Some(false));
        assert_eq!(cmov_cond(IntFunc::Cmovlt, -1i64 as u64), Some(true));
        assert_eq!(cmov_cond(IntFunc::Addq, 0), None);
        assert_eq!(fp_cmov_cond(FpFunc::Fcmoveq, 0), Some(true));
        assert_eq!(fp_cmov_cond(FpFunc::Addt, 0), None);
    }

    #[test]
    fn exec_latency_orders_op_classes() {
        use gemfi_isa::{FpReg, IntReg, Operand};
        let add = Instr::IntOp {
            func: IntFunc::Addq,
            ra: IntReg::ZERO,
            rb: Operand::Lit(0),
            rc: IntReg::ZERO,
        };
        let mul = Instr::IntOp {
            func: IntFunc::Mulq,
            ra: IntReg::ZERO,
            rb: Operand::Lit(0),
            rc: IntReg::ZERO,
        };
        let div =
            Instr::FpOp { func: FpFunc::Divt, fa: FpReg::ZERO, fb: FpReg::ZERO, fc: FpReg::ZERO };
        assert!(exec_latency(&add) < exec_latency(&mul));
        assert!(exec_latency(&mul) < exec_latency(&div));
    }
}
