//! The fault-injection hook surface (where GemFI attaches to the CPU).
//!
//! Fig. 1 of the paper marks the injectable locations in red: registers,
//! the fetched instruction, register selection at decode, execution-stage
//! results, the PC, and memory transactions. Each of those corresponds to a
//! method here, invoked by every CPU model at the architecturally correct
//! point. The out-of-order model calls the speculative-side hooks
//! (`on_fetch`, `on_decode`, `on_execute_result`, `on_mem_*`) for wrong-path
//! instructions too — exactly like gem5, which is why the paper observes
//! faults that "alter a squashed instruction" ending up harmless.
//!
//! Hooks are a generic parameter of the machine, so the [`NoopHooks`]
//! baseline monomorphizes to nothing: the Fig. 7 overhead experiment
//! compares a GemFI-hooked machine against this zero-cost baseline.

use gemfi_isa::{ArchState, Instr, RawInstr, RegRef};
use gemfi_mem::{CacheLesion, Ticks};

/// How long a hooks implementation guarantees to stay architecturally
/// unobservable — its *dormancy horizon*.
///
/// The machine asks before entering its elided fast path: while the horizon
/// holds, hooks cannot corrupt anything, so the interpreter may sprint with
/// a counting shim ([`ElidedHooks`]) instead of the full per-event hook
/// dispatch, and deliver the accumulated stage-event counters in one
/// [`FaultHooks::absorb_elided`] call at the batch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dormancy {
    /// Something observable may happen on the very next event: run fully
    /// hooked. This is the conservative default.
    Active,
    /// Nothing observable can happen while *every* per-stage event counter
    /// advances by fewer than `events` and fewer than `ticks` simulation
    /// ticks elapse. Either bound may be `u64::MAX` ("unconstrained").
    Quiet {
        /// Strict per-stage event bound: the earliest event that could fire
        /// a fault is the `events`-th one of its stage.
        events: u64,
        /// Strict tick bound: the earliest tick at which a tick-timed fault
        /// arms is `now + ticks`.
        ticks: u64,
    },
    /// Nothing observable can ever happen in the current state (no pending
    /// faults, or none that the running thread can reach): sprint freely
    /// until the next machine-level boundary.
    Dormant,
}

/// Stage events accumulated during one elided sprint, in stage-queue order:
/// fetch, decode, execute, memory, register (committed instructions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElisionBatch {
    /// Per-stage event counts (fetch, decode, execute, memory, commit).
    pub stage_events: [u64; 5],
}

impl ElisionBatch {
    /// The largest per-stage counter (compared against the `events` bound).
    pub fn max_stage_events(&self) -> u64 {
        self.stage_events.iter().copied().max().unwrap_or(0)
    }

    /// Whether any event was recorded.
    pub fn is_empty(&self) -> bool {
        self.stage_events == [0; 5]
    }
}

/// Per-stage fault-injection callbacks.
///
/// All methods have no-op defaults; an implementation overrides the stages
/// it cares about. `core` identifies the hardware context (always 0 on the
/// single-core configuration the paper evaluates, but the surface is
/// multi-core ready, as GemFI's `system.cpuN` fault syntax requires).
pub trait FaultHooks {
    /// Called at each committed-instruction boundary *before* the next
    /// instruction, with mutable architectural state: the window in which
    /// scheduled register, special-register and PC faults are applied.
    #[inline]
    fn before_instruction(&mut self, core: usize, now: Ticks, arch: &mut ArchState) {
        let _ = (core, now, arch);
    }

    /// An instruction word was fetched; may corrupt any of its 32 bits.
    #[inline]
    fn on_fetch(&mut self, core: usize, pc: u64, word: RawInstr) -> RawInstr {
        let _ = (core, pc);
        word
    }

    /// Decode is selecting source/destination registers; may corrupt the
    /// register-selector fields of the word.
    #[inline]
    fn on_decode(&mut self, core: usize, word: RawInstr) -> RawInstr {
        let _ = core;
        word
    }

    /// The execution stage produced `value` (an ALU/FPU result, a computed
    /// effective address, or a control-flow target); may corrupt it.
    #[inline]
    fn on_execute_result(&mut self, core: usize, instr: &Instr, value: u64) -> u64 {
        let _ = (core, instr);
        value
    }

    /// A load read `value` from `addr`; may corrupt the loaded value.
    #[inline]
    fn on_mem_load(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        let _ = (core, addr);
        value
    }

    /// A store is about to write `value` to `addr`; may corrupt the stored
    /// value.
    #[inline]
    fn on_mem_store(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        let _ = (core, addr);
        value
    }

    /// Whether an instruction-skip fault fired on the word just fetched.
    /// Consuming the flag disarms it; the CPU model must then advance the PC
    /// past the instruction without executing any of its side effects.
    #[inline]
    fn take_skip(&mut self, core: usize) -> bool {
        let _ = core;
        false
    }

    /// A conditional branch resolved its direction as `taken`; a
    /// branch-inversion fault may flip it. The returned direction is the one
    /// the CPU model must commit (and train its predictor on).
    #[inline]
    fn on_branch(&mut self, core: usize, instr: &Instr, taken: bool) -> bool {
        let _ = (core, instr);
        taken
    }

    /// Whether any cache lesions fired and await planting into the memory
    /// system. Split from [`FaultHooks::take_cache_lesions`] so the common
    /// no-lesion path stays allocation-free.
    #[inline]
    fn has_cache_lesions(&self) -> bool {
        false
    }

    /// Drains the cache lesions that fired since the last drain. The CPU
    /// model plants them into its [`gemfi_mem::MemorySystem`] at the next
    /// instruction boundary.
    #[inline]
    fn take_cache_lesions(&mut self) -> Vec<CacheLesion> {
        Vec::new()
    }

    /// An architectural register was read as a source operand (consumption
    /// tracking for the *non-propagated* outcome class).
    #[inline]
    fn on_reg_read(&mut self, core: usize, reg: RegRef) {
        let _ = (core, reg);
    }

    /// An architectural register was overwritten.
    #[inline]
    fn on_reg_write(&mut self, core: usize, reg: RegRef) {
        let _ = (core, reg);
    }

    /// An instruction committed (per-thread instruction counting).
    #[inline]
    fn on_commit(&mut self, core: usize, now: Ticks, pc: u64, instr: &Instr) {
        let _ = (core, now, pc, instr);
    }

    /// `fi_activate_inst(id)` committed on the thread whose PCB base is
    /// `pcbb` (toggles injection for that thread).
    #[inline]
    fn on_fi_activate(&mut self, core: usize, now: Ticks, id: u32, pcbb: u64) {
        let _ = (core, now, id, pcbb);
    }

    /// The PCB base register changed (context switch): GemFI re-resolves its
    /// per-core `ThreadEnabledFault` pointer here instead of hashing on
    /// every tick (the Sec. III-C optimization).
    #[inline]
    fn on_context_switch(&mut self, core: usize, new_pcbb: u64) {
        let _ = (core, new_pcbb);
    }

    /// The dormancy horizon at simulation time `now`: how long these hooks
    /// guarantee to stay unobservable. The default is [`Dormancy::Active`]
    /// (never elide), so implementations that don't opt in keep exact
    /// per-event semantics.
    #[inline]
    fn dormancy(&self, core: usize, now: Ticks) -> Dormancy {
        let _ = (core, now);
        Dormancy::Active
    }

    /// Delivers the stage events of one elided sprint in bulk. `now` is the
    /// boundary tick of the last committed instruction in the batch (absent
    /// when the batch carried no instruction boundary). Implementations that
    /// report a non-`Active` horizon must account these exactly as if each
    /// event had arrived through its individual hook.
    #[inline]
    fn absorb_elided(&mut self, core: usize, now: Option<Ticks>, batch: &ElisionBatch) {
        let _ = (core, now, batch);
    }

    /// Whether [`FaultHooks::absorb_elided`] is non-trivial for this
    /// implementation. When `false`, the elided sprint skips event counting
    /// entirely (there is nobody to deliver the batch to). Defaults to
    /// `true` so custom hooks stay exact; only hooks whose `absorb_elided`
    /// is a no-op should override this.
    #[inline]
    fn absorbs_elided(&self) -> bool {
        true
    }
}

/// The "unmodified gem5" baseline: every hook is a no-op and inlines away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHooks;

impl FaultHooks for NoopHooks {
    /// No-op hooks never observe anything: always dormant.
    #[inline]
    fn dormancy(&self, _core: usize, _now: Ticks) -> Dormancy {
        Dormancy::Dormant
    }

    /// Nothing to deliver batches to: the sprint shim compiles down to the
    /// same zero-cost loop as the hooked no-op baseline.
    #[inline]
    fn absorbs_elided(&self) -> bool {
        false
    }
}

/// The counting shim driven inside an elided sprint.
///
/// Wraps the real hooks without calling their per-event methods: value hooks
/// are identity, event hooks bump an [`ElisionBatch`] counter, and the two
/// state-changing pseudo-op hooks (`fi_activate`, context switch) flush the
/// batch, pass through to the inner hooks, and mark the sprint interrupted
/// so the machine re-evaluates the dormancy horizon.
///
/// Because every CPU model drives this shim through the *same* call sites as
/// the real hooks, the counters it accumulates are event-for-event identical
/// to what the inner hooks would have counted themselves — which is what
/// makes bulk absorption exact.
#[derive(Debug)]
pub struct ElidedHooks<'h, H> {
    inner: &'h mut H,
    batch: ElisionBatch,
    core: usize,
    /// Boundary tick of the last committed instruction seen in the batch.
    last_now: Option<Ticks>,
    /// Whether the inner hooks want the batch at all (false for no-op
    /// hooks, whose sprint then counts nothing).
    count: bool,
    interrupted: bool,
}

impl<'h, H: FaultHooks> ElidedHooks<'h, H> {
    /// Wraps `inner` for one sprint.
    pub fn new(inner: &'h mut H) -> ElidedHooks<'h, H> {
        let count = inner.absorbs_elided();
        ElidedHooks {
            inner,
            batch: ElisionBatch::default(),
            core: 0,
            last_now: None,
            count,
            interrupted: false,
        }
    }

    /// The largest per-stage counter accumulated so far.
    #[inline]
    pub fn max_stage_events(&self) -> u64 {
        self.batch.max_stage_events()
    }

    /// Whether a passthrough hook ended the batch (the horizon must be
    /// recomputed before sprinting further).
    #[inline]
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Folds a superblock run's bulk event counts into the batch — the
    /// counts the per-instruction path would have accumulated hook-by-hook
    /// for the same instructions (`events` in stage-queue order, `last_now`
    /// the start tick of the last instruction that *started*). Batch
    /// partitioning is absorption-insensitive, so delivering these together
    /// with per-instruction counts is tick- and event-identical.
    pub fn record_block(&mut self, core: usize, last_now: Option<Ticks>, events: [u64; 5]) {
        if !self.count {
            return;
        }
        self.core = core;
        for (acc, n) in self.batch.stage_events.iter_mut().zip(events) {
            *acc += n;
        }
        if let Some(now) = last_now {
            self.last_now = Some(now);
        }
    }

    /// Delivers the accumulated batch to the inner hooks and resets it.
    pub fn flush(&mut self) {
        if self.batch.is_empty() && self.last_now.is_none() {
            return;
        }
        self.inner.absorb_elided(self.core, self.last_now.take(), &self.batch);
        self.batch = ElisionBatch::default();
    }

    /// Flushes and releases the inner hooks (end of sprint).
    pub fn finish(mut self) {
        self.flush();
    }
}

impl<H: FaultHooks> FaultHooks for ElidedHooks<'_, H> {
    #[inline]
    fn before_instruction(&mut self, core: usize, now: Ticks, _arch: &mut ArchState) {
        if self.count {
            self.core = core;
            self.last_now = Some(now);
        }
    }

    #[inline]
    fn on_fetch(&mut self, core: usize, _pc: u64, word: RawInstr) -> RawInstr {
        if self.count {
            self.core = core;
            self.batch.stage_events[0] += 1;
        }
        word
    }

    #[inline]
    fn on_decode(&mut self, core: usize, word: RawInstr) -> RawInstr {
        if self.count {
            self.core = core;
            self.batch.stage_events[1] += 1;
        }
        word
    }

    #[inline]
    fn on_execute_result(&mut self, core: usize, _instr: &Instr, value: u64) -> u64 {
        if self.count {
            self.core = core;
            self.batch.stage_events[2] += 1;
        }
        value
    }

    #[inline]
    fn on_mem_load(&mut self, core: usize, _addr: u64, value: u64) -> u64 {
        if self.count {
            self.core = core;
            self.batch.stage_events[3] += 1;
        }
        value
    }

    #[inline]
    fn on_mem_store(&mut self, core: usize, _addr: u64, value: u64) -> u64 {
        if self.count {
            self.core = core;
            self.batch.stage_events[3] += 1;
        }
        value
    }

    // Register consumption tracking is only live while the inner hooks hold
    // watches, and a watch-holding engine reports `Dormancy::Active` — so a
    // sprint never has reg-read/write traffic worth recording.
    //
    // `take_skip`, `on_branch`, `has_cache_lesions` and `take_cache_lesions`
    // likewise keep their identity defaults: an armed skip or pending lesion
    // forces `Dormancy::Active`, and the sprint's horizon ends before any
    // branch-inversion fault can arm, so none of them can be live mid-sprint.

    #[inline]
    fn on_commit(&mut self, core: usize, now: Ticks, _pc: u64, _instr: &Instr) {
        if self.count {
            self.core = core;
            self.last_now = Some(now);
            self.batch.stage_events[4] += 1;
        }
    }

    fn on_fi_activate(&mut self, core: usize, now: Ticks, id: u32, pcbb: u64) {
        // Events so far happened under the pre-toggle activity state;
        // absorb them before the toggle, exactly as the real hook order
        // would have attributed them.
        self.core = core;
        self.flush();
        self.inner.on_fi_activate(core, now, id, pcbb);
        self.interrupted = true;
    }

    fn on_context_switch(&mut self, core: usize, new_pcbb: u64) {
        self.core = core;
        self.flush();
        self.inner.on_context_switch(core, new_pcbb);
        self.interrupted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_are_identity() {
        let mut h = NoopHooks;
        let w = RawInstr(0x1234);
        assert_eq!(h.on_fetch(0, 0, w), w);
        assert_eq!(h.on_decode(0, w), w);
        assert_eq!(h.on_mem_load(0, 0, 9), 9);
        assert_eq!(h.on_mem_store(0, 0, 9), 9);
    }
}
