//! The fault-injection hook surface (where GemFI attaches to the CPU).
//!
//! Fig. 1 of the paper marks the injectable locations in red: registers,
//! the fetched instruction, register selection at decode, execution-stage
//! results, the PC, and memory transactions. Each of those corresponds to a
//! method here, invoked by every CPU model at the architecturally correct
//! point. The out-of-order model calls the speculative-side hooks
//! (`on_fetch`, `on_decode`, `on_execute_result`, `on_mem_*`) for wrong-path
//! instructions too — exactly like gem5, which is why the paper observes
//! faults that "alter a squashed instruction" ending up harmless.
//!
//! Hooks are a generic parameter of the machine, so the [`NoopHooks`]
//! baseline monomorphizes to nothing: the Fig. 7 overhead experiment
//! compares a GemFI-hooked machine against this zero-cost baseline.

use gemfi_isa::{ArchState, Instr, RawInstr, RegRef};
use gemfi_mem::Ticks;

/// Per-stage fault-injection callbacks.
///
/// All methods have no-op defaults; an implementation overrides the stages
/// it cares about. `core` identifies the hardware context (always 0 on the
/// single-core configuration the paper evaluates, but the surface is
/// multi-core ready, as GemFI's `system.cpuN` fault syntax requires).
pub trait FaultHooks {
    /// Called at each committed-instruction boundary *before* the next
    /// instruction, with mutable architectural state: the window in which
    /// scheduled register, special-register and PC faults are applied.
    #[inline]
    fn before_instruction(&mut self, core: usize, now: Ticks, arch: &mut ArchState) {
        let _ = (core, now, arch);
    }

    /// An instruction word was fetched; may corrupt any of its 32 bits.
    #[inline]
    fn on_fetch(&mut self, core: usize, pc: u64, word: RawInstr) -> RawInstr {
        let _ = (core, pc);
        word
    }

    /// Decode is selecting source/destination registers; may corrupt the
    /// register-selector fields of the word.
    #[inline]
    fn on_decode(&mut self, core: usize, word: RawInstr) -> RawInstr {
        let _ = core;
        word
    }

    /// The execution stage produced `value` (an ALU/FPU result, a computed
    /// effective address, or a control-flow target); may corrupt it.
    #[inline]
    fn on_execute_result(&mut self, core: usize, instr: &Instr, value: u64) -> u64 {
        let _ = (core, instr);
        value
    }

    /// A load read `value` from `addr`; may corrupt the loaded value.
    #[inline]
    fn on_mem_load(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        let _ = (core, addr);
        value
    }

    /// A store is about to write `value` to `addr`; may corrupt the stored
    /// value.
    #[inline]
    fn on_mem_store(&mut self, core: usize, addr: u64, value: u64) -> u64 {
        let _ = (core, addr);
        value
    }

    /// An architectural register was read as a source operand (consumption
    /// tracking for the *non-propagated* outcome class).
    #[inline]
    fn on_reg_read(&mut self, core: usize, reg: RegRef) {
        let _ = (core, reg);
    }

    /// An architectural register was overwritten.
    #[inline]
    fn on_reg_write(&mut self, core: usize, reg: RegRef) {
        let _ = (core, reg);
    }

    /// An instruction committed (per-thread instruction counting).
    #[inline]
    fn on_commit(&mut self, core: usize, now: Ticks, pc: u64, instr: &Instr) {
        let _ = (core, now, pc, instr);
    }

    /// `fi_activate_inst(id)` committed on the thread whose PCB base is
    /// `pcbb` (toggles injection for that thread).
    #[inline]
    fn on_fi_activate(&mut self, core: usize, now: Ticks, id: u32, pcbb: u64) {
        let _ = (core, now, id, pcbb);
    }

    /// The PCB base register changed (context switch): GemFI re-resolves its
    /// per-core `ThreadEnabledFault` pointer here instead of hashing on
    /// every tick (the Sec. III-C optimization).
    #[inline]
    fn on_context_switch(&mut self, core: usize, new_pcbb: u64) {
        let _ = (core, new_pcbb);
    }
}

/// The "unmodified gem5" baseline: every hook is a no-op and inlines away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopHooks;

impl FaultHooks for NoopHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_are_identity() {
        let mut h = NoopHooks;
        let w = RawInstr(0x1234);
        assert_eq!(h.on_fetch(0, 0, w), w);
        assert_eq!(h.on_decode(0, w), w);
        assert_eq!(h.on_mem_load(0, 0, 9), 9);
        assert_eq!(h.on_mem_store(0, 0, 9), 9);
    }
}
