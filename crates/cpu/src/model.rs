//! The unified CPU-model wrapper the machine drives.

use crate::hooks::FaultHooks;
use crate::inorder::InOrderCpu;
use crate::o3::{O3Config, O3Cpu};
use crate::simple::{AtomicCpu, TimingCpu};
use crate::StepResult;
use gemfi_isa::{ArchState, ExecError};
use gemfi_kernel::Kernel;
use gemfi_mem::{MemorySystem, Ticks};
use std::fmt;

/// Which CPU model to simulate with (gem5's four-model spectrum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// One instruction per tick, untimed memory.
    Atomic,
    /// Functional with memory-reference timing.
    Timing,
    /// Pipelined in-order with a tournament predictor.
    InOrder,
    /// Out-of-order, speculative, precise-commit.
    O3,
}

impl fmt::Display for CpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuKind::Atomic => write!(f, "atomic"),
            CpuKind::Timing => write!(f, "timing"),
            CpuKind::InOrder => write!(f, "inorder"),
            CpuKind::O3 => write!(f, "o3"),
        }
    }
}

/// A CPU of any model. Supports mid-run model switching at instruction
/// boundaries, which the paper's methodology uses (O3 until the fault
/// commits or squashes, atomic afterwards).
#[derive(Debug, Clone)]
pub enum Cpu {
    /// Atomic simple model.
    Atomic(AtomicCpu),
    /// Timing simple model.
    Timing(TimingCpu),
    /// Pipelined in-order model.
    InOrder(InOrderCpu),
    /// Out-of-order model.
    O3(Box<O3Cpu>),
}

impl Cpu {
    /// Builds a CPU of the given kind, fetching from `entry_pc`.
    pub fn new(kind: CpuKind, entry_pc: u64) -> Cpu {
        match kind {
            CpuKind::Atomic => Cpu::Atomic(AtomicCpu),
            CpuKind::Timing => Cpu::Timing(TimingCpu),
            CpuKind::InOrder => Cpu::InOrder(InOrderCpu::new()),
            CpuKind::O3 => Cpu::O3(Box::new(O3Cpu::new(O3Config::default(), entry_pc))),
        }
    }

    /// This CPU's model kind.
    pub fn kind(&self) -> CpuKind {
        match self {
            Cpu::Atomic(_) => CpuKind::Atomic,
            Cpu::Timing(_) => CpuKind::Timing,
            Cpu::InOrder(_) => CpuKind::InOrder,
            Cpu::O3(_) => CpuKind::O3,
        }
    }

    /// Advances the CPU.
    ///
    /// # Errors
    ///
    /// [`ExecError::Trap`] carries the guest trap that terminated execution;
    /// [`ExecError::Sim`] reports a violated simulator invariant (a tool
    /// bug, classified as infrastructure — never a guest outcome).
    #[allow(clippy::too_many_arguments)]
    pub fn step<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<StepResult, ExecError> {
        match self {
            Cpu::Atomic(c) => c.step(core, arch, mem, kernel, hooks, now),
            Cpu::Timing(c) => c.step(core, arch, mem, kernel, hooks, now),
            Cpu::InOrder(c) => c.step(core, arch, mem, kernel, hooks, now),
            Cpu::O3(c) => c.step(core, arch, mem, kernel, hooks, now),
        }
    }

    /// Discards speculative state (no-op on in-order models). Must be called
    /// before delivering an asynchronous event (timer interrupt) and before
    /// switching models.
    pub fn flush(&mut self, arch: &ArchState) {
        if let Cpu::O3(c) = self {
            c.flush(arch);
        }
    }

    /// Whether the CPU has uncommitted speculative work in flight.
    pub fn has_in_flight(&self) -> bool {
        matches!(self, Cpu::O3(c) if c.in_flight() > 0)
    }

    /// Instructions committed by this CPU instance (only the O3 engine
    /// tracks this internally; in-order models report through
    /// [`StepResult::committed`]).
    pub fn o3_stats(&self) -> Option<crate::o3::O3Stats> {
        match self {
            Cpu::O3(c) => Some(*c.stats()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_through_new() {
        for kind in [CpuKind::Atomic, CpuKind::Timing, CpuKind::InOrder, CpuKind::O3] {
            assert_eq!(Cpu::new(kind, 0x1_0000).kind(), kind);
        }
    }

    #[test]
    fn kind_display_is_lowercase() {
        assert_eq!(CpuKind::O3.to_string(), "o3");
        assert_eq!(CpuKind::InOrder.to_string(), "inorder");
    }
}
