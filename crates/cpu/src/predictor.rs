//! Tournament branch predictor (the Sec. IV configuration).
//!
//! The classic Alpha-21264-style design: a *local* predictor (per-branch
//! history indexing a pattern table of 2-bit counters), a *global* predictor
//! (gshare over a global history register), and a *chooser* that learns per
//! branch-history which component to trust. A direct-mapped BTB supplies
//! targets and a return-address stack handles `bsr`/`ret`.

const LOCAL_HIST_BITS: usize = 10;
const LOCAL_ENTRIES: usize = 1 << LOCAL_HIST_BITS;
const GLOBAL_BITS: usize = 12;
const GLOBAL_ENTRIES: usize = 1 << GLOBAL_BITS;
const BTB_ENTRIES: usize = 1 << 10;
const RAS_DEPTH: usize = 16;

/// Saturating 2-bit counter helpers.
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional branches predicted.
    pub lookups: u64,
    /// Correct direction predictions.
    pub correct: u64,
    /// Mispredictions (direction or target).
    pub mispredicts: u64,
}

impl PredictorStats {
    /// Prediction accuracy in `[0, 1]`; 1.0 when nothing was predicted.
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }
}

/// The tournament predictor with BTB and return-address stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TournamentPredictor {
    local_history: Vec<u16>,
    local_counters: Vec<u8>,
    global_counters: Vec<u8>,
    chooser: Vec<u8>,
    global_history: u32,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    ras: Vec<u64>,
    stats: PredictorStats,
}

impl TournamentPredictor {
    /// A predictor with all counters weakly-not-taken and an empty BTB.
    pub fn new() -> TournamentPredictor {
        TournamentPredictor {
            local_history: vec![0; LOCAL_ENTRIES],
            local_counters: vec![1; LOCAL_ENTRIES],
            global_counters: vec![1; GLOBAL_ENTRIES],
            chooser: vec![1; GLOBAL_ENTRIES],
            global_history: 0,
            btb_tags: vec![u64::MAX; BTB_ENTRIES],
            btb_targets: vec![0; BTB_ENTRIES],
            ras: Vec::with_capacity(RAS_DEPTH),
            stats: PredictorStats::default(),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn local_index(pc: u64) -> usize {
        (pc >> 2) as usize % LOCAL_ENTRIES
    }

    fn global_index(&self) -> usize {
        (self.global_history as usize) % GLOBAL_ENTRIES
    }

    fn gshare_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ self.global_history as usize) % GLOBAL_ENTRIES
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict_direction(&mut self, pc: u64) -> bool {
        self.stats.lookups += 1;
        let li = Self::local_index(pc);
        let lp = self.local_counters[self.local_history[li] as usize % LOCAL_ENTRIES] >= 2;
        let gp = self.global_counters[self.gshare_index(pc)] >= 2;
        let use_global = self.chooser[self.global_index()] >= 2;
        if use_global {
            gp
        } else {
            lp
        }
    }

    /// Updates the predictor with the resolved direction of the branch at
    /// `pc`; `predicted` is what [`predict_direction`] returned earlier.
    ///
    /// [`predict_direction`]: TournamentPredictor::predict_direction
    pub fn update_direction(&mut self, pc: u64, taken: bool, predicted: bool) {
        if predicted == taken {
            self.stats.correct += 1;
        } else {
            self.stats.mispredicts += 1;
        }
        let li = Self::local_index(pc);
        let lhist = self.local_history[li] as usize % LOCAL_ENTRIES;
        let lp = self.local_counters[lhist] >= 2;
        let gi = self.gshare_index(pc);
        let gp = self.global_counters[gi] >= 2;

        // Chooser learns toward whichever component was right.
        if lp != gp {
            let ci = self.global_index();
            bump(&mut self.chooser[ci], gp == taken);
        }
        bump(&mut self.local_counters[lhist], taken);
        bump(&mut self.global_counters[gi], taken);
        self.local_history[li] =
            ((self.local_history[li] << 1) | taken as u16) & (LOCAL_ENTRIES as u16 - 1);
        self.global_history =
            ((self.global_history << 1) | taken as u32) & (GLOBAL_ENTRIES as u32 - 1);
    }

    /// BTB lookup for the instruction at `pc`.
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        let i = (pc >> 2) as usize % BTB_ENTRIES;
        (self.btb_tags[i] == pc).then(|| self.btb_targets[i])
    }

    /// Installs/updates a BTB entry.
    pub fn update_target(&mut self, pc: u64, target: u64) {
        let i = (pc >> 2) as usize % BTB_ENTRIES;
        self.btb_tags[i] = pc;
        self.btb_targets[i] = target;
    }

    /// Pushes a return address (on `bsr`/`jsr`).
    pub fn push_return(&mut self, addr: u64) {
        if self.ras.len() == RAS_DEPTH {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    /// Pops the predicted return address (on `ret`).
    pub fn pop_return(&mut self) -> Option<u64> {
        self.ras.pop()
    }

    /// Records a direction misprediction discovered without a lookup (e.g.
    /// a BTB-missing taken branch in the pipelined models).
    pub fn note_mispredict(&mut self) {
        self.stats.mispredicts += 1;
    }
}

impl Default for TournamentPredictor {
    fn default() -> TournamentPredictor {
        TournamentPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut p = TournamentPredictor::new();
        let pc = 0x1000;
        // The local component indexes counters by branch history, so it
        // needs the history register to saturate before it stabilizes.
        for _ in 0..32 {
            let pred = p.predict_direction(pc);
            p.update_direction(pc, true, pred);
        }
        assert!(p.predict_direction(pc));
        assert!(p.stats().accuracy() > 0.5);
    }

    #[test]
    fn learns_alternating_pattern_via_local_history() {
        let mut p = TournamentPredictor::new();
        let pc = 0x2000;
        let mut taken = false;
        // Train on a strict alternation; the local component's
        // history-indexed counters capture period-2 patterns.
        for _ in 0..200 {
            let pred = p.predict_direction(pc);
            p.update_direction(pc, taken, pred);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..50 {
            let pred = p.predict_direction(pc);
            if pred == taken {
                correct += 1;
            }
            p.update_direction(pc, taken, pred);
            taken = !taken;
        }
        assert!(correct >= 45, "only {correct}/50 correct on alternation");
    }

    #[test]
    fn btb_round_trips_targets() {
        let mut p = TournamentPredictor::new();
        assert_eq!(p.predict_target(0x4000), None);
        p.update_target(0x4000, 0x5000);
        assert_eq!(p.predict_target(0x4000), Some(0x5000));
        // Aliasing entry replaces.
        let alias = 0x4000 + (BTB_ENTRIES as u64) * 4;
        p.update_target(alias, 0x6000);
        assert_eq!(p.predict_target(0x4000), None);
    }

    #[test]
    fn ras_is_lifo_and_bounded() {
        let mut p = TournamentPredictor::new();
        for i in 0..20u64 {
            p.push_return(i);
        }
        assert_eq!(p.pop_return(), Some(19));
        assert_eq!(p.pop_return(), Some(18));
        let mut n = 2;
        while p.pop_return().is_some() {
            n += 1;
        }
        assert_eq!(n, RAS_DEPTH, "stack depth must be bounded");
    }
}
