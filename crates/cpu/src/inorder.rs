//! The pipelined in-order CPU model.
//!
//! Functionally identical to the simple models (it funnels through
//! [`step_instruction`]); its contribution is a five-stage-pipeline *timing*
//! account: steady-state CPI of 1, instruction/data cache miss stalls, a
//! load-use interlock, multi-cycle execution units, and a tournament branch
//! predictor charging a redirect penalty on mispredictions.

use crate::exec::{exec_latency, src_regs, step_instruction};
use crate::hooks::FaultHooks;
use crate::predictor::TournamentPredictor;
use crate::StepResult;
use gemfi_isa::{ArchState, ExecError, Instr, JumpKind, RegRef};
use gemfi_kernel::Kernel;
use gemfi_mem::{MemorySystem, Ticks};

/// Fetch-redirect penalty on a branch misprediction (pipeline refill).
const MISPREDICT_PENALTY: Ticks = 3;

/// Pipelined in-order core with a tournament predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct InOrderCpu {
    predictor: TournamentPredictor,
    last_load_dest: Option<RegRef>,
}

impl InOrderCpu {
    /// A fresh core with a cold predictor.
    pub fn new() -> InOrderCpu {
        InOrderCpu { predictor: TournamentPredictor::new(), last_load_dest: None }
    }

    /// The branch predictor (stats inspection).
    pub fn predictor(&self) -> &TournamentPredictor {
        &self.predictor
    }

    /// Executes one instruction and charges pipeline timing.
    ///
    /// # Errors
    ///
    /// [`ExecError::Trap`] with the guest trap that terminated execution.
    /// The hazard/predictor logic tolerates arbitrary corrupted PCs and
    /// register selections (the untimed peek falls back to a zero word and
    /// decode failures become `None`), so this model never reports
    /// `ExecError::Sim`.
    pub fn step<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<StepResult, ExecError> {
        let l1i_hit = mem.config().l1i.hit_latency;
        let l1d_hit = mem.config().l1d.hit_latency;

        // One untimed peek at the upcoming word feeds both the direction
        // predictor and the load-use interlock. The predecode cache serves
        // it for free when warm; cold (or with the cache disabled) it falls
        // back to a functional read + decode. Neither path touches timing
        // or memory statistics — the timed fetch below is the
        // architectural one.
        let peeked = mem.peek_predecoded(arch.pc).or_else(|| {
            let word = mem.read_u32_functional(arch.pc).unwrap_or(0);
            gemfi_isa::decode(gemfi_isa::RawInstr(word)).ok()
        });

        // Direction prediction must be made before resolution.
        let prediction = match peeked {
            Some(i) if i.is_cond_branch() => Some(self.predictor.predict_direction(arch.pc)),
            _ => None,
        };

        // Load-use interlock: does this instruction consume the previous
        // load's destination?
        let mut stall: Ticks = 0;
        if let (Some(dest), Some(i)) = (self.last_load_dest, peeked) {
            if src_regs(&i).iter().flatten().any(|&s| s == dest) {
                stall += 1;
            }
        }

        let rec = step_instruction(core, arch, mem, kernel, hooks, now)?;

        // Cache-miss stalls: anything beyond an L1 hit stalls the pipe.
        stall += rec.fetch_latency.saturating_sub(l1i_hit);
        if rec.mem_latency > 0 {
            stall += rec.mem_latency.saturating_sub(l1d_hit);
        }
        // Multi-cycle execution.
        stall += exec_latency(&rec.instr).saturating_sub(1);

        // Control flow: resolve predictions and charge redirects.
        match rec.instr {
            Instr::CondBr { .. } | Instr::FpCondBr { .. } => {
                let predicted = prediction.unwrap_or(false);
                self.predictor.update_direction(rec.pc, rec.taken, predicted);
                if predicted != rec.taken {
                    stall += MISPREDICT_PENALTY;
                } else if rec.taken {
                    // Direction right, but the target comes from the BTB.
                    if self.predictor.predict_target(rec.pc) != Some(rec.next_pc) {
                        stall += MISPREDICT_PENALTY;
                        self.predictor.update_target(rec.pc, rec.next_pc);
                    }
                }
            }
            Instr::Bsr { .. } => {
                self.predictor.push_return(rec.pc.wrapping_add(4));
            }
            Instr::Jump { kind, .. } => match kind {
                JumpKind::Ret => {
                    if self.predictor.pop_return() != Some(rec.next_pc) {
                        stall += MISPREDICT_PENALTY;
                        self.predictor.note_mispredict();
                    }
                }
                JumpKind::Jsr => {
                    self.predictor.push_return(rec.pc.wrapping_add(4));
                    if self.predictor.predict_target(rec.pc) != Some(rec.next_pc) {
                        stall += MISPREDICT_PENALTY;
                        self.predictor.update_target(rec.pc, rec.next_pc);
                    }
                }
                JumpKind::Jmp => {
                    if self.predictor.predict_target(rec.pc) != Some(rec.next_pc) {
                        stall += MISPREDICT_PENALTY;
                        self.predictor.update_target(rec.pc, rec.next_pc);
                    }
                }
            },
            _ => {}
        }

        self.last_load_dest = rec.load_dest;
        Ok(StepResult { ticks: 1 + stall, committed: 1, event: rec.event })
    }
}

impl Default for InOrderCpu {
    fn default() -> InOrderCpu {
        InOrderCpu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHooks;
    use crate::StepEvent;
    use gemfi_asm::{Assembler, Reg};
    use gemfi_mem::MemConfig;

    fn boot(program: &gemfi_asm::Program) -> (ArchState, MemorySystem, Kernel) {
        let mut mem = MemorySystem::new(MemConfig { phys_size: 8 << 20, ..MemConfig::default() });
        let mut text = Vec::new();
        for w in program.text_words() {
            text.extend_from_slice(&w.to_le_bytes());
        }
        mem.write_slice(gemfi_asm::TEXT_BASE, &text).unwrap();
        mem.write_slice(program.data_base(), program.data_bytes()).unwrap();
        let mut arch = ArchState::default();
        let kernel =
            Kernel::boot(&mut arch, &mut mem, program.entry(), program.image_end(), 0).unwrap();
        (arch, mem, kernel)
    }

    fn loop_program() -> gemfi_asm::Program {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0);
        a.li(Reg::R2, 300);
        a.label("loop");
        a.addq_lit(Reg::R1, 1, Reg::R1);
        a.subq(Reg::R2, Reg::R1, Reg::R3);
        a.bgt(Reg::R3, "loop");
        a.mov(Reg::R1, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        a.finish().unwrap()
    }

    #[test]
    fn inorder_matches_atomic_functionally() {
        let p = loop_program();

        let run = |use_inorder: bool| -> u64 {
            let (mut arch, mut mem, mut kernel) = boot(&p);
            let mut io = InOrderCpu::new();
            let mut at = crate::simple::AtomicCpu;
            let mut now = 0;
            loop {
                let r = if use_inorder {
                    io.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, now).unwrap()
                } else {
                    at.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, now).unwrap()
                };
                now += r.ticks;
                if let StepEvent::Halted(code) = r.event {
                    return code;
                }
            }
        };
        assert_eq!(run(true), run(false));
        assert_eq!(run(true), 300);
    }

    #[test]
    fn predictor_learns_the_loop_branch() {
        let p = loop_program();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut cpu = InOrderCpu::new();
        let mut now = 0;
        loop {
            let r = cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, now).unwrap();
            now += r.ticks;
            if matches!(r.event, StepEvent::Halted(_)) {
                break;
            }
        }
        let s = cpu.predictor().stats();
        assert!(s.lookups >= 300);
        assert!(s.accuracy() > 0.85, "accuracy {}", s.accuracy());
    }

    #[test]
    fn inorder_is_slower_than_one_cpi_on_cold_caches() {
        let p = loop_program();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut cpu = InOrderCpu::new();
        let mut ticks = 0;
        let mut instrs = 0;
        loop {
            let r = cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, ticks).unwrap();
            ticks += r.ticks;
            instrs += r.committed;
            if matches!(r.event, StepEvent::Halted(_)) {
                break;
            }
        }
        assert!(ticks > instrs);
    }
}
