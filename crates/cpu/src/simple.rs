//! The two "simple" CPU models: atomic and timing.

use crate::exec::step_instruction;
use crate::hooks::FaultHooks;
use crate::StepResult;
use gemfi_isa::{ArchState, ExecError};
use gemfi_kernel::Kernel;
use gemfi_mem::{MemorySystem, Ticks};

/// gem5's *Atomic Simple* analogue: one instruction per tick, memory
/// accesses complete instantaneously (cache statistics are still recorded,
/// as in gem5's atomic mode).
///
/// This is the model campaigns switch to after the injected fault commits or
/// squashes, to fast-forward the remainder of the application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtomicCpu;

impl AtomicCpu {
    /// Executes one instruction in one tick.
    ///
    /// # Errors
    ///
    /// [`ExecError::Trap`] with the guest trap that terminated execution
    /// (this model has no internal speculative state, so it never reports
    /// `ExecError::Sim`).
    pub fn step<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<StepResult, ExecError> {
        let rec = step_instruction(core, arch, mem, kernel, hooks, now)?;
        Ok(StepResult { ticks: 1, committed: 1, event: rec.event })
    }
}

/// gem5's *Timing Simple* analogue: functional execution, but every step
/// pays the modeled instruction-fetch and data-access latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingCpu;

impl TimingCpu {
    /// Executes one instruction, charging memory timing.
    ///
    /// # Errors
    ///
    /// [`ExecError::Trap`] with the guest trap that terminated execution
    /// (this model has no internal speculative state, so it never reports
    /// `ExecError::Sim`).
    pub fn step<H: FaultHooks>(
        &mut self,
        core: usize,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        hooks: &mut H,
        now: Ticks,
    ) -> Result<StepResult, ExecError> {
        let rec = step_instruction(core, arch, mem, kernel, hooks, now)?;
        Ok(StepResult {
            ticks: rec.fetch_latency + 1 + rec.mem_latency,
            committed: 1,
            event: rec.event,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHooks;
    use crate::StepEvent;
    use gemfi_asm::{Assembler, Reg};
    use gemfi_isa::Trap;
    use gemfi_mem::MemConfig;

    fn boot(program: &gemfi_asm::Program) -> (ArchState, MemorySystem, Kernel) {
        let mut mem = MemorySystem::new(MemConfig { phys_size: 8 << 20, ..MemConfig::default() });
        let mut text = Vec::new();
        for w in program.text_words() {
            text.extend_from_slice(&w.to_le_bytes());
        }
        mem.write_slice(gemfi_asm::TEXT_BASE, &text).unwrap();
        mem.write_slice(program.data_base(), program.data_bytes()).unwrap();
        let mut arch = ArchState::default();
        let kernel =
            Kernel::boot(&mut arch, &mut mem, program.entry(), program.image_end(), 0).unwrap();
        (arch, mem, kernel)
    }

    /// Runs to halt, or returns a watchdog-style `Trap::WatchdogTimeout`
    /// when the budget runs out (hangs are an outcome, never a panic).
    fn try_run_to_halt(
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        max: u64,
    ) -> Result<u64, ExecError> {
        let mut cpu = AtomicCpu;
        let mut now = 0;
        for _ in 0..max {
            let r = cpu.step(0, arch, mem, kernel, &mut NoopHooks, now)?;
            now += r.ticks;
            if let StepEvent::Halted(code) = r.event {
                return Ok(code);
            }
        }
        Err(ExecError::Trap(Trap::WatchdogTimeout))
    }

    fn run_to_halt(
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        kernel: &mut Kernel,
        max: u64,
    ) -> u64 {
        try_run_to_halt(arch, mem, kernel, max).expect("program halts cleanly")
    }

    #[test]
    fn atomic_runs_a_loop_to_completion() {
        let mut a = Assembler::new();
        // sum = 0; for i in 1..=10 { sum += i }; exit(sum)
        a.li(Reg::R1, 0); // sum
        a.li(Reg::R2, 1); // i
        a.li(Reg::R3, 10);
        a.label("loop");
        a.addq(Reg::R1, Reg::R2, Reg::R1);
        a.addq_lit(Reg::R2, 1, Reg::R2);
        a.cmple(Reg::R2, Reg::R3, Reg::R4);
        a.bne(Reg::R4, "loop");
        a.mov(Reg::R1, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        assert_eq!(run_to_halt(&mut arch, &mut mem, &mut kernel, 10_000), 55);
    }

    #[test]
    fn fp_arithmetic_works_end_to_end() {
        use gemfi_asm::FReg;
        let mut a = Assembler::new();
        a.lif(FReg::F1, 1.5, Reg::R9);
        a.lif(FReg::F2, 2.5, Reg::R9);
        a.addt(FReg::F1, FReg::F2, FReg::F3); // 4.0
        a.mult(FReg::F3, FReg::F3, FReg::F3); // 16.0
        a.cvttq(FReg::F3, FReg::F4);
        a.ftoit(FReg::F4, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        assert_eq!(run_to_halt(&mut arch, &mut mem, &mut kernel, 1000), 16);
    }

    #[test]
    fn memory_rw_and_console() {
        let mut a = Assembler::new();
        a.dsym("buf");
        a.data_u64(&[0]);
        a.la(Reg::R1, "buf");
        a.li(Reg::R2, 0x68); // 'h'
        a.stq(Reg::R2, 0, Reg::R1);
        a.ldq(Reg::A0, 0, Reg::R1);
        a.putc();
        a.exit(0);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        run_to_halt(&mut arch, &mut mem, &mut kernel, 1000);
        assert_eq!(kernel.console(), b"h");
    }

    #[test]
    fn subroutine_call_and_return() {
        let mut a = Assembler::new();
        a.entry("main");
        a.label("double");
        a.addq(Reg::A0, Reg::A0, Reg::V0);
        a.ret();
        a.label("main");
        a.li(Reg::A0, 21);
        a.call("double");
        a.mov(Reg::V0, Reg::A0);
        a.pal(gemfi_isa::PalFunc::Exit);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        assert_eq!(run_to_halt(&mut arch, &mut mem, &mut kernel, 1000), 42);
    }

    #[test]
    fn timing_model_charges_memory_latency() {
        let mut a = Assembler::new();
        a.dsym("x");
        a.data_u64(&[5]);
        a.la(Reg::R1, "x");
        a.ldq(Reg::R2, 0, Reg::R1);
        a.exit(0);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut cpu = TimingCpu;
        let mut total = 0;
        let mut steps = 0;
        loop {
            let r = cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, total).unwrap();
            total += r.ticks;
            steps += 1;
            if matches!(r.event, StepEvent::Halted(_)) {
                break;
            }
        }
        assert!(total > steps, "timing model must charge more than 1 tick/instr on cold caches");
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut a = Assembler::new();
        a.emit_raw(0x0c00_0000); // opcode 0x03: unimplemented
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let err =
            AtomicCpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, 0).unwrap_err();
        assert!(matches!(err, ExecError::Trap(Trap::IllegalInstruction { .. })));
    }

    #[test]
    fn wild_store_traps_unmapped() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0x40_0000_0000); // far outside 8 MiB
        a.stq(Reg::R2, 0, Reg::R1);
        let p = a.finish().unwrap();
        let (mut arch, mut mem, mut kernel) = boot(&p);
        let mut cpu = AtomicCpu;
        let mut err = None;
        for now in 0..10 {
            match cpu.step(0, &mut arch, &mut mem, &mut kernel, &mut NoopHooks, now) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(ExecError::Trap(Trap::UnmappedAccess { .. }))), "{err:?}");
    }
}
