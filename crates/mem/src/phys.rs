//! Physical memory backing store.

use gemfi_isa::Trap;

/// Byte-addressable guest physical memory.
///
/// All accesses are bounds-checked: touching an address outside the
/// configured size raises [`Trap::UnmappedAccess`], which is how corrupted
/// base registers and displacements become the paper's segmentation-fault
/// crashes. Multi-byte accesses additionally require natural alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysMem {
    bytes: Vec<u8>,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> PhysMem {
        PhysMem { bytes: vec![0; size] }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, width: u64, pc: u64) -> Result<usize, Trap> {
        if !addr.is_multiple_of(width) {
            return Err(Trap::MisalignedAccess { addr, pc });
        }
        if addr.checked_add(width).is_none_or(|end| end > self.size()) {
            return Err(Trap::UnmappedAccess { addr, pc });
        }
        Ok(addr as usize)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when out of bounds.
    pub fn read_u8(&self, addr: u64, pc: u64) -> Result<u8, Trap> {
        let i = self.check(addr, 1, pc)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when out of bounds.
    pub fn write_u8(&mut self, addr: u64, value: u8, pc: u64) -> Result<(), Trap> {
        let i = self.check(addr, 1, pc)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32(&self, addr: u64, pc: u64) -> Result<u32, Trap> {
        let i = self.check(addr, 4, pc)?;
        Ok(u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap()))
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<(), Trap> {
        let i = self.check(addr, 4, pc)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64(&self, addr: u64, pc: u64) -> Result<u64, Trap> {
        let i = self.check(addr, 8, pc)?;
        Ok(u64::from_le_bytes(self.bytes[i..i + 8].try_into().unwrap()))
    }

    /// Writes a little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<(), Trap> {
        let i = self.check(addr, 8, pc)?;
        self.bytes[i..i + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a byte slice into memory (host-side loader use).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        let end = addr
            .checked_add(data.len() as u64)
            .filter(|&e| e <= self.size())
            .ok_or(Trap::UnmappedAccess { addr, pc: 0 })?;
        self.bytes[addr as usize..end as usize].copy_from_slice(data);
        Ok(())
    }

    /// Reads a byte range out of memory (host-side extraction use).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn read_slice(&self, addr: u64, len: usize) -> Result<&[u8], Trap> {
        let end = addr
            .checked_add(len as u64)
            .filter(|&e| e <= self.size())
            .ok_or(Trap::UnmappedAccess { addr, pc: 0 })?;
        Ok(&self.bytes[addr as usize..end as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = PhysMem::new(4096);
        m.write_u8(1, 0xab, 0).unwrap();
        assert_eq!(m.read_u8(1, 0).unwrap(), 0xab);
        m.write_u32(4, 0xdead_beef, 0).unwrap();
        assert_eq!(m.read_u32(4, 0).unwrap(), 0xdead_beef);
        m.write_u64(8, u64::MAX - 1, 0).unwrap();
        assert_eq!(m.read_u64(8, 0).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(64);
        m.write_u64(0, 0x0102_0304_0506_0708, 0).unwrap();
        assert_eq!(m.read_u8(0, 0).unwrap(), 0x08);
        assert_eq!(m.read_u8(7, 0).unwrap(), 0x01);
        assert_eq!(m.read_u32(0, 0).unwrap(), 0x0506_0708);
    }

    #[test]
    fn out_of_bounds_traps_unmapped() {
        let mut m = PhysMem::new(16);
        assert!(matches!(m.read_u64(16, 5), Err(Trap::UnmappedAccess { addr: 16, pc: 5 })));
        assert!(matches!(m.write_u32(16, 0, 0), Err(Trap::UnmappedAccess { .. })));
        assert!(matches!(m.read_u8(u64::MAX, 0), Err(Trap::UnmappedAccess { .. })));
    }

    #[test]
    fn misalignment_traps() {
        let m = PhysMem::new(64);
        assert!(matches!(m.read_u64(4, 0), Err(Trap::MisalignedAccess { addr: 4, .. })));
        assert!(matches!(m.read_u32(2, 0), Err(Trap::MisalignedAccess { .. })));
    }

    #[test]
    fn slice_io() {
        let mut m = PhysMem::new(64);
        m.write_slice(10, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_slice(10, 3).unwrap(), &[1, 2, 3]);
        assert!(m.write_slice(62, &[0; 4]).is_err());
        assert!(m.read_slice(62, 4).is_err());
    }
}
