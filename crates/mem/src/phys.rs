//! Physical memory backing store — a paged, copy-on-write page table.
//!
//! Guest memory is carved into 4 KiB pages, each behind an [`Arc`]. Cloning
//! a [`PhysMem`] therefore copies only the page *table* (one `Arc` bump per
//! page), and a clone's writes copy just the pages they dirty
//! ([`Arc::make_mut`]) — fork-style semantics, which is what makes
//! checkpoint fan-out O(dirty pages) instead of O(memory size): thousands
//! of experiments can restore from one shared snapshot and each pays only
//! for the working set it actually touches. Untouched memory additionally
//! shares one process-wide zero page, so a freshly allocated guest costs a
//! page table, not an image.
//!
//! The paging is invisible to the architecture: all accesses are
//! bounds-checked against the configured size (*not* the page-rounded
//! size), so touching an address outside it raises [`Trap::UnmappedAccess`]
//! exactly as the flat implementation did — corrupted base registers and
//! displacements still become the paper's segmentation-fault crashes.
//! Multi-byte accesses require natural alignment, which also guarantees a
//! `u32`/`u64` access never straddles a page; only the bulk slice
//! operations walk page boundaries.

use gemfi_isa::Trap;
use std::sync::{Arc, OnceLock};

/// Page size in bytes. 4 KiB balances snapshot granularity (copy cost per
/// dirtied page) against page-table size (entries per GiB).
pub const PAGE_SIZE: usize = 4096;
const PAGE_SHIFT: u32 = PAGE_SIZE.trailing_zeros();

/// One page of guest memory.
#[derive(Clone, PartialEq, Eq)]
struct Page([u8; PAGE_SIZE]);

impl Page {
    fn zeroed() -> Page {
        Page([0; PAGE_SIZE])
    }
}

/// The process-wide shared all-zeros page backing untouched memory.
fn zero_page() -> &'static Arc<Page> {
    static ZERO: OnceLock<Arc<Page>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new(Page::zeroed()))
}

/// Byte-addressable guest physical memory (paged, copy-on-write).
pub struct PhysMem {
    pages: Vec<Arc<Page>>,
    size: u64,
    /// Clone depth: `true` shares pages copy-on-write; `false` deep-copies
    /// every page, reproducing the flat `Vec<u8>` clone cost (the
    /// `restore_fanout` ablation baseline). Semantics are identical either
    /// way — only `clone()` differs.
    cow: bool,
}

impl PhysMem {
    /// Allocates `size` bytes of zeroed memory (O(page-table): every page
    /// starts as the shared zero page).
    pub fn new(size: usize) -> PhysMem {
        PhysMem::with_cow(size, true)
    }

    /// [`PhysMem::new`] with an explicit clone policy (see
    /// [`crate::MemConfig::cow`]).
    pub fn with_cow(size: usize, cow: bool) -> PhysMem {
        let pages = size.div_ceil(PAGE_SIZE);
        PhysMem { pages: vec![Arc::clone(zero_page()); pages], size: size as u64, cow }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Pages this instance owns privately (dirtied relative to the shared
    /// zero page and any snapshot siblings). Diagnostic only.
    pub fn owned_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| !Arc::ptr_eq(p, zero_page()) && Arc::strong_count(p) == 1)
            .count()
    }

    /// Total pages in the page table.
    pub fn total_pages(&self) -> usize {
        self.pages.len()
    }

    /// Pages whose frames this instance shares with `other` (the same `Arc`
    /// at the same page index). This is the fork-at-injection footprint
    /// question — how much of a forked suffix's memory is still the trunk's
    /// — so pristine zero pages count too: sharing is sharing, whatever the
    /// frame holds. Diagnostic only, like [`PhysMem::owned_pages`].
    pub fn shared_pages_with(&self, other: &PhysMem) -> usize {
        self.pages.iter().zip(&other.pages).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    fn check(&self, addr: u64, width: u64, pc: u64) -> Result<usize, Trap> {
        if !addr.is_multiple_of(width) {
            return Err(Trap::MisalignedAccess { addr, pc });
        }
        if addr.checked_add(width).is_none_or(|end| end > self.size) {
            return Err(Trap::UnmappedAccess { addr, pc });
        }
        Ok(addr as usize)
    }

    /// Splits a checked address into page index and offset. Natural
    /// alignment means a width-≤-`PAGE_SIZE` access at an aligned address
    /// stays inside one page.
    #[inline]
    fn locate(i: usize) -> (usize, usize) {
        (i >> PAGE_SHIFT, i & (PAGE_SIZE - 1))
    }

    #[inline]
    fn page_mut(&mut self, pi: usize) -> &mut [u8; PAGE_SIZE] {
        &mut Arc::make_mut(&mut self.pages[pi]).0
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when out of bounds.
    pub fn read_u8(&self, addr: u64, pc: u64) -> Result<u8, Trap> {
        let (pi, off) = Self::locate(self.check(addr, 1, pc)?);
        Ok(self.pages[pi].0[off])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when out of bounds.
    pub fn write_u8(&mut self, addr: u64, value: u8, pc: u64) -> Result<(), Trap> {
        let (pi, off) = Self::locate(self.check(addr, 1, pc)?);
        self.page_mut(pi)[off] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32(&self, addr: u64, pc: u64) -> Result<u32, Trap> {
        let (pi, off) = Self::locate(self.check(addr, 4, pc)?);
        // Infallible: check() proved the aligned 4-byte window is in bounds,
        // so the slice is exactly 4 bytes and never crosses a page.
        #[allow(clippy::unwrap_used)]
        Ok(u32::from_le_bytes(self.pages[pi].0[off..off + 4].try_into().unwrap()))
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<(), Trap> {
        let (pi, off) = Self::locate(self.check(addr, 4, pc)?);
        self.page_mut(pi)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads a little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64(&self, addr: u64, pc: u64) -> Result<u64, Trap> {
        let (pi, off) = Self::locate(self.check(addr, 8, pc)?);
        // Infallible: check() proved the aligned 8-byte window is in bounds,
        // so the slice is exactly 8 bytes and never crosses a page.
        #[allow(clippy::unwrap_used)]
        Ok(u64::from_le_bytes(self.pages[pi].0[off..off + 8].try_into().unwrap()))
    }

    /// Writes a little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<(), Trap> {
        let (pi, off) = Self::locate(self.check(addr, 8, pc)?);
        self.page_mut(pi)[off..off + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<(), Trap> {
        if addr.checked_add(len as u64).is_none_or(|end| end > self.size) {
            return Err(Trap::UnmappedAccess { addr, pc: 0 });
        }
        Ok(())
    }

    /// Copies a byte slice into memory (host-side loader use), walking page
    /// boundaries. Zero chunks aimed at still-pristine (shared-zero) pages
    /// are skipped without dirtying them, so bulk-loading a sparse image —
    /// the checkpoint decode path — materializes only its nonzero pages.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        self.check_range(addr, data.len())?;
        let (mut pi, mut off) = Self::locate(addr as usize);
        let mut data = data;
        while !data.is_empty() {
            let n = data.len().min(PAGE_SIZE - off);
            let (chunk, rest) = data.split_at(n);
            let pristine = Arc::ptr_eq(&self.pages[pi], zero_page());
            if !(pristine && chunk.iter().all(|&b| b == 0)) {
                self.page_mut(pi)[off..off + n].copy_from_slice(chunk);
            }
            data = rest;
            pi += 1;
            off = 0;
        }
        Ok(())
    }

    /// Reads a byte range out of memory (host-side extraction use). The
    /// range may cross page boundaries, so the bytes are materialized into
    /// an owned buffer.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn read_slice(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        self.check_range(addr, len)?;
        let mut out = Vec::with_capacity(len);
        let (mut pi, mut off) = Self::locate(addr as usize);
        while out.len() < len {
            let n = (len - out.len()).min(PAGE_SIZE - off);
            out.extend_from_slice(&self.pages[pi].0[off..off + n]);
            pi += 1;
            off = 0;
        }
        Ok(out)
    }
}

impl Clone for PhysMem {
    /// CoW mode: O(page-table) — the snapshot operation behind cheap
    /// checkpoint restores. Flat-ablation mode (`cow = false`): deep-copies
    /// every page, reproducing the old `Vec<u8>` clone cost.
    fn clone(&self) -> PhysMem {
        let pages = if self.cow {
            self.pages.clone()
        } else {
            self.pages.iter().map(|p| Arc::new(Page::clone(p))).collect()
        };
        PhysMem { pages, size: self.size, cow: self.cow }
    }
}

impl PartialEq for PhysMem {
    /// Logical byte equality (page sharing and the clone policy are
    /// representation details, not state).
    fn eq(&self, other: &PhysMem) -> bool {
        self.size == other.size
            && self.pages.iter().zip(&other.pages).all(|(a, b)| Arc::ptr_eq(a, b) || a.0 == b.0)
    }
}

impl Eq for PhysMem {}

impl std::fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhysMem")
            .field("size", &self.size)
            .field("pages", &self.pages.len())
            .field("owned_pages", &self.owned_pages())
            .field("cow", &self.cow)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut m = PhysMem::new(4096);
        m.write_u8(1, 0xab, 0).unwrap();
        assert_eq!(m.read_u8(1, 0).unwrap(), 0xab);
        m.write_u32(4, 0xdead_beef, 0).unwrap();
        assert_eq!(m.read_u32(4, 0).unwrap(), 0xdead_beef);
        m.write_u64(8, u64::MAX - 1, 0).unwrap();
        assert_eq!(m.read_u64(8, 0).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = PhysMem::new(64);
        m.write_u64(0, 0x0102_0304_0506_0708, 0).unwrap();
        assert_eq!(m.read_u8(0, 0).unwrap(), 0x08);
        assert_eq!(m.read_u8(7, 0).unwrap(), 0x01);
        assert_eq!(m.read_u32(0, 0).unwrap(), 0x0506_0708);
    }

    #[test]
    fn out_of_bounds_traps_unmapped() {
        let mut m = PhysMem::new(16);
        assert!(matches!(m.read_u64(16, 5), Err(Trap::UnmappedAccess { addr: 16, pc: 5 })));
        assert!(matches!(m.write_u32(16, 0, 0), Err(Trap::UnmappedAccess { .. })));
        assert!(matches!(m.read_u8(u64::MAX, 0), Err(Trap::UnmappedAccess { .. })));
    }

    #[test]
    fn bounds_are_the_true_size_not_the_page_rounding() {
        // 16 bytes occupy one 4 KiB page, but byte 16 is still unmapped.
        let mut m = PhysMem::new(16);
        assert_eq!(m.total_pages(), 1);
        assert!(m.write_u8(15, 1, 0).is_ok());
        assert!(matches!(m.write_u8(16, 1, 0), Err(Trap::UnmappedAccess { addr: 16, .. })));
        assert!(matches!(m.read_slice(10, 7), Err(Trap::UnmappedAccess { .. })));
    }

    #[test]
    fn misalignment_traps() {
        let m = PhysMem::new(64);
        assert!(matches!(m.read_u64(4, 0), Err(Trap::MisalignedAccess { addr: 4, .. })));
        assert!(matches!(m.read_u32(2, 0), Err(Trap::MisalignedAccess { .. })));
    }

    #[test]
    fn slice_io() {
        let mut m = PhysMem::new(64);
        m.write_slice(10, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_slice(10, 3).unwrap(), &[1, 2, 3]);
        assert!(m.write_slice(62, &[0; 4]).is_err());
        assert!(m.read_slice(62, 4).is_err());
    }

    #[test]
    fn slice_io_across_page_boundaries() {
        let mut m = PhysMem::new(4 * PAGE_SIZE);
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 100).map(|i| (i % 251) as u8).collect();
        m.write_slice(PAGE_SIZE as u64 - 50, &data).unwrap();
        assert_eq!(m.read_slice(PAGE_SIZE as u64 - 50, data.len()).unwrap(), data);
        // Word accesses around the boundary still see the slice's bytes.
        assert_eq!(m.read_u8(PAGE_SIZE as u64, 0).unwrap(), data[50]);
    }

    #[test]
    fn fresh_memory_owns_no_pages() {
        let m = PhysMem::new(1 << 20);
        assert_eq!(m.owned_pages(), 0, "untouched memory shares the zero page");
        assert!(m.read_slice(0, 1 << 20).unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn clone_is_shared_until_written() {
        let mut a = PhysMem::new(8 * PAGE_SIZE);
        a.write_u64(0, 7, 0).unwrap();
        a.write_u64(4 * PAGE_SIZE as u64, 9, 0).unwrap();
        let mut b = a.clone();
        assert_eq!(a.owned_pages(), 0, "snapshot shares every page");
        assert_eq!(b.owned_pages(), 0);
        // Writing through the clone dirties exactly one page of it …
        b.write_u64(0, 100, 0).unwrap();
        assert_eq!(b.owned_pages(), 1);
        assert_eq!(a.owned_pages(), 1, "… and leaves the original sole owner of its twin");
        // … and the original still sees its own data.
        assert_eq!(a.read_u64(0, 0).unwrap(), 7);
        assert_eq!(b.read_u64(0, 0).unwrap(), 100);
        assert_eq!(b.read_u64(4 * PAGE_SIZE as u64, 0).unwrap(), 9);
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }

    #[test]
    fn shared_pages_shrink_as_a_fork_dirties_its_suffix() {
        let mut a = PhysMem::new(8 * PAGE_SIZE);
        a.write_u64(0, 7, 0).unwrap();
        let mut b = a.clone();
        assert_eq!(a.shared_pages_with(&b), 8, "a fresh fork shares its whole table");
        b.write_u64(0, 1, 0).unwrap();
        b.write_u64(3 * PAGE_SIZE as u64, 2, 0).unwrap();
        assert_eq!(a.shared_pages_with(&b), 6, "each dirtied page leaves the shared set");
        assert_eq!(b.shared_pages_with(&a), 6, "the count is symmetric");
        // Two unrelated allocations still share their pristine zero pages.
        let c = PhysMem::new(8 * PAGE_SIZE);
        let d = PhysMem::new(8 * PAGE_SIZE);
        assert_eq!(c.shared_pages_with(&d), 8);
    }

    #[test]
    fn flat_ablation_clone_deep_copies_but_behaves_identically() {
        let mut a = PhysMem::with_cow(4 * PAGE_SIZE, false);
        a.write_u64(8, 42, 0).unwrap();
        let mut b = a.clone();
        assert_eq!(b.owned_pages(), b.total_pages(), "flat clone owns every page");
        b.write_u64(8, 43, 0).unwrap();
        assert_eq!(a.read_u64(8, 0).unwrap(), 42);
        assert_eq!(b.read_u64(8, 0).unwrap(), 43);
        assert_eq!(a.read_slice(0, 32).unwrap()[8], 42);
    }

    #[test]
    fn zero_writes_to_pristine_pages_stay_shared() {
        let mut m = PhysMem::new(4 * PAGE_SIZE);
        m.write_slice(0, &vec![0u8; 3 * PAGE_SIZE]).unwrap();
        assert_eq!(m.owned_pages(), 0, "all-zero bulk writes must not materialize pages");
        let mut data = vec![0u8; 2 * PAGE_SIZE];
        data[PAGE_SIZE + 7] = 3;
        m.write_slice(0, &data).unwrap();
        assert_eq!(m.owned_pages(), 1, "only the page with a nonzero byte materializes");
        assert_eq!(m.read_u8(PAGE_SIZE as u64 + 7, 0).unwrap(), 3);
    }
}
