//! Set-associative tag cache with LRU replacement.

use crate::stats::CacheStats;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line: usize,
    /// Hit latency in ticks.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size / (self.ways * self.line)
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    lru: u64,
}

/// The result of a cache lookup-and-fill operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim had to be written back.
    pub writeback: bool,
    /// The way index the line occupies after the access (hit way, or the
    /// way the fill allocated). Cache-array fault lesions target this slot.
    pub way: u32,
}

/// One level of a write-back, write-allocate set-associative cache.
///
/// The cache tracks tags only; data is always read from / written to the
/// physical memory. That keeps functional state in one place (important for
/// fault injection on memory transactions) while the cache contributes
/// timing and the hit/miss statistics the paper's validation compares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    config: CacheConfig,
    /// `log2(line)` — the line size is asserted to be a power of two.
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the common case);
    /// indexing then needs no division on the fetch/load critical path.
    set_mask: Option<u64>,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size or
    /// a capacity not divisible by `ways * line`).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line.is_power_of_two(), "line size must be a power of two");
        assert!(config.sets() > 0, "capacity must hold at least one set");
        assert_eq!(
            config.sets() * config.ways * config.line,
            config.size,
            "geometry must tile the capacity exactly"
        );
        let sets = config.sets();
        Cache {
            config,
            line_shift: config.line.trailing_zeros(),
            set_mask: sets.is_power_of_two().then(|| sets as u64 - 1),
            lines: vec![Line::default(); sets * config.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        let block = addr >> self.line_shift;
        match self.set_mask {
            Some(mask) => (block & mask) as usize,
            None => (block % self.config.sets() as u64) as usize,
        }
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        let block = addr >> self.line_shift;
        match self.set_mask {
            Some(mask) => block >> (mask + 1).trailing_zeros(),
            None => block / self.config.sets() as u64,
        }
    }

    /// Performs an access: on a miss the line is allocated, evicting the LRU
    /// way (reporting whether the victim was dirty). `write` marks the line
    /// dirty (write-back policy).
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.clock += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];

        if let Some((way, line)) =
            ways.iter_mut().enumerate().find(|(_, l)| l.valid && l.tag == tag)
        {
            line.lru = self.clock;
            line.dirty |= write;
            self.stats.hits += 1;
            return CacheAccess { hit: true, writeback: false, way: way as u32 };
        }

        self.stats.misses += 1;
        // Infallible: associativity is a host config invariant (>= 1 way),
        // not guest-corruptible state.
        #[allow(clippy::expect_used)]
        let (way, victim) = ways
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line { tag, valid: true, dirty: write, lru: self.clock };
        CacheAccess { hit: false, writeback, way: way as u32 }
    }

    /// Set index of `addr` (public so cache-array lesions can be targeted).
    #[inline]
    pub fn set_of(&self, addr: u64) -> u64 {
        self.set_index(addr) as u64
    }

    /// Tag of `addr`.
    #[inline]
    pub fn tag_of(&self, addr: u64) -> u64 {
        self.tag(addr)
    }

    /// Base address of the line identified by `(set, tag)` — the inverse of
    /// [`Cache::set_of`]/[`Cache::tag_of`]. Wrapping arithmetic: a
    /// fault-corrupted tag may put the reconstructed address anywhere, and
    /// an out-of-range result must stay a contained wrong-address, not an
    /// overflow abort.
    #[inline]
    pub fn line_addr(&self, set: u64, tag: u64) -> u64 {
        tag.wrapping_mul(self.config.sets() as u64).wrapping_add(set) << self.line_shift
    }

    /// Byte offset of `addr` within its line.
    #[inline]
    pub fn line_offset(&self, addr: u64) -> u64 {
        addr & ((self.config.line as u64) - 1)
    }

    /// Invalidates everything (used when restoring checkpoints taken with a
    /// different CPU model, mirroring gem5's cache-cold switch).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Returns the cache to its freshly-built state: lines, LRU clock, and
    /// statistics — exactly what [`Cache::new`] with the same geometry
    /// produces. Stronger than [`Cache::invalidate_all`], which keeps the
    /// clock and counters.
    pub fn reset_cold(&mut self) {
        self.invalidate_all();
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines.
        Cache::new(CacheConfig { size: 64, ways: 2, line: 16, hit_latency: 1 })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x10f, false).hit, "same line");
        assert!(!c.access(0x110, false).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line=16, sets=2 → set = (addr/16) % 2).
        let a = 0x000;
        let b = 0x020;
        let d = 0x040;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        assert!(!c.access(d, false).hit); // evicts b
        assert!(c.access(a, false).hit);
        assert!(!c.access(b, false).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x020, false);
        let acc = c.access(0x040, false); // evicts dirty 0x000
        assert!(acc.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_all_forgets_lines() {
        let mut c = tiny();
        c.access(0x0, false);
        c.invalidate_all();
        assert!(!c.access(0x0, false).hit);
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig { size: 100, ways: 2, line: 16, hit_latency: 1 });
    }

    #[test]
    fn set_tag_line_addr_roundtrip() {
        let c = tiny();
        for addr in [0x0u64, 0x10, 0x25, 0x133, 0xffff] {
            let base = c.line_addr(c.set_of(addr), c.tag_of(addr));
            assert_eq!(base + c.line_offset(addr), addr);
        }
    }

    #[test]
    fn access_reports_resident_way() {
        let mut c = tiny();
        let a = c.access(0x000, false);
        assert_eq!(a.way, 0, "a cold set fills way 0 first (lesion tests rely on this)");
        let b = c.access(0x020, false); // same set, other way
        assert_ne!(a.way, b.way);
        assert_eq!(c.access(0x000, false).way, a.way, "hit reports the resident way");
    }
}
