//! Cache-array fault lesions: the memory-hierarchy half of the CHAOS-style
//! fault catalog.
//!
//! A *lesion* is persistent damage to a cache array — a corrupted data
//! entry, a corrupted tag, or a whole stuck-at way. The injection engine
//! fires a cache fault spec exactly once and converts it into a
//! [`CacheLesion`]; the CPU model plants the lesion into the
//! [`MemorySystem`](crate::MemorySystem), which then corrupts every access
//! that lands on the damaged slot until the lesion's budget of corrupting
//! applications (`remaining`) runs out. `remaining == u64::MAX` models a
//! stuck-at (permanent) lesion.
//!
//! The engine lives above this crate, so the spec-level behavior
//! (`Set`/`Xor`/`Flip`/…) and MBU spatial pattern are pre-compiled into a
//! self-contained bit transform ([`LesionEffect`]) — the memory system
//! never needs to know the fault-specification language.

use std::fmt;

/// Which cache array a lesion damages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// The L1 instruction cache.
    L1I,
    /// The L1 data cache.
    L1D,
    /// The unified L2.
    L2,
}

impl CacheLevel {
    /// All levels, display order.
    pub const ALL: [CacheLevel; 3] = [CacheLevel::L1I, CacheLevel::L1D, CacheLevel::L2];

    /// Whether damage at this level can corrupt instruction fetches (and so
    /// must force the predecode cache to be bypassed while active).
    pub fn serves_fetch(self) -> bool {
        matches!(self, CacheLevel::L1I | CacheLevel::L2)
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheLevel::L1I => write!(f, "l1i"),
            CacheLevel::L1D => write!(f, "l1d"),
            CacheLevel::L2 => write!(f, "l2"),
        }
    }
}

impl std::str::FromStr for CacheLevel {
    type Err = ();

    fn from_str(s: &str) -> Result<CacheLevel, ()> {
        match s {
            "l1i" => Ok(CacheLevel::L1I),
            "l1d" => Ok(CacheLevel::L1D),
            "l2" => Ok(CacheLevel::L2),
            _ => Err(()),
        }
    }
}

/// Which slots of the array the lesion covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LesionTarget {
    /// One line: a single (set, way) slot.
    Line {
        /// Set index (wrapped into the level's geometry when applied).
        set: u32,
        /// Way index within the set.
        way: u32,
    },
    /// A whole way across every set (a stuck-at column of the array).
    Way {
        /// Way index within each set.
        way: u32,
    },
}

/// What the lesion damages: the data entry or the tag entry of the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LesionKind {
    /// The data array: values read through (or written through) the slot
    /// are corrupted by the effect.
    Data,
    /// The tag array: the slot answers for the wrong address, so reads that
    /// hit it serve the aliased line's memory instead (wrong-data reads).
    Tag,
}

/// A pre-compiled bit transform: `new = ((old & !set_mask) | (set_value &
/// set_mask)) ^ xor_mask`. Every spec behavior (Set/AllZero/AllOne as
/// overwrites, Xor/Flip as flips) restricted to an MBU spatial-pattern mask
/// compiles to this shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LesionEffect {
    /// Bits overwritten from `set_value`.
    pub set_mask: u64,
    /// Replacement bits (only those under `set_mask` matter).
    pub set_value: u64,
    /// Bits flipped after the overwrite.
    pub xor_mask: u64,
}

impl LesionEffect {
    /// Applies the transform to a 64-bit datum.
    pub fn apply(self, value: u64) -> u64 {
        ((value & !self.set_mask) | (self.set_value & self.set_mask)) ^ self.xor_mask
    }

    /// Whether the transform can never change any value.
    pub fn is_identity(self) -> bool {
        self.xor_mask == 0 && self.set_mask == 0
    }
}

/// Persistent damage to one cache array, planted by the injection engine
/// when a cache fault spec fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLesion {
    /// The damaged array.
    pub level: CacheLevel,
    /// The damaged slot(s).
    pub target: LesionTarget,
    /// Data-entry or tag-entry damage.
    pub kind: LesionKind,
    /// The bit transform applied on each corrupting access.
    pub effect: LesionEffect,
    /// Corrupting applications left before the lesion heals;
    /// `u64::MAX` = stuck-at (never heals).
    pub remaining: u64,
}

impl CacheLesion {
    /// Whether the lesion covers the (set, way) slot of its level.
    pub fn covers(&self, set: u64, way: u32, sets: u64) -> bool {
        match self.target {
            // The spec's set index is wrapped into the level's geometry so
            // an out-of-range index stays a valid (contained) fault.
            LesionTarget::Line { set: s, way: w } => {
                (s as u64) % sets.max(1) == set % sets.max(1) && w == way
            }
            LesionTarget::Way { way: w } => w == way,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_composes_overwrite_then_flip() {
        let e = LesionEffect { set_mask: 0xff00, set_value: 0xab00, xor_mask: 0x0001 };
        assert_eq!(e.apply(0x1234), 0xab35);
        assert!(!e.is_identity());
        assert!(LesionEffect::default().is_identity());
    }

    #[test]
    fn line_target_wraps_out_of_range_sets() {
        let l = CacheLesion {
            level: CacheLevel::L1D,
            target: LesionTarget::Line { set: 300, way: 1 },
            kind: LesionKind::Data,
            effect: LesionEffect { xor_mask: 1, ..LesionEffect::default() },
            remaining: 1,
        };
        // 300 % 256 == 44.
        assert!(l.covers(44, 1, 256));
        assert!(!l.covers(44, 0, 256));
        assert!(!l.covers(45, 1, 256));
    }

    #[test]
    fn way_target_covers_every_set() {
        let l = CacheLesion {
            level: CacheLevel::L2,
            target: LesionTarget::Way { way: 3 },
            kind: LesionKind::Data,
            effect: LesionEffect { set_mask: u64::MAX, ..LesionEffect::default() },
            remaining: u64::MAX,
        };
        assert!(l.covers(0, 3, 2048));
        assert!(l.covers(2047, 3, 2048));
        assert!(!l.covers(5, 2, 2048));
    }

    #[test]
    fn levels_that_serve_fetch() {
        assert!(CacheLevel::L1I.serves_fetch());
        assert!(CacheLevel::L2.serves_fetch());
        assert!(!CacheLevel::L1D.serves_fetch());
        for level in CacheLevel::ALL {
            assert_eq!(level.to_string().parse::<CacheLevel>(), Ok(level));
        }
        assert!("l3".parse::<CacheLevel>().is_err());
    }
}
