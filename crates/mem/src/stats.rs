//! Memory-system statistics.
//!
//! The paper's no-fault validation compares "the statistical results
//! provided by the simulator" between GemFI and unmodified gem5; these
//! counters are that surface for the memory side.

use gemfi_isa::{PredecodeStats, SuperblockStats};
use std::fmt;

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} writebacks={} miss_ratio={:.4}",
            self.hits,
            self.misses,
            self.writebacks,
            self.miss_ratio()
        )
    }
}

/// Aggregate statistics of the whole memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 instruction cache.
    pub l1i: CacheStats,
    /// L1 data cache.
    pub l1d: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Accesses that reached DRAM.
    pub dram_accesses: u64,
    /// Predecoded-instruction cache counters (all zero when disabled).
    pub predecode: PredecodeStats,
    /// Superblock translation cache counters (all zero when disabled).
    pub superblock: SuperblockStats,
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "l1i: {}", self.l1i)?;
        writeln!(f, "l1d: {}", self.l1d)?;
        writeln!(f, "l2:  {}", self.l2)?;
        writeln!(f, "dram accesses: {}", self.dram_accesses)?;
        writeln!(
            f,
            "predecode: hits={} misses={} invalidations={} hit_ratio={:.4}",
            self.predecode.hits,
            self.predecode.misses,
            self.predecode.invalidations,
            self.predecode.hit_ratio()
        )?;
        write!(
            f,
            "superblock: built={} hits={} misses={} uops={} invalidations={} \
             untranslatable={} budget_fallbacks={}",
            self.superblock.blocks_built,
            self.superblock.hits,
            self.superblock.misses,
            self.superblock.uops_executed,
            self.superblock.invalidations,
            self.superblock.untranslatable,
            self.superblock.budget_fallbacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero_accesses() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, writebacks: 0 };
        assert_eq!(s.miss_ratio(), 0.25);
        assert_eq!(s.accesses(), 4);
    }
}
