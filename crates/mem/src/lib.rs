//! Classic memory system for the `ghost5` simulator.
//!
//! Reproduces gem5's *classic* memory model at the fidelity the paper needs:
//! a physical memory backing store, split L1 instruction/data caches, a
//! unified L2, and a fixed-latency DRAM behind them. Caches are tag-only
//! (data lives in [`PhysMem`]); they model hit/miss timing, evictions and
//! writebacks, and export the statistics the paper compares in its
//! validation runs ("the statistical results provided by the simulator …
//! were identical").
//!
//! The simulated configuration mirrors Sec. IV: "a single core ALPHA CPU
//! coupled with a tournament branch predictor, a L1 instruction cache and a
//! L1 data cache and as a L2 cache we used a unified L2 cache".
//!
//! # Example
//!
//! ```
//! use gemfi_mem::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! mem.write_u64_functional(0x1000, 42).unwrap();
//! let (value, latency) = mem.read_u64(0x1000, 0).unwrap();
//! assert_eq!(value, 42);
//! assert!(latency > 0);
//! ```

// Guest-reachable crate: new unwrap/expect sites need an explicit allow with
// a written justification (fault containment, see DESIGN.md).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod config;
mod hierarchy;
mod lesion;
mod phys;
mod snapshot;
mod stats;

pub use cache::{Cache, CacheConfig};
pub use config::MemConfig;
pub use gemfi_isa::{PredecodeStats, SuperblockStats};
pub use hierarchy::{AccessKind, MemorySystem};
pub use lesion::{CacheLesion, CacheLevel, LesionEffect, LesionKind, LesionTarget};
pub use phys::{PhysMem, PAGE_SIZE};
pub use snapshot::{decode_image, encode_image};
pub use stats::{CacheStats, MemStats};

/// Simulation time, in ticks.
pub type Ticks = u64;
