//! Checkpoint encoding for the memory system.
//!
//! Guest physical memory is mostly zeros at checkpoint time, so the image is
//! run-length encoded: a record stream of zero runs and literal chunks. The
//! caches are deliberately *not* checkpointed — a restore starts cache-cold,
//! matching gem5's behaviour when restoring a checkpoint into a different
//! CPU model (the paper's campaign methodology restores into O3 mode).

use crate::config::MemConfig;
use crate::hierarchy::MemorySystem;
use gemfi_isa::codec::{ByteReader, ByteWriter, Codec, CodecError};

const TAG_ZEROS: u8 = 0;
const TAG_LITERAL: u8 = 1;
/// Zero runs shorter than this are cheaper to store literally.
const MIN_RUN: usize = 32;

/// Run-length encodes `bytes` into `w`.
pub fn encode_image(bytes: &[u8], w: &mut ByteWriter) {
    w.put_len(bytes.len());
    let mut i = 0;
    let mut lit_start = 0;
    while i < bytes.len() {
        if bytes[i] == 0 {
            let run_start = i;
            while i < bytes.len() && bytes[i] == 0 {
                i += 1;
            }
            if i - run_start >= MIN_RUN {
                if lit_start < run_start {
                    w.put_u8(TAG_LITERAL);
                    w.put_bytes(&bytes[lit_start..run_start]);
                }
                w.put_u8(TAG_ZEROS);
                w.put_len(i - run_start);
                lit_start = i;
            }
        } else {
            i += 1;
        }
    }
    if lit_start < bytes.len() {
        w.put_u8(TAG_LITERAL);
        w.put_bytes(&bytes[lit_start..]);
    }
}

/// Decodes an image produced by [`encode_image`].
///
/// # Errors
///
/// [`CodecError`] on truncation, bad tags, or a size mismatch.
pub fn decode_image(r: &mut ByteReader<'_>) -> Result<Vec<u8>, CodecError> {
    let total = r.get_len()?;
    // `total` is attacker-controlled until the records check out: cap the
    // preallocation by what the stream could plausibly still hold so a
    // corrupt/truncated file errors out instead of reserving gigabytes
    // up front. Legitimate zero-run expansion beyond this grows amortized.
    let mut out = Vec::with_capacity(total.min(r.remaining()));
    while out.len() < total {
        match r.get_u8()? {
            TAG_ZEROS => {
                let n = r.get_len()?;
                if out.len() + n > total {
                    return Err(CodecError::LengthOverflow { len: n as u64 });
                }
                out.resize(out.len() + n, 0);
            }
            TAG_LITERAL => {
                let b = r.get_bytes()?;
                if out.len() + b.len() > total {
                    return Err(CodecError::LengthOverflow { len: b.len() as u64 });
                }
                out.extend_from_slice(b);
            }
            v => return Err(CodecError::InvalidTag { what: "image record", value: v as u64 }),
        }
    }
    Ok(out)
}

impl Codec for MemorySystem {
    fn encode(&self, w: &mut ByteWriter) {
        let cfg = self.config();
        w.put_u64(cfg.phys_size as u64);
        w.put_u64(cfg.dram_latency);
        for c in [cfg.l1i, cfg.l1d, cfg.l2] {
            w.put_u64(c.size as u64);
            w.put_u64(c.ways as u64);
            w.put_u64(c.line as u64);
            w.put_u64(c.hit_latency);
        }
        // Infallible: the range [0, phys_size) is the memory's own extent.
        #[allow(clippy::expect_used)]
        let image = self.read_slice(0, cfg.phys_size).expect("whole memory");
        encode_image(&image, w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let phys_size = r.get_len()?;
        let dram_latency = r.get_u64()?;
        let mut caches =
            [crate::cache::CacheConfig { size: 0, ways: 0, line: 0, hit_latency: 0 }; 3];
        for c in &mut caches {
            c.size = r.get_len()?;
            c.ways = r.get_len()?;
            c.line = r.get_len()?;
            c.hit_latency = r.get_u64()?;
        }
        // The predecode, CoW, and superblock flags are host-side performance
        // knobs, not machine state — they are not in the stream (keeping the
        // v2 image stable) and restore to the defaults.
        let config = MemConfig {
            phys_size,
            l1i: caches[0],
            l1d: caches[1],
            l2: caches[2],
            dram_latency,
            predecode: MemConfig::default().predecode,
            cow: MemConfig::default().cow,
            superblock: MemConfig::default().superblock,
        };
        let image = decode_image(r)?;
        if image.len() != phys_size {
            return Err(CodecError::LengthOverflow { len: image.len() as u64 });
        }
        let mut mem = MemorySystem::new(config);
        // Infallible: image.len() == phys_size was just checked above.
        #[allow(clippy::expect_used)]
        mem.write_slice(0, &image).expect("image fits by construction");
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_rle_roundtrips_mixed_content() {
        let mut img = vec![0u8; 10_000];
        img[100] = 7;
        img[5000..5100].copy_from_slice(&[3; 100]);
        img[9999] = 1;
        let mut w = ByteWriter::new();
        encode_image(&img, &mut w);
        let bytes = w.into_bytes();
        assert!(bytes.len() < img.len() / 10, "mostly-zero image must compress");
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_image(&mut r).unwrap(), img);
    }

    #[test]
    fn image_rle_handles_all_literal() {
        let img: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut w = ByteWriter::new();
        encode_image(&img, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(decode_image(&mut r).unwrap(), img);
    }

    #[test]
    fn image_rle_handles_empty_and_all_zero() {
        for img in [vec![], vec![0u8; 4096]] {
            let mut w = ByteWriter::new();
            encode_image(&img, &mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_image(&mut r).unwrap(), img);
        }
    }

    #[test]
    fn memory_system_checkpoint_roundtrips_contents() {
        let mut m = MemorySystem::new(MemConfig { phys_size: 1 << 20, ..MemConfig::default() });
        m.write_u64_functional(0x8000, 0x1122_3344_5566_7788).unwrap();
        m.write_u64_functional(0xff000, 42).unwrap();
        let restored = MemorySystem::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(restored.read_u64_functional(0x8000).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(restored.read_u64_functional(0xff000).unwrap(), 42);
        assert_eq!(restored.config(), m.config());
        // Restore is cache-cold.
        assert_eq!(restored.stats().l1d.accesses(), 0);
    }

    #[test]
    fn huge_declared_total_fails_without_preallocating() {
        // A corrupt header claiming a 512 GiB image over a near-empty
        // stream must error on truncation, not abort in the allocator.
        let mut w = ByteWriter::new();
        w.put_len(512 << 30);
        w.put_u8(TAG_ZEROS);
        w.put_len(64);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(decode_image(&mut r).is_err());
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let m = MemorySystem::new(MemConfig { phys_size: 1 << 16, ..MemConfig::default() });
        let mut bytes = m.to_bytes();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        assert!(MemorySystem::from_bytes(&bytes).is_err());
    }
}
