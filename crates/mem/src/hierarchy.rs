//! The memory hierarchy: L1I/L1D → unified L2 → DRAM over [`PhysMem`].

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::phys::PhysMem;
use crate::stats::MemStats;
use crate::Ticks;
use gemfi_isa::Trap;

/// Which port an access uses (instruction or data side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data read (L1D).
    Read,
    /// Data write (L1D).
    Write,
}

/// The complete memory system of one simulated machine.
///
/// *Timed* accessors (`fetch`, `read_*`, `write_*`) walk the cache hierarchy
/// and return the data together with the access latency in ticks. The
/// `*_functional` accessors bypass timing entirely — they are used by the
/// program loader, the kernel substrate's bookkeeping, checkpoint capture,
/// and host-side output extraction, none of which exist on the simulated
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    config: MemConfig,
    phys: PhysMem,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram_accesses: u64,
}

impl MemorySystem {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: MemConfig) -> MemorySystem {
        MemorySystem {
            phys: PhysMem::new(config.phys_size),
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram_accesses: 0,
            config,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Walks the hierarchy for timing and returns the access latency.
    fn latency(&mut self, addr: u64, kind: AccessKind) -> Ticks {
        let write = matches!(kind, AccessKind::Write);
        let (l1, l1_lat) = match kind {
            AccessKind::Fetch => (&mut self.l1i, self.config.l1i.hit_latency),
            AccessKind::Read | AccessKind::Write => (&mut self.l1d, self.config.l1d.hit_latency),
        };
        let a1 = l1.access(addr, write);
        let mut lat = l1_lat;
        if a1.hit {
            return lat;
        }
        // L1 miss: consult L2 (the fill, not the CPU write, owns the line).
        let a2 = self.l2.access(addr, a1.writeback);
        lat += self.config.l2.hit_latency;
        if !a2.hit {
            self.dram_accesses += 1;
            lat += self.config.dram_latency;
            if a2.writeback {
                // Dirty L2 victim drains to DRAM; modelled as an extra DRAM
                // occupancy but off the critical path of this access.
                self.dram_accesses += 1;
            }
        }
        lat
    }

    /// Timed instruction fetch.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn fetch(&mut self, pc: u64) -> Result<(u32, Ticks), Trap> {
        let word = self.phys.read_u32(pc, pc)?;
        let lat = self.latency(pc, AccessKind::Fetch);
        Ok((word, lat))
    }

    /// Timed 64-bit data read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64(&mut self, addr: u64, pc: u64) -> Result<(u64, Ticks), Trap> {
        let v = self.phys.read_u64(addr, pc)?;
        let lat = self.latency(addr, AccessKind::Read);
        Ok((v, lat))
    }

    /// Timed 32-bit data read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32(&mut self, addr: u64, pc: u64) -> Result<(u32, Ticks), Trap> {
        let v = self.phys.read_u32(addr, pc)?;
        let lat = self.latency(addr, AccessKind::Read);
        Ok((v, lat))
    }

    /// Timed 64-bit data write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<Ticks, Trap> {
        self.phys.write_u64(addr, value, pc)?;
        Ok(self.latency(addr, AccessKind::Write))
    }

    /// Timed 32-bit data write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<Ticks, Trap> {
        self.phys.write_u32(addr, value, pc)?;
        Ok(self.latency(addr, AccessKind::Write))
    }

    /// Untimed 64-bit read (loader/extraction side).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64_functional(&self, addr: u64) -> Result<u64, Trap> {
        self.phys.read_u64(addr, 0)
    }

    /// Untimed 64-bit write (loader side).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64_functional(&mut self, addr: u64, value: u64) -> Result<(), Trap> {
        self.phys.write_u64(addr, value, 0)
    }

    /// Untimed 32-bit read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32_functional(&self, addr: u64) -> Result<u32, Trap> {
        self.phys.read_u32(addr, 0)
    }

    /// Untimed 32-bit write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32_functional(&mut self, addr: u64, value: u32) -> Result<(), Trap> {
        self.phys.write_u32(addr, value, 0)
    }

    /// Untimed bulk write (program loader).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        self.phys.write_slice(addr, data)
    }

    /// Untimed bulk read (output extraction).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn read_slice(&self, addr: u64, len: usize) -> Result<&[u8], Trap> {
        self.phys.read_slice(addr, len)
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.phys.size()
    }

    /// Aggregate statistics of every level.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            dram_accesses: self.dram_accesses,
        }
    }

    /// Invalidates all cache levels (checkpoint restore starts cache-cold).
    pub fn invalidate_caches(&mut self) {
        self.l1i.invalidate_all();
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_pays_dram_then_hits_l1() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x2000, 7).unwrap();
        let (_, cold) = m.read_u64(0x2000, 0).unwrap();
        let (_, warm) = m.read_u64(0x2000, 0).unwrap();
        assert!(cold > warm);
        assert_eq!(warm, m.config().l1d.hit_latency);
        assert_eq!(m.stats().dram_accesses, 1);
    }

    #[test]
    fn fetch_uses_instruction_port() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.fetch(0x1000).unwrap();
        assert_eq!(m.stats().l1i.accesses(), 1);
        assert_eq!(m.stats().l1d.accesses(), 0);
    }

    #[test]
    fn functional_accesses_do_not_touch_stats() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x40, 1).unwrap();
        m.read_u64_functional(0x40).unwrap();
        let s = m.stats();
        assert_eq!(s.l1d.accesses() + s.l1i.accesses() + s.l2.accesses(), 0);
    }

    #[test]
    fn l2_absorbs_l1_misses() {
        let mut m = MemorySystem::new(MemConfig::default());
        // Touch, then invalidate L1s only by touching lots of conflicting
        // lines; simpler: invalidate everything and touch again — then L2
        // also misses. Instead verify the first miss registers in L2.
        m.read_u64(0x3000, 0).unwrap();
        assert_eq!(m.stats().l2.misses, 1);
        m.read_u64(0x3000, 0).unwrap();
        assert_eq!(m.stats().l2.accesses(), 1, "L1 hit must not reach L2");
    }

    #[test]
    fn unmapped_timed_access_traps_without_stats() {
        let mut m = MemorySystem::new(MemConfig::default());
        let size = m.size();
        assert!(m.read_u64(size, 0x77).is_err());
        assert_eq!(m.stats().l1d.accesses(), 0);
    }
}
