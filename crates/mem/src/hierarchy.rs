//! The memory hierarchy: L1I/L1D → unified L2 → DRAM over [`PhysMem`].

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::phys::PhysMem;
use crate::stats::MemStats;
use crate::Ticks;
use gemfi_isa::{Instr, PredecodeCache, Trap};

/// Which port an access uses (instruction or data side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data read (L1D).
    Read,
    /// Data write (L1D).
    Write,
}

/// The complete memory system of one simulated machine.
///
/// *Timed* accessors (`fetch`, `read_*`, `write_*`) walk the cache hierarchy
/// and return the data together with the access latency in ticks. The
/// `*_functional` accessors bypass timing entirely — they are used by the
/// program loader, the kernel substrate's bookkeeping, checkpoint capture,
/// and host-side output extraction, none of which exist on the simulated
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    config: MemConfig,
    phys: PhysMem,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram_accesses: u64,
    /// Predecoded-instruction cache (derived state, never serialized). Lives
    /// in the memory system so every store path — timed, functional, and
    /// bulk — can invalidate overlapping entries.
    predecode: PredecodeCache,
}

impl MemorySystem {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: MemConfig) -> MemorySystem {
        MemorySystem {
            phys: PhysMem::with_cow(config.phys_size, config.cow),
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram_accesses: 0,
            predecode: PredecodeCache::new(config.predecode),
            config,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Walks the hierarchy for timing and returns the access latency.
    fn latency(&mut self, addr: u64, kind: AccessKind) -> Ticks {
        let write = matches!(kind, AccessKind::Write);
        let (l1, l1_lat) = match kind {
            AccessKind::Fetch => (&mut self.l1i, self.config.l1i.hit_latency),
            AccessKind::Read | AccessKind::Write => (&mut self.l1d, self.config.l1d.hit_latency),
        };
        let a1 = l1.access(addr, write);
        let mut lat = l1_lat;
        if a1.hit {
            return lat;
        }
        // L1 miss: consult L2 (the fill, not the CPU write, owns the line).
        let a2 = self.l2.access(addr, a1.writeback);
        lat += self.config.l2.hit_latency;
        if !a2.hit {
            self.dram_accesses += 1;
            lat += self.config.dram_latency;
            if a2.writeback {
                // Dirty L2 victim drains to DRAM; modelled as an extra DRAM
                // occupancy but off the critical path of this access.
                self.dram_accesses += 1;
            }
        }
        lat
    }

    /// Timed instruction fetch.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn fetch(&mut self, pc: u64) -> Result<(u32, Ticks), Trap> {
        let word = self.phys.read_u32(pc, pc)?;
        let lat = self.latency(pc, AccessKind::Fetch);
        Ok((word, lat))
    }

    /// Timed instruction fetch through the predecode cache.
    ///
    /// On a predecode hit the raw word comes from the cached entry (store
    /// invalidation keeps it coherent with physical memory) together with
    /// the cached decode; on a miss — or with the cache disabled — the word
    /// is read from physical memory and the decode slot is `None`. Either
    /// way the L1I/L2 hierarchy is walked for timing, so the cache-level
    /// statistics the paper's validation compares are identical with the
    /// predecode cache on and off.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn fetch_predecoded(&mut self, pc: u64) -> Result<(u32, Option<Instr>, Ticks), Trap> {
        if let Some((raw, instr)) = self.predecode.lookup(pc) {
            let lat = self.latency(pc, AccessKind::Fetch);
            return Ok((raw, Some(instr), lat));
        }
        let word = self.phys.read_u32(pc, pc)?;
        let lat = self.latency(pc, AccessKind::Fetch);
        Ok((word, None, lat))
    }

    /// Installs a decode into the predecode cache. `raw` must be the word
    /// as read from memory — never a fault-corrupted variant.
    #[inline]
    pub fn install_predecoded(&mut self, pc: u64, raw: u32, instr: Instr) {
        self.predecode.install(pc, raw, instr);
    }

    /// Untimed, uncounted predecode lookup for speculative peeks.
    #[inline]
    pub fn peek_predecoded(&self, pc: u64) -> Option<Instr> {
        self.predecode.peek(pc)
    }

    /// Drops all predecoded entries and their counters (derived-state reset
    /// on checkpoint capture/restore and CPU-model switch).
    pub fn clear_predecode(&mut self) {
        self.predecode.clear();
    }

    /// Timed 64-bit data read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64(&mut self, addr: u64, pc: u64) -> Result<(u64, Ticks), Trap> {
        let v = self.phys.read_u64(addr, pc)?;
        let lat = self.latency(addr, AccessKind::Read);
        Ok((v, lat))
    }

    /// Timed 32-bit data read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32(&mut self, addr: u64, pc: u64) -> Result<(u32, Ticks), Trap> {
        let v = self.phys.read_u32(addr, pc)?;
        let lat = self.latency(addr, AccessKind::Read);
        Ok((v, lat))
    }

    /// Timed 64-bit data write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<Ticks, Trap> {
        self.phys.write_u64(addr, value, pc)?;
        self.predecode.invalidate_range(addr, 8);
        Ok(self.latency(addr, AccessKind::Write))
    }

    /// Timed 32-bit data write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<Ticks, Trap> {
        self.phys.write_u32(addr, value, pc)?;
        self.predecode.invalidate_range(addr, 4);
        Ok(self.latency(addr, AccessKind::Write))
    }

    /// Untimed 64-bit read (loader/extraction side).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64_functional(&self, addr: u64) -> Result<u64, Trap> {
        self.phys.read_u64(addr, 0)
    }

    /// Untimed 64-bit write (loader side).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64_functional(&mut self, addr: u64, value: u64) -> Result<(), Trap> {
        self.phys.write_u64(addr, value, 0)?;
        self.predecode.invalidate_range(addr, 8);
        Ok(())
    }

    /// Untimed 32-bit read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32_functional(&self, addr: u64) -> Result<u32, Trap> {
        self.phys.read_u32(addr, 0)
    }

    /// Untimed 32-bit write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32_functional(&mut self, addr: u64, value: u32) -> Result<(), Trap> {
        self.phys.write_u32(addr, value, 0)?;
        self.predecode.invalidate_range(addr, 4);
        Ok(())
    }

    /// Untimed bulk write (program loader).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        self.phys.write_slice(addr, data)?;
        self.predecode.invalidate_range(addr, data.len() as u64);
        Ok(())
    }

    /// Untimed bulk read (output extraction). Returns an owned buffer: the
    /// paged backing store cannot lend a contiguous borrow across page
    /// boundaries.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn read_slice(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        self.phys.read_slice(addr, len)
    }

    /// Diagnostic: `(privately owned, total)` physical pages — the CoW
    /// dirty-page footprint relative to any snapshot siblings.
    pub fn page_footprint(&self) -> (usize, usize) {
        (self.phys.owned_pages(), self.phys.total_pages())
    }

    /// Diagnostic: physical pages this memory still shares frame-for-frame
    /// with `other` — e.g. a forked suffix against the trunk it forked from.
    /// See [`crate::PhysMem::shared_pages_with`].
    pub fn shared_pages_with(&self, other: &MemorySystem) -> usize {
        self.phys.shared_pages_with(&other.phys)
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.phys.size()
    }

    /// Aggregate statistics of every level.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            dram_accesses: self.dram_accesses,
            predecode: self.predecode.stats(),
        }
    }

    /// Invalidates all cache levels (checkpoint restore starts cache-cold).
    pub fn invalidate_caches(&mut self) {
        self.l1i.invalidate_all();
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_pays_dram_then_hits_l1() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x2000, 7).unwrap();
        let (_, cold) = m.read_u64(0x2000, 0).unwrap();
        let (_, warm) = m.read_u64(0x2000, 0).unwrap();
        assert!(cold > warm);
        assert_eq!(warm, m.config().l1d.hit_latency);
        assert_eq!(m.stats().dram_accesses, 1);
    }

    #[test]
    fn fetch_uses_instruction_port() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.fetch(0x1000).unwrap();
        assert_eq!(m.stats().l1i.accesses(), 1);
        assert_eq!(m.stats().l1d.accesses(), 0);
    }

    #[test]
    fn functional_accesses_do_not_touch_stats() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x40, 1).unwrap();
        m.read_u64_functional(0x40).unwrap();
        let s = m.stats();
        assert_eq!(s.l1d.accesses() + s.l1i.accesses() + s.l2.accesses(), 0);
    }

    #[test]
    fn l2_absorbs_l1_misses() {
        let mut m = MemorySystem::new(MemConfig::default());
        // Touch, then invalidate L1s only by touching lots of conflicting
        // lines; simpler: invalidate everything and touch again — then L2
        // also misses. Instead verify the first miss registers in L2.
        m.read_u64(0x3000, 0).unwrap();
        assert_eq!(m.stats().l2.misses, 1);
        m.read_u64(0x3000, 0).unwrap();
        assert_eq!(m.stats().l2.accesses(), 1, "L1 hit must not reach L2");
    }

    #[test]
    fn predecoded_fetch_hits_after_install_and_skips_decode() {
        use gemfi_isa::{decode, RawInstr};
        let mut m = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        let (raw, cached, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!(raw, word);
        assert!(cached.is_none(), "cold fetch misses");
        m.install_predecoded(0x4000, raw, decode(RawInstr(raw)).unwrap());
        let (raw2, cached2, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!(raw2, word);
        assert_eq!(cached2, Some(i));
        let s = m.stats().predecode;
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn predecoded_fetch_walks_l1i_like_plain_fetch() {
        let mut a = MemorySystem::new(MemConfig::default());
        let mut b = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        for m in [&mut a, &mut b] {
            m.write_u32_functional(0x4000, gemfi_isa::encode(&i).0).unwrap();
        }
        b.install_predecoded(0x4000, gemfi_isa::encode(&i).0, i);
        for _ in 0..3 {
            let (_, lat_a) = a.fetch(0x4000).unwrap();
            let (_, _, lat_b) = b.fetch_predecoded(0x4000).unwrap();
            assert_eq!(lat_a, lat_b, "predecode must not change fetch timing");
        }
        assert_eq!(a.stats().l1i, b.stats().l1i);
    }

    #[test]
    fn every_store_path_invalidates_cached_decodes() {
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        let stores: [&dyn Fn(&mut MemorySystem); 5] = [
            &|m| {
                m.write_u32(0x4000, 0, 0).unwrap();
            },
            &|m| {
                m.write_u64(0x4000, 0, 0).unwrap();
            },
            &|m| m.write_u32_functional(0x4000, 0).unwrap(),
            &|m| m.write_u64_functional(0x4000, 0).unwrap(),
            &|m| m.write_slice(0x3ffe, &[0; 8]).unwrap(),
        ];
        for store in stores {
            let mut m = MemorySystem::new(MemConfig::default());
            m.write_u32_functional(0x4000, word).unwrap();
            m.install_predecoded(0x4000, word, i);
            assert_eq!(m.peek_predecoded(0x4000), Some(i));
            store(&mut m);
            assert_eq!(m.peek_predecoded(0x4000), None, "store must invalidate");
        }
    }

    #[test]
    fn disabled_predecode_never_serves_or_counts() {
        let mut m = MemorySystem::new(MemConfig { predecode: false, ..MemConfig::default() });
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        m.install_predecoded(0x4000, word, i);
        let (raw, cached, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!((raw, cached), (word, None));
        assert_eq!(m.stats().predecode, gemfi_isa::PredecodeStats::default());
    }

    #[test]
    fn clear_predecode_drops_entries_and_counters() {
        let mut m = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        m.install_predecoded(0x4000, word, i);
        m.fetch_predecoded(0x4000).unwrap();
        m.clear_predecode();
        assert_eq!(m.peek_predecoded(0x4000), None);
        assert_eq!(m.stats().predecode, gemfi_isa::PredecodeStats::default());
    }

    #[test]
    fn unmapped_timed_access_traps_without_stats() {
        let mut m = MemorySystem::new(MemConfig::default());
        let size = m.size();
        assert!(m.read_u64(size, 0x77).is_err());
        assert_eq!(m.stats().l1d.accesses(), 0);
    }
}
