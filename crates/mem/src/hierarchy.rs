//! The memory hierarchy: L1I/L1D → unified L2 → DRAM over [`PhysMem`].

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::lesion::{CacheLesion, CacheLevel, LesionKind};
use crate::phys::PhysMem;
use crate::stats::MemStats;
use crate::Ticks;
use gemfi_isa::superblock::{translate, SbMemory};
use gemfi_isa::{Instr, PredecodeCache, Superblock, SuperblockCache, Trap};
use std::sync::Arc;

/// Which port an access uses (instruction or data side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data read (L1D).
    Read,
    /// Data write (L1D).
    Write,
}

/// Where one access landed in the hierarchy: the (set, way) slot it
/// occupies at L1, and at L2 when the L1 missed. Cache-array lesions match
/// against this path.
#[derive(Debug, Clone, Copy)]
struct AccessPath {
    kind: AccessKind,
    l1_set: u64,
    l1_way: u32,
    l2: Option<(u64, u32)>,
}

/// The complete memory system of one simulated machine.
///
/// *Timed* accessors (`fetch`, `read_*`, `write_*`) walk the cache hierarchy
/// and return the data together with the access latency in ticks. The
/// `*_functional` accessors bypass timing entirely — they are used by the
/// program loader, the kernel substrate's bookkeeping, checkpoint capture,
/// and host-side output extraction, none of which exist on the simulated
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    config: MemConfig,
    phys: PhysMem,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram_accesses: u64,
    /// Predecoded-instruction cache (derived state, never serialized). Lives
    /// in the memory system so every store path — timed, functional, and
    /// bulk — can invalidate overlapping entries.
    predecode: PredecodeCache,
    /// Superblock translation cache (derived state, never serialized). Same
    /// residency rule as `predecode`: every store path invalidates
    /// overlapping translations, and any lesion on the fetch path refuses
    /// lookups and installs.
    superblocks: SuperblockCache,
    /// Planted cache-array lesions (fault state, never serialized: restore
    /// rebuilds lesion-free, and forks clone the machine before any fault
    /// fires). A lesion survives `invalidate_caches` — it damages the
    /// array, not the lines resident in it.
    lesions: Vec<CacheLesion>,
}

impl MemorySystem {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: MemConfig) -> MemorySystem {
        MemorySystem {
            phys: PhysMem::with_cow(config.phys_size, config.cow),
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram_accesses: 0,
            predecode: PredecodeCache::new(config.predecode),
            superblocks: SuperblockCache::new(config.superblock),
            lesions: Vec::new(),
            config,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Walks the hierarchy for timing; returns the access latency together
    /// with the (set, way) slots the access landed on at each level.
    fn walk(&mut self, addr: u64, kind: AccessKind) -> (Ticks, AccessPath) {
        let write = matches!(kind, AccessKind::Write);
        let (l1, l1_lat) = match kind {
            AccessKind::Fetch => (&mut self.l1i, self.config.l1i.hit_latency),
            AccessKind::Read | AccessKind::Write => (&mut self.l1d, self.config.l1d.hit_latency),
        };
        let a1 = l1.access(addr, write);
        let l1_set = l1.set_of(addr);
        let mut path = AccessPath { kind, l1_set, l1_way: a1.way, l2: None };
        let mut lat = l1_lat;
        if a1.hit {
            return (lat, path);
        }
        // L1 miss: consult L2 (the fill, not the CPU write, owns the line).
        let a2 = self.l2.access(addr, a1.writeback);
        path.l2 = Some((self.l2.set_of(addr), a2.way));
        lat += self.config.l2.hit_latency;
        if !a2.hit {
            self.dram_accesses += 1;
            lat += self.config.dram_latency;
            if a2.writeback {
                // Dirty L2 victim drains to DRAM; modelled as an extra DRAM
                // occupancy but off the critical path of this access.
                self.dram_accesses += 1;
            }
        }
        (lat, path)
    }

    /// Walks the hierarchy for timing only (fault-free fast path).
    fn latency(&mut self, addr: u64, kind: AccessKind) -> Ticks {
        self.walk(addr, kind).0
    }

    /// Plants a cache-array lesion (a fired memory-hierarchy fault). The
    /// lesion corrupts every access landing on the damaged slot until its
    /// `remaining` budget runs out (`u64::MAX` = stuck-at, never heals).
    pub fn plant_lesion(&mut self, lesion: CacheLesion) {
        self.lesions.push(lesion);
    }

    /// The currently active cache-array lesions.
    pub fn lesions(&self) -> &[CacheLesion] {
        &self.lesions
    }

    /// Whether any active lesion sits in an array that serves instruction
    /// fetches (L1I or L2). While true, the predecode cache is bypassed and
    /// installs are refused: predecode entries must only ever hold true
    /// memory words, and a lesioned fetch path can corrupt them.
    fn fetch_lesioned(&self) -> bool {
        self.lesions.iter().any(|l| l.level.serves_fetch())
    }

    /// The tag cache modelling `level`.
    fn cache_at(&self, level: CacheLevel) -> &Cache {
        match level {
            CacheLevel::L1I => &self.l1i,
            CacheLevel::L1D => &self.l1d,
            CacheLevel::L2 => &self.l2,
        }
    }

    /// The (set, way) slot this access occupies at `level`, if it reached
    /// that level at all.
    fn path_slot(level: CacheLevel, path: &AccessPath) -> Option<(u64, u32)> {
        match (level, path.kind) {
            (CacheLevel::L1I, AccessKind::Fetch) => Some((path.l1_set, path.l1_way)),
            (CacheLevel::L1D, AccessKind::Read | AccessKind::Write) => {
                Some((path.l1_set, path.l1_way))
            }
            (CacheLevel::L2, _) => path.l2,
            _ => None,
        }
    }

    /// Burns one corrupting application off lesion `i`. Returns `true` when
    /// the lesion healed and was removed (so the caller re-checks index `i`).
    fn consume_lesion(&mut self, i: usize) -> bool {
        let l = &mut self.lesions[i];
        if l.remaining != u64::MAX {
            l.remaining = l.remaining.saturating_sub(1);
            if l.remaining == 0 {
                self.lesions.remove(i);
                return true;
            }
        }
        false
    }

    /// Applies active lesions to a value served through `path`. Data
    /// lesions transform the value; tag lesions make the slot answer for
    /// the aliased line, so the read serves physical memory at the aliased
    /// address instead (wrong-data reads — an unmapped alias falls back to
    /// the true value, never a sim abort). `width` is the access width in
    /// bytes.
    fn lesioned_read(&mut self, addr: u64, value: u64, width: u32, path: &AccessPath) -> u64 {
        let mut v = value;
        let mut i = 0;
        while i < self.lesions.len() {
            let l = self.lesions[i];
            let slot = Self::path_slot(l.level, path);
            let sets = self.cache_at(l.level).config().sets() as u64;
            let applied = match slot {
                Some((set, way)) if l.covers(set, way, sets) => match l.kind {
                    LesionKind::Data => {
                        v = l.effect.apply(v);
                        true
                    }
                    LesionKind::Tag => {
                        let cache = self.cache_at(l.level);
                        let alias_tag = l.effect.apply(cache.tag_of(addr));
                        let alias = cache.line_addr(set, alias_tag) | cache.line_offset(addr);
                        let aliased = match width {
                            4 => self.phys.read_u32(alias, 0).ok().map(u64::from),
                            _ => self.phys.read_u64(alias, 0).ok(),
                        };
                        match aliased {
                            Some(x) => {
                                v = x;
                                true
                            }
                            None => false,
                        }
                    }
                },
                _ => false,
            };
            if applied && self.consume_lesion(i) {
                continue; // healed and removed: the next lesion now sits at `i`
            }
            i += 1;
        }
        v
    }

    /// Applies active *data* lesions to a value stored through `path`,
    /// corrupting the backing store in place (write-through damage). Tag
    /// lesions are read-side only: they redirect what the slot answers, not
    /// what the CPU wrote.
    fn lesioned_store(&mut self, addr: u64, value: u64, width: u32, path: &AccessPath) {
        let mut v = value;
        let mut changed = false;
        let mut i = 0;
        while i < self.lesions.len() {
            let l = self.lesions[i];
            let slot = Self::path_slot(l.level, path);
            let sets = self.cache_at(l.level).config().sets() as u64;
            let applied = matches!(
                (slot, l.kind),
                (Some((set, way)), LesionKind::Data) if l.covers(set, way, sets)
            );
            if applied {
                v = l.effect.apply(v);
                changed = true;
                if self.consume_lesion(i) {
                    continue;
                }
            }
            i += 1;
        }
        if changed {
            // The original (uncorrupted) write already validated the
            // address and invalidated overlapping predecode entries, so the
            // corrupting re-write cannot fail or leave a stale decode.
            let _ = match width {
                4 => self.phys.write_u32(addr, v as u32, 0),
                _ => self.phys.write_u64(addr, v, 0),
            };
        }
    }

    /// Timed instruction fetch.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn fetch(&mut self, pc: u64) -> Result<(u32, Ticks), Trap> {
        let word = self.phys.read_u32(pc, pc)?;
        if self.lesions.is_empty() {
            let lat = self.latency(pc, AccessKind::Fetch);
            return Ok((word, lat));
        }
        let (lat, path) = self.walk(pc, AccessKind::Fetch);
        let word = self.lesioned_read(pc, u64::from(word), 4, &path) as u32;
        Ok((word, lat))
    }

    /// Timed instruction fetch through the predecode cache.
    ///
    /// On a predecode hit the raw word comes from the cached entry (store
    /// invalidation keeps it coherent with physical memory) together with
    /// the cached decode; on a miss — or with the cache disabled — the word
    /// is read from physical memory and the decode slot is `None`. Either
    /// way the L1I/L2 hierarchy is walked for timing, so the cache-level
    /// statistics the paper's validation compares are identical with the
    /// predecode cache on and off.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn fetch_predecoded(&mut self, pc: u64) -> Result<(u32, Option<Instr>, Ticks), Trap> {
        // While a lesion sits on the fetch path (L1I/L2), the predecode
        // cache is bypassed entirely: a cached entry would serve the stale
        // true word instead of the damaged array's corruption.
        let lesioned = self.fetch_lesioned();
        if !lesioned {
            if let Some((raw, instr)) = self.predecode.lookup(pc) {
                let lat = self.latency(pc, AccessKind::Fetch);
                return Ok((raw, Some(instr), lat));
            }
        }
        let word = self.phys.read_u32(pc, pc)?;
        let (lat, path) = self.walk(pc, AccessKind::Fetch);
        let word =
            if lesioned { self.lesioned_read(pc, u64::from(word), 4, &path) as u32 } else { word };
        Ok((word, None, lat))
    }

    /// Installs a decode into the predecode cache. `raw` must be the word
    /// as read from memory — never a fault-corrupted variant; installs are
    /// therefore refused while a lesion sits on the fetch path.
    #[inline]
    pub fn install_predecoded(&mut self, pc: u64, raw: u32, instr: Instr) {
        if self.fetch_lesioned() {
            return;
        }
        self.predecode.install(pc, raw, instr);
    }

    /// Untimed, uncounted predecode lookup for speculative peeks.
    #[inline]
    pub fn peek_predecoded(&self, pc: u64) -> Option<Instr> {
        self.predecode.peek(pc)
    }

    /// Drops all predecoded entries and their counters (derived-state reset
    /// on checkpoint capture/restore and CPU-model switch).
    pub fn clear_predecode(&mut self) {
        self.predecode.clear();
    }

    /// Drops all superblock translations and their counters (derived-state
    /// reset on checkpoint capture/restore and CPU-model switch).
    pub fn clear_superblocks(&mut self) {
        self.superblocks.clear();
    }

    /// Flips the superblock knob post-construction (restored machines come
    /// up with the default; the campaign runner re-applies its config).
    /// Disabling drops every translation and counter.
    pub fn set_superblock(&mut self, enabled: bool) {
        self.config.superblock = enabled;
        self.superblocks.set_enabled(enabled);
    }

    /// The superblock starting exactly at `pc`, translating and installing
    /// it on a miss. Refuses (`None`) while the knob is off, while any
    /// cache lesion is planted (block execution skips the hierarchy walk
    /// entirely, so *no* lesioned path — fetch or data — may be live), or
    /// when the head instruction cannot be translated.
    ///
    /// Translation fetches functionally: like predecode installs, building
    /// host-side derived state must not perturb cache stats or timing.
    pub fn superblock_at(&mut self, pc: u64) -> Option<Arc<Superblock>> {
        if !self.superblocks.enabled() || !self.lesions.is_empty() {
            return None;
        }
        if let Some(block) = self.superblocks.lookup(pc) {
            return Some(block);
        }
        let phys = &self.phys;
        match translate(pc, |addr| phys.read_u32(addr, 0).ok()) {
            Some(block) => Some(self.superblocks.install(block)),
            None => {
                self.superblocks.note_untranslatable();
                None
            }
        }
    }

    /// Notes micro-ops committed through superblock execution.
    pub fn note_superblock_run(&mut self, uops: u64) {
        self.superblocks.note_executed(uops);
    }

    /// Notes a cached superblock skipped because it did not fit the
    /// sprint's remaining tick or event budget.
    pub fn note_superblock_fallback(&mut self) {
        self.superblocks.note_budget_fallback();
    }

    /// Timed 64-bit data read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64(&mut self, addr: u64, pc: u64) -> Result<(u64, Ticks), Trap> {
        let v = self.phys.read_u64(addr, pc)?;
        if self.lesions.is_empty() {
            let lat = self.latency(addr, AccessKind::Read);
            return Ok((v, lat));
        }
        let (lat, path) = self.walk(addr, AccessKind::Read);
        let v = self.lesioned_read(addr, v, 8, &path);
        Ok((v, lat))
    }

    /// Timed 32-bit data read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32(&mut self, addr: u64, pc: u64) -> Result<(u32, Ticks), Trap> {
        let v = self.phys.read_u32(addr, pc)?;
        if self.lesions.is_empty() {
            let lat = self.latency(addr, AccessKind::Read);
            return Ok((v, lat));
        }
        let (lat, path) = self.walk(addr, AccessKind::Read);
        let v = self.lesioned_read(addr, u64::from(v), 4, &path) as u32;
        Ok((v, lat))
    }

    /// Timed 64-bit data write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<Ticks, Trap> {
        self.phys.write_u64(addr, value, pc)?;
        self.predecode.invalidate_range(addr, 8);
        self.superblocks.invalidate_range(addr, 8);
        if self.lesions.is_empty() {
            return Ok(self.latency(addr, AccessKind::Write));
        }
        let (lat, path) = self.walk(addr, AccessKind::Write);
        self.lesioned_store(addr, value, 8, &path);
        Ok(lat)
    }

    /// Timed 32-bit data write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<Ticks, Trap> {
        self.phys.write_u32(addr, value, pc)?;
        self.predecode.invalidate_range(addr, 4);
        self.superblocks.invalidate_range(addr, 4);
        if self.lesions.is_empty() {
            return Ok(self.latency(addr, AccessKind::Write));
        }
        let (lat, path) = self.walk(addr, AccessKind::Write);
        self.lesioned_store(addr, u64::from(value), 4, &path);
        Ok(lat)
    }

    /// Untimed 64-bit read (loader/extraction side).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u64_functional(&self, addr: u64) -> Result<u64, Trap> {
        self.phys.read_u64(addr, 0)
    }

    /// Untimed 64-bit write (loader side).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u64_functional(&mut self, addr: u64, value: u64) -> Result<(), Trap> {
        self.phys.write_u64(addr, value, 0)?;
        self.predecode.invalidate_range(addr, 8);
        self.superblocks.invalidate_range(addr, 8);
        Ok(())
    }

    /// Untimed 32-bit read.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn read_u32_functional(&self, addr: u64) -> Result<u32, Trap> {
        self.phys.read_u32(addr, 0)
    }

    /// Untimed 32-bit write.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] / [`Trap::MisalignedAccess`].
    pub fn write_u32_functional(&mut self, addr: u64, value: u32) -> Result<(), Trap> {
        self.phys.write_u32(addr, value, 0)?;
        self.predecode.invalidate_range(addr, 4);
        self.superblocks.invalidate_range(addr, 4);
        Ok(())
    }

    /// Untimed bulk write (program loader).
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn write_slice(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        self.phys.write_slice(addr, data)?;
        self.predecode.invalidate_range(addr, data.len() as u64);
        self.superblocks.invalidate_range(addr, data.len() as u64);
        Ok(())
    }

    /// Untimed bulk read (output extraction). Returns an owned buffer: the
    /// paged backing store cannot lend a contiguous borrow across page
    /// boundaries.
    ///
    /// # Errors
    ///
    /// [`Trap::UnmappedAccess`] when the range does not fit.
    pub fn read_slice(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        self.phys.read_slice(addr, len)
    }

    /// Diagnostic: `(privately owned, total)` physical pages — the CoW
    /// dirty-page footprint relative to any snapshot siblings.
    pub fn page_footprint(&self) -> (usize, usize) {
        (self.phys.owned_pages(), self.phys.total_pages())
    }

    /// Diagnostic: physical pages this memory still shares frame-for-frame
    /// with `other` — e.g. a forked suffix against the trunk it forked from.
    /// See [`crate::PhysMem::shared_pages_with`].
    pub fn shared_pages_with(&self, other: &MemorySystem) -> usize {
        self.phys.shared_pages_with(&other.phys)
    }

    /// Physical memory size in bytes.
    pub fn size(&self) -> u64 {
        self.phys.size()
    }

    /// Aggregate statistics of every level.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            dram_accesses: self.dram_accesses,
            predecode: self.predecode.stats(),
            superblock: self.superblocks.stats(),
        }
    }

    /// Invalidates all cache levels (checkpoint restore starts cache-cold).
    pub fn invalidate_caches(&mut self) {
        self.l1i.invalidate_all();
        self.l1d.invalidate_all();
        self.l2.invalidate_all();
    }

    /// Returns every cache level (tags, LRU clocks, statistics) and the DRAM
    /// counter to the freshly-built state — exactly what decoding a
    /// serialized image produces. Checkpoint capture and restore call this
    /// so an in-process checkpoint behaves identically to one that
    /// round-tripped through bytes: the image deliberately carries no cache
    /// state, so the in-memory object must not either. Without it, the warm
    /// capture-time tag state leaks into restored runs — and since fast
    /// paths that legitimately skip the hierarchy walk (superblock
    /// execution) leave different warm state than stepped runs, restored
    /// detailed-model timing would depend on host-side knobs.
    pub fn reset_caches(&mut self) {
        self.l1i.reset_cold();
        self.l1d.reset_cold();
        self.l2.reset_cold();
        self.dram_accesses = 0;
    }
}

/// The memory surface superblock micro-ops execute against: direct
/// physical loads and stores, no hierarchy walk. Only reachable while the
/// machine is dormant on the atomic model with no lesions planted
/// (`Machine::sprint` gates it; `superblock_at` refuses otherwise) — and
/// the atomic model charges one tick per committed instruction regardless
/// of memory latency, so skipping the walk is tick-invisible. Cache
/// hit/miss counters diverge from the knob-off run, exactly like the
/// original substrate's KVM-style fast-forward; they are diagnostics, never
/// serialized, and never part of outcome classification.
impl SbMemory for MemorySystem {
    fn load_u64(&mut self, addr: u64, pc: u64) -> Result<u64, Trap> {
        self.phys.read_u64(addr, pc)
    }

    fn load_u32(&mut self, addr: u64, pc: u64) -> Result<u32, Trap> {
        self.phys.read_u32(addr, pc)
    }

    fn store_u64(&mut self, addr: u64, value: u64, pc: u64) -> Result<(), Trap> {
        self.phys.write_u64(addr, value, pc)?;
        self.predecode.invalidate_range(addr, 8);
        self.superblocks.invalidate_range(addr, 8);
        Ok(())
    }

    fn store_u32(&mut self, addr: u64, value: u32, pc: u64) -> Result<(), Trap> {
        self.phys.write_u32(addr, value, pc)?;
        self.predecode.invalidate_range(addr, 4);
        self.superblocks.invalidate_range(addr, 4);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_pays_dram_then_hits_l1() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x2000, 7).unwrap();
        let (_, cold) = m.read_u64(0x2000, 0).unwrap();
        let (_, warm) = m.read_u64(0x2000, 0).unwrap();
        assert!(cold > warm);
        assert_eq!(warm, m.config().l1d.hit_latency);
        assert_eq!(m.stats().dram_accesses, 1);
    }

    #[test]
    fn fetch_uses_instruction_port() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.fetch(0x1000).unwrap();
        assert_eq!(m.stats().l1i.accesses(), 1);
        assert_eq!(m.stats().l1d.accesses(), 0);
    }

    #[test]
    fn functional_accesses_do_not_touch_stats() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x40, 1).unwrap();
        m.read_u64_functional(0x40).unwrap();
        let s = m.stats();
        assert_eq!(s.l1d.accesses() + s.l1i.accesses() + s.l2.accesses(), 0);
    }

    #[test]
    fn l2_absorbs_l1_misses() {
        let mut m = MemorySystem::new(MemConfig::default());
        // Touch, then invalidate L1s only by touching lots of conflicting
        // lines; simpler: invalidate everything and touch again — then L2
        // also misses. Instead verify the first miss registers in L2.
        m.read_u64(0x3000, 0).unwrap();
        assert_eq!(m.stats().l2.misses, 1);
        m.read_u64(0x3000, 0).unwrap();
        assert_eq!(m.stats().l2.accesses(), 1, "L1 hit must not reach L2");
    }

    #[test]
    fn predecoded_fetch_hits_after_install_and_skips_decode() {
        use gemfi_isa::{decode, RawInstr};
        let mut m = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        let (raw, cached, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!(raw, word);
        assert!(cached.is_none(), "cold fetch misses");
        m.install_predecoded(0x4000, raw, decode(RawInstr(raw)).unwrap());
        let (raw2, cached2, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!(raw2, word);
        assert_eq!(cached2, Some(i));
        let s = m.stats().predecode;
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn predecoded_fetch_walks_l1i_like_plain_fetch() {
        let mut a = MemorySystem::new(MemConfig::default());
        let mut b = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        for m in [&mut a, &mut b] {
            m.write_u32_functional(0x4000, gemfi_isa::encode(&i).0).unwrap();
        }
        b.install_predecoded(0x4000, gemfi_isa::encode(&i).0, i);
        for _ in 0..3 {
            let (_, lat_a) = a.fetch(0x4000).unwrap();
            let (_, _, lat_b) = b.fetch_predecoded(0x4000).unwrap();
            assert_eq!(lat_a, lat_b, "predecode must not change fetch timing");
        }
        assert_eq!(a.stats().l1i, b.stats().l1i);
    }

    #[test]
    fn every_store_path_invalidates_cached_decodes() {
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        let stores: [&dyn Fn(&mut MemorySystem); 5] = [
            &|m| {
                m.write_u32(0x4000, 0, 0).unwrap();
            },
            &|m| {
                m.write_u64(0x4000, 0, 0).unwrap();
            },
            &|m| m.write_u32_functional(0x4000, 0).unwrap(),
            &|m| m.write_u64_functional(0x4000, 0).unwrap(),
            &|m| m.write_slice(0x3ffe, &[0; 8]).unwrap(),
        ];
        for store in stores {
            let mut m = MemorySystem::new(MemConfig::default());
            m.write_u32_functional(0x4000, word).unwrap();
            m.install_predecoded(0x4000, word, i);
            assert_eq!(m.peek_predecoded(0x4000), Some(i));
            store(&mut m);
            assert_eq!(m.peek_predecoded(0x4000), None, "store must invalidate");
        }
    }

    /// A two-instruction straight-line block (`addq; br`) at `addr`.
    fn put_block(m: &mut MemorySystem, addr: u64) {
        let add = gemfi_isa::Instr::IntOp {
            func: gemfi_isa::opcode::IntFunc::Addq,
            ra: gemfi_isa::IntReg::new(1).unwrap(),
            rb: gemfi_isa::Operand::Lit(1),
            rc: gemfi_isa::IntReg::new(1).unwrap(),
        };
        let br = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        m.write_u32_functional(addr, gemfi_isa::encode(&add).0).unwrap();
        m.write_u32_functional(addr + 4, gemfi_isa::encode(&br).0).unwrap();
    }

    #[test]
    fn superblock_translates_installs_and_hits() {
        let mut m = MemorySystem::new(MemConfig::default());
        put_block(&mut m, 0x4000);
        let b = m.superblock_at(0x4000).expect("translates");
        assert_eq!((b.start(), b.len()), (0x4000, 2));
        m.superblock_at(0x4000).expect("hit");
        let s = m.stats().superblock;
        assert_eq!((s.blocks_built, s.hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn every_store_path_invalidates_superblocks() {
        let stores: [&dyn Fn(&mut MemorySystem); 6] = [
            &|m| {
                m.write_u32(0x4004, 0, 0).unwrap();
            },
            &|m| {
                m.write_u64(0x4000, 0, 0).unwrap();
            },
            &|m| m.write_u32_functional(0x4004, 0).unwrap(),
            &|m| m.write_u64_functional(0x4000, 0).unwrap(),
            &|m| m.write_slice(0x3ffe, &[0; 8]).unwrap(),
            &|m| SbMemory::store_u32(m, 0x4004, 0, 0).unwrap(),
        ];
        for store in stores {
            let mut m = MemorySystem::new(MemConfig::default());
            put_block(&mut m, 0x4000);
            m.superblock_at(0x4000).expect("translates");
            store(&mut m);
            assert_eq!(
                m.stats().superblock.invalidations,
                1,
                "store must drop the overlapping block"
            );
            // A re-lookup retranslates from the patched bytes (all stores
            // zeroed at least one instruction word, so the stale two-op
            // block can never be served again).
            if let Some(b) = m.superblock_at(0x4000) {
                assert!(b.len() < 2, "stale block must not survive the store");
            }
        }
    }

    #[test]
    fn superblocks_refuse_while_any_lesion_is_planted() {
        use crate::lesion::{LesionEffect, LesionTarget};
        let mut m = MemorySystem::new(MemConfig::default());
        put_block(&mut m, 0x4000);
        m.superblock_at(0x4000).expect("translates while healthy");
        // A *data*-side lesion must also refuse: block execution skips the
        // hierarchy walk entirely, so no lesioned path may be live.
        m.plant_lesion(CacheLesion {
            level: CacheLevel::L1D,
            target: LesionTarget::Line { set: 0, way: 0 },
            kind: LesionKind::Data,
            effect: LesionEffect { xor_mask: 1, ..LesionEffect::default() },
            remaining: u64::MAX,
        });
        assert!(m.superblock_at(0x4000).is_none(), "lesioned machine refuses");
        // One lesioned read burns the single-application budget; once the
        // lesion heals, blocks are served again.
        let mut l = m.lesions()[0];
        l.remaining = 1;
        m.lesions.clear();
        m.plant_lesion(l);
        m.read_u64(0, 0).unwrap();
        assert!(m.lesions().is_empty(), "transient lesion healed");
        assert!(m.superblock_at(0x4000).is_some(), "healed machine serves again");
    }

    #[test]
    fn disabled_superblocks_never_serve_or_count() {
        let mut m = MemorySystem::new(MemConfig { superblock: false, ..MemConfig::default() });
        put_block(&mut m, 0x4000);
        assert!(m.superblock_at(0x4000).is_none());
        assert_eq!(m.stats().superblock, gemfi_isa::SuperblockStats::default());
    }

    #[test]
    fn clear_superblocks_drops_translations_and_counters() {
        let mut m = MemorySystem::new(MemConfig::default());
        put_block(&mut m, 0x4000);
        m.superblock_at(0x4000).expect("translates");
        m.clear_superblocks();
        assert_eq!(m.stats().superblock, gemfi_isa::SuperblockStats::default());
        let b = m.superblock_at(0x4000).expect("retranslates after clear");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn disabled_predecode_never_serves_or_counts() {
        let mut m = MemorySystem::new(MemConfig { predecode: false, ..MemConfig::default() });
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        m.install_predecoded(0x4000, word, i);
        let (raw, cached, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!((raw, cached), (word, None));
        assert_eq!(m.stats().predecode, gemfi_isa::PredecodeStats::default());
    }

    #[test]
    fn clear_predecode_drops_entries_and_counters() {
        let mut m = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        m.install_predecoded(0x4000, word, i);
        m.fetch_predecoded(0x4000).unwrap();
        m.clear_predecode();
        assert_eq!(m.peek_predecoded(0x4000), None);
        assert_eq!(m.stats().predecode, gemfi_isa::PredecodeStats::default());
    }

    #[test]
    fn unmapped_timed_access_traps_without_stats() {
        let mut m = MemorySystem::new(MemConfig::default());
        let size = m.size();
        assert!(m.read_u64(size, 0x77).is_err());
        assert_eq!(m.stats().l1d.accesses(), 0);
    }

    use crate::lesion::{CacheLesion, CacheLevel, LesionEffect, LesionKind, LesionTarget};

    fn data_lesion(level: CacheLevel, set: u32, way: u32, remaining: u64) -> CacheLesion {
        CacheLesion {
            level,
            target: LesionTarget::Line { set, way },
            kind: LesionKind::Data,
            effect: LesionEffect { xor_mask: 1, ..LesionEffect::default() },
            remaining,
        }
    }

    #[test]
    fn data_lesion_corrupts_reads_then_heals() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x2000, 0x40).unwrap();
        let set = 0x2000 >> 6 & 0xff; // default L1D: 64 B lines, 256 sets
        m.plant_lesion(data_lesion(CacheLevel::L1D, set as u32, 0, 2));
        // A cold set fills way 0 first, so both reads land on the lesion.
        assert_eq!(m.read_u64(0x2000, 0).unwrap().0, 0x41);
        assert_eq!(m.read_u64(0x2000, 0).unwrap().0, 0x41);
        assert!(m.lesions().is_empty(), "transient lesion heals after its budget");
        assert_eq!(m.read_u64(0x2000, 0).unwrap().0, 0x40);
    }

    #[test]
    fn stuck_at_lesion_never_heals_and_corrupts_stores() {
        let mut m = MemorySystem::new(MemConfig::default());
        let set = (0x3000u64 >> 6 & 0xff) as u32;
        m.plant_lesion(data_lesion(CacheLevel::L1D, set, 0, u64::MAX));
        m.write_u64(0x3000, 0x10, 0).unwrap();
        // The store went through the damaged slot: the backing store holds
        // the corrupted value even for functional (untimed) readers.
        assert_eq!(m.read_u64_functional(0x3000).unwrap(), 0x11);
        assert_eq!(m.lesions().len(), 1);
    }

    #[test]
    fn way_lesion_covers_every_set_of_the_level() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x1000, 5).unwrap();
        m.write_u64_functional(0x8000, 9).unwrap();
        m.plant_lesion(CacheLesion {
            level: CacheLevel::L1D,
            target: LesionTarget::Way { way: 0 },
            kind: LesionKind::Data,
            effect: LesionEffect { set_mask: u64::MAX, set_value: 0, xor_mask: 0 },
            remaining: u64::MAX,
        });
        assert_eq!(m.read_u64(0x1000, 0).unwrap().0, 0, "stuck-at-zero way");
        assert_eq!(m.read_u64(0x8000, 0).unwrap().0, 0, "different set, same way");
    }

    #[test]
    fn tag_lesion_serves_the_aliased_line() {
        let mut m = MemorySystem::new(MemConfig::default());
        // Two addresses in the same L1D set whose tags differ by exactly
        // bit 0 (set stride = 256 sets * 64 B = 16 KiB).
        let a = 0x2000u64;
        let alias = a + (256 << 6);
        m.write_u64_functional(a, 0xaaaa).unwrap();
        m.write_u64_functional(alias, 0xbbbb).unwrap();
        let set = (a >> 6 & 0xff) as u32;
        m.plant_lesion(CacheLesion {
            level: CacheLevel::L1D,
            target: LesionTarget::Line { set, way: 0 },
            kind: LesionKind::Tag,
            effect: LesionEffect { xor_mask: 1, ..LesionEffect::default() },
            remaining: u64::MAX,
        });
        // Dirty the line, then read it back: the damaged tag answers for
        // the aliased line — wrong data, not an abort.
        m.write_u64(a, 0xcccc, 0).unwrap();
        assert_eq!(m.read_u64(a, 0).unwrap().0, 0xbbbb);
    }

    #[test]
    fn tag_lesion_with_unmapped_alias_falls_back_to_true_value() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.write_u64_functional(0x2000, 0x77).unwrap();
        m.plant_lesion(CacheLesion {
            level: CacheLevel::L1D,
            target: LesionTarget::Line { set: (0x2000 >> 6 & 0xff) as u32, way: 0 },
            kind: LesionKind::Tag,
            // Flipping a high tag bit aliases far outside physical memory.
            effect: LesionEffect { xor_mask: 1 << 40, ..LesionEffect::default() },
            remaining: u64::MAX,
        });
        assert_eq!(m.read_u64(0x2000, 0).unwrap().0, 0x77, "unmapped alias is contained");
    }

    #[test]
    fn fetch_lesion_bypasses_predecode_and_refuses_installs() {
        use gemfi_isa::{decode, RawInstr};
        let mut m = MemorySystem::new(MemConfig::default());
        let i = gemfi_isa::Instr::Br { ra: gemfi_isa::IntReg::new(31).unwrap(), disp: 0 };
        let word = gemfi_isa::encode(&i).0;
        m.write_u32_functional(0x4000, word).unwrap();
        m.plant_lesion(CacheLesion {
            level: CacheLevel::L1I,
            target: LesionTarget::Way { way: 0 },
            kind: LesionKind::Data,
            effect: LesionEffect { xor_mask: 1 << 26, ..LesionEffect::default() },
            remaining: u64::MAX,
        });
        let (raw, cached, _) = m.fetch_predecoded(0x4000).unwrap();
        assert_eq!(cached, None, "lesioned fetch path must not serve predecode");
        assert_eq!(raw, word ^ (1 << 26), "the damaged array corrupts the fetch");
        // Installs are refused while the fetch path is lesioned — neither a
        // corrupted decode nor even the true word may land.
        if let Ok(instr) = decode(RawInstr(raw)) {
            m.install_predecoded(0x4000, raw, instr);
        }
        m.install_predecoded(0x4000, word, i);
        assert_eq!(m.peek_predecoded(0x4000), None);
        // An entry installed *before* the lesion holds a true word: it may
        // stay resident (it is bypassed while the lesion is active).
        let mut pre = MemorySystem::new(MemConfig::default());
        pre.write_u32_functional(0x4000, word).unwrap();
        pre.install_predecoded(0x4000, word, i);
        pre.plant_lesion(CacheLesion {
            level: CacheLevel::L2,
            target: LesionTarget::Way { way: 0 },
            kind: LesionKind::Data,
            effect: LesionEffect { xor_mask: 1 << 26, ..LesionEffect::default() },
            remaining: u64::MAX,
        });
        let (_, cached, _) = pre.fetch_predecoded(0x4000).unwrap();
        assert_eq!(cached, None, "resident true-word entry is bypassed, not served");
        assert_eq!(pre.peek_predecoded(0x4000), Some(i));
        // An L1D-only lesion leaves the fetch path (and predecode) alone.
        let mut d = MemorySystem::new(MemConfig::default());
        d.write_u32_functional(0x4000, word).unwrap();
        d.plant_lesion(data_lesion(CacheLevel::L1D, 0, 0, u64::MAX));
        d.install_predecoded(0x4000, word, i);
        let (raw, cached, _) = d.fetch_predecoded(0x4000).unwrap();
        assert_eq!((raw, cached), (word, Some(i)));
    }

    #[test]
    fn lesions_survive_cache_invalidation() {
        let mut m = MemorySystem::new(MemConfig::default());
        m.plant_lesion(data_lesion(CacheLevel::L2, 3, 1, u64::MAX));
        m.invalidate_caches();
        assert_eq!(m.lesions().len(), 1, "lesions damage the array, not the lines");
    }
}
