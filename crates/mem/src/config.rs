//! Memory-system configuration.

use crate::cache::CacheConfig;

/// Configuration of the whole memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Physical memory size in bytes.
    pub phys_size: usize,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// DRAM access latency in ticks.
    pub dram_latency: u64,
    /// Whether the predecoded-instruction cache serves fetches. Purely a
    /// performance knob: results are identical either way (the cache is
    /// derived state), so the flag is deliberately *not* serialized into
    /// checkpoints.
    pub predecode: bool,
    /// Whether physical-memory clones share pages copy-on-write (`true`,
    /// the default) or deep-copy every page (`false` — the flat ablation
    /// baseline of the `restore_fanout` bench). Purely a performance knob:
    /// contents, traps, and serialized images are identical either way, so
    /// like `predecode` the flag is *not* serialized into checkpoints.
    pub cow: bool,
    /// Whether straight-line guest regions are pre-translated into
    /// superblocks of micro-ops and executed by threaded dispatch while the
    /// fault engine is dormant. Purely a performance knob layered above
    /// `predecode`: architectural results are identical either way (the
    /// translation cache is derived state), so the flag is deliberately
    /// *not* serialized into checkpoints.
    pub superblock: bool,
}

impl Default for MemConfig {
    /// The Sec. IV system: split 32 KiB L1s, a unified 1 MiB L2, and a
    /// conventional 64 MiB of guest DRAM.
    fn default() -> MemConfig {
        MemConfig {
            phys_size: 64 << 20,
            l1i: CacheConfig { size: 32 << 10, ways: 2, line: 64, hit_latency: 1 },
            l1d: CacheConfig { size: 32 << 10, ways: 2, line: 64, hit_latency: 2 },
            l2: CacheConfig { size: 1 << 20, ways: 8, line: 64, hit_latency: 12 },
            dram_latency: 80,
            predecode: true,
            cow: true,
            superblock: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_consistent() {
        let c = MemConfig::default();
        assert!(c.l1i.sets() > 0);
        assert!(c.l1d.sets() > 0);
        assert!(c.l2.sets() > 0);
        assert!(c.dram_latency > c.l2.hit_latency);
    }
}
