//! Seeded lockstep property test: the paged copy-on-write [`PhysMem`] must
//! be observationally identical to a flat `Vec<u8>` store — same bytes,
//! same traps, same serialized image — across thousands of mixed
//! operations, snapshots, and snapshot mutations, in both clone modes.
//!
//! The flat reference model here reimplements the pre-paging semantics
//! independently (bounds checked against the true size, natural alignment,
//! little-endian words), so a divergence means the paged store changed
//! guest-visible behavior, not that the test drifted with it.

use gemfi_isa::codec::ByteWriter;
use gemfi_isa::Trap;
use gemfi_mem::{encode_image, PhysMem, PAGE_SIZE};

/// SplitMix64 — the workspace is offline, so the test carries its own
/// tiny deterministic generator (same algorithm the campaign crate uses).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The flat reference: the old `Vec<u8>`-backed implementation's semantics,
/// restated from scratch.
#[derive(Clone, PartialEq)]
struct FlatRef {
    bytes: Vec<u8>,
}

impl FlatRef {
    fn new(size: usize) -> FlatRef {
        FlatRef { bytes: vec![0; size] }
    }

    fn check(&self, addr: u64, width: u64, pc: u64) -> Result<usize, Trap> {
        if !addr.is_multiple_of(width) {
            return Err(Trap::MisalignedAccess { addr, pc });
        }
        match addr.checked_add(width) {
            Some(end) if end <= self.bytes.len() as u64 => Ok(addr as usize),
            _ => Err(Trap::UnmappedAccess { addr, pc }),
        }
    }

    fn read(&self, addr: u64, width: u64, pc: u64) -> Result<u64, Trap> {
        let i = self.check(addr, width, pc)?;
        let mut le = [0u8; 8];
        le[..width as usize].copy_from_slice(&self.bytes[i..i + width as usize]);
        Ok(u64::from_le_bytes(le))
    }

    fn write(&mut self, addr: u64, width: u64, value: u64, pc: u64) -> Result<(), Trap> {
        let i = self.check(addr, width, pc)?;
        self.bytes[i..i + width as usize].copy_from_slice(&value.to_le_bytes()[..width as usize]);
        Ok(())
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<usize, Trap> {
        match addr.checked_add(len as u64) {
            Some(end) if end <= self.bytes.len() as u64 => Ok(addr as usize),
            _ => Err(Trap::UnmappedAccess { addr, pc: 0 }),
        }
    }

    fn read_slice(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        let i = self.check_range(addr, len)?;
        Ok(self.bytes[i..i + len].to_vec())
    }

    fn write_slice(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        let i = self.check_range(addr, data.len())?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }
}

/// Reads by width, dispatching to the paged store's typed accessors.
fn paged_read(m: &PhysMem, addr: u64, width: u64, pc: u64) -> Result<u64, Trap> {
    match width {
        1 => m.read_u8(addr, pc).map(u64::from),
        4 => m.read_u32(addr, pc).map(u64::from),
        _ => m.read_u64(addr, pc),
    }
}

fn paged_write(m: &mut PhysMem, addr: u64, width: u64, value: u64, pc: u64) -> Result<(), Trap> {
    match width {
        1 => m.write_u8(addr, value as u8, pc),
        4 => m.write_u32(addr, value as u32, pc),
        _ => m.write_u64(addr, value, pc),
    }
}

fn serialized_image(bytes: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    encode_image(bytes, &mut w);
    w.into_bytes()
}

fn assert_identical(paged: &PhysMem, flat: &FlatRef, context: &str) {
    let bytes = paged.read_slice(0, paged.size() as usize).unwrap();
    assert_eq!(bytes, flat.bytes, "byte divergence: {context}");
    assert_eq!(
        serialized_image(&bytes),
        serialized_image(&flat.bytes),
        "serialized image divergence: {context}"
    );
}

/// Addresses are drawn to land in-bounds, near page boundaries, misaligned,
/// and past the end, so every trap edge gets exercised.
fn pick_addr(rng: &mut SplitMix64, size: u64) -> u64 {
    match rng.below(8) {
        // Past-the-end and far out of range.
        0 => size + rng.below(64),
        1 => u64::MAX - rng.below(16),
        // Hugging a page boundary (straddles for slices, aligns for words).
        2 | 3 => {
            let page = rng.below(size.div_ceil(PAGE_SIZE as u64) + 1);
            (page * PAGE_SIZE as u64).saturating_add(rng.below(32)).saturating_sub(16)
        }
        // Anywhere (any alignment).
        _ => rng.below(size),
    }
}

fn run_lockstep(cow: bool, seed: u64) {
    // A non-page-multiple size: the last page is partially mapped, so the
    // "bounds are the true size" rule is under test throughout.
    const SIZE: usize = 4 * PAGE_SIZE + 100;
    let mut rng = SplitMix64(seed);
    let mut paged = PhysMem::with_cow(SIZE, cow);
    let mut flat = FlatRef::new(SIZE);
    // Live snapshots: (paged clone, flat clone, op index at capture).
    let mut snaps: Vec<(PhysMem, FlatRef, usize)> = Vec::new();

    for op in 0..4_000 {
        match rng.below(100) {
            // Word traffic (the CPU's path) — dominant.
            0..=54 => {
                let width = [1u64, 4, 8][rng.below(3) as usize];
                let addr = pick_addr(&mut rng, SIZE as u64);
                let pc = rng.below(1 << 20);
                if rng.below(2) == 0 {
                    let value = rng.next();
                    assert_eq!(
                        paged_write(&mut paged, addr, width, value, pc),
                        flat.write(addr, width, value, pc),
                        "write w={width} addr={addr:#x} op={op}"
                    );
                } else {
                    assert_eq!(
                        paged_read(&paged, addr, width, pc),
                        flat.read(addr, width, pc),
                        "read w={width} addr={addr:#x} op={op}"
                    );
                }
            }
            // Bulk slices crossing page boundaries (loader/checkpoint path).
            55..=79 => {
                let addr = pick_addr(&mut rng, SIZE as u64);
                let len = rng.below(2 * PAGE_SIZE as u64 + 7) as usize;
                if rng.below(2) == 0 {
                    // Mix all-zero chunks in to hit the pristine-page skip.
                    let data: Vec<u8> = if rng.below(4) == 0 {
                        vec![0; len]
                    } else {
                        (0..len).map(|_| rng.next() as u8).collect()
                    };
                    assert_eq!(
                        paged.write_slice(addr, &data),
                        flat.write_slice(addr, &data),
                        "write_slice addr={addr:#x} len={len} op={op}"
                    );
                } else {
                    assert_eq!(
                        paged.read_slice(addr, len),
                        flat.read_slice(addr, len),
                        "read_slice addr={addr:#x} len={len} op={op}"
                    );
                }
            }
            // Snapshot: clone both models.
            80..=89 => {
                if snaps.len() < 8 {
                    snaps.push((paged.clone(), flat.clone(), op));
                }
            }
            // Mutate a snapshot, or audit one against its flat twin. Writes
            // into old snapshots are exactly the checkpoint-fan-out pattern:
            // they must never bleed into the live store or other snapshots.
            _ => {
                if snaps.is_empty() {
                    continue;
                }
                let i = rng.below(snaps.len() as u64) as usize;
                if rng.below(2) == 0 {
                    let addr = rng.below(SIZE as u64 - 8) & !7;
                    let value = rng.next();
                    let (sp, sf, _) = &mut snaps[i];
                    sp.write_u64(addr, value, 0).unwrap();
                    sf.write(addr, 8, value, 0).unwrap();
                } else {
                    let (sp, sf, at) = &snaps[i];
                    assert_identical(sp, sf, &format!("snapshot taken at op {at}, now op {op}"));
                }
            }
        }
    }

    assert_identical(&paged, &flat, "final state");
    for (sp, sf, at) in &snaps {
        assert_identical(sp, sf, &format!("snapshot taken at op {at}, at end"));
    }
}

#[test]
fn paged_cow_store_matches_flat_reference() {
    for seed in [1, 0xdead_beef, 0x6765_6d66_6921] {
        run_lockstep(true, seed);
    }
}

#[test]
fn flat_ablation_mode_matches_flat_reference() {
    for seed in [2, 0xcafe_f00d] {
        run_lockstep(false, seed);
    }
}
