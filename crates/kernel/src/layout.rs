//! Guest memory layout owned by the kernel.
//!
//! ```text
//! 0x0000_0000 .. 0x0000_4000   kernel scratch (exception vectors, reserved)
//! 0x0000_4000 .. 0x0000_8000   PCB array (MAX_THREADS × PCB_SIZE)
//! 0x0001_0000 .. text_end      program text (gemfi_asm::TEXT_BASE)
//! data_base   .. image_end     program data
//! image_end   .. heap_brk      heap (grows up via sbrk)
//! top-of-mem  ↓ per-thread     stacks (STACK_SIZE each, grow down)
//! ```

/// Maximum number of guest threads.
pub const MAX_THREADS: usize = 8;

/// Base address of the PCB array.
pub const PCB_BASE: u64 = 0x4000;

/// Bytes reserved per PCB: 32 int regs, 32 fp regs, pc, psr.
pub const PCB_SIZE: u64 = 0x400;

/// Per-thread stack size in bytes.
pub const STACK_SIZE: u64 = 1 << 20;

/// PCB offset of the saved PC.
pub(crate) const PCB_OFF_PC: u64 = 0x200;
/// PCB offset of the saved PSR.
pub(crate) const PCB_OFF_PSR: u64 = 0x208;
/// PCB offset of the integer register save area.
pub(crate) const PCB_OFF_INT: u64 = 0x000;
/// PCB offset of the FP register save area.
pub(crate) const PCB_OFF_FP: u64 = 0x100;

/// The PCB address of thread `tid`. This value is what GemFI observes in the
/// `pcbb` special register and keys its `ThreadEnabledFault` map on.
pub fn pcb_addr(tid: usize) -> u64 {
    debug_assert!(tid < MAX_THREADS);
    PCB_BASE + tid as u64 * PCB_SIZE
}

/// Stack top for thread `tid` in a machine with `mem_size` bytes of memory
/// (16-byte aligned, one guard gap below the previous stack).
pub fn stack_top(tid: usize, mem_size: u64) -> u64 {
    (mem_size - tid as u64 * STACK_SIZE - 64) & !15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcbs_do_not_overlap_text() {
        assert!(pcb_addr(MAX_THREADS - 1) + PCB_SIZE <= 0x1_0000);
    }

    #[test]
    fn stack_tops_are_aligned_and_distinct() {
        let mem = 64 << 20;
        let tops: Vec<u64> = (0..MAX_THREADS).map(|t| stack_top(t, mem)).collect();
        for w in tops.windows(2) {
            assert!(w[0] - w[1] >= STACK_SIZE - 64);
        }
        assert!(tops.iter().all(|t| t % 16 == 0));
    }
}
