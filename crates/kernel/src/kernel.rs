//! The kernel proper: boot, PAL dispatch, scheduling, context switching.

use crate::layout::{
    pcb_addr, stack_top, MAX_THREADS, PCB_OFF_FP, PCB_OFF_INT, PCB_OFF_PC, PCB_OFF_PSR,
};
use crate::thread::{Thread, ThreadId, ThreadState};
use gemfi_isa::{ArchState, FpReg, IntReg, PalFunc, Trap};
use gemfi_mem::MemorySystem;

/// Computes `base + off` for a PCB slot, trapping (rather than overflowing)
/// when a fault-corrupted PCB base pushes the slot past the address space.
fn pcb_slot(base: u64, off: u64, pc: u64) -> Result<u64, Trap> {
    base.checked_add(off).ok_or(Trap::UnmappedAccess { addr: base, pc })
}

/// What a PAL call (or timer interrupt) did to the machine, as seen by the
/// CPU model that trapped into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PalOutcome {
    /// Service completed; continue with the (possibly updated) context.
    Continue,
    /// The running thread changed; `arch` now holds the new context.
    Switched,
    /// Every thread has exited; the machine should halt. Carries the exit
    /// code of the initial thread.
    AllExited(u64),
    /// Explicit `halt` PAL call.
    Halt,
}

/// The `palos` kernel state.
///
/// Owned by the machine alongside the memory system and CPU; serialized in
/// whole-machine checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    threads: Vec<Thread>,
    current: ThreadId,
    brk: u64,
    console: Vec<u8>,
    out_words: Vec<u64>,
    /// Timer quantum in ticks; 0 disables preemption.
    quantum: u64,
    /// Number of context switches performed (a paper-facing statistic).
    switches: u64,
}

impl Kernel {
    /// Boots the kernel: creates the initial thread with its PCB and stack
    /// and points `arch` at the program entry.
    ///
    /// # Errors
    ///
    /// Propagates traps from PCB initialization writes (only possible with a
    /// pathologically small memory).
    pub fn boot(
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        entry: u64,
        heap_base: u64,
        quantum: u64,
    ) -> Result<Kernel, Trap> {
        let mut kernel = Kernel {
            threads: Vec::new(),
            current: 0,
            brk: heap_base,
            console: Vec::new(),
            out_words: Vec::new(),
            quantum,
            switches: 0,
        };
        let tid = kernel.create_thread(mem, entry, stack_top(0, mem.size()), 0)?;
        debug_assert_eq!(tid, 0);
        kernel.load_context(tid, arch, mem)?;
        Ok(kernel)
    }

    /// The scheduler quantum in ticks (0 = no preemption).
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Console output accumulated so far.
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Binary output channel (`write_word` PAL calls).
    pub fn out_words(&self) -> &[u64] {
        &self.out_words
    }

    /// Number of context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }

    /// The currently running thread id.
    pub fn current_tid(&self) -> ThreadId {
        self.current
    }

    /// All threads (inspection/tests).
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Exit code of the initial thread, if it has exited.
    pub fn main_exit_code(&self) -> Option<u64> {
        self.threads.first().and_then(Thread::exit_code)
    }

    fn create_thread(
        &mut self,
        mem: &mut MemorySystem,
        entry: u64,
        sp: u64,
        arg: u64,
    ) -> Result<ThreadId, Trap> {
        let tid = self.threads.len();
        if tid >= MAX_THREADS {
            // Defensive double of ThreadSpawn's table-full guard: a corrupted
            // thread table must trap as a bad PAL service, never abort the
            // simulator.
            return Err(Trap::IllegalPalCall { number: PalFunc::ThreadSpawn.number(), pc: entry });
        }
        let pcbb = pcb_addr(tid);
        self.threads.push(Thread { tid, pcbb, state: ThreadState::Runnable });
        // Materialize the initial context in the guest PCB.
        let mut ctx = ArchState::new(entry);
        ctx.pcbb = pcbb;
        ctx.regs.write_int(IntReg::SP, sp);
        ctx.regs.write_int(IntReg::A0, arg);
        // Returning from the thread entry without an explicit exit would be
        // a wild jump; conventionally threads end in `exit`/`thread_exit`,
        // and RA is left 0 so a stray `ret` traps on unmapped fetch.
        self.save_context_of(&ctx, mem)?;
        Ok(tid)
    }

    /// Writes `ctx` into the PCB named by `ctx.pcbb` (functional stores —
    /// PAL routines are microcoded, but the PCB bytes are architecturally
    /// visible and faults in memory can corrupt them).
    fn save_context_of(&mut self, ctx: &ArchState, mem: &mut MemorySystem) -> Result<(), Trap> {
        // `ctx.pcbb` is guest-corruptible (SpecialReg faults): slot addresses
        // must be overflow-checked so a wild PCB base traps instead of
        // panicking in debug arithmetic.
        let base = ctx.pcbb;
        for i in 0..32u64 {
            // Infallible: i ranges over the 32 architectural registers.
            #[allow(clippy::expect_used)]
            let r = IntReg::new(i as u8).expect("index in range");
            mem.write_u64_functional(
                pcb_slot(base, PCB_OFF_INT + i * 8, ctx.pc)?,
                ctx.regs.read_int(r),
            )?;
            #[allow(clippy::expect_used)]
            let f = FpReg::new(i as u8).expect("index in range");
            mem.write_u64_functional(
                pcb_slot(base, PCB_OFF_FP + i * 8, ctx.pc)?,
                ctx.regs.read_fp_bits(f),
            )?;
        }
        mem.write_u64_functional(pcb_slot(base, PCB_OFF_PC, ctx.pc)?, ctx.pc)?;
        mem.write_u64_functional(pcb_slot(base, PCB_OFF_PSR, ctx.pc)?, ctx.psr)?;
        Ok(())
    }

    /// Loads thread `tid`'s context from its PCB into `arch`.
    fn load_context(
        &mut self,
        tid: ThreadId,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
    ) -> Result<(), Trap> {
        let base = pcb_addr(tid);
        for i in 0..32u64 {
            // Infallible: i ranges over the 32 architectural registers.
            #[allow(clippy::expect_used)]
            let r = IntReg::new(i as u8).expect("index in range");
            arch.regs.write_int(
                r,
                mem.read_u64_functional(pcb_slot(base, PCB_OFF_INT + i * 8, arch.pc)?)?,
            );
            #[allow(clippy::expect_used)]
            let f = FpReg::new(i as u8).expect("index in range");
            arch.regs.write_fp_bits(
                f,
                mem.read_u64_functional(pcb_slot(base, PCB_OFF_FP + i * 8, arch.pc)?)?,
            );
        }
        arch.pc = mem.read_u64_functional(pcb_slot(base, PCB_OFF_PC, arch.pc)?)?;
        arch.psr = mem.read_u64_functional(pcb_slot(base, PCB_OFF_PSR, arch.pc)?)?;
        arch.pcbb = base;
        self.current = tid;
        Ok(())
    }

    /// Round-robin pick of the next runnable thread after `from`.
    fn next_runnable(&self, from: ThreadId) -> Option<ThreadId> {
        let n = self.threads.len();
        if n == 0 {
            return None;
        }
        // A corrupted `current` must not divide-by-zero or overflow here;
        // reduce it into range and scan the whole table.
        let from = from % n;
        (1..=n).map(|d| (from + d) % n).find(|&t| self.threads[t].is_runnable())
    }

    /// Switches from the current context to `to` (saving the old one).
    fn switch_to(
        &mut self,
        to: ThreadId,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        save_current: bool,
    ) -> Result<(), Trap> {
        if save_current {
            let ctx = arch.clone();
            self.save_context_of(&ctx, mem)?;
        }
        self.load_context(to, arch, mem)?;
        self.switches += 1;
        Ok(())
    }

    /// Timer interrupt: preempts the current thread if another is runnable.
    /// Returns `true` when a context switch happened.
    ///
    /// # Errors
    ///
    /// Propagates traps from PCB save/restore.
    pub fn timer_preempt(
        &mut self,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
    ) -> Result<bool, Trap> {
        if !arch.interrupts_enabled() {
            return Ok(false);
        }
        match self.next_runnable(self.current) {
            Some(t) if t != self.current => {
                self.switch_to(t, arch, mem, true)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Wakes any threads joined on `exited`, depositing the exit code into
    /// the saved `V0` of each joiner's PCB (the join return value).
    fn wake_joiners(
        &mut self,
        exited: ThreadId,
        code: u64,
        mem: &mut MemorySystem,
    ) -> Result<(), Trap> {
        for i in 0..self.threads.len() {
            if self.threads[i].state == ThreadState::Joining(exited) {
                self.threads[i].state = ThreadState::Runnable;
                let v0_slot =
                    pcb_slot(self.threads[i].pcbb, PCB_OFF_INT + IntReg::V0.index() as u64 * 8, 0)?;
                mem.write_u64_functional(v0_slot, code)?;
            }
        }
        Ok(())
    }

    /// Dispatches a PAL call. The CPU model calls this when it commits a
    /// `call_pal` instruction; `arch` is the committing context.
    ///
    /// # Errors
    ///
    /// Propagates traps from guest memory access during the service.
    pub fn pal_call(
        &mut self,
        func: PalFunc,
        arch: &mut ArchState,
        mem: &mut MemorySystem,
        now: u64,
    ) -> Result<PalOutcome, Trap> {
        match func {
            PalFunc::Halt => {
                // Halting is privileged: a wild jump into zeroed memory
                // (word 0 decodes to `call_pal halt`) must crash, not stop
                // the machine cleanly.
                if arch.in_kernel() {
                    Ok(PalOutcome::Halt)
                } else {
                    Err(Trap::IllegalPalCall { number: PalFunc::Halt.number(), pc: arch.pc })
                }
            }
            PalFunc::Putc => {
                self.console.push(arch.regs.read_int(IntReg::A0) as u8);
                Ok(PalOutcome::Continue)
            }
            PalFunc::WriteWord => {
                self.out_words.push(arch.regs.read_int(IntReg::A0));
                Ok(PalOutcome::Continue)
            }
            PalFunc::ReadCycles => {
                arch.regs.write_int(IntReg::V0, now);
                Ok(PalOutcome::Continue)
            }
            PalFunc::GetTid => {
                arch.regs.write_int(IntReg::V0, self.current as u64);
                Ok(PalOutcome::Continue)
            }
            PalFunc::Sbrk => {
                let old = self.brk;
                let grow = arch.regs.read_int(IntReg::A0);
                let new = old.saturating_add(grow);
                // Refuse growth into the lowest stack.
                let limit = stack_top(self.threads.len().max(1) - 1, mem.size())
                    .saturating_sub(crate::layout::STACK_SIZE);
                if new > limit {
                    arch.regs.write_int(IntReg::V0, u64::MAX); // ENOMEM
                } else {
                    self.brk = new;
                    arch.regs.write_int(IntReg::V0, old);
                }
                Ok(PalOutcome::Continue)
            }
            PalFunc::ThreadSpawn => {
                let entry = arch.regs.read_int(IntReg::A0);
                let sp = arch.regs.read_int(IntReg::A1);
                let arg = arch.regs.read_int(IntReg::A2);
                if self.threads.len() >= MAX_THREADS {
                    arch.regs.write_int(IntReg::V0, u64::MAX);
                } else {
                    let sp = if sp == 0 { stack_top(self.threads.len(), mem.size()) } else { sp };
                    let tid = self.create_thread(mem, entry, sp, arg)?;
                    arch.regs.write_int(IntReg::V0, tid as u64);
                }
                Ok(PalOutcome::Continue)
            }
            PalFunc::Yield => match self.next_runnable(self.current) {
                Some(t) if t != self.current => {
                    self.switch_to(t, arch, mem, true)?;
                    Ok(PalOutcome::Switched)
                }
                _ => Ok(PalOutcome::Continue),
            },
            PalFunc::ThreadJoin => {
                let target = arch.regs.read_int(IntReg::A0) as usize;
                if target >= self.threads.len() || target == self.current {
                    arch.regs.write_int(IntReg::V0, u64::MAX);
                    return Ok(PalOutcome::Continue);
                }
                if let Some(code) = self.threads[target].exit_code() {
                    arch.regs.write_int(IntReg::V0, code);
                    return Ok(PalOutcome::Continue);
                }
                self.threads[self.current].state = ThreadState::Joining(target);
                match self.next_runnable(self.current) {
                    Some(t) => {
                        self.switch_to(t, arch, mem, true)?;
                        Ok(PalOutcome::Switched)
                    }
                    // Deadlock: everybody blocked. Treat as a hang; the
                    // machine watchdog will classify it.
                    None => {
                        self.threads[self.current].state = ThreadState::Runnable;
                        arch.regs.write_int(IntReg::V0, u64::MAX);
                        Ok(PalOutcome::Continue)
                    }
                }
            }
            PalFunc::Exit => {
                let code = arch.regs.read_int(IntReg::A0);
                let me = self.current;
                self.threads[me].state = ThreadState::Exited(code);
                self.wake_joiners(me, code, mem)?;
                match self.next_runnable(me) {
                    Some(t) => {
                        // No need to save the exiting context.
                        self.switch_to(t, arch, mem, false)?;
                        Ok(PalOutcome::Switched)
                    }
                    None => Ok(PalOutcome::AllExited(self.main_exit_code().unwrap_or(code))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemfi_mem::MemConfig;

    fn setup() -> (ArchState, MemorySystem, Kernel) {
        let mut mem = MemorySystem::new(MemConfig { phys_size: 8 << 20, ..MemConfig::default() });
        let mut arch = ArchState::default();
        let kernel = Kernel::boot(&mut arch, &mut mem, 0x1_0000, 0x2_0000, 1000).unwrap();
        (arch, mem, kernel)
    }

    #[test]
    fn boot_creates_main_thread_with_stack_and_pcbb() {
        let (arch, mem, kernel) = setup();
        assert_eq!(arch.pc, 0x1_0000);
        assert_eq!(arch.pcbb, pcb_addr(0));
        let sp = arch.regs.read_int(IntReg::SP);
        assert!(sp > 0 && sp < mem.size());
        assert_eq!(kernel.current_tid(), 0);
    }

    #[test]
    fn putc_and_write_word_accumulate() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, b'h' as u64);
        kernel.pal_call(PalFunc::Putc, &mut arch, &mut mem, 0).unwrap();
        arch.regs.write_int(IntReg::A0, 0xfeed);
        kernel.pal_call(PalFunc::WriteWord, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(kernel.console(), b"h");
        assert_eq!(kernel.out_words(), &[0xfeed]);
    }

    #[test]
    fn exit_of_last_thread_halts_machine() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 3);
        let out = kernel.pal_call(PalFunc::Exit, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(out, PalOutcome::AllExited(3));
        assert_eq!(kernel.main_exit_code(), Some(3));
    }

    #[test]
    fn spawn_yield_switches_context_and_pcbb_changes() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 0x1_4000); // entry
        arch.regs.write_int(IntReg::A1, 0); // auto stack
        arch.regs.write_int(IntReg::A2, 99); // arg
        kernel.pal_call(PalFunc::ThreadSpawn, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(arch.regs.read_int(IntReg::V0), 1);

        let old_pcbb = arch.pcbb;
        let out = kernel.pal_call(PalFunc::Yield, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(out, PalOutcome::Switched);
        assert_ne!(arch.pcbb, old_pcbb, "context switch must change the PCB base");
        assert_eq!(arch.pc, 0x1_4000);
        assert_eq!(arch.regs.read_int(IntReg::A0), 99);
        assert_eq!(kernel.context_switches(), 1);
    }

    #[test]
    fn join_blocks_until_child_exits() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 0x1_4000);
        arch.regs.write_int(IntReg::A1, 0);
        arch.regs.write_int(IntReg::A2, 0);
        kernel.pal_call(PalFunc::ThreadSpawn, &mut arch, &mut mem, 0).unwrap();

        // Main joins child 1 → switched into child.
        arch.regs.write_int(IntReg::A0, 1);
        let out = kernel.pal_call(PalFunc::ThreadJoin, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(out, PalOutcome::Switched);
        assert_eq!(kernel.current_tid(), 1);

        // Child exits 7 → main wakes with join result.
        arch.regs.write_int(IntReg::A0, 7);
        let out = kernel.pal_call(PalFunc::Exit, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(out, PalOutcome::Switched);
        assert_eq!(kernel.current_tid(), 0);
    }

    #[test]
    fn timer_preempt_round_robins_and_preserves_context() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 0x1_4000);
        arch.regs.write_int(IntReg::A1, 0);
        arch.regs.write_int(IntReg::A2, 0);
        kernel.pal_call(PalFunc::ThreadSpawn, &mut arch, &mut mem, 0).unwrap();

        arch.regs.write_int(IntReg::new(9).unwrap(), 0xabc);
        let pc0 = arch.pc;
        assert!(kernel.timer_preempt(&mut arch, &mut mem).unwrap());
        assert_eq!(kernel.current_tid(), 1);
        // Come back around.
        assert!(kernel.timer_preempt(&mut arch, &mut mem).unwrap());
        assert_eq!(kernel.current_tid(), 0);
        assert_eq!(arch.regs.read_int(IntReg::new(9).unwrap()), 0xabc);
        assert_eq!(arch.pc, pc0);
    }

    #[test]
    fn preempt_respects_interrupt_disable() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 0x1_4000);
        arch.regs.write_int(IntReg::A1, 0);
        arch.regs.write_int(IntReg::A2, 0);
        kernel.pal_call(PalFunc::ThreadSpawn, &mut arch, &mut mem, 0).unwrap();
        arch.psr &= !gemfi_isa::PSR_INT_ENABLE;
        assert!(!kernel.timer_preempt(&mut arch, &mut mem).unwrap());
    }

    #[test]
    fn sbrk_bumps_and_refuses_stack_collision() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 4096);
        kernel.pal_call(PalFunc::Sbrk, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(arch.regs.read_int(IntReg::V0), 0x2_0000);
        arch.regs.write_int(IntReg::A0, u64::MAX / 2);
        kernel.pal_call(PalFunc::Sbrk, &mut arch, &mut mem, 0).unwrap();
        assert_eq!(arch.regs.read_int(IntReg::V0), u64::MAX);
    }

    #[test]
    fn pcb_contents_are_guest_visible() {
        let (mut arch, mut mem, mut kernel) = setup();
        arch.regs.write_int(IntReg::A0, 0x1_4000);
        arch.regs.write_int(IntReg::A1, 0);
        arch.regs.write_int(IntReg::A2, 0);
        kernel.pal_call(PalFunc::ThreadSpawn, &mut arch, &mut mem, 0).unwrap();
        arch.regs.write_int(IntReg::new(5).unwrap(), 0x5555);
        kernel.pal_call(PalFunc::Yield, &mut arch, &mut mem, 0).unwrap();
        // Thread 0's r5 must now be readable in its PCB in guest memory.
        let saved = mem.read_u64_functional(pcb_addr(0) + PCB_OFF_INT + 5 * 8).unwrap();
        assert_eq!(saved, 0x5555);
    }
}

mod codec_impl {
    use super::{Kernel, Thread, ThreadState};
    use gemfi_isa::codec::{ByteReader, ByteWriter, Codec, CodecError};

    impl Codec for ThreadState {
        fn encode(&self, w: &mut ByteWriter) {
            match self {
                ThreadState::Runnable => w.put_u8(0),
                ThreadState::Joining(t) => {
                    w.put_u8(1);
                    w.put_u64(*t as u64);
                }
                ThreadState::Exited(c) => {
                    w.put_u8(2);
                    w.put_u64(*c);
                }
            }
        }

        fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
            Ok(match r.get_u8()? {
                0 => ThreadState::Runnable,
                1 => ThreadState::Joining(r.get_u64()? as usize),
                2 => ThreadState::Exited(r.get_u64()?),
                v => return Err(CodecError::InvalidTag { what: "ThreadState", value: v as u64 }),
            })
        }
    }

    impl Codec for Thread {
        fn encode(&self, w: &mut ByteWriter) {
            w.put_u64(self.tid as u64);
            w.put_u64(self.pcbb);
            self.state.encode(w);
        }

        fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
            Ok(Thread {
                tid: r.get_u64()? as usize,
                pcbb: r.get_u64()?,
                state: ThreadState::decode(r)?,
            })
        }
    }

    impl Codec for Kernel {
        fn encode(&self, w: &mut ByteWriter) {
            self.threads.encode(w);
            w.put_u64(self.current as u64);
            w.put_u64(self.brk);
            w.put_bytes(&self.console);
            self.out_words.encode(w);
            w.put_u64(self.quantum);
            w.put_u64(self.switches);
        }

        fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
            Ok(Kernel {
                threads: Vec::<Thread>::decode(r)?,
                current: r.get_u64()? as usize,
                brk: r.get_u64()?,
                console: r.get_bytes()?.to_vec(),
                out_words: Vec::<u64>::decode(r)?,
                quantum: r.get_u64()?,
                switches: r.get_u64()?,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use gemfi_isa::ArchState;
        use gemfi_mem::{MemConfig, MemorySystem};

        #[test]
        fn kernel_checkpoint_roundtrips() {
            let mut mem =
                MemorySystem::new(MemConfig { phys_size: 8 << 20, ..MemConfig::default() });
            let mut arch = ArchState::default();
            let mut k = Kernel::boot(&mut arch, &mut mem, 0x1_0000, 0x2_0000, 500).unwrap();
            arch.regs.write_int(gemfi_isa::IntReg::A0, b'x' as u64);
            k.pal_call(gemfi_isa::PalFunc::Putc, &mut arch, &mut mem, 0).unwrap();
            let restored = Kernel::from_bytes(&k.to_bytes()).unwrap();
            assert_eq!(restored, k);
        }
    }
}
