//! Kernel thread bookkeeping.

/// A guest thread identifier (index into the PCB array).
pub type ThreadId = usize;

/// Scheduler state of one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Blocked in `thread_join` waiting for another thread.
    Joining(ThreadId),
    /// Terminated with an exit code.
    Exited(u64),
}

/// Host-side metadata for one guest thread. The register context itself
/// lives in the guest PCB, not here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Thread {
    /// Thread id.
    pub tid: ThreadId,
    /// Guest address of this thread's PCB.
    pub pcbb: u64,
    /// Scheduler state.
    pub state: ThreadState,
}

impl Thread {
    /// Whether the thread can be picked by the scheduler.
    pub fn is_runnable(&self) -> bool {
        self.state == ThreadState::Runnable
    }

    /// The exit code, if the thread has exited.
    pub fn exit_code(&self) -> Option<u64> {
        match self.state {
            ThreadState::Exited(c) => Some(c),
            _ => None,
        }
    }
}
