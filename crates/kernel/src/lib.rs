//! `palos` — the minimal full-system kernel substrate.
//!
//! The paper runs its benchmarks in gem5's *full-system* mode: applications
//! execute under an operating system, faults hit user- and kernel-level
//! activity alike, and GemFI identifies threads "at the hardware/simulator
//! level by their unique Process Control Block (PCB) address", detecting
//! context switches "by the change of the PCB address" (Sec. III-C).
//!
//! This crate provides exactly those mechanisms without porting Linux:
//!
//! * per-thread **PCBs living in guest memory** (register save areas that are
//!   really written/read on context switches, so PCB addresses are
//!   architecturally meaningful),
//! * a **round-robin scheduler** driven by a timer interrupt,
//! * **PAL-call services** (console, exit, sbrk, spawn/join/yield),
//! * a **boot** procedure that loads a program image and creates the initial
//!   thread.
//!
//! PAL routines execute atomically on the host side (akin to microcoded
//! PALcode), but all context state transits through guest memory, so the
//! thread-identity surface GemFI hooks is real. The substitution is recorded
//! in `DESIGN.md`.

// Guest-reachable crate: new unwrap/expect sites need an explicit allow with
// a written justification (fault containment, see DESIGN.md).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod kernel;
mod layout;
mod thread;

pub use kernel::{Kernel, PalOutcome};
pub use layout::{pcb_addr, stack_top, MAX_THREADS, PCB_BASE, PCB_SIZE, STACK_SIZE};
pub use thread::{Thread, ThreadId, ThreadState};
