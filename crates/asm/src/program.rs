//! Linked guest programs.

use std::collections::HashMap;

/// Base address where program text is loaded. Addresses below this are
/// reserved for the kernel substrate (exception stubs, PCBs).
pub const TEXT_BASE: u64 = 0x1_0000;

/// A fully linked guest program: text, data, and a symbol table.
///
/// The machine loader writes `text` at [`TEXT_BASE`] and `data` at
/// [`Program::data_base`], then starts the boot thread at
/// [`Program::entry`]. Host-side code (workload drivers, the campaign
/// classifier) uses [`Program::symbol`] to find input/output regions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    text: Vec<u32>,
    data: Vec<u8>,
    data_base: u64,
    entry: u64,
    symbols: HashMap<String, u64>,
}

impl Program {
    pub(crate) fn new(
        text: Vec<u32>,
        data: Vec<u8>,
        data_base: u64,
        entry: u64,
        symbols: HashMap<String, u64>,
    ) -> Program {
        Program { text, data, data_base, entry, symbols }
    }

    /// The instruction words, to be loaded at [`TEXT_BASE`].
    pub fn text_words(&self) -> &[u32] {
        &self.text
    }

    /// The initialized data image, to be loaded at [`Program::data_base`].
    pub fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Load address of the data image.
    pub fn data_base(&self) -> u64 {
        self.data_base
    }

    /// Entry-point address of the boot thread.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// First address past the loaded image (start of the heap).
    pub fn image_end(&self) -> u64 {
        self.data_base + self.data.len() as u64
    }

    /// Looks up a label or data symbol by name.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total number of instruction words.
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// Iterates over `(name, address)` pairs of the symbol table.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }
}
