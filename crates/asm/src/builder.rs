//! The [`Assembler`] builder.

use crate::error::AsmError;
use crate::program::{Program, TEXT_BASE};
use gemfi_isa::opcode::{BranchCond, FpBranchCond, FpFunc, IntFunc};
use gemfi_isa::{encode, FpReg, Instr, IntReg, JumpKind, MemOp, Operand, PalFunc, RawInstr};
use std::collections::{BTreeMap, HashMap};

const DATA_ALIGN: u64 = 0x1000;

#[derive(Debug, Clone)]
enum Fixup {
    /// Patch the 21-bit branch displacement of the word at `at` to reach
    /// text label `label`.
    Branch { at: usize, label: String },
    /// Patch an `ldah`/`lda` pair at `at`/`at + 1` to materialize the
    /// absolute address of `symbol` plus `offset`.
    LoadAddr { at: usize, symbol: String, offset: i64 },
}

/// Incremental builder for guest programs.
///
/// One method per mnemonic plus labels, data directives and pseudo-
/// instructions. Terminal method [`Assembler::finish`] links branches and
/// address materializations and produces a [`Program`].
///
/// Labels name *text* positions; data symbols name *data* offsets; both share
/// one namespace and one symbol table in the final program, so `la` can load
/// the address of either.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    text: Vec<u32>,
    data: Vec<u8>,
    text_labels: HashMap<String, usize>,
    data_symbols: HashMap<String, u64>,
    fixups: Vec<Fixup>,
    entry_label: Option<String>,
    /// Literal pool, keyed by bit pattern. A BTreeMap keeps the pool
    /// layout deterministic across processes (HashMap ordering would change
    /// data addresses run-to-run and perturb cache timing).
    lit_pool: BTreeMap<u64, String>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Emits a raw decoded instruction. All mnemonic methods funnel here.
    pub fn emit(&mut self, instr: Instr) -> &mut Assembler {
        self.text.push(encode(&instr).0);
        self
    }

    /// Emits a raw instruction word (possibly an intentionally-illegal one,
    /// for tests).
    pub fn emit_raw(&mut self, word: u32) -> &mut Assembler {
        self.text.push(word);
        self
    }

    /// Current text position in instruction words.
    pub fn here(&self) -> usize {
        self.text.len()
    }

    // ---- labels & symbols -------------------------------------------------

    /// Defines a text label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition (programs are built by code, so a
    /// duplicate is a bug at the construction site, not an input error).
    pub fn label(&mut self, name: &str) -> &mut Assembler {
        let prev = self.text_labels.insert(name.to_string(), self.text.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Marks a label as the program entry point (default: first instruction).
    pub fn entry(&mut self, label: &str) -> &mut Assembler {
        self.entry_label = Some(label.to_string());
        self
    }

    // ---- data directives --------------------------------------------------

    /// Defines a data symbol at the current data offset.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definition.
    pub fn dsym(&mut self, name: &str) -> &mut Assembler {
        let prev = self.data_symbols.insert(name.to_string(), self.data.len() as u64);
        assert!(prev.is_none(), "duplicate data symbol `{name}`");
        self
    }

    /// Appends raw bytes to the data image.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> &mut Assembler {
        self.data.extend_from_slice(bytes);
        self
    }

    /// Appends 64-bit little-endian words.
    pub fn data_u64(&mut self, words: &[u64]) -> &mut Assembler {
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        self
    }

    /// Appends 32-bit little-endian words.
    pub fn data_u32(&mut self, words: &[u32]) -> &mut Assembler {
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        self
    }

    /// Appends IEEE doubles.
    pub fn data_f64(&mut self, values: &[f64]) -> &mut Assembler {
        for v in values {
            self.data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Appends `n` zero bytes.
    pub fn zeros(&mut self, n: usize) -> &mut Assembler {
        self.data.resize(self.data.len() + n, 0);
        self
    }

    /// Pads the data image to the given alignment (power of two).
    pub fn align(&mut self, align: usize) -> &mut Assembler {
        debug_assert!(align.is_power_of_two());
        while !self.data.len().is_multiple_of(align) {
            self.data.push(0);
        }
        self
    }

    // ---- memory -----------------------------------------------------------

    /// `ra = rb + disp`
    pub fn lda(&mut self, ra: IntReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Lda { ra, rb, disp })
    }

    /// `ra = rb + (disp << 16)`
    pub fn ldah(&mut self, ra: IntReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Ldah { ra, rb, disp })
    }

    /// Load 64-bit: `ra = mem[rb + disp]`
    pub fn ldq(&mut self, ra: IntReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Mem { op: MemOp::Ldq, ra, rb, disp })
    }

    /// Load sign-extended 32-bit.
    pub fn ldl(&mut self, ra: IntReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Mem { op: MemOp::Ldl, ra, rb, disp })
    }

    /// Store 64-bit.
    pub fn stq(&mut self, ra: IntReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Mem { op: MemOp::Stq, ra, rb, disp })
    }

    /// Store low 32 bits.
    pub fn stl(&mut self, ra: IntReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Mem { op: MemOp::Stl, ra, rb, disp })
    }

    /// FP load double.
    pub fn ldt(&mut self, fa: FpReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Ldt { fa, rb, disp })
    }

    /// FP store double.
    pub fn stt(&mut self, fa: FpReg, disp: i16, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Stt { fa, rb, disp })
    }

    // ---- control flow -----------------------------------------------------

    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: &str) -> &mut Assembler {
        self.fixups.push(Fixup::Branch { at: self.text.len(), label: label.to_string() });
        self.emit(Instr::Br { ra: IntReg::ZERO, disp: 0 })
    }

    /// Branch to subroutine, linking into `ra` (usually [`IntReg::RA`]).
    pub fn bsr(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.fixups.push(Fixup::Branch { at: self.text.len(), label: label.to_string() });
        self.emit(Instr::Bsr { ra, disp: 0 })
    }

    /// Call a subroutine: `bsr ra, label` with the conventional link register.
    pub fn call(&mut self, label: &str) -> &mut Assembler {
        self.bsr(IntReg::RA, label)
    }

    /// Return: `ret zero, (ra)`.
    pub fn ret(&mut self) -> &mut Assembler {
        self.emit(Instr::Jump { kind: JumpKind::Ret, ra: IntReg::ZERO, rb: IntReg::RA })
    }

    /// Indirect jump through `rb`.
    pub fn jmp(&mut self, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Jump { kind: JumpKind::Jmp, ra: IntReg::ZERO, rb })
    }

    /// Indirect call through `rb`, linking into `ra`.
    pub fn jsr(&mut self, ra: IntReg, rb: IntReg) -> &mut Assembler {
        self.emit(Instr::Jump { kind: JumpKind::Jsr, ra, rb })
    }

    fn cond_br(&mut self, cond: BranchCond, ra: IntReg, label: &str) -> &mut Assembler {
        self.fixups.push(Fixup::Branch { at: self.text.len(), label: label.to_string() });
        self.emit(Instr::CondBr { cond, ra, disp: 0 })
    }

    fn fp_cond_br(&mut self, cond: FpBranchCond, fa: FpReg, label: &str) -> &mut Assembler {
        self.fixups.push(Fixup::Branch { at: self.text.len(), label: label.to_string() });
        self.emit(Instr::FpCondBr { cond, fa, disp: 0 })
    }

    /// `beq ra, label`
    pub fn beq(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Eq, ra, label)
    }

    /// `bne ra, label`
    pub fn bne(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Ne, ra, label)
    }

    /// `blt ra, label`
    pub fn blt(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Lt, ra, label)
    }

    /// `ble ra, label`
    pub fn ble(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Le, ra, label)
    }

    /// `bgt ra, label`
    pub fn bgt(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Gt, ra, label)
    }

    /// `bge ra, label`
    pub fn bge(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Ge, ra, label)
    }

    /// `blbc ra, label` (branch if low bit clear)
    pub fn blbc(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Lbc, ra, label)
    }

    /// `blbs ra, label` (branch if low bit set)
    pub fn blbs(&mut self, ra: IntReg, label: &str) -> &mut Assembler {
        self.cond_br(BranchCond::Lbs, ra, label)
    }

    /// `fbeq fa, label`
    pub fn fbeq(&mut self, fa: FpReg, label: &str) -> &mut Assembler {
        self.fp_cond_br(FpBranchCond::Eq, fa, label)
    }

    /// `fbne fa, label`
    pub fn fbne(&mut self, fa: FpReg, label: &str) -> &mut Assembler {
        self.fp_cond_br(FpBranchCond::Ne, fa, label)
    }

    /// `fblt fa, label`
    pub fn fblt(&mut self, fa: FpReg, label: &str) -> &mut Assembler {
        self.fp_cond_br(FpBranchCond::Lt, fa, label)
    }

    /// `fble fa, label`
    pub fn fble(&mut self, fa: FpReg, label: &str) -> &mut Assembler {
        self.fp_cond_br(FpBranchCond::Le, fa, label)
    }

    /// `fbgt fa, label`
    pub fn fbgt(&mut self, fa: FpReg, label: &str) -> &mut Assembler {
        self.fp_cond_br(FpBranchCond::Gt, fa, label)
    }

    /// `fbge fa, label`
    pub fn fbge(&mut self, fa: FpReg, label: &str) -> &mut Assembler {
        self.fp_cond_br(FpBranchCond::Ge, fa, label)
    }

    // ---- integer operates ---------------------------------------------------

    fn int_op(&mut self, func: IntFunc, ra: IntReg, rb: Operand, rc: IntReg) -> &mut Assembler {
        self.emit(Instr::IntOp { func, ra, rb, rc })
    }
}

macro_rules! op3 {
    ($($(#[$doc:meta])* $name:ident, $name_lit:ident => $func:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, ra: IntReg, rb: IntReg, rc: IntReg) -> &mut Assembler {
                    self.int_op($func, ra, Operand::Reg(rb), rc)
                }

                /// Literal-operand form of the same operation.
                pub fn $name_lit(&mut self, ra: IntReg, lit: u8, rc: IntReg) -> &mut Assembler {
                    self.int_op($func, ra, Operand::Lit(lit), rc)
                }
            )*
        }
    };
}

op3! {
    /// `rc = ra + rb` (64-bit)
    addq, addq_lit => IntFunc::Addq;
    /// `rc = sext32(ra + rb)`
    addl, addl_lit => IntFunc::Addl;
    /// `rc = ra - rb` (64-bit)
    subq, subq_lit => IntFunc::Subq;
    /// `rc = sext32(ra - rb)`
    subl, subl_lit => IntFunc::Subl;
    /// `rc = ra * rb` (low 64 bits)
    mulq, mulq_lit => IntFunc::Mulq;
    /// `rc = sext32(ra * rb)`
    mull, mull_lit => IntFunc::Mull;
    /// `rc = high64(ra * rb)` unsigned
    umulh, umulh_lit => IntFunc::Umulh;
    /// `rc = ra*8 + rb`
    s8addq, s8addq_lit => IntFunc::S8addq;
    /// `rc = ra & rb`
    and, and_lit => IntFunc::And;
    /// `rc = ra & !rb`
    bic, bic_lit => IntFunc::Bic;
    /// `rc = ra | rb`
    bis, bis_lit => IntFunc::Bis;
    /// `rc = ra | !rb`
    ornot, ornot_lit => IntFunc::Ornot;
    /// `rc = ra ^ rb`
    xor, xor_lit => IntFunc::Xor;
    /// `rc = !(ra ^ rb)`
    eqv, eqv_lit => IntFunc::Eqv;
    /// `rc = ra << (rb & 63)`
    sll, sll_lit => IntFunc::Sll;
    /// `rc = ra >> (rb & 63)` logical
    srl, srl_lit => IntFunc::Srl;
    /// `rc = ra >> (rb & 63)` arithmetic
    sra, sra_lit => IntFunc::Sra;
    /// `rc = (ra == rb) as u64`
    cmpeq, cmpeq_lit => IntFunc::Cmpeq;
    /// `rc = (ra < rb) as u64` signed
    cmplt, cmplt_lit => IntFunc::Cmplt;
    /// `rc = (ra <= rb) as u64` signed
    cmple, cmple_lit => IntFunc::Cmple;
    /// `rc = (ra < rb) as u64` unsigned
    cmpult, cmpult_lit => IntFunc::Cmpult;
    /// `rc = (ra <= rb) as u64` unsigned
    cmpule, cmpule_lit => IntFunc::Cmpule;
    /// `rc = rb if ra == 0`
    cmoveq, cmoveq_lit => IntFunc::Cmoveq;
    /// `rc = rb if ra != 0`
    cmovne, cmovne_lit => IntFunc::Cmovne;
    /// `rc = rb if ra < 0`
    cmovlt, cmovlt_lit => IntFunc::Cmovlt;
    /// `rc = rb if ra >= 0`
    cmovge, cmovge_lit => IntFunc::Cmovge;
    /// `rc = rb if ra <= 0`
    cmovle, cmovle_lit => IntFunc::Cmovle;
    /// `rc = rb if ra > 0`
    cmovgt, cmovgt_lit => IntFunc::Cmovgt;
}

macro_rules! fop3 {
    ($($(#[$doc:meta])* $name:ident => $func:expr;)*) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, fa: FpReg, fb: FpReg, fc: FpReg) -> &mut Assembler {
                    self.emit(Instr::FpOp { func: $func, fa, fb, fc })
                }
            )*
        }
    };
}

fop3! {
    /// `fc = fa + fb`
    addt => FpFunc::Addt;
    /// `fc = fa - fb`
    subt => FpFunc::Subt;
    /// `fc = fa * fb`
    mult => FpFunc::Mult;
    /// `fc = fa / fb`
    divt => FpFunc::Divt;
    /// `fc = (fa == fb) ? 2.0 : 0.0`
    cmpteq => FpFunc::Cmpteq;
    /// `fc = (fa < fb) ? 2.0 : 0.0`
    cmptlt => FpFunc::Cmptlt;
    /// `fc = (fa <= fb) ? 2.0 : 0.0`
    cmptle => FpFunc::Cmptle;
    /// Copy sign of `fa` onto magnitude of `fb`.
    cpys => FpFunc::Cpys;
    /// Copy negated sign of `fa` onto magnitude of `fb`.
    cpysn => FpFunc::Cpysn;
    /// `fc = fb if fa == 0.0`
    fcmoveq => FpFunc::Fcmoveq;
    /// `fc = fb if fa != 0.0`
    fcmovne => FpFunc::Fcmovne;
}

impl Assembler {
    /// `fc = sqrt(fb)`
    pub fn sqrtt(&mut self, fb: FpReg, fc: FpReg) -> &mut Assembler {
        self.emit(Instr::FpOp { func: FpFunc::Sqrtt, fa: FpReg::ZERO, fb, fc })
    }

    /// `fc = (double) (quadword bits of fb)`
    pub fn cvtqt(&mut self, fb: FpReg, fc: FpReg) -> &mut Assembler {
        self.emit(Instr::FpOp { func: FpFunc::Cvtqt, fa: FpReg::ZERO, fb, fc })
    }

    /// `fc = (quadword) truncate(fb)`
    pub fn cvttq(&mut self, fb: FpReg, fc: FpReg) -> &mut Assembler {
        self.emit(Instr::FpOp { func: FpFunc::Cvttq, fa: FpReg::ZERO, fb, fc })
    }

    /// FP register move (`cpys fb, fb, fc`).
    pub fn fmov(&mut self, fb: FpReg, fc: FpReg) -> &mut Assembler {
        self.cpys(fb, fb, fc)
    }

    /// FP negate (`cpysn fb, fb, fc`).
    pub fn fneg(&mut self, fb: FpReg, fc: FpReg) -> &mut Assembler {
        self.cpysn(fb, fb, fc)
    }

    /// Move integer register bits into an FP register.
    pub fn itoft(&mut self, rb: IntReg, fc: FpReg) -> &mut Assembler {
        self.emit(Instr::Itoft { rb, fc })
    }

    /// Move FP register bits into an integer register.
    pub fn ftoit(&mut self, fa: FpReg, rc: IntReg) -> &mut Assembler {
        self.emit(Instr::Ftoit { fa, rc })
    }

    /// Integer register move (`bis rb, rb, rc`).
    pub fn mov(&mut self, rb: IntReg, rc: IntReg) -> &mut Assembler {
        self.bis(rb, rb, rc)
    }

    /// No-operation (`bis zero, zero, zero`).
    pub fn nop(&mut self) -> &mut Assembler {
        self.bis(IntReg::ZERO, IntReg::ZERO, IntReg::ZERO)
    }

    // ---- PAL calls ----------------------------------------------------------

    /// Emits `call_pal` with the given service.
    pub fn pal(&mut self, func: PalFunc) -> &mut Assembler {
        self.emit(Instr::CallPal { func })
    }

    /// Terminates the thread with exit code `code` (clobbers `A0`).
    pub fn exit(&mut self, code: i16) -> &mut Assembler {
        self.lda(IntReg::A0, code, IntReg::ZERO);
        self.pal(PalFunc::Exit)
    }

    /// Writes the low byte of `A0` to the console.
    pub fn putc(&mut self) -> &mut Assembler {
        self.pal(PalFunc::Putc)
    }

    /// Appends `A0` to the binary output channel.
    pub fn write_word(&mut self) -> &mut Assembler {
        self.pal(PalFunc::WriteWord)
    }

    // ---- GemFI pseudo-ops ----------------------------------------------------

    /// `fi_activate_inst(id)` — toggle fault injection for this thread.
    pub fn fi_activate(&mut self, id: u32) -> &mut Assembler {
        self.emit(Instr::FiActivate { id })
    }

    /// `fi_read_init_all()` — checkpoint and re-read fault configuration.
    pub fn fi_read_init(&mut self) -> &mut Assembler {
        self.emit(Instr::FiReadInit)
    }

    // ---- pseudo-instructions ---------------------------------------------------

    /// Loads a 64-bit signed constant into `rc`.
    ///
    /// Small constants assemble to one or two `lda`/`ldah` instructions;
    /// general 64-bit constants are placed in an automatic literal pool in
    /// the data section and loaded with `ldq`.
    pub fn li(&mut self, rc: IntReg, value: i64) -> &mut Assembler {
        if let Ok(v) = i16::try_from(value) {
            return self.lda(rc, v, IntReg::ZERO);
        }
        let lo = value as i16; // sign-extending low 16 bits
        let rest = value.wrapping_sub(lo as i64) >> 16;
        if let Ok(hi) = i16::try_from(rest) {
            self.ldah(rc, hi, IntReg::ZERO);
            if lo != 0 {
                self.lda(rc, lo, rc);
            }
            return self;
        }
        let sym = self.pool_u64(value as u64);
        self.la(rc, &sym);
        self.ldq(rc, 0, rc)
    }

    /// Loads an IEEE-double constant into `fc` from the literal pool
    /// (clobbers `scratch`).
    pub fn lif(&mut self, fc: FpReg, value: f64, scratch: IntReg) -> &mut Assembler {
        if value == 0.0 && value.is_sign_positive() {
            return self.fmov(FpReg::ZERO, fc);
        }
        let sym = self.pool_u64(value.to_bits());
        self.la(scratch, &sym);
        self.ldt(fc, 0, scratch)
    }

    fn pool_u64(&mut self, bits: u64) -> String {
        if let Some(sym) = self.lit_pool.get(&bits) {
            return sym.clone();
        }
        let sym = format!("__lit{}", self.lit_pool.len());
        self.lit_pool.insert(bits, sym.clone());
        sym
    }

    /// Loads the absolute address of a label or data symbol into `rc`.
    ///
    /// Assembles to an `ldah`/`lda` pair patched at link time; addresses must
    /// fit in 31 bits (they always do: guest physical memory is far smaller).
    pub fn la(&mut self, rc: IntReg, symbol: &str) -> &mut Assembler {
        self.la_off(rc, symbol, 0)
    }

    /// Like [`Assembler::la`] but adds a byte offset to the symbol address.
    pub fn la_off(&mut self, rc: IntReg, symbol: &str, offset: i64) -> &mut Assembler {
        self.fixups.push(Fixup::LoadAddr {
            at: self.text.len(),
            symbol: symbol.to_string(),
            offset,
        });
        self.ldah(rc, 0, IntReg::ZERO);
        self.lda(rc, 0, rc)
    }

    // ---- linking -----------------------------------------------------------

    /// Links the program: resolves branches, lays out the data image after
    /// the text (page-aligned), flushes the literal pool, and builds the
    /// symbol table.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined or out-of-range label references.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        // Flush the literal pool into the data section.
        self.align(8);
        let pool: Vec<(u64, String)> = self.lit_pool.iter().map(|(b, s)| (*b, s.clone())).collect();
        for (bits, sym) in pool {
            self.data_symbols.insert(sym, self.data.len() as u64);
            self.data.extend_from_slice(&bits.to_le_bytes());
        }

        let text_end = TEXT_BASE + self.text.len() as u64 * 4;
        let data_base = text_end.div_ceil(DATA_ALIGN) * DATA_ALIGN;

        let mut symbols: HashMap<String, u64> = HashMap::new();
        for (name, idx) in &self.text_labels {
            symbols.insert(name.clone(), TEXT_BASE + *idx as u64 * 4);
        }
        for (name, off) in &self.data_symbols {
            if symbols.contains_key(name) {
                return Err(AsmError::DuplicateLabel(name.clone()));
            }
            symbols.insert(name.clone(), data_base + off);
        }

        for fixup in &self.fixups {
            match fixup {
                Fixup::Branch { at, label } => {
                    let target = *self
                        .text_labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let disp = target as i64 - (*at as i64 + 1);
                    if !(-(1 << 20)..(1 << 20)).contains(&disp) {
                        return Err(AsmError::BranchOutOfRange { label: label.clone(), disp });
                    }
                    let w = RawInstr(self.text[*at])
                        .with_field(gemfi_isa::format::BDISP, disp as u32 & 0x1f_ffff);
                    self.text[*at] = w.0;
                }
                Fixup::LoadAddr { at, symbol, offset } => {
                    let addr = *symbols
                        .get(symbol)
                        .ok_or_else(|| AsmError::UndefinedData(symbol.clone()))?
                        as i64
                        + offset;
                    debug_assert!((0..(1 << 31)).contains(&addr), "address out of la range");
                    let lo = addr as i16;
                    let hi = (addr.wrapping_sub(lo as i64) >> 16) as i16;
                    let ldah = RawInstr(self.text[*at])
                        .with_field(gemfi_isa::format::MDISP, hi as u16 as u32);
                    let lda = RawInstr(self.text[*at + 1])
                        .with_field(gemfi_isa::format::MDISP, lo as u16 as u32);
                    self.text[*at] = ldah.0;
                    self.text[*at + 1] = lda.0;
                }
            }
        }

        let entry = match &self.entry_label {
            Some(l) => *symbols.get(l).ok_or_else(|| AsmError::UndefinedLabel(l.clone()))?,
            None => TEXT_BASE,
        };

        Ok(Program::new(self.text, self.data, data_base, entry, symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};
    use gemfi_isa::decode;

    #[test]
    fn branch_fixups_compute_word_displacements() {
        let mut a = Assembler::new();
        a.label("top");
        a.nop();
        a.br("top");
        let p = a.finish().unwrap();
        let w = RawInstr(p.text_words()[1]);
        match decode(w).unwrap() {
            Instr::Br { disp, .. } => assert_eq!(disp, -2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn forward_branches_resolve() {
        let mut a = Assembler::new();
        a.beq(Reg::R1, "end");
        a.nop();
        a.nop();
        a.label("end");
        a.exit(0);
        let p = a.finish().unwrap();
        match decode(RawInstr(p.text_words()[0])).unwrap() {
            Instr::CondBr { disp, .. } => assert_eq!(disp, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.br("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Assembler::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn li_small_uses_one_instruction() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 42);
        let p = a.finish().unwrap();
        assert_eq!(p.text_len(), 1);
    }

    #[test]
    fn li_32bit_uses_ldah_lda() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0x12345678);
        let p = a.finish().unwrap();
        assert!(p.text_len() <= 2);
    }

    #[test]
    fn li_64bit_goes_through_pool() {
        let mut a = Assembler::new();
        a.li(Reg::R1, 0x1234_5678_9abc_def0);
        let p = a.finish().unwrap();
        // la (2 words) + ldq.
        assert_eq!(p.text_len(), 3);
        assert_eq!(p.data_bytes().len(), 8);
        assert_eq!(
            u64::from_le_bytes(p.data_bytes()[..8].try_into().unwrap()),
            0x1234_5678_9abc_def0
        );
    }

    #[test]
    fn lif_pools_doubles_and_dedups() {
        let mut a = Assembler::new();
        a.lif(FReg::F1, 3.25, Reg::R9);
        a.lif(FReg::F2, 3.25, Reg::R9);
        let p = a.finish().unwrap();
        assert_eq!(p.data_bytes().len(), 8, "pool must deduplicate");
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(p.data_bytes()[..8].try_into().unwrap())),
            3.25
        );
    }

    #[test]
    fn data_symbols_resolve_after_text() {
        let mut a = Assembler::new();
        a.nop();
        a.dsym("table");
        a.data_u64(&[1, 2, 3]);
        let p = a.finish().unwrap();
        let addr = p.symbol("table").unwrap();
        assert_eq!(addr, p.data_base());
        assert_eq!(addr % 0x1000, 0);
        assert!(addr >= TEXT_BASE + 4);
    }

    #[test]
    fn la_materializes_exact_address() {
        let mut a = Assembler::new();
        a.la(Reg::R1, "target");
        a.exit(0);
        a.label("target");
        a.nop();
        let p = a.finish().unwrap();
        let target = p.symbol("target").unwrap();
        // Decode the ldah/lda pair and recompute the address.
        let ldah = decode(RawInstr(p.text_words()[0])).unwrap();
        let lda = decode(RawInstr(p.text_words()[1])).unwrap();
        let (hi, lo) = match (ldah, lda) {
            (Instr::Ldah { disp: hi, .. }, Instr::Lda { disp: lo, .. }) => (hi, lo),
            other => panic!("{other:?}"),
        };
        let addr = ((hi as i64) << 16).wrapping_add(lo as i64);
        assert_eq!(addr as u64, target);
    }

    #[test]
    fn entry_defaults_to_text_base_and_can_be_set() {
        let mut a = Assembler::new();
        a.nop();
        a.label("main");
        a.exit(0);
        a.entry("main");
        let p = a.finish().unwrap();
        assert_eq!(p.entry(), TEXT_BASE + 4);
    }
}
