//! Ergonomic register names for assembly construction.
//!
//! [`Reg`] and [`FReg`] are thin aliases over the ISA's [`IntReg`]/[`FpReg`]
//! that can be written as `Reg::R5` at call sites instead of
//! `IntReg::new(5).unwrap()`.

use gemfi_isa::{FpReg, IntReg};

macro_rules! reg_consts {
    ($name:ident, $inner:ty, $ctor:path, $($r:ident = $n:expr),* $(,)?) => {
        /// Named register constants for assembly construction.
        #[allow(missing_docs)]
        pub struct $name;
        impl $name {
            $(pub const $r: $inner = match $ctor($n) {
                Some(r) => r,
                None => panic!("register index out of range"),
            };)*
        }
    };
}

reg_consts!(
    Reg,
    IntReg,
    IntReg::new,
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
    R16 = 16,
    R17 = 17,
    R18 = 18,
    R19 = 19,
    R20 = 20,
    R21 = 21,
    R22 = 22,
    R23 = 23,
    R24 = 24,
    R25 = 25,
    R26 = 26,
    R27 = 27,
    R28 = 28,
    R29 = 29,
    R30 = 30,
    R31 = 31,
    // ABI aliases
    V0 = 0,
    A0 = 16,
    A1 = 17,
    A2 = 18,
    RA = 26,
    GP = 29,
    SP = 30,
    ZERO = 31,
);

reg_consts!(
    FReg,
    FpReg,
    FpReg::new,
    F0 = 0,
    F1 = 1,
    F2 = 2,
    F3 = 3,
    F4 = 4,
    F5 = 5,
    F6 = 6,
    F7 = 7,
    F8 = 8,
    F9 = 9,
    F10 = 10,
    F11 = 11,
    F12 = 12,
    F13 = 13,
    F14 = 14,
    F15 = 15,
    F16 = 16,
    F17 = 17,
    F18 = 18,
    F19 = 19,
    F20 = 20,
    F21 = 21,
    F22 = 22,
    F23 = 23,
    F24 = 24,
    F25 = 25,
    F26 = 26,
    F27 = 27,
    F28 = 28,
    F29 = 29,
    F30 = 30,
    F31 = 31,
    FZERO = 31,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_match_numbers() {
        assert_eq!(Reg::SP, Reg::R30);
        assert_eq!(Reg::ZERO, Reg::R31);
        assert_eq!(Reg::A0, Reg::R16);
        assert_eq!(FReg::FZERO, FReg::F31);
    }
}
