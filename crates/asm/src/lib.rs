//! Macro-assembler for the Alpha-subset guest ISA.
//!
//! The paper's benchmarks run *inside* the simulator so that faults can be
//! injected into their architectural state. This crate is how those guest
//! programs are built: an [`Assembler`] provides one method per mnemonic,
//! label-based control flow, data directives (including IEEE-double pools),
//! and a handful of pseudo-instructions (`li`, `la`, `call`, `ret`), and
//! links everything into a loadable [`Program`].
//!
//! # Example
//!
//! ```
//! use gemfi_asm::{Assembler, Reg};
//!
//! let mut a = Assembler::new();
//! a.li(Reg::R1, 0);
//! a.li(Reg::R2, 10);
//! a.label("loop");
//! a.addq_lit(Reg::R1, 1, Reg::R1);
//! a.subq(Reg::R2, Reg::R1, Reg::R3);
//! a.bgt(Reg::R3, "loop");
//! a.exit(0);
//! let program = a.finish().expect("assembles");
//! assert!(program.text_words().len() > 4);
//! ```

mod builder;
mod error;
mod program;
mod reg;
pub mod text;

pub use builder::Assembler;
pub use error::AsmError;
pub use program::{Program, TEXT_BASE};
pub use reg::{FReg, Reg};
pub use text::{assemble, TextAsmError};
