//! Assembly-time errors.

use std::fmt;

/// An error produced while assembling or linking a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch target is out of range for the displacement field.
    BranchOutOfRange {
        /// The referenced label.
        label: String,
        /// The required displacement in instruction words.
        disp: i64,
    },
    /// A data symbol was referenced but never defined.
    UndefinedData(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, disp } => {
                write!(f, "branch to `{label}` out of range (displacement {disp} words)")
            }
            AsmError::UndefinedData(s) => write!(f, "undefined data symbol `{s}`"),
        }
    }
}

impl std::error::Error for AsmError {}
