//! A textual assembly front end.
//!
//! The builder API ([`crate::Assembler`]) is what programs-as-code use; this
//! module accepts classic assembly *source text*, so guest programs can live
//! in `.s` files:
//!
//! ```text
//! .entry main
//! main:
//!     li      r1, 0
//!     li      r2, 10
//! loop:
//!     addq    r1, r2, r1
//!     subq    r2, #1, r2
//!     bgt     r2, loop
//!     mov     r1, a0
//!     call_pal exit
//! .data
//! table:
//!     .u64 1, 2, 3
//!     .f64 3.141592653589793
//! buf:
//!     .zeros 64
//! ```
//!
//! Comments start with `;` or `#`. Operand syntax follows the disassembler's
//! output: `op ra, rb, rc` (operates, `#imm` literals), `op ra, disp(rb)`
//! (memory), `op ra, label` (branches), `jmp (rb)` / `ret`. Pseudo
//! instructions: `li`, `lif`, `la`, `mov`, `fmov`, `nop`, `call`,
//! `fi_activate_inst`, `fi_read_init_all`, `call_pal <service>`.

use crate::builder::Assembler;
use crate::error::AsmError;
use crate::program::Program;
use gemfi_isa::{FpReg, IntReg, PalFunc};
use std::fmt;

/// A source-text assembly error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TextAsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextAsmError {}

impl From<AsmError> for TextAsmError {
    fn from(e: AsmError) -> TextAsmError {
        TextAsmError { line: 0, message: e.to_string() }
    }
}

fn int_reg(tok: &str) -> Result<IntReg, String> {
    let t = tok.trim();
    let named = match t {
        "zero" => Some(31),
        "sp" => Some(30),
        "ra" => Some(26),
        "gp" => Some(29),
        "v0" => Some(0),
        "a0" => Some(16),
        "a1" => Some(17),
        "a2" => Some(18),
        _ => None,
    };
    let n = match named {
        Some(n) => n,
        None => t
            .strip_prefix('r')
            .and_then(|d| d.parse::<u8>().ok())
            .ok_or_else(|| format!("expected integer register, got `{t}`"))?,
    };
    IntReg::new(n).ok_or_else(|| format!("register number out of range in `{t}`"))
}

fn fp_reg(tok: &str) -> Result<FpReg, String> {
    let t = tok.trim();
    let n = t
        .strip_prefix('f')
        .and_then(|d| d.parse::<u8>().ok())
        .ok_or_else(|| format!("expected FP register, got `{t}`"))?;
    FpReg::new(n).ok_or_else(|| format!("register number out of range in `{t}`"))
}

fn imm64(tok: &str) -> Result<i64, String> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|e| format!("bad number `{tok}`: {e}"))? as i64
    } else {
        t.replace('_', "").parse::<i64>().map_err(|e| format!("bad number `{tok}`: {e}"))?
    };
    Ok(if neg { -v } else { v })
}

/// Splits `disp(rb)` into (disp, base register).
fn mem_operand(tok: &str) -> Result<(i16, IntReg), String> {
    let t = tok.trim();
    let open = t.find('(').ok_or_else(|| format!("expected `disp(reg)`, got `{t}`"))?;
    let close = t.rfind(')').ok_or_else(|| format!("missing `)` in `{t}`"))?;
    let disp_str = &t[..open];
    let disp = if disp_str.is_empty() { 0 } else { imm64(disp_str)? };
    let disp = i16::try_from(disp).map_err(|_| format!("displacement out of range in `{t}`"))?;
    Ok((disp, int_reg(&t[open + 1..close])?))
}

fn pal_func(tok: &str) -> Result<PalFunc, String> {
    Ok(match tok.trim() {
        "halt" => PalFunc::Halt,
        "putc" => PalFunc::Putc,
        "exit" => PalFunc::Exit,
        "sbrk" => PalFunc::Sbrk,
        "thread_spawn" => PalFunc::ThreadSpawn,
        "yield" => PalFunc::Yield,
        "thread_join" => PalFunc::ThreadJoin,
        "gettid" => PalFunc::GetTid,
        "write_word" => PalFunc::WriteWord,
        "read_cycles" => PalFunc::ReadCycles,
        other => return Err(format!("unknown PAL service `{other}`")),
    })
}

fn strip_comments(raw: &str) -> &str {
    let bytes = raw.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b';' {
            return &raw[..i];
        }
        if b == b'#' {
            let next = bytes.get(i + 1);
            if next.is_none() || next.is_some_and(|c| c.is_ascii_whitespace()) {
                return &raw[..i];
            }
        }
    }
    raw
}

/// Assembles source text into a linked [`Program`].
///
/// # Errors
///
/// Returns a [`TextAsmError`] naming the offending line for syntax errors,
/// undefined labels, and out-of-range operands.
pub fn assemble(source: &str) -> Result<Program, TextAsmError> {
    let mut a = Assembler::new();
    let mut in_data = false;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let err = |message: String| TextAsmError { line: lineno, message };
        // Strip comments: `;` anywhere; `#` only when followed by
        // whitespace/end-of-line (a `#` glued to a digit is a literal
        // operand, e.g. `subq r2, #1, r2`).
        let line = strip_comments(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Labels (possibly followed by code on the same line).
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break; // not a label — e.g. a stray colon in an operand
            }
            if in_data {
                a.dsym(name);
            } else {
                a.label(name);
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        // Directives.
        if let Some(directive) = rest.strip_prefix('.') {
            let mut parts = directive.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("");
            let args = parts.next().unwrap_or("").trim();
            match name {
                "text" => in_data = false,
                "data" => in_data = true,
                "entry" => {
                    a.entry(args);
                }
                "u64" => {
                    for v in args.split(',') {
                        let v = imm64(v).map_err(err)?;
                        a.data_u64(&[v as u64]);
                    }
                }
                "f64" => {
                    for v in args.split(',') {
                        let v: f64 =
                            v.trim().parse().map_err(|e| err(format!("bad f64 `{v}`: {e}")))?;
                        a.data_f64(&[v]);
                    }
                }
                "zeros" => {
                    let n = imm64(args).map_err(err)?;
                    a.zeros(n as usize);
                }
                "align" => {
                    let n = imm64(args).map_err(err)?;
                    a.align(n as usize);
                }
                other => return Err(err(format!("unknown directive `.{other}`"))),
            }
            continue;
        }
        if in_data {
            return Err(err("instructions are not allowed in .data".into()));
        }

        // Instructions: mnemonic, then comma-separated operands.
        let mut parts = rest.splitn(2, char::is_whitespace);
        let mnem = parts.next().unwrap_or("");
        let ops: Vec<&str> = parts
            .next()
            .unwrap_or("")
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        emit_instruction(&mut a, mnem, &ops).map_err(err)?;
    }

    a.finish().map_err(|e| TextAsmError { line: 0, message: e.to_string() })
}

/// Dispatches one mnemonic to the builder.
#[allow(clippy::too_many_lines)]
fn emit_instruction(a: &mut Assembler, mnem: &str, ops: &[&str]) -> Result<(), String> {
    let need = |n: usize| -> Result<(), String> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(format!("`{mnem}` expects {n} operands, got {}", ops.len()))
        }
    };

    // Integer three-operand operates, with `#literal` second operands.
    macro_rules! op3 {
        ($m:ident, $ml:ident) => {{
            need(3)?;
            let ra = int_reg(ops[0])?;
            let rc = int_reg(ops[2])?;
            if let Some(lit) = ops[1].strip_prefix('#') {
                let v = imm64(lit)?;
                let v =
                    u8::try_from(v).map_err(|_| format!("literal out of range `{}`", ops[1]))?;
                a.$ml(ra, v, rc);
            } else {
                a.$m(ra, int_reg(ops[1])?, rc);
            }
            return Ok(());
        }};
    }
    macro_rules! fop3 {
        ($m:ident) => {{
            need(3)?;
            a.$m(fp_reg(ops[0])?, fp_reg(ops[1])?, fp_reg(ops[2])?);
            return Ok(());
        }};
    }
    macro_rules! membr {
        ($m:ident, int) => {{
            need(2)?;
            let (disp, rb) = mem_operand(ops[1])?;
            a.$m(int_reg(ops[0])?, disp, rb);
            return Ok(());
        }};
        ($m:ident, fp) => {{
            need(2)?;
            let (disp, rb) = mem_operand(ops[1])?;
            a.$m(fp_reg(ops[0])?, disp, rb);
            return Ok(());
        }};
    }
    macro_rules! condbr {
        ($m:ident, int) => {{
            need(2)?;
            a.$m(int_reg(ops[0])?, ops[1]);
            return Ok(());
        }};
        ($m:ident, fp) => {{
            need(2)?;
            a.$m(fp_reg(ops[0])?, ops[1]);
            return Ok(());
        }};
    }

    match mnem {
        "addq" => op3!(addq, addq_lit),
        "addl" => op3!(addl, addl_lit),
        "subq" => op3!(subq, subq_lit),
        "subl" => op3!(subl, subl_lit),
        "mulq" => op3!(mulq, mulq_lit),
        "mull" => op3!(mull, mull_lit),
        "umulh" => op3!(umulh, umulh_lit),
        "s8addq" => op3!(s8addq, s8addq_lit),
        "and" => op3!(and, and_lit),
        "bic" => op3!(bic, bic_lit),
        "bis" => op3!(bis, bis_lit),
        "ornot" => op3!(ornot, ornot_lit),
        "xor" => op3!(xor, xor_lit),
        "eqv" => op3!(eqv, eqv_lit),
        "sll" => op3!(sll, sll_lit),
        "srl" => op3!(srl, srl_lit),
        "sra" => op3!(sra, sra_lit),
        "cmpeq" => op3!(cmpeq, cmpeq_lit),
        "cmplt" => op3!(cmplt, cmplt_lit),
        "cmple" => op3!(cmple, cmple_lit),
        "cmpult" => op3!(cmpult, cmpult_lit),
        "cmpule" => op3!(cmpule, cmpule_lit),
        "cmoveq" => op3!(cmoveq, cmoveq_lit),
        "cmovne" => op3!(cmovne, cmovne_lit),
        "cmovlt" => op3!(cmovlt, cmovlt_lit),
        "cmovge" => op3!(cmovge, cmovge_lit),
        "cmovle" => op3!(cmovle, cmovle_lit),
        "cmovgt" => op3!(cmovgt, cmovgt_lit),
        "addt" => fop3!(addt),
        "subt" => fop3!(subt),
        "mult" => fop3!(mult),
        "divt" => fop3!(divt),
        "cmpteq" => fop3!(cmpteq),
        "cmptlt" => fop3!(cmptlt),
        "cmptle" => fop3!(cmptle),
        "cpys" => fop3!(cpys),
        "cpysn" => fop3!(cpysn),
        "fcmoveq" => fop3!(fcmoveq),
        "fcmovne" => fop3!(fcmovne),
        "sqrtt" => {
            need(2)?;
            a.sqrtt(fp_reg(ops[0])?, fp_reg(ops[1])?);
        }
        "cvtqt" => {
            need(2)?;
            a.cvtqt(fp_reg(ops[0])?, fp_reg(ops[1])?);
        }
        "cvttq" => {
            need(2)?;
            a.cvttq(fp_reg(ops[0])?, fp_reg(ops[1])?);
        }
        "fmov" => {
            need(2)?;
            a.fmov(fp_reg(ops[0])?, fp_reg(ops[1])?);
        }
        "fneg" => {
            need(2)?;
            a.fneg(fp_reg(ops[0])?, fp_reg(ops[1])?);
        }
        "itoft" => {
            need(2)?;
            a.itoft(int_reg(ops[0])?, fp_reg(ops[1])?);
        }
        "ftoit" => {
            need(2)?;
            a.ftoit(fp_reg(ops[0])?, int_reg(ops[1])?);
        }
        "lda" => membr!(lda, int),
        "ldah" => membr!(ldah, int),
        "ldq" => membr!(ldq, int),
        "ldl" => membr!(ldl, int),
        "stq" => membr!(stq, int),
        "stl" => membr!(stl, int),
        "ldt" => membr!(ldt, fp),
        "stt" => membr!(stt, fp),
        "beq" => condbr!(beq, int),
        "bne" => condbr!(bne, int),
        "blt" => condbr!(blt, int),
        "ble" => condbr!(ble, int),
        "bgt" => condbr!(bgt, int),
        "bge" => condbr!(bge, int),
        "blbc" => condbr!(blbc, int),
        "blbs" => condbr!(blbs, int),
        "fbeq" => condbr!(fbeq, fp),
        "fbne" => condbr!(fbne, fp),
        "fblt" => condbr!(fblt, fp),
        "fble" => condbr!(fble, fp),
        "fbgt" => condbr!(fbgt, fp),
        "fbge" => condbr!(fbge, fp),
        "br" => {
            need(1)?;
            a.br(ops[0]);
        }
        "bsr" => {
            need(2)?;
            a.bsr(int_reg(ops[0])?, ops[1]);
        }
        "call" => {
            need(1)?;
            a.call(ops[0]);
        }
        "ret" => {
            // Accept both bare `ret` and the disassembler's `ret zero, (ra)`.
            if ops.len() > 2 {
                return Err(format!("`ret` expects 0 or 2 operands, got {}", ops.len()));
            }
            a.ret();
        }
        "jmp" => {
            // Accept both `jmp (rb)` and the disassembler's `jmp ra, (rb)`
            // (the link register of a plain jmp is conventionally zero).
            let target = *ops.last().ok_or("`jmp` expects a target")?;
            if ops.len() > 2 {
                return Err(format!("`jmp` expects 1 or 2 operands, got {}", ops.len()));
            }
            let t = target.trim_start_matches('(').trim_end_matches(')');
            a.jmp(int_reg(t)?);
        }
        "jsr" => {
            need(2)?;
            let t = ops[1].trim_start_matches('(').trim_end_matches(')');
            a.jsr(int_reg(ops[0])?, int_reg(t)?);
        }
        "mov" => {
            need(2)?;
            a.mov(int_reg(ops[0])?, int_reg(ops[1])?);
        }
        "nop" => {
            need(0)?;
            a.nop();
        }
        "li" => {
            need(2)?;
            a.li(int_reg(ops[0])?, imm64(ops[1])?);
        }
        "lif" => {
            // lif f1, 2.5, r9  (value, scratch register)
            need(3)?;
            let v: f64 = ops[1].parse().map_err(|e| format!("bad f64 `{}`: {e}", ops[1]))?;
            a.lif(fp_reg(ops[0])?, v, int_reg(ops[2])?);
        }
        "la" => {
            need(2)?;
            a.la(int_reg(ops[0])?, ops[1]);
        }
        "call_pal" => {
            need(1)?;
            a.pal(pal_func(ops[0])?);
        }
        "fi_activate_inst" => {
            need(1)?;
            let id = imm64(ops[0])?;
            a.fi_activate(id as u32);
        }
        "fi_read_init_all" => {
            need(0)?;
            a.fi_read_init();
        }
        other => return Err(format!("unknown mnemonic `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemfi_isa::{decode, disassemble, RawInstr};

    #[test]
    fn assembles_the_doc_example() {
        let src = r"
.entry main
main:
    li      r1, 0
    li      r2, 10
loop:
    addq    r1, r2, r1
    subq    r2, #1, r2
    bgt     r2, loop
    mov     r1, a0
    call_pal exit
.data
table:
    .u64 1, 2, 3
    .f64 3.141592653589793
buf:
    .zeros 64
";
        let p = assemble(src).expect("assembles");
        assert!(p.symbol("main").is_some());
        assert!(p.symbol("table").is_some());
        assert_eq!(p.symbol("buf").unwrap() - p.symbol("table").unwrap(), 32);
        assert_eq!(p.entry(), p.symbol("main").unwrap());
    }

    #[test]
    fn text_round_trips_through_the_disassembler() {
        // Every instruction the disassembler prints must re-assemble to the
        // same word (memory/operate/branch operand syntaxes agree).
        let src = "
start:
    addq r1, r2, r3
    subq r4, #7, r5
    ldq r6, 16(sp)
    stt f2, -8(r9)
    beq r1, start
    jmp (r7)
    fi_activate_inst 3
    fi_read_init_all
";
        let p = assemble(src).expect("assembles");
        for &word in p.text_words() {
            let text = disassemble(RawInstr(word));
            // Branches print raw displacements, which are not label syntax;
            // skip them for the textual round-trip.
            if text.starts_with('b') || text.starts_with("fb") {
                continue;
            }
            let rt = assemble(&format!("{text}\n"))
                .unwrap_or_else(|e| panic!("`{text}` failed to re-assemble: {e}"));
            assert_eq!(
                decode(RawInstr(rt.text_words()[0])).unwrap(),
                decode(RawInstr(word)).unwrap(),
                "`{text}`"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
        let err = assemble("addq r1, r2\n").unwrap_err();
        assert!(err.message.contains("expects 3"));
        let err = assemble("addq r1, r2, r99\n").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble("; leading comment\n\n  nop # trailing\n").expect("assembles");
        assert_eq!(p.text_len(), 1);
    }

    #[test]
    fn data_mode_rejects_instructions() {
        let err = assemble(".data\nnop\n").unwrap_err();
        assert!(err.message.contains("not allowed"));
    }

    #[test]
    fn register_aliases_work() {
        let p = assemble("ldq v0, 0(sp)\nmov a0, ra\n").expect("assembles");
        let i = decode(RawInstr(p.text_words()[0])).unwrap();
        assert_eq!(i.to_string(), "ldq r0, 0(sp)");
    }

    #[test]
    fn assembled_text_runs_like_builder_output() {
        use crate::{Assembler, Reg};
        let src = "
    li r1, 5
    li r2, 6
    mulq r1, r2, r3
    mov r3, a0
    call_pal exit
";
        let from_text = assemble(src).expect("assembles");
        let mut b = Assembler::new();
        b.li(Reg::R1, 5);
        b.li(Reg::R2, 6);
        b.mulq(Reg::R1, Reg::R2, Reg::R3);
        b.mov(Reg::R3, Reg::A0);
        b.pal(PalFunc::Exit);
        let from_builder = b.finish().expect("assembles");
        assert_eq!(from_text.text_words(), from_builder.text_words());
    }
}
