//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — Alpha instruction formats |
//! | `fig4`   | Fig. 4 — result-category examples for DCT |
//! | `fig5`   | Fig. 5 — outcome distribution vs. fault location |
//! | `fig6`   | Fig. 6 — outcome vs. normalized injection time |
//! | `fig7`   | Fig. 7 — GemFI overhead vs. unmodified simulator |
//! | `fig8`   | Fig. 8 — campaign time: baseline / checkpoint / NoW |
//!
//! Binaries accept `--scale small|default|paper` to trade fidelity for
//! runtime, plus per-figure options; run with `--help` for details.

use gemfi_workloads::{canneal, dct, deblock, jacobi, knapsack, pi, Workload};

/// Workload size tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-figure sizes for CI and smoke runs.
    Small,
    /// The workspace defaults (minutes per figure).
    Default,
    /// The paper's original sizes (hours; intended for NoW-style parallel
    /// hosts).
    Paper,
}

impl Scale {
    /// Parses `small|default|paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// The paper's six benchmarks at the given scale, figure order.
pub fn workloads(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Small => vec![
            Box::new(dct::Dct { width: 16, height: 16 }),
            Box::new(jacobi::Jacobi { n: 8, max_iters: 120 }),
            Box::new(pi::MonteCarloPi { points: 400, init_spins: 2_000, ..Default::default() }),
            Box::new(knapsack::Knapsack { generations: 8, ..Default::default() }),
            Box::new(deblock::Deblock { width: 48, height: 16 }),
            Box::new(canneal::Canneal { steps: 128, ..Default::default() }),
        ],
        Scale::Default => vec![
            Box::new(dct::Dct::default()),
            Box::new(jacobi::Jacobi::default()),
            Box::new(pi::MonteCarloPi::default()),
            Box::new(knapsack::Knapsack::default()),
            Box::new(deblock::Deblock::default()),
            Box::new(canneal::Canneal::default()),
        ],
        Scale::Paper => vec![
            Box::new(dct::Dct::paper()),
            Box::new(jacobi::Jacobi::paper()),
            Box::new(pi::MonteCarloPi::paper()),
            Box::new(knapsack::Knapsack::paper()),
            Box::new(deblock::Deblock::paper()),
            Box::new(canneal::Canneal::paper()),
        ],
    }
}

/// Selects workloads by comma-separated names (all when `names` is `None`).
pub fn select_workloads(scale: Scale, names: Option<&str>) -> Vec<Box<dyn Workload>> {
    let all = workloads(scale);
    match names {
        None => all,
        Some(list) => {
            let wanted: Vec<&str> = list.split(',').map(str::trim).collect();
            all.into_iter().filter(|w| wanted.contains(&w.name())).collect()
        }
    }
}

/// A minimal `--flag value` argument scanner.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn from_env() -> Args {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// The value following `--name`, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }

    /// A parsed numeric option with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value_of(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// The scale option (default [`Scale::Small`] — figures should run out
    /// of the box).
    pub fn scale(&self) -> Scale {
        self.value_of("scale").and_then(Scale::parse).unwrap_or(Scale::Small)
    }
}

/// Prints a horizontal rule sized to the paper-style tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// A minimal timing harness for the `harness = false` benchmark binaries:
/// one warmup call, `samples` timed calls, median/min report. The workspace
/// builds fully offline, so the benches cannot depend on an external
/// benchmarking framework.
pub fn time_it(name: &str, samples: usize, f: impl FnMut()) {
    time_it_secs(name, samples, f);
}

/// Like [`time_it`], but also returns `(median, min)` in seconds so callers
/// can derive throughput numbers and machine-readable reports.
pub fn time_it_secs(name: &str, samples: usize, mut f: impl FnMut()) -> (f64, f64) {
    f(); // warmup
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let (median, min) = (times[times.len() / 2], times[0]);
    println!(
        "{name:<32} median {:>9.3} ms   min {:>9.3} ms   (n={})",
        median * 1e3,
        min * 1e3,
        times.len()
    );
    (median, min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scales_provide_six_workloads() {
        for scale in [Scale::Small, Scale::Default, Scale::Paper] {
            let w = workloads(scale);
            assert_eq!(w.len(), 6);
            let names: Vec<_> = w.iter().map(|w| w.name()).collect();
            assert_eq!(names, ["dct", "jacobi", "pi", "knapsack", "deblock", "canneal"]);
        }
    }

    #[test]
    fn selection_filters_by_name() {
        let w = select_workloads(Scale::Small, Some("pi,dct"));
        let names: Vec<_> = w.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["dct", "pi"]);
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }
}
