//! Regenerates Fig. 8: effect of GemFI's optimizations on the execution
//! time of fault-injection campaigns (log-scale bars in the paper).
//!
//! Three configurations per workload, as in Sec. V:
//!
//! 1. **baseline** — every experiment simulates from machine boot through
//!    application initialization and the kernel;
//! 2. **checkpoint** — experiments restore the post-initialization
//!    checkpoint and simulate only the kernel (Fig. 3 fast-forwarding;
//!    the paper reports 3×–244×, average 64.5×);
//! 3. **NoW** — the checkpointed experiments spread over a simulated
//!    network of workstations (the paper: 27 machines × 4 slots ≈ 108×
//!    on top of checkpointing).
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin fig8 -- \
//!     [--scale small|default|paper] [--experiments N] \
//!     [--workstations W] [--slots S] [--atomic]
//! ```

use gemfi_bench::Args;
use gemfi_campaign::{
    now::{run_campaign_now, NowConfig},
    prepare_workload, run_experiment_from, FaultSampler, RunnerConfig,
};
use gemfi_cpu::CpuKind;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let experiments: usize = args.number("experiments", 24);
    let workstations: usize = args.number(
        "workstations",
        std::thread::available_parallelism().map(|n| n.get() / 2).unwrap_or(4).max(2),
    );
    let slots: usize = args.number("slots", 2);
    // Synthetic OS-boot cost per fresh boot (the paper's checkpoints skip a
    // full Linux boot; ours skip this spin plus application init).
    let boot_spin: u64 = args.number("boot", 300_000);
    let seed: u64 = args.number("seed", 0xf18);
    let runner = if args.has("atomic") {
        RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        }
    } else {
        RunnerConfig::default()
    };
    let workloads = gemfi_bench::select_workloads(args.scale(), args.value_of("workloads"));

    println!(
        "Fig. 8: campaign time ({experiments} experiments; boot = {boot_spin} instrs; NoW = {workstations} ws x {slots} slots)\n"
    );
    println!(
        "{:<10} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "workload", "baseline (s)", "ckpt (s)", "now-wall (s)", "now-27x4 (s)", "ckpt-x", "now-x"
    );
    gemfi_bench::rule(88);

    for workload in &workloads {
        let prepared = match prepare_workload(workload.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: {e}", workload.name());
                continue;
            }
        };
        let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
        let specs: Vec<_> = (0..experiments).map(|_| sampler.sample_any()).collect();

        // 1. Baseline: every experiment re-simulates boot + application
        //    initialization, then its kernel (no checkpoint reuse).
        let t0 = Instant::now();
        for spec in &specs {
            let guest = workload.build();
            let mut config = gemfi_workloads::workload_machine_config(gemfi_cpu::CpuKind::Atomic);
            config.boot_spin = boot_spin;
            let mut machine =
                gemfi_sim::Machine::boot(config, &guest.program, gemfi_cpu::NoopHooks)
                    .expect("boots");
            assert_eq!(machine.run(), gemfi_sim::RunExit::CheckpointRequest);
            let fresh_ckpt = machine.checkpoint();
            let _ = run_experiment_from(&fresh_ckpt, &prepared, workload.as_ref(), *spec, &runner);
        }
        let baseline = t0.elapsed().as_secs_f64();

        // 2. Checkpoint fast-forward: initialization paid once.
        let t1 = Instant::now();
        let mut per_experiment = Vec::with_capacity(specs.len());
        for spec in &specs {
            let te = Instant::now();
            let _ = run_experiment_from(
                &prepared.checkpoint,
                &prepared,
                workload.as_ref(),
                *spec,
                &runner,
            );
            per_experiment.push(te.elapsed().as_secs_f64());
        }
        let ckpt = t1.elapsed().as_secs_f64();

        // Modeled NoW makespan on the paper's 27x4 = 108 slots: experiments
        // are independent, so the parallel time is the balanced-load
        // makespan (host parallelism does not limit the model).
        let slots_paper = 108.0;
        let sum: f64 = per_experiment.iter().sum();
        let longest = per_experiment.iter().cloned().fold(0.0, f64::max);
        let modeled_now = (sum / slots_paper).max(longest);

        // 3. NoW over the spool directory.
        let share = std::env::temp_dir().join(format!(
            "gemfi-fig8-{}-{}",
            workload.name(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&share);
        let cfg = NowConfig::new(workstations, slots, &share);
        let t2 = Instant::now();
        let (_, _, report) = run_campaign_now(&prepared, workload.as_ref(), &specs, &runner, &cfg)
            .expect("share dir usable");
        let now_time = t2.elapsed().as_secs_f64();
        std::fs::remove_dir_all(&share).ok();
        let _ = report;

        println!(
            "{:<10} {:>13.2} {:>13.2} {:>13.2} {:>13.3} {:>8.1}x {:>8.1}x",
            workload.name(),
            baseline,
            ckpt,
            now_time,
            modeled_now,
            baseline / ckpt.max(1e-9),
            baseline / modeled_now.max(1e-9),
        );
    }
    gemfi_bench::rule(88);
    println!(
        "\npaper reference: checkpointing 3x-244x (avg 64.5x); NoW adds ~(workstations x slots)"
    );
    println!("note: speedups scale with the init/kernel time ratio and available cores");
}
