//! Regenerates Table I: the Alpha instruction formats, printed from the
//! ISA's own field metadata (so the table cannot drift from the decoder).
//!
//! ```text
//! cargo run -p gemfi-bench --bin table1
//! ```

use gemfi_isa::Format;

fn main() {
    println!("Table I: Alpha instruction formats (from gemfi-isa field metadata)\n");
    println!("{:<10} fields [hi:lo]", "format");
    gemfi_bench::rule(72);
    for format in [Format::PalCode, Format::Branch, Format::Memory, Format::Operate] {
        let fields: Vec<String> =
            format.fields().iter().map(|f| format!("{}[{}:{}]", f.name, f.hi, f.lo)).collect();
        println!("{:<10} {}", format.to_string(), fields.join(" | "));
    }
    gemfi_bench::rule(72);
    println!("\nRegister-selector fields targeted by decode-stage faults:");
    for format in [Format::Branch, Format::Memory, Format::Operate] {
        let sel: Vec<String> = format
            .reg_selector_fields()
            .iter()
            .map(|f| format!("{}[{}:{}]", f.name, f.hi, f.lo))
            .collect();
        println!("  {:<10} {}", format.to_string(), sel.join(", "));
    }
}
