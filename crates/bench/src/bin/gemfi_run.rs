//! `gemfi_run` — the command-line front end the paper describes: "Using the
//! command line, the user provides a configuration file (Listing 1)
//! describing all the faults to be injected in the simulation."
//!
//! Runs one of the bundled workloads under GemFI with a user-supplied fault
//! file, printing the injection log and the classified outcome.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin gemfi_run -- \
//!     --workload pi --faults faults.txt [--cpu o3|atomic|inorder|timing] \
//!     [--scale small|default|paper]
//!
//! # example faults.txt line (the paper's Listing 1):
//! # RegisterInjectedFault Inst:2457 Flip:21 Threadid:0 system.cpu0 occ:1 int 1
//! ```
//!
//! Campaign mode runs a whole sampled experiment set over the simulated
//! network of workstations, with the durable journal and lease protocol —
//! and picks up where an interrupted campaign left off:
//!
//! ```text
//! gemfi_run --workload pi --campaign 200 --share /mnt/spool/pi \
//!     [--seed N] [--workstations N] [--slots N] \
//!     [--lease-secs N] [--max-retries N] [--resume]
//! ```
//!
//! Adaptive mode replaces the fixed experiment count with the sequential
//! sampling engine: per-cell batches are drawn only until every
//! outcome-rate Wilson CI is tighter than `--ci-halfwidth`, lopsided cells
//! stop early, and the remaining budget flows to high-variance cells
//! (`--campaign N` without `--adaptive` stays the fixed-n baseline):
//!
//! ```text
//! gemfi_run --workload pi --adaptive --share /mnt/spool/pi \
//!     [--ci-halfwidth 0.05] [--min-n 25] [--budget N] [--batch 16] \
//!     [--cells int-reg,pc,l1d-cache,...] [--seed N] [--resume]
//! ```

use gemfi::{FaultConfig, GemFiEngine, Outcome};
use gemfi_bench::Args;
use gemfi_campaign::{
    prepare_workload, run_campaign_adaptive_now, run_campaign_now, run_experiment_multi,
    AdaptiveConfig, CellKind, FaultSampler, NowConfig, RunnerConfig,
};
use gemfi_cpu::CpuKind;
use gemfi_sim::{Machine, MachineConfig};
use std::time::Duration;

/// Runs a user-supplied `.s` assembly file under GemFI (no outcome
/// classification — there is no golden model for arbitrary programs).
fn run_assembly_file(path: &str, faults: FaultConfig, cpu: CpuKind, args: &Args) -> ! {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let program = gemfi_asm::assemble(&source).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let mut config = MachineConfig { cpu, ..MachineConfig::default() };
    config.mem.predecode = !args.has("no-predecode");
    config.mem.cow = !args.has("no-cow");
    config.mem.superblock = !args.has("no-superblock");
    config.elide = !args.has("no-elide");
    let mut machine =
        Machine::boot(config, &program, GemFiEngine::new(faults)).unwrap_or_else(|t| {
            eprintln!("boot failed: {t}");
            std::process::exit(1);
        });
    let mut exit = machine.run();
    while exit == gemfi_sim::RunExit::CheckpointRequest {
        exit = machine.run();
    }
    println!("exit: {exit}");
    if !machine.console().is_empty() {
        println!("console: {}", String::from_utf8_lossy(machine.console()));
    }
    if !machine.out_words().is_empty() {
        println!("out_words: {:?}", machine.out_words());
    }
    println!("injections:");
    for r in machine.hooks().records() {
        println!("  {r}");
    }
    std::process::exit(0);
}

/// Campaign mode: sample `n` faults and execute them on the simulated NoW
/// with the journal/lease protocol. With `--resume`, replays the journal on
/// the share and finishes only the unfinished remainder. The fault set is
/// resampled deterministically from `--seed`, so the original and resumed
/// invocations describe the same campaign.
fn run_campaign_mode(
    args: &Args,
    workload: &dyn gemfi_workloads::Workload,
    n: Option<&str>,
    cpu: CpuKind,
) -> ! {
    let Some(share) = args.value_of("share") else {
        eprintln!("campaign mode needs --share <dir> (the spool directory)");
        std::process::exit(2);
    };

    let prepared = prepare_workload(workload).unwrap_or_else(|e| {
        eprintln!("prepare failed: {e}");
        std::process::exit(1);
    });
    let seed = args.number("seed", 1u64);
    let config = NowConfig {
        lease: Duration::from_secs(args.number("lease-secs", 30u64)),
        max_retries: args.number("max-retries", 2u64),
        resume: args.has("resume"),
        ..NowConfig::new(args.number("workstations", 3usize), args.number("slots", 2usize), share)
    };
    let runner = RunnerConfig {
        inject_cpu: cpu,
        elide: !args.has("no-elide"),
        superblock: !args.has("no-superblock"),
        ..RunnerConfig::default()
    };

    if args.has("adaptive") {
        run_adaptive_campaign(args, workload, &prepared, n, seed, &config, &runner);
    }
    let experiments: usize = n.and_then(|n| n.parse().ok()).unwrap_or_else(|| {
        eprintln!("--campaign expects an experiment count, got `{}`", n.unwrap_or(""));
        std::process::exit(2);
    });
    let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
    let specs: Vec<_> = (0..experiments).map(|_| sampler.sample_any()).collect();
    println!(
        "campaign: {} x {} on {} ws x {} slots | share {share} | seed {seed} | resume: {}",
        experiments,
        workload.name(),
        config.workstations,
        config.slots_per_workstation,
        config.resume,
    );

    match run_campaign_now(&prepared, workload, &specs, &runner, &config) {
        Ok((table, _, report)) => {
            println!("\n{table}");
            println!("acceptable: {:.1}%", table.acceptable_fraction() * 100.0);
            println!(
                "wall {:.2?} | resumed {} | retries {} | reclaimed leases {} | infra failures {}",
                report.wall,
                report.resumed,
                report.retries,
                report.reclaimed_leases,
                report.infrastructure_failures,
            );
            if table.count(Outcome::Infrastructure) > 0 {
                std::process::exit(3);
            }
            std::process::exit(0);
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            eprintln!("campaign interrupted: {e}");
            eprintln!("re-run with --resume to finish");
            std::process::exit(4);
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Adaptive mode: sequential sampling with per-cell early stopping.
/// `--campaign N` (when given alongside `--adaptive`) doubles as the
/// default `--budget`.
fn run_adaptive_campaign(
    args: &Args,
    workload: &dyn gemfi_workloads::Workload,
    prepared: &gemfi_campaign::PreparedWorkload,
    n: Option<&str>,
    seed: u64,
    config: &NowConfig,
    runner: &RunnerConfig,
) -> ! {
    let default_budget: u64 = n.and_then(|n| n.parse().ok()).unwrap_or(0);
    let mut adaptive = AdaptiveConfig {
        ci_halfwidth: args.number("ci-halfwidth", 0.05f64),
        min_n: args.number("min-n", 25u64),
        budget: args.number("budget", default_budget),
        batch: args.number("batch", 16u64),
        ..AdaptiveConfig::default()
    };
    if let Some(list) = args.value_of("cells") {
        adaptive.cells = list
            .split(',')
            .map(|label| {
                CellKind::parse(label.trim()).unwrap_or_else(|| {
                    eprintln!(
                        "unknown cell `{label}` (known: int-reg fp-reg fetch decode execute \
                         mem pc l1i-cache l1d-cache l2-cache security)"
                    );
                    std::process::exit(2);
                })
            })
            .collect();
    }
    println!(
        "adaptive campaign: {} on {} ws x {} slots | ±{} at z={:.2}, min-n {}, budget {}, \
         batch {} | cells {} | seed {seed} | resume: {}",
        workload.name(),
        config.workstations,
        config.slots_per_workstation,
        adaptive.ci_halfwidth,
        adaptive.z,
        adaptive.min_n,
        if adaptive.budget == 0 { "auto".to_string() } else { adaptive.budget.to_string() },
        adaptive.batch,
        adaptive.cells_label(),
        config.resume,
    );

    match run_campaign_adaptive_now(prepared, workload, runner, config, &adaptive, seed) {
        Ok((outcome, report)) => {
            println!("\n{outcome}");
            println!("pooled: {}", outcome.table);
            println!("acceptable: {:.1}%", outcome.table.acceptable_fraction() * 100.0);
            println!(
                "wall {:.2?} | resumed {} | retries {} | reclaimed leases {} | infra failures {}",
                report.wall,
                report.resumed,
                report.retries,
                report.reclaimed_leases,
                report.infrastructure_failures,
            );
            if outcome.table.count(Outcome::Infrastructure) > 0 {
                std::process::exit(3);
            }
            std::process::exit(0);
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            eprintln!("adaptive campaign interrupted: {e}");
            eprintln!("re-run with --resume to finish");
            std::process::exit(4);
        }
        Err(e) => {
            eprintln!("adaptive campaign failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = Args::from_env();
    let cpu_of = |args: &Args| match args.value_of("cpu") {
        Some("atomic") => CpuKind::Atomic,
        Some("inorder") => CpuKind::InOrder,
        Some("timing") => CpuKind::Timing,
        _ => CpuKind::O3,
    };
    if let Some(path) = args.value_of("program") {
        let faults = match args.value_of("faults") {
            Some(f) => FaultConfig::load(std::path::Path::new(f)).unwrap_or_else(|e| {
                eprintln!("cannot read fault file {f}: {e}");
                std::process::exit(2);
            }),
            None => FaultConfig::empty(),
        };
        run_assembly_file(path, faults, cpu_of(&args), &args);
    }
    let Some(name) = args.value_of("workload") else {
        eprintln!(
            "usage: gemfi_run (--workload <name> | --program <file.s>) \
       [--faults <file>] [--cpu o3|atomic|inorder|timing] [--no-predecode] [--no-cow] [--no-elide] [--no-superblock]"
        );
        eprintln!(
            "       gemfi_run --workload <name> --campaign <experiments> --share <dir> \
       [--seed N] [--workstations N] [--slots N] [--lease-secs N] [--max-retries N] [--resume]"
        );
        eprintln!(
            "       gemfi_run --workload <name> --adaptive --share <dir> \
       [--ci-halfwidth H] [--min-n N] [--budget N] [--batch N] [--cells a,b,...] [--seed N] [--resume]"
        );
        eprintln!("workloads: dct jacobi pi knapsack deblock canneal");
        std::process::exit(2);
    };
    let workloads = gemfi_bench::select_workloads(args.scale(), Some(name));
    let Some(workload) = workloads.first() else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(2);
    };

    if args.value_of("campaign").is_some() || args.has("adaptive") {
        run_campaign_mode(&args, workload.as_ref(), args.value_of("campaign"), cpu_of(&args));
    }

    let faults = match args.value_of("faults") {
        Some(path) => match FaultConfig::load(std::path::Path::new(path)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot read fault file {path}: {e}");
                std::process::exit(2);
            }
        },
        None => FaultConfig::empty(),
    };
    let cpu = cpu_of(&args);

    println!("workload: {} | injection model: {cpu} | faults: {}", workload.name(), faults.len());
    for f in faults.faults() {
        println!("  {f}");
    }

    let mut machine_config = gemfi_workloads::workload_machine_config(CpuKind::Atomic);
    machine_config.mem.predecode = !args.has("no-predecode");
    machine_config.mem.cow = !args.has("no-cow");
    machine_config.mem.superblock = !args.has("no-superblock");
    machine_config.elide = !args.has("no-elide");
    let prepared = gemfi_campaign::prepare_workload_with(workload.as_ref(), machine_config)
        .unwrap_or_else(|e| {
            eprintln!("prepare failed: {e}");
            std::process::exit(1);
        });
    println!(
        "\ncheckpoint at tick {}; fault space (events/stage): {:?}",
        prepared.checkpoint.tick(),
        prepared.stage_events
    );

    if faults.is_empty() {
        println!("\nno faults: golden run only");
        println!("  exit: {}", prepared.golden.exit);
        println!("  stats:\n{}", indent(&prepared.golden.stats.to_string()));
        return;
    }

    let runner = RunnerConfig {
        inject_cpu: cpu,
        elide: !args.has("no-elide"),
        superblock: !args.has("no-superblock"),
        ..RunnerConfig::default()
    };
    let result = run_experiment_multi(&prepared, workload.as_ref(), faults.faults(), &runner);

    println!("\ninjections:");
    if result.injections.is_empty() {
        println!("  (none fired)");
    }
    for r in &result.injections {
        println!("  {r}");
    }
    println!("\nexit: {}", result.exit);
    println!("outcome: {}", result.outcome);
    if let Some(f) = result.injection_fraction {
        println!("first injection at {:.0}% of the kernel", f * 100.0);
    }
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect()
}
