//! Regenerates Fig. 5: application behavior when fault-injecting different
//! architectural components.
//!
//! For every workload × location class, runs a campaign of uniform
//! single-bit-flip faults (Sec. IV-B-1) and prints the stacked-bar
//! percentages. `--leveugle` prints the statistically required sample size
//! per the DATE'09 sizing at 99%/1% (the paper's ≈2501); the default run
//! uses `--experiments` samples per (workload, class) cell so the figure
//! regenerates in minutes.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin fig5 -- \
//!     [--scale small|default|paper] [--experiments N] [--threads T] \
//!     [--workloads pi,dct,...] [--leveugle] [--atomic]
//! ```

use gemfi_bench::Args;
use gemfi_campaign::{
    leveugle_sample_size, prepare_workload, run_experiment, FaultSampler, LocationClass,
    OutcomeTable, RunnerConfig,
};
use gemfi_cpu::CpuKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let per_cell: usize = args.number("experiments", 25);
    let threads: usize =
        args.number("threads", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
    let seed: u64 = args.number("seed", 0xf15_f15);
    let runner = if args.has("atomic") {
        RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        }
    } else {
        RunnerConfig::default()
    };
    let workloads = gemfi_bench::select_workloads(scale, args.value_of("workloads"));

    println!(
        "Fig. 5: outcome vs fault location ({} experiments per cell, {} threads, inject={})",
        per_cell, threads, runner.inject_cpu
    );
    println!(
        "columns: {:>7} {:>7} {:>7} {:>7} {:>7}  (percent)\n",
        "crash", "nonprop", "strict", "correct", "sdc"
    );

    for workload in &workloads {
        let prepared = match prepare_workload(workload.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: {e}", workload.name());
                continue;
            }
        };
        if args.has("leveugle") {
            let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
            let pop = sampler.total_population();
            let _ = sampler.sample_any();
            let n = leveugle_sample_size(pop, 0.01, gemfi_campaign::stats::Z_99, 0.5);
            println!(
                "{}: fault-space population {} -> Leveugle 99%/1% sample size {}",
                workload.name(),
                pop,
                n
            );
        }
        println!("{} (kernel: {} instructions)", workload.name(), prepared.stage_events[4]);
        let mut summary = OutcomeTable::new();
        for class in LocationClass::ALL {
            // Sample serially for determinism, run in parallel.
            let mut sampler =
                FaultSampler::new(seed ^ class.stage().index() as u64, prepared.stage_events, 0, 0);
            let specs: Vec<_> = (0..per_cell).map(|_| sampler.sample(class)).collect();
            let next = AtomicUsize::new(0);
            let table = Mutex::new(OutcomeTable::new());
            std::thread::scope(|scope| {
                for _ in 0..threads.min(per_cell.max(1)) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        let r = run_experiment(&prepared, workload.as_ref(), specs[i], &runner);
                        table.lock().expect("no poisoned threads").add(r.outcome);
                    });
                }
            });
            let table = table.into_inner().expect("threads joined");
            println!("  {:<9} {}", class.to_string(), table);
            summary.merge(&table);
        }
        println!("  {:<9} {}\n", "ALL", summary);
    }
}
