//! `bench_schema` — validates the committed `BENCH_*.json` performance
//! reports.
//!
//! Every benchmark in this repo writes its ablation numbers as a small JSON
//! report (e.g. `BENCH_predecode.json`, `BENCH_cow_restore.json`,
//! `BENCH_hook_elision.json`). CI regenerates some of them on tiny budgets
//! and archives the artifacts; this binary is the schema gate that keeps
//! both the committed and the freshly generated reports honest:
//!
//! * the file must parse as JSON (a hand-rolled parser — the workspace has
//!   no serde and takes no registry dependencies);
//! * the top level must be an object with a non-empty string `"bench"`;
//! * a `"results"` key must exist, be an array, and be non-empty;
//! * every entry of `"results"` must be an object.
//!
//! ```text
//! bench_schema [--dir PATH] [--thresholds FLOORS.json]
//! ```
//!
//! Scans `PATH` (non-recursively, default: current directory) for
//! `BENCH_*.json`, validates each, and exits non-zero if any file is
//! malformed — or if no report is found at all, so a misconfigured CI step
//! cannot pass by scanning an empty directory.
//!
//! With `--thresholds` the binary is also the **bench-regression gate**:
//! the floors file maps a `bench` name to a minimum `speedup` — either a
//! single positive number (gating a scalar `"speedup"` field) or an object
//! of named floors (gating the matching keys of an object-valued
//! `"speedup"`, e.g. `hook_elision`'s per-mode ratios). Every floor must
//! find its report among the scanned files and every gated ratio must meet
//! its floor, or the run fails. A malformed floors file fails too: the gate
//! refuses to pass vacuously.
//!
//! The gate is deliberately asymmetric about *missing baselines*: a report
//! (or a keyed speedup entry) with no recorded floor is **skipped with a
//! note**, never failed — new benchmarks and new model configurations land
//! before anyone has measured a trustworthy floor for them, and the gate
//! must not block that. The reverse direction stays strict: a floor whose
//! report (or keyed entry) is missing is a hard failure, because that means
//! a previously gated result silently disappeared.

use gemfi_bench::Args;
use std::path::Path;

/// A minimal JSON value tree: just enough structure for schema checks.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser over the full grammar (objects, arrays,
/// strings with escapes, numbers, literals). Errors carry a byte offset.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> ParseResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_document(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing garbage after JSON document"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> ParseResult<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self) -> ParseResult<Json> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> ParseResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // bench reports are ASCII, anything else is noise.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> ParseResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Number).map_err(|_| self.err("malformed number"))
    }
}

fn parse(text: &str) -> ParseResult<Json> {
    Parser::new(text).parse_document()
}

/// The schema every `BENCH_*.json` report must satisfy.
fn validate(doc: &Json) -> Result<usize, String> {
    let Json::Object(_) = doc else {
        return Err("top level is not an object".into());
    };
    match doc.get("bench") {
        Some(Json::String(name)) if !name.is_empty() => {}
        Some(_) => return Err("`bench` is not a string".into()),
        None => return Err("missing `bench` name".into()),
    }
    let results = doc.get("results").ok_or("missing `results` array")?;
    let Json::Array(entries) = results else {
        return Err("`results` is not an array".into());
    };
    if entries.is_empty() {
        return Err("`results` is empty".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        if !matches!(entry, Json::Object(_)) {
            return Err(format!("results[{i}] is not an object"));
        }
    }
    Ok(entries.len())
}

/// The shape a `--thresholds` floors file must satisfy: an object mapping
/// bench names to either a positive number or a non-empty object of
/// positive numbers.
fn validate_thresholds(doc: &Json) -> Result<&Vec<(String, Json)>, String> {
    let Json::Object(floors) = doc else {
        return Err("top level is not an object".into());
    };
    if floors.is_empty() {
        return Err("no floors defined — the gate would pass vacuously".into());
    }
    for (bench, floor) in floors {
        match floor {
            Json::Number(n) if *n > 0.0 => {}
            Json::Number(_) => return Err(format!("`{bench}` floor is not positive")),
            Json::Object(keys) if !keys.is_empty() => {
                for (key, value) in keys {
                    match value {
                        Json::Number(n) if *n > 0.0 => {}
                        _ => return Err(format!("`{bench}.{key}` floor is not a positive number")),
                    }
                }
            }
            _ => return Err(format!("`{bench}` floor is neither a number nor a non-empty object")),
        }
    }
    Ok(floors)
}

/// Gates one report's `speedup` against its floor. Returns a human-readable
/// pass summary, or the first violated ratio.
fn check_floor(doc: &Json, floor: &Json) -> Result<String, String> {
    let speedup = doc.get("speedup").ok_or("report has no `speedup` field to gate")?;
    match (floor, speedup) {
        (Json::Number(f), Json::Number(s)) => {
            if s >= f {
                Ok(format!("speedup {s:.3} >= floor {f}"))
            } else {
                Err(format!("speedup {s:.3} below floor {f}"))
            }
        }
        (Json::Number(_), _) => Err("`speedup` is not a number".into()),
        (Json::Object(floors), Json::Object(measured)) => {
            let mut passed = Vec::new();
            for (key, value) in floors {
                let Json::Number(f) = value else {
                    return Err(format!("`{key}` floor is not a number"));
                };
                match measured.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                    Some(Json::Number(s)) if s >= f => passed.push(format!("{key} {s:.3}")),
                    Some(Json::Number(s)) => {
                        return Err(format!("`{key}` speedup {s:.3} below floor {f}"))
                    }
                    Some(_) => return Err(format!("`{key}` speedup is not a number")),
                    None => return Err(format!("report's `speedup` has no `{key}` entry")),
                }
            }
            // Keyed speedups without a recorded floor (a freshly added
            // model/config) are noted, not failed.
            let skipped: Vec<&str> = measured
                .iter()
                .filter(|(k, _)| !floors.iter().any(|(fk, _)| fk == k))
                .map(|(k, _)| k.as_str())
                .collect();
            let mut msg = format!("speedups {} meet their floors", passed.join(", "));
            if !skipped.is_empty() {
                msg.push_str(&format!(" (skipped {}: no recorded baseline)", skipped.join(", ")));
            }
            Ok(msg)
        }
        (Json::Object(_), _) => Err("`speedup` is not an object, but the floor is".into()),
        _ => Err("unsupported floor shape".into()),
    }
}

/// Runs every floor against the scanned reports and reports which scanned
/// reports were *not* gated. Returns `(notes, failures)`: notes are
/// printed, failures fail the run. A floor without a matching report is a
/// failure; a report without a recorded floor is a skip note — models
/// without a baseline must not fail the gate.
fn gate_reports(floors: &[(String, Json)], docs: &[(String, Json)]) -> (Vec<String>, Vec<String>) {
    let mut notes = Vec::new();
    let mut failures = Vec::new();
    for (bench, floor) in floors {
        match docs.iter().find(|(name, _)| name == bench) {
            Some((_, report)) => match check_floor(report, floor) {
                Ok(msg) => notes.push(format!("gate {bench}: {msg}")),
                Err(e) => failures.push(format!("{bench}: {e}")),
            },
            None => failures.push(format!("{bench}: floor defined but no report found")),
        }
    }
    for (name, _) in docs {
        if !floors.iter().any(|(bench, _)| bench == name) {
            notes.push(format!("gate skip {name}: no recorded baseline"));
        }
    }
    (notes, failures)
}

fn check_file(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if text.trim().is_empty() {
        return Err("file is empty".into());
    }
    let doc = parse(&text)?;
    validate(&doc)?;
    Ok(doc)
}

fn main() {
    let args = Args::from_env();
    let dir = args.value_of("dir").unwrap_or(".").to_string();

    let mut reports: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("bench_schema: cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    reports.sort();

    if reports.is_empty() {
        eprintln!("bench_schema: no BENCH_*.json found in {dir}");
        std::process::exit(1);
    }

    let mut failed = false;
    let mut docs: Vec<(String, Json)> = Vec::new();
    for path in &reports {
        match check_file(path) {
            Ok(doc) => {
                let n = match doc.get("results") {
                    Some(Json::Array(entries)) => entries.len(),
                    _ => 0,
                };
                println!("ok   {} ({n} results)", path.display());
                if let Some(Json::String(name)) = doc.get("bench") {
                    docs.push((name.clone(), doc));
                }
            }
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed = true;
            }
        }
    }

    if let Some(floors_path) = args.value_of("thresholds") {
        match std::fs::read_to_string(floors_path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| parse(&text))
        {
            Ok(doc) => match validate_thresholds(&doc) {
                Ok(floors) => {
                    let (notes, failures) = gate_reports(floors, &docs);
                    for note in notes {
                        println!("{note}");
                    }
                    for failure in failures {
                        eprintln!("GATE FAIL {failure}");
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("GATE FAIL {floors_path}: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("GATE FAIL {floors_path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("{} report(s) valid", reports.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = parse(
            r#"{"bench": "x", "speedup": {"a": 1.5}, "results": [{"n": -2e3, "ok": true}, {"s": "a\"bA"}]}"#,
        )
        .unwrap();
        assert_eq!(validate(&doc).unwrap(), 2);
        let Some(Json::Array(items)) = doc.get("results") else { panic!() };
        assert_eq!(items[0].get("n"), Some(&Json::Number(-2000.0)));
        assert_eq!(items[1].get("s"), Some(&Json::String("a\"bA".into())));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a": 01e}"#).is_err());
        assert!(parse(r#"{"a": "unterminated}"#).is_err());
    }

    #[test]
    fn thresholds_shape_is_enforced() {
        let ok = parse(r#"{"a": 2.0, "b": {"x": 1.2, "y": 1.5}}"#).unwrap();
        assert_eq!(validate_thresholds(&ok).unwrap().len(), 2);
        for bad in [
            "[]",
            "{}",
            r#"{"a": 0}"#,
            r#"{"a": -1.5}"#,
            r#"{"a": "2.0"}"#,
            r#"{"a": {}}"#,
            r#"{"a": {"x": "fast"}}"#,
        ] {
            assert!(validate_thresholds(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn floors_gate_scalar_and_keyed_speedups() {
        let scalar = parse(r#"{"bench": "x", "results": [{}], "speedup": 4.1}"#).unwrap();
        assert!(check_floor(&scalar, &Json::Number(4.0)).is_ok());
        assert!(check_floor(&scalar, &Json::Number(4.2)).is_err());

        let keyed =
            parse(r#"{"bench": "x", "results": [{}], "speedup": {"atomic": 1.4, "o3": 0.9}}"#)
                .unwrap();
        let floor = |text: &str| parse(text).unwrap();
        assert!(check_floor(&keyed, &floor(r#"{"atomic": 1.2}"#)).is_ok());
        assert!(check_floor(&keyed, &floor(r#"{"atomic": 1.5}"#)).is_err());
        assert!(check_floor(&keyed, &floor(r#"{"missing": 1.0}"#)).is_err());
        assert!(check_floor(&keyed, &Json::Number(1.0)).is_err(), "shape mismatch must fail");

        let none = parse(r#"{"bench": "x", "results": [{}]}"#).unwrap();
        assert!(check_floor(&none, &Json::Number(1.0)).is_err(), "no speedup field must fail");
    }

    #[test]
    fn keyed_speedups_without_floors_are_noted_not_failed() {
        // A report that grew a new per-model entry (`o3`) before anyone
        // recorded a floor for it: the gated key still passes and the new
        // key is listed as skipped.
        let keyed =
            parse(r#"{"bench": "x", "results": [{}], "speedup": {"atomic": 1.4, "o3": 0.9}}"#)
                .unwrap();
        let floor = parse(r#"{"atomic": 1.2}"#).unwrap();
        let msg = check_floor(&keyed, &floor).unwrap();
        assert!(msg.contains("atomic 1.400"), "{msg}");
        assert!(msg.contains("skipped o3: no recorded baseline"), "{msg}");
    }

    #[test]
    fn reports_without_a_recorded_baseline_are_skipped_not_failed() {
        let gated = parse(r#"{"bench": "old", "results": [{}], "speedup": 3.0}"#).unwrap();
        // A brand-new fault-model bench with no floor yet — and no
        // `speedup` field at all, which would fail `check_floor` if it
        // were (wrongly) gated.
        let fresh = parse(r#"{"bench": "cache_models", "results": [{}]}"#).unwrap();
        let floors = vec![("old".to_string(), Json::Number(2.0))];
        let docs = vec![("old".to_string(), gated), ("cache_models".to_string(), fresh)];
        let (notes, failures) = gate_reports(&floors, &docs);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(
            notes.iter().any(|n| n == "gate skip cache_models: no recorded baseline"),
            "{notes:?}"
        );
        assert!(notes.iter().any(|n| n.starts_with("gate old: speedup 3.000")), "{notes:?}");
    }

    #[test]
    fn floor_without_a_report_still_fails() {
        // The strict direction is preserved: a gated result that vanished
        // from the scan is a failure, not a skip.
        let floors = vec![("gone".to_string(), Json::Number(2.0))];
        let (notes, failures) = gate_reports(&floors, &[]);
        assert!(notes.is_empty(), "{notes:?}");
        assert_eq!(failures, vec!["gone: floor defined but no report found".to_string()]);
    }

    #[test]
    fn regressed_report_still_fails_through_the_gate() {
        let slow = parse(r#"{"bench": "old", "results": [{}], "speedup": 1.5}"#).unwrap();
        let floors = vec![("old".to_string(), Json::Number(2.0))];
        let docs = vec![("old".to_string(), slow)];
        let (_, failures) = gate_reports(&floors, &docs);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("below floor"), "{failures:?}");
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(validate(&parse("[]").unwrap()).is_err());
        assert!(validate(&parse(r#"{"results": []}"#).unwrap()).is_err());
        assert!(validate(&parse(r#"{"bench": "x"}"#).unwrap()).is_err());
        assert!(validate(&parse(r#"{"bench": "x", "results": []}"#).unwrap()).is_err());
        assert!(validate(&parse(r#"{"bench": "x", "results": [1]}"#).unwrap()).is_err());
        assert!(validate(&parse(r#"{"bench": "", "results": [{}]}"#).unwrap()).is_err());
        assert!(validate(&parse(r#"{"bench": "x", "results": [{}]}"#).unwrap()).is_ok());
    }
}
