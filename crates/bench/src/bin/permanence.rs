//! Fault-permanence study: the paper's fault model covers "transient,
//! intermittent and permanent faults" (Sec. VII), though its evaluation
//! exercised only single-event upsets. This binary fills that gap: the same
//! uniformly-sampled fault sites are injected as transients (`occ:1`),
//! intermittents (`occ:N`), and permanents (`occ:perm`), and the outcome
//! distributions are compared.
//!
//! Expected shape: severity grows with persistence — permanents produce the
//! most crashes/SDCs, transients the most masked outcomes.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin permanence -- \
//!     [--experiments N] [--workloads pi,...] [--scale small|default|paper]
//! ```

use gemfi::spec::OCC_PERMANENT;
use gemfi_bench::Args;
use gemfi_campaign::{
    prepare_workload, run_experiment, FaultSampler, LocationClass, OutcomeTable, RunnerConfig,
};
use gemfi_cpu::CpuKind;

fn main() {
    let args = Args::from_env();
    let per_mode: usize = args.number("experiments", 30);
    let seed: u64 = args.number("seed", 0x9e99);
    let runner = RunnerConfig {
        inject_cpu: CpuKind::Atomic,
        finish_cpu: CpuKind::Atomic,
        ..RunnerConfig::default()
    };
    let workloads = gemfi_bench::select_workloads(args.scale(), args.value_of("workloads"));
    let modes: [(&str, u64); 3] =
        [("transient", 1), ("intermittent", 64), ("permanent", OCC_PERMANENT)];

    println!("Fault permanence study ({per_mode} experiments per mode)\n");
    println!(
        "{:<10} {:<13} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "workload", "mode", "crash", "nonprop", "strict", "correct", "sdc"
    );
    gemfi_bench::rule(72);
    for workload in &workloads {
        let prepared = match prepare_workload(workload.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: {e}", workload.name());
                continue;
            }
        };
        for (name, occ) in modes {
            // The same sampled sites across modes: reseed per workload+mode
            // index so only `occurrences` differs.
            let mut sampler = FaultSampler::new(seed, prepared.stage_events, 0, 0);
            let mut table = OutcomeTable::new();
            for i in 0..per_mode {
                let class = [
                    LocationClass::IntReg,
                    LocationClass::FpReg,
                    LocationClass::Execute,
                    LocationClass::Mem,
                ][i % 4];
                let mut spec = sampler.sample(class);
                spec.occurrences = occ;
                let r = run_experiment(&prepared, workload.as_ref(), spec, &runner);
                table.add(r.outcome);
            }
            println!("{:<10} {:<13} {}", workload.name(), name, table);
        }
        println!();
    }
    println!("expected shape: severity grows with persistence (crash+sdc rises, masked falls)");
}
