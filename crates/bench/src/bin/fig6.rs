//! Regenerates Fig. 6: correlation of injection timing with application
//! outcome, for the paper's three illustrative workloads (PI, Knapsack,
//! Jacobi).
//!
//! The horizontal axis is the fault time normalized to kernel execution;
//! the series are Crashed / Acceptable / SDC fractions per band. Shape
//! expectations from the paper: PI flat; Knapsack's acceptable fraction
//! *rises* with later injection (bad genes get selected away); Jacobi
//! trades strictly-correct for correct as faults land later.
//!
//! ```text
//! cargo run --release -p gemfi-bench --bin fig6 -- \
//!     [--scale small|default|paper] [--bands B] [--per-band N] [--atomic]
//! ```

use gemfi::Outcome;
use gemfi_bench::Args;
use gemfi_campaign::timing::timing_campaign;
use gemfi_campaign::{prepare_workload, LocationClass, RunnerConfig};
use gemfi_cpu::CpuKind;

fn main() {
    let args = Args::from_env();
    let bands: usize = args.number("bands", 10);
    let per_band: usize = args.number("per-band", 20);
    let seed: u64 = args.number("seed", 0x716);
    let runner = if args.has("atomic") {
        RunnerConfig {
            inject_cpu: CpuKind::Atomic,
            finish_cpu: CpuKind::Atomic,
            ..RunnerConfig::default()
        }
    } else {
        RunnerConfig::default()
    };
    // The paper's Fig. 6 trio.
    let trio = gemfi_bench::select_workloads(args.scale(), Some("pi,knapsack,jacobi"));
    // Register + execute faults drive the timing story; PC faults are flat
    // (always fatal) and dilute the signal.
    let classes =
        [LocationClass::IntReg, LocationClass::FpReg, LocationClass::Execute, LocationClass::Mem];

    println!("Fig. 6: outcome vs normalized injection time ({bands} bands x {per_band} runs)\n");
    for workload in &trio {
        let prepared = match prepare_workload(workload.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {}: {e}", workload.name());
                continue;
            }
        };
        println!(
            "{:<9} {:>9} {:>12} {:>9} {:>9}",
            workload.name(),
            "crashed%",
            "acceptable%",
            "strict%",
            "sdc%"
        );
        let tables =
            timing_campaign(&prepared, workload.as_ref(), &classes, bands, per_band, seed, &runner);
        for (band, t) in tables.iter().enumerate() {
            println!(
                "  {:>3.0}-{:<3.0} {:>8.1} {:>12.1} {:>9.1} {:>9.1}",
                band as f64 / bands as f64 * 100.0,
                (band + 1) as f64 / bands as f64 * 100.0,
                t.fraction(Outcome::Crashed) * 100.0,
                t.acceptable_fraction() * 100.0,
                t.fraction(Outcome::StrictlyCorrect) * 100.0,
                t.fraction(Outcome::Sdc) * 100.0,
            );
        }
        println!();
    }
}
